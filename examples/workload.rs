//! Quickstart for the `pm2-workload` capacity harness: ramp the mixed
//! spawn/RPC/migrate/alloc workload on a 4-node machine until an SLO
//! breaks (or the rate ceiling is reached) and print the round-by-round
//! trajectory.
//!
//! ```sh
//! cargo run --release --example workload
//! ```
//!
//! The driver is open-loop: every op has a scheduled issue time and its
//! latency is measured from that time, so when the machine saturates the
//! queueing delay shows up in p99 instead of quietly slowing the load
//! generator down (the coordinated-omission trap).  Each round's report
//! joins the driver-side quantiles with machine-side counters — scheduler
//! steps, doorbell parks, spawns, migrations, trains, slot trades — so
//! the *mechanism* of saturation is visible, not just the fact of it.

use std::time::Duration;

use pm2::{Machine, MachineMode, NetProfile, Pm2Config};
use pm2_workload::{register_services, run_ramp, RampConfig, WorkloadSpec};

fn main() {
    // A small machine on the instant wire profile: the ramp measures the
    // runtime, not the modelled network.
    let cfg = Pm2Config::new(4)
        .with_net(NetProfile::instant())
        .with_mode(MachineMode::Threaded)
        .with_reply_deadline(Duration::from_secs(2));
    let mut m = Machine::launch(cfg).unwrap();
    register_services(&m);

    // A short ramp: 200 ms rounds, 100 → 600 rps in 100 rps steps, the
    // IC-suite SLO gates (fail a round past 20% failures or 5 s p99).
    let ramp = RampConfig {
        initial_rps: 100,
        increment_rps: 100,
        max_rps: 600,
        round_duration: Duration::from_millis(200),
        drain_grace: Duration::from_millis(400),
        quiet_timeout: Duration::from_secs(2),
        ..RampConfig::default()
    };

    let report = run_ramp(&m, &WorkloadSpec::mixed(), ramp, 2);
    for r in &report.rounds {
        println!(
            "{:>5} rps: issued {:>4}, ok {:>4}, failed {:>2}, timed out {:>2} \
             | p50 {:>7.2} ms, p99 {:>7.2} ms | spawns {:>5}, migrations {:>4}, \
             trades {:>3} | {}",
            r.rps,
            r.issued,
            r.ok,
            r.failed,
            r.timed_out,
            r.p50_ms,
            r.p99_ms,
            r.machine.spawns,
            r.machine.migrations,
            r.machine.trades,
            r.verdict.label()
        );
    }
    println!("{}", report.summary());

    m.shutdown();
    println!("workload example: OK");
}
