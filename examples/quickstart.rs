//! Quickstart: the paper's Figures 1, 2 and 7 on the v1 typed facade —
//! no `unsafe` anywhere in this file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A thread on node 0 writes a stack variable, keeps a reference to it,
//! builds a linked list in iso-address memory ([`IsoList`], Fig. 7),
//! migrates to node 1 and keeps using both — no registration, no fix-up.
//! Then the typed v1 calls: a value-returning join handle whose result
//! crosses a migration, and a typed request/reply LRPC.
//!
//! Under the hood every message here — the migration buffers, the LRPC
//! frames, the exit records — rides the zero-copy payload path: buffers
//! are checked out of per-endpoint pools (`madeleine::BufPool`), sealed
//! into refcounted `Payload`s, and recycled when the receiver drops them,
//! so steady-state traffic allocates nothing.  See the `madeleine` crate
//! docs for the payload model and the "when does send copy" table;
//! `Machine::pool_stats` exposes the recycling counters (the assert at the
//! bottom of this file shows the pools actually reusing buffers).

use pm2::api::{pm2_migrate, pm2_self};
use pm2::{pm2_printf, IsoBox, IsoList, Machine, Service};

/// A typed LRPC service: registered by type, called by type.
struct Stats;
impl Service for Stats {
    const NAME: &'static str = "quickstart.stats";
    type Req = Vec<u64>;
    type Resp = (u64, u64); // (sum, max)
    fn handle(&self, xs: Vec<u64>) -> (u64, u64) {
        pm2_printf!("serving stats({} values) on node {}", xs.len(), pm2_self());
        (xs.iter().sum(), xs.iter().copied().max().unwrap_or(0))
    }
}

fn main() {
    // Two nodes, the paper's defaults (64 KiB slots, round-robin
    // distribution, BIP/Myrinet wire model), echoing pm2_printf to stdout.
    // `workers(2)` pins the executor pool: the nodes are multiplexed onto
    // that many OS threads (default: one per core, never more than nodes).
    let mut machine = Machine::builder(2).echo(true).workers(2).launch().unwrap();
    machine.register::<Stats>(Stats);

    // A value-returning thread: the typed handle's result rides the
    // thread-exit protocol home, even across the migration inside.
    let handle = machine
        .spawn_on_ret(0, || {
            // --- Fig. 1: stack data migrates with the thread. ---
            let x: i32 = 1;
            pm2_printf!("value = {x}");

            // --- Fig. 2: pointers to stack data stay valid.  A plain
            // reference is a pointer; it survives the hop untouched. ---
            let ptr = &x;

            // --- Fig. 7: a linked list in iso-address memory. ---
            let mut list = IsoList::new();
            for j in 0..1000 {
                list.push_front(j * 2 + 1).unwrap();
            }
            // Heap boxes too: same slot discipline, same guarantee.
            let boxed = IsoBox::new(40_i64).unwrap();
            pm2_printf!(
                "list of {} elements built on node {}",
                list.len(),
                pm2_self()
            );

            // --- The migration. ---
            pm2_migrate(1).unwrap();

            // Everything still works on node 1, at the same addresses.
            pm2_printf!("value = {}", *ptr);
            let count = list.iter().count();
            let sum: i64 = list.iter().sum();
            pm2_printf!(
                "traversed {count} elements on node {}, sum = {sum}",
                pm2_self()
            );
            assert_eq!(count, 1000);
            assert_eq!(sum, (0..1000i64).map(|j| j * 2 + 1).sum::<i64>());
            *boxed + 2
        })
        .unwrap();
    let answer = handle.join().unwrap();
    println!("typed join across a migration returned: {answer}");
    assert_eq!(answer, 42);

    // Typed request/reply LRPC from the host to node 1.
    let (sum, max) = machine
        .rpc_call::<Stats>(1, vec![3, 14, 15, 92, 6])
        .unwrap();
    println!("rpc_call::<Stats> on node 1 returned sum={sum}, max={max}");
    assert_eq!((sum, max), (130, 92));

    println!("\n--- captured trace ---");
    for line in machine.output_lines() {
        println!("{line}");
    }

    // The data plane runs on pooled buffers: a migration ping-pong cycles
    // ONE buffer per direction — pack checks it out, the receiver's drop
    // recycles it, the next pack reuses it.  Zero steady-state allocation.
    machine
        .run_on(0, || {
            for _ in 0..8 {
                pm2_migrate(1).unwrap();
                pm2_migrate(0).unwrap();
            }
        })
        .unwrap();
    let mut reuses = 0;
    for node in 0..machine.nodes() {
        let p = machine.pool_stats(node);
        println!(
            "node {node} payload pool: {} checkouts, {} reuses, {} allocs",
            p.checkouts, p.reuses, p.allocs
        );
        reuses += p.reuses;
    }
    assert!(reuses > 0, "steady-state traffic must recycle buffers");

    machine.shutdown();
    println!("quickstart: OK");
}
