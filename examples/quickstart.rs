//! Quickstart: the paper's Figures 1, 2 and 7 in one program.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A thread on node 0 writes a stack variable, takes a pointer to it,
//! builds a small `pm2_isomalloc` linked list, migrates to node 1 and keeps
//! using every pointer — no registration, no fix-up.

use pm2::api::*;
use pm2::{pm2_printf, Machine, Pm2Config};

#[repr(C)]
struct Item {
    value: i32,
    next: *mut Item,
}

fn main() {
    // Two nodes, the paper's defaults (64 KiB slots, round-robin
    // distribution, BIP/Myrinet wire model), echoing pm2_printf to stdout.
    let mut machine = Machine::launch(Pm2Config::new(2).with_echo(true)).unwrap();

    machine
        .run_on(0, || {
            // --- Fig. 1: stack data migrates with the thread. ---
            let x: i32 = 1;
            pm2_printf!("value = {x}");

            // --- Fig. 2: pointers to stack data stay valid. ---
            let ptr = &x as *const i32;

            // --- Fig. 7: a linked list in iso-address memory. ---
            let mut head: *mut Item = std::ptr::null_mut();
            for j in 0..1000 {
                let it = pm2_isomalloc(std::mem::size_of::<Item>()).unwrap() as *mut Item;
                unsafe {
                    (*it).value = j * 2 + 1;
                    (*it).next = head;
                }
                head = it;
            }
            pm2_printf!("list of 1000 elements built on node {}", pm2_self());

            // --- The migration. ---
            pm2_migrate(1).unwrap();

            // Everything still works on node 1, at the same addresses.
            pm2_printf!("value = {}", unsafe { *ptr });
            let mut count = 0;
            let mut sum: i64 = 0;
            let mut cur = head;
            while !cur.is_null() {
                unsafe {
                    sum += (*cur).value as i64;
                    cur = (*cur).next;
                }
                count += 1;
            }
            pm2_printf!("traversed {count} elements on node {}, sum = {sum}", pm2_self());
            assert_eq!(count, 1000);
            assert_eq!(sum, (0..1000i64).map(|j| j * 2 + 1).sum::<i64>());
        })
        .unwrap();

    println!("\n--- captured trace ---");
    for line in machine.output_lines() {
        println!("{line}");
    }
    machine.shutdown();
    println!("quickstart: OK");
}
