//! The full Figure 7/8/9 experiment: a 100,000-element `pm2_isomalloc`
//! linked list traversed across a migration, contrasted with the same list
//! on the node-private heap (`malloc`), whose data does NOT follow the
//! thread.
//!
//! ```sh
//! cargo run --release --example linked_list
//! ```

use std::time::Instant;

use pm2::api::*;
use pm2::{pm2_printf, Machine, Pm2Config};

const NB_ELEMENTS: usize = 100_000;

#[repr(C)]
struct Item {
    value: i32,
    next: *mut Item,
}

fn main() {
    let mut machine = Machine::launch(Pm2Config::new(2)).unwrap();

    // ---- example1: pm2_isomalloc (the paper's Fig. 7/8) -------------------
    machine
        .run_on(0, || {
            let t_build = Instant::now();
            let mut head: *mut Item = std::ptr::null_mut();
            for j in 0..NB_ELEMENTS {
                let ptr = pm2_isomalloc(std::mem::size_of::<Item>()).unwrap() as *mut Item;
                unsafe {
                    (*ptr).value = (j * 2 + 1) as i32;
                    (*ptr).next = head;
                }
                head = ptr;
            }
            pm2_printf!(
                "I am thread {:#x} (built {} elements in {:?})",
                pm2_self_tid(),
                NB_ELEMENTS,
                t_build.elapsed()
            );
            let mut j = 0usize;
            let mut ptr = head;
            let mut checksum: i64 = 0;
            while !ptr.is_null() {
                if j == 100 {
                    pm2_printf!("Initializing migration from node {}", pm2_self());
                    let t_mig = Instant::now();
                    pm2_migrate(1).unwrap();
                    pm2_printf!("Arrived at node {} after {:?}", pm2_self(), t_mig.elapsed());
                }
                unsafe {
                    if j < 3 || (99..103).contains(&j) || j == NB_ELEMENTS - 1 {
                        pm2_printf!("Element {} = {}", j, (*ptr).value);
                    }
                    checksum += (*ptr).value as i64;
                    ptr = (*ptr).next;
                }
                j += 1;
            }
            let expected: i64 = (0..NB_ELEMENTS as i64).map(|j| j * 2 + 1).sum();
            assert_eq!(j, NB_ELEMENTS);
            assert_eq!(checksum, expected);
            pm2_printf!("traversal complete: {} elements, checksum OK", j);
        })
        .unwrap();

    // ---- example2: plain malloc (the paper's Fig. 9) -----------------------
    machine
        .run_on(0, || {
            let mut head: *mut Item = std::ptr::null_mut();
            for j in 0..1000usize {
                let ptr = node_malloc(std::mem::size_of::<Item>()) as *mut Item;
                unsafe {
                    (*ptr).value = (j * 2 + 1) as i32;
                    (*ptr).next = head;
                }
                head = ptr;
            }
            pm2_printf!("malloc list built on node {}", pm2_self());
            pm2_migrate(1).unwrap();
            // The data did not follow: the values read back are garbage
            // (poison), and on a real cluster chasing ->next would fault.
            let garbage = unsafe { (*head).value };
            pm2_printf!("Element 0 after migration = {garbage}   <- garbage, like Fig. 9");
            assert_eq!(garbage, pm2::nodeheap::POISON_I32);
            assert!(
                !node_ptr_valid(head as *const u8),
                "runtime confirms: dereference would be invalid on a real cluster"
            );
            pm2_printf!(
                "(a real cluster would now segfault; the runtime flags the access instead)"
            );
        })
        .unwrap();

    println!("--- captured trace ---");
    for line in machine.output_lines() {
        println!("{line}");
    }
    machine.shutdown();
    println!("linked_list: OK");
}
