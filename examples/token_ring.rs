//! Token ring by migration: a single thread carries a token (in its own
//! stack!) around every node of the machine, measuring per-hop migration
//! latency — a miniature of the paper's §5 ping-pong experiment.
//!
//! ```sh
//! cargo run --release --example token_ring
//! ```

use std::time::Instant;

use pm2::api::*;
use pm2::{pm2_printf, Machine, NetProfile, Pm2Config};

const LAPS: usize = 50;

fn main() {
    for profile in [NetProfile::myrinet_bip(), NetProfile::instant()] {
        let nodes = 4;
        let mut machine = Machine::launch(Pm2Config::new(nodes).with_net(profile)).unwrap();

        let (hops, total_us) = machine
            .run_on(0, move || {
                // The token is plain stack data; it follows the thread.
                let mut token: u64 = 0;
                let t0 = Instant::now();
                let mut hops = 0usize;
                for _ in 0..LAPS {
                    for next in (0..nodes).cycle().skip(1).take(nodes) {
                        pm2_migrate(next % nodes).unwrap();
                        token = token.wrapping_add(pm2_self() as u64 + 1);
                        hops += 1;
                    }
                }
                let dt = t0.elapsed();
                pm2_printf!(
                    "token value {} after {} hops ({} laps of {} nodes)",
                    token,
                    hops,
                    LAPS,
                    nodes
                );
                (hops, dt.as_micros() as u64)
            })
            .unwrap();

        println!(
            "[{:>12}] {} hops in {} µs  →  {:.1} µs per migration \
             (paper: < 75 µs on BIP/Myrinet; Active Threads: 150 µs)",
            profile.name,
            hops,
            total_us,
            total_us as f64 / hops as f64
        );
        machine.shutdown();
    }
    println!("token_ring: OK");
}
