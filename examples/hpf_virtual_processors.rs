//! Virtual processors for a data-parallel computation — the use case the
//! paper comes from (§1: "Our interest in iso-address allocation and
//! migration stems from data-parallel compiling"; PM2 is the runtime of two
//! HPF compilers, and Perez'97 balances HPF programs "by migrating virtual
//! processors").
//!
//! Each *virtual processor* (VP) owns a block of a distributed array in
//! iso-address memory and runs a stencil-like iteration over it.  VPs are
//! ordinary Marcel threads: the load balancer migrates them between nodes
//! mid-computation, array block and all, without the VP code containing a
//! single migration-related line.
//!
//! ```sh
//! cargo run --release --example hpf_virtual_processors
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pm2::api::*;
use pm2::iso::IsoVec;
use pm2::loadbal::{start_balancer, BalancerConfig};
use pm2::{Machine, MachineMode, Pm2Config};

const VPS: usize = 16;
const BLOCK: usize = 4096; // array elements per virtual processor
const ITERATIONS: usize = 30;

fn main() {
    let mut machine = Machine::launch(Pm2Config::new(4).with_mode(MachineMode::Threaded)).unwrap();
    let balancer = start_balancer(
        &machine,
        BalancerConfig {
            period: Duration::from_millis(1),
            threshold: 1,
            max_moves_per_round: 8,
            ..BalancerConfig::default()
        },
    )
    .unwrap();

    let checksum = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    // An HPF-style BLOCK distribution would place VPs round-robin; we dump
    // them all on node 0 to force the balancer to do the distributing —
    // dynamic load balancing by VP migration.
    for vp in 0..VPS {
        let checksum = Arc::clone(&checksum);
        handles.push(
            machine
                .spawn_on(0, move || {
                    // The VP's block of the distributed array, in iso memory.
                    let mut a: IsoVec<f64> = IsoVec::with_capacity(BLOCK).unwrap();
                    for i in 0..BLOCK {
                        a.push((vp * BLOCK + i) as f64).unwrap();
                    }
                    // Jacobi-ish sweeps; VPs with higher rank do more work
                    // (irregularity ⇒ imbalance ⇒ migrations).
                    let sweeps = ITERATIONS * (1 + vp / 4);
                    for _ in 0..sweeps {
                        for i in 1..BLOCK - 1 {
                            let v = (a[i - 1] + 2.0 * a[i] + a[i + 1]) / 4.0;
                            a[i] = v;
                        }
                        pm2_yield(); // iteration boundary = migration point
                    }
                    // Fold the block into a machine-wide checksum.
                    let local: f64 = a.iter().sum();
                    checksum.fetch_add(local.to_bits() >> 20, Ordering::Relaxed);
                })
                .unwrap(),
        );
    }
    for h in handles {
        assert!(!machine.join(h).panicked);
    }
    let moves = balancer.moves();
    balancer.stop(&machine);

    println!(
        "{} virtual processors × {} elements, checksum {:#x}",
        VPS,
        BLOCK,
        checksum.load(Ordering::Relaxed)
    );
    println!("balancer migrated VPs {moves} times while they computed");
    let audit = machine.audit().unwrap();
    audit.check_partition().unwrap();
    println!("ownership audit clean");
    machine.shutdown();
    println!("hpf_virtual_processors: OK");
}
