//! Dynamic load balancing of an irregular application — the paper's
//! motivating use case (§1/§2): "a generic module implemented outside the
//! running application could balance the load by migrating the application
//! threads.  The threads are unaware of their being migrated."
//!
//! An irregular workload (tasks with wildly different costs, all spawned on
//! node 0) is spread across 4 nodes by the balancer daemon; each worker
//! carries its partial results in iso-address memory, so migration is
//! completely transparent to it.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pm2::api::*;
use pm2::iso::IsoVec;
use pm2::loadbal::{start_balancer, BalancerConfig};
use pm2::{Machine, MachineMode, Pm2Config};

const WORKERS: usize = 24;

fn main() {
    let mut machine = Machine::launch(Pm2Config::new(4).with_mode(MachineMode::Threaded)).unwrap();

    let balancer = start_balancer(
        &machine,
        BalancerConfig {
            period: Duration::from_millis(1),
            threshold: 1,
            max_moves_per_round: 8,
            ..BalancerConfig::default()
        },
    )
    .unwrap();

    let visited = Arc::new(Mutex::new(vec![0usize; 4]));
    let checksum = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for i in 0..WORKERS {
        let visited = Arc::clone(&visited);
        let checksum = Arc::clone(&checksum);
        handles.push(
            machine
                .spawn_on(0, move || {
                    // Irregular cost: worker i does (i+1)² units of work.
                    let rounds = (i + 1) * (i + 1) * 4;
                    // Partial results live in iso memory: they follow the
                    // worker wherever the balancer sends it.
                    let mut partials: IsoVec<u64> = IsoVec::new();
                    let mut acc: u64 = i as u64;
                    for r in 0..rounds {
                        acc = acc
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if r % 16 == 0 {
                            partials.push(acc).unwrap();
                        }
                        pm2_yield(); // scheduling point = migration point
                    }
                    let total: u64 = partials.iter().fold(0u64, |a, &b| a.wrapping_add(b));
                    checksum.fetch_add(
                        total.wrapping_mul(7).rotate_left(i as u32),
                        Ordering::Relaxed,
                    );
                    visited.lock().unwrap()[pm2_self()] += 1;
                })
                .unwrap(),
        );
    }

    for h in handles {
        assert!(!machine.join(h).panicked);
    }
    let moves = balancer.moves();
    balancer.stop(&machine);

    let per_node = visited.lock().unwrap().clone();
    println!("workers finished per node: {per_node:?}");
    println!("balancer ordered {moves} transparent migrations");
    println!("workload checksum: {:#x}", checksum.load(Ordering::Relaxed));
    assert_eq!(per_node.iter().sum::<usize>(), WORKERS);
    assert!(moves > 0, "the hot node must have been drained");

    let audit = machine.audit().unwrap();
    let summary = audit.check_partition().unwrap();
    println!(
        "final audit: {} slots node-owned, {} thread-owned — exclusive ownership holds",
        summary.node_owned, summary.thread_owned
    );
    machine.shutdown();
    println!("load_balancing: OK");
}
