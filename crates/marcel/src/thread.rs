//! Thread descriptors and stack slots.
//!
//! "A PM2 thread is an execution flow managing a set of resources, i.e. its
//! state descriptor and its private execution stack" (§2) — and, with
//! isomalloc, "a series of dynamically allocated sub-areas within the
//! iso-address area" (§3.2).  We make the first two literal: the descriptor
//! lives at a fixed offset inside the thread's **stack slot**, the stack
//! grows down from the slot's top, and the spawn closure is moved into the
//! slot as well.  Packing the thread's slots therefore captures the entire
//! thread; no state lives outside the iso-address area.
//!
//! ```text
//! slot base ─►┌─────────────────────────────┐
//!             │ SlotHeader (kind = Stack)   │ 64 B — chain links
//!             ├─────────────────────────────┤
//!             │ ThreadDescriptor            │ saved context, heap state,
//!             │                             │ registered pointers, …
//!             ├─────────────────────────────┤
//!             │ spawn closure (moved here)  │ variable, 16-aligned
//!             ├─────────────────────────────┤
//!             │ canary (8 B)                │ stack-overflow tripwire
//!             ├─────────────────────────────┤ ◄─ stack floor
//!             │            ▲                │
//!             │   stack (grows down)        │
//! slot top ──►└─────────────────────────────┘
//! ```

use crate::ctx::Context;
use isoaddr::VAddr;
use isomalloc::heap::IsoHeapState;
use isomalloc::layout::{SlotHeader, SlotKind, SLOT_HDR_SIZE, SLOT_MAGIC};

/// Descriptor magic.
pub const DESC_MAGIC: u64 = 0x4D41_5243_454C_0001; // "MARCEL", v1

/// Stack canary value.
pub const STACK_CANARY: u64 = 0xCAFE_F00D_DEAD_C0DE;

/// Maximum registered user pointers (legacy early-PM2 migration scheme).
pub const MAX_REGISTERED: usize = 16;

/// Peer-node entries tracked in the per-thread communication-affinity table.
///
/// Each thread counts messages it exchanges per remote node in a bounded
/// top-k table embedded in its descriptor (so the history migrates with the
/// thread).  Four entries cover every realistic RPC fan-out we model; a
/// thread chatting with more peers keeps its hottest four via the
/// space-saving replacement rule in [`ThreadDescriptor::record_affinity`].
pub const AFF_TOP_K: usize = 4;

/// Sentinel for an empty affinity-table slot.
pub const AFF_EMPTY: u32 = u32::MAX;

/// Thread life-cycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ThreadState {
    /// Runnable, waiting in a run queue.
    Ready = 1,
    /// Currently executing on its node's scheduler.
    Running = 2,
    /// Suspended, not in any run queue (waiting for an event).
    Blocked = 3,
    /// Finished; resources pending release.
    Exited = 4,
    /// Frozen and packed; exists only as a migration buffer in flight.
    Migrating = 5,
}

impl ThreadState {
    /// Decode from the raw descriptor field.
    pub fn from_u32(v: u32) -> Option<ThreadState> {
        match v {
            1 => Some(ThreadState::Ready),
            2 => Some(ThreadState::Running),
            3 => Some(ThreadState::Blocked),
            4 => Some(ThreadState::Exited),
            5 => Some(ThreadState::Migrating),
            _ => None,
        }
    }
}

/// Why a thread switched back to its scheduler.
pub mod switch_reason {
    /// Cooperative yield; requeue.
    pub const YIELD: u32 = 1;
    /// Thread body finished (or panicked); release resources.
    pub const EXIT: u32 = 2;
    /// `migrate_self(dest)`: pack and ship to `migrate_dest`.
    pub const MIGRATE_SELF: u32 = 3;
    /// Blocked; do not requeue until woken.
    pub const BLOCK: u32 = 4;
}

/// Descriptor flags.
pub mod flags {
    /// The thread may be migrated by third parties (preemptive migration).
    pub const MIGRATABLE: u32 = 1;
    /// The thread runs protocol work (migration, negotiation, LRPC
    /// service bodies, balancer daemons): it enqueues into the scheduler's
    /// control lane and is dispatched ahead of ordinary compute quanta, so
    /// a flood of application threads cannot starve the runtime's own
    /// request/reply exchanges.  The flag travels with the descriptor, so
    /// priority survives migration.
    pub const CONTROL: u32 = 2;
}

/// The thread descriptor.  Lives inside the stack slot; every pointer field
/// is an iso-address, so the descriptor survives migration verbatim.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct ThreadDescriptor {
    /// Must equal [`DESC_MAGIC`].
    pub magic: u64,
    /// Globally unique id: `home_node << 40 | counter`.
    pub tid: u64,
    /// [`ThreadState`] as u32.
    pub state: u32,
    /// [`switch_reason`] of the last switch-out.
    pub switch_reason: u32,
    /// Saved register context.
    pub ctx: Context,
    /// Base address of the stack slot (== address of its `SlotHeader`).
    pub stack_base: VAddr,
    /// Raw slots merged into the stack slot.
    pub stack_slots: usize,
    /// One past the highest stack address.
    pub stack_top: VAddr,
    /// Address of the stack canary word.
    pub canary_addr: VAddr,
    /// Monomorphized closure invoker: `unsafe extern "C" fn(*mut u8)`.
    pub entry_invoke: usize,
    /// Address of the moved-in closure value (inside this slot).
    pub entry_data: VAddr,
    /// Iso-address heap of the thread (slot chain head/tail live here).
    pub heap: IsoHeapState,
    /// Pending migration destination (−1 = none).  Set by `migrate_self` or
    /// by a third party requesting preemptive migration.
    pub migrate_dest: i64,
    /// Node that created the thread.
    pub home_node: u32,
    /// Node currently hosting the thread (updated on arrival).
    pub cur_node: u32,
    /// [`flags`] bits.
    pub flags: u32,
    /// Number of live registered pointers (legacy migration scheme).
    pub n_registered: u32,
    /// Addresses *of pointer variables* registered via the legacy
    /// `pm2_register_pointer` API (early-PM2 baseline, paper Fig. 3).
    pub registered: [VAddr; MAX_REGISTERED],
    /// Communication-affinity table keys: peer node ids this thread
    /// exchanges messages with ([`AFF_EMPTY`] = unused slot).
    pub aff_nodes: [u32; AFF_TOP_K],
    /// Message counts for the matching `aff_nodes` entry.  Decayed each
    /// balancer epoch so stale affinity fades.
    pub aff_msgs: [u32; AFF_TOP_K],
    /// Balancer epochs since this thread last migrated (`u32::MAX` = never
    /// migrated, so fresh threads are not cooldown-blocked).  Reset to 0 on
    /// migration arrival; saturating-incremented on each decay.
    pub aff_epoch: u32,
    /// Set to 1 if the thread body panicked.
    pub panicked: u32,
    /// Reserved.
    pub _pad: u32,
}

/// Offset of the descriptor inside the stack slot.
pub const DESC_OFFSET: usize = SLOT_HDR_SIZE;

/// Descriptor address for a stack slot based at `base`.
#[inline]
pub fn desc_addr(base: VAddr) -> VAddr {
    base + DESC_OFFSET
}

/// Stack-slot base for a descriptor address.
#[inline]
pub fn base_of_desc(desc: VAddr) -> VAddr {
    desc - DESC_OFFSET
}

impl ThreadDescriptor {
    /// Typed view of a descriptor address.
    ///
    /// # Safety
    /// `addr` must point at a live descriptor inside a mapped stack slot.
    pub unsafe fn from_addr<'a>(addr: VAddr) -> &'a mut ThreadDescriptor {
        let d = &mut *(addr as *mut ThreadDescriptor);
        debug_assert_eq!(
            d.magic, DESC_MAGIC,
            "descriptor magic mismatch at {addr:#x}"
        );
        d
    }

    /// Current state, decoded.
    pub fn thread_state(&self) -> ThreadState {
        ThreadState::from_u32(self.state).expect("corrupt thread state")
    }

    /// Is the canary intact?
    ///
    /// # Safety
    /// The stack slot must be mapped.
    pub unsafe fn canary_ok(&self) -> bool {
        (self.canary_addr as *const u64).read() == STACK_CANARY
    }

    /// Live stack bytes: from 128 bytes below the saved `rsp` (red-zone
    /// margin; switches are synchronous so nothing below rsp is live, but
    /// the margin is cheap insurance) up to the stack top.
    pub fn live_stack_range(&self) -> (VAddr, VAddr) {
        let lo = (self.ctx.rsp as usize)
            .saturating_sub(128)
            .max(self.canary_addr);
        (lo, self.stack_top)
    }

    /// Extent list for packing this thread's stack slot: the metadata
    /// prefix (slot header + descriptor + closure + canary) and the live
    /// stack.  Offsets are relative to the slot base.
    pub fn stack_extents(&self) -> Vec<(u32, u32)> {
        let meta_end = self.canary_addr + 8 - self.stack_base;
        let (live_lo, live_hi) = self.live_stack_range();
        let mut b = isomalloc::pack::ExtentBuilder::new();
        b.push(0, meta_end as u32);
        b.push(
            (live_lo - self.stack_base) as u32,
            (live_hi - live_lo) as u32,
        );
        b.finish()
    }

    /// Register a pointer variable for the legacy migration scheme.
    /// Returns a key for unregistering, or `None` if the table is full.
    pub fn register_pointer(&mut self, ptr_addr: VAddr) -> Option<u32> {
        let n = self.n_registered as usize;
        if n >= MAX_REGISTERED {
            return None;
        }
        self.registered[n] = ptr_addr;
        self.n_registered += 1;
        Some(n as u32)
    }

    /// Record one message exchanged with `node` in the affinity table.
    ///
    /// Bounded top-k with the *space-saving* replacement rule: an existing
    /// entry is incremented, an empty slot is claimed, and when the table is
    /// full the minimum-count entry is evicted and the newcomer inherits
    /// `min + 1` — an over-estimate, never an under-estimate, so genuinely
    /// chatty peers cannot be starved out of the table by churn.
    pub fn record_affinity(&mut self, node: u32) {
        let mut min_i = 0;
        let mut min_v = u32::MAX;
        for i in 0..AFF_TOP_K {
            if self.aff_nodes[i] == node {
                self.aff_msgs[i] = self.aff_msgs[i].saturating_add(1);
                return;
            }
            if self.aff_nodes[i] == AFF_EMPTY {
                self.aff_nodes[i] = node;
                self.aff_msgs[i] = 1;
                return;
            }
            if self.aff_msgs[i] < min_v {
                min_v = self.aff_msgs[i];
                min_i = i;
            }
        }
        self.aff_nodes[min_i] = node;
        self.aff_msgs[min_i] = min_v.saturating_add(1);
    }

    /// Decay the affinity counts by `shift` (counts >>= shift), clearing
    /// entries that reach zero, and advance the epochs-since-move clock.
    pub fn decay_affinity(&mut self, shift: u32) {
        for i in 0..AFF_TOP_K {
            if self.aff_nodes[i] == AFF_EMPTY {
                continue;
            }
            self.aff_msgs[i] >>= shift.min(31);
            if self.aff_msgs[i] == 0 {
                self.aff_nodes[i] = AFF_EMPTY;
            }
        }
        self.aff_epoch = self.aff_epoch.saturating_add(1);
    }

    /// Live `(peer_node, msgs)` affinity entries, unordered.
    pub fn affinity_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..AFF_TOP_K)
            .filter(|&i| self.aff_nodes[i] != AFF_EMPTY && self.aff_msgs[i] > 0)
            .map(|i| (self.aff_nodes[i], self.aff_msgs[i]))
    }

    /// Unregister a previously registered pointer by key.
    pub fn unregister_pointer(&mut self, key: u32) {
        let n = self.n_registered as usize;
        let k = key as usize;
        if k < n {
            self.registered[k] = self.registered[n - 1];
            self.registered[n - 1] = 0;
            self.n_registered -= 1;
        }
    }
}

/// Geometry computed when building a stack slot.
#[derive(Debug, Clone, Copy)]
pub struct StackLayout {
    /// Slot base.
    pub base: VAddr,
    /// Descriptor address.
    pub desc: VAddr,
    /// Closure area address.
    pub closure: VAddr,
    /// Canary address (stack floor − 8).
    pub canary: VAddr,
    /// Lowest usable stack address.
    pub stack_floor: VAddr,
    /// One past the highest stack address (16-aligned).
    pub stack_top: VAddr,
}

/// Compute the layout for a stack slot of `n_slots × slot_size` bytes with a
/// closure payload of `closure_size` bytes, or `None` if too little room for
/// a sane stack would remain.
pub fn stack_layout(
    base: VAddr,
    n_slots: usize,
    slot_size: usize,
    closure_size: usize,
) -> Option<StackLayout> {
    let desc = desc_addr(base);
    let closure = align16(desc + std::mem::size_of::<ThreadDescriptor>());
    let canary = align16(closure + closure_size);
    let stack_floor = canary + 8;
    let stack_top = (base + n_slots * slot_size) & !15;
    // Require at least 8 KiB of usable stack.
    if stack_top.checked_sub(stack_floor)? < 8 * 1024 {
        return None;
    }
    Some(StackLayout {
        base,
        desc,
        closure,
        canary,
        stack_floor,
        stack_top,
    })
}

#[inline]
fn align16(v: usize) -> usize {
    (v + 15) & !15
}

/// Initialize a stack slot: slot header, descriptor skeleton and canary.
/// The caller finishes the descriptor (context, entry, heap init).
///
/// # Safety
/// The slot memory must be mapped and exclusively owned.
pub unsafe fn init_stack_slot(
    layout: &StackLayout,
    first_slot: u64,
    n_slots: usize,
    tid: u64,
    home_node: u32,
) -> *mut ThreadDescriptor {
    let slot = layout.base as *mut SlotHeader;
    slot.write(SlotHeader {
        magic: SLOT_MAGIC,
        kind: SlotKind::Stack as u32,
        first_slot,
        n_slots: n_slots as u64,
        prev: 0,
        next: 0,
        free_head: 0,
        used_bytes: 0,
        free_blocks: 0,
    });
    (layout.canary as *mut u64).write(STACK_CANARY);
    let d = layout.desc as *mut ThreadDescriptor;
    d.write(ThreadDescriptor {
        magic: DESC_MAGIC,
        tid,
        state: ThreadState::Ready as u32,
        switch_reason: 0,
        ctx: Context::default(),
        stack_base: layout.base,
        stack_slots: n_slots,
        stack_top: layout.stack_top,
        canary_addr: layout.canary,
        entry_invoke: 0,
        entry_data: 0,
        heap: std::mem::zeroed(),
        migrate_dest: -1,
        home_node,
        cur_node: home_node,
        flags: flags::MIGRATABLE,
        n_registered: 0,
        registered: [0; MAX_REGISTERED],
        aff_nodes: [AFF_EMPTY; AFF_TOP_K],
        aff_msgs: [0; AFF_TOP_K],
        aff_epoch: u32::MAX,
        panicked: 0,
        _pad: 0,
    });
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_is_reasonably_small() {
        // Must leave ample stack room in a 64 KiB slot.
        assert!(std::mem::size_of::<ThreadDescriptor>() <= 512);
    }

    #[test]
    fn layout_geometry() {
        let l = stack_layout(0x10000, 1, 65536, 48).unwrap();
        assert_eq!(l.desc, 0x10000 + 64);
        assert_eq!(l.closure % 16, 0);
        assert!(l.canary >= l.closure + 48);
        assert_eq!(l.stack_floor, l.canary + 8);
        assert_eq!(l.stack_top, 0x20000);
        assert!(l.stack_top - l.stack_floor > 60 * 1024);
    }

    #[test]
    fn layout_rejects_tiny_slots() {
        // 16 KiB slot with a 12 KiB closure leaves < 8 KiB stack.
        assert!(stack_layout(0x10000, 1, 16384, 12 * 1024).is_none());
        // But a plain 16 KiB slot is fine.
        assert!(stack_layout(0x10000, 1, 16384, 0).is_some());
    }

    #[test]
    fn register_unregister_pointers() {
        let mut d: ThreadDescriptor = unsafe { std::mem::zeroed() };
        let k0 = d.register_pointer(0x1000).unwrap();
        let _k1 = d.register_pointer(0x2000).unwrap();
        assert_eq!(d.n_registered, 2);
        d.unregister_pointer(k0);
        assert_eq!(d.n_registered, 1);
        assert_eq!(d.registered[0], 0x2000, "swap-remove keeps the table dense");
        for i in 0..MAX_REGISTERED {
            d.register_pointer(0x3000 + i);
        }
        assert_eq!(d.n_registered as usize, MAX_REGISTERED);
        assert!(d.register_pointer(0x9999).is_none(), "table full");
    }

    fn blank_affinity() -> ThreadDescriptor {
        let mut d: ThreadDescriptor = unsafe { std::mem::zeroed() };
        d.aff_nodes = [AFF_EMPTY; AFF_TOP_K];
        d.aff_epoch = u32::MAX;
        d
    }

    #[test]
    fn affinity_counts_and_evicts_minimum() {
        let mut d = blank_affinity();
        for _ in 0..5 {
            d.record_affinity(1);
        }
        d.record_affinity(2);
        d.record_affinity(3);
        d.record_affinity(4);
        let mut edges: Vec<_> = d.affinity_edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 5), (2, 1), (3, 1), (4, 1)]);
        // Table full: a newcomer evicts a min-count entry and inherits
        // min + 1 (space-saving over-estimate).
        d.record_affinity(9);
        let edges: Vec<_> = d.affinity_edges().collect();
        assert_eq!(edges.len(), AFF_TOP_K);
        assert!(edges.contains(&(9, 2)), "{edges:?}");
        assert!(edges.contains(&(1, 5)), "hot peer must survive: {edges:?}");
    }

    #[test]
    fn affinity_decay_fades_and_clears() {
        let mut d = blank_affinity();
        for _ in 0..8 {
            d.record_affinity(1);
        }
        d.record_affinity(2);
        d.decay_affinity(1);
        let mut edges: Vec<_> = d.affinity_edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 4)], "count-1 entry decays to empty");
        // Epoch clock: never-migrated sentinel saturates, arrival reset ticks.
        assert_eq!(d.aff_epoch, u32::MAX);
        d.aff_epoch = 0;
        d.decay_affinity(1);
        d.decay_affinity(1);
        assert_eq!(d.aff_epoch, 2);
        assert_eq!(d.affinity_edges().count(), 1);
        d.decay_affinity(31);
        assert_eq!(d.affinity_edges().count(), 0, "deep decay clears all");
    }

    #[test]
    fn stack_extents_cover_meta_and_live_stack() {
        let mut d: ThreadDescriptor = unsafe { std::mem::zeroed() };
        d.stack_base = 0x100000;
        d.stack_slots = 1;
        d.stack_top = 0x110000;
        d.canary_addr = 0x100300;
        d.ctx.rsp = 0x10F000;
        let ext = d.stack_extents();
        assert_eq!(ext.len(), 2);
        assert_eq!(ext[0], (0, 0x308));
        // live lo = rsp - 128 relative to base.
        assert_eq!(ext[1].0, 0xF000 - 128);
        assert_eq!(ext[1].1 as usize, 0x10000 - (0xF000 - 128));
    }

    #[test]
    fn deep_stack_extents_merge_into_one() {
        // If rsp sank below the metadata the two extents must merge.
        let mut d: ThreadDescriptor = unsafe { std::mem::zeroed() };
        d.stack_base = 0x100000;
        d.stack_top = 0x110000;
        d.canary_addr = 0x100300;
        d.ctx.rsp = 0x100310; // 8 bytes above the floor
        let ext = d.stack_extents();
        assert_eq!(ext.len(), 1, "{ext:?}");
        assert_eq!(ext[0], (0, 0x10000));
    }
}
