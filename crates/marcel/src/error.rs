//! Thread-substrate errors.

use std::fmt;

/// Errors while creating a Marcel thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnError {
    /// The slot provider could not supply a stack slot.
    Provider(isoaddr::IsoAddrError),
    /// The spawn closure is too large to embed in a stack slot.
    ClosureTooLarge(usize),
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::Provider(e) => write!(f, "cannot acquire stack slot: {e}"),
            SpawnError::ClosureTooLarge(n) => {
                write!(f, "spawn closure of {n} bytes cannot fit in a stack slot")
            }
        }
    }
}

impl std::error::Error for SpawnError {}
