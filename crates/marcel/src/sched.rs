//! Per-node cooperative scheduler.
//!
//! Each node runs one scheduler.  The scheduler's own context lives on the
//! OS thread's stack; Marcel threads live on iso-slot stacks and are entered
//! and left via `marcel_ctx_switch`.  One [`Scheduler::run_one`] call runs
//! one thread until it yields, blocks, exits, or asks to migrate, and tells
//! the embedder (the PM2 node runtime) what happened — the embedder owns
//! all slot/network side effects, the scheduler owns only the run queue.
//!
//! ## Aliasing discipline
//!
//! While a Marcel thread runs, the *same* scheduler state is reachable from
//! the embedder's `run_one` frame and from the thread (through the
//! OS-thread-local pointer).  All shared state therefore sits behind an
//! `UnsafeCell`, all cross-switch accesses go through raw pointers, and —
//! crucially — **nothing is cached across `marcel_ctx_switch`**: a thread
//! resumed after migration is on a different OS thread whose TLS points at
//! a different node's scheduler, so every API call re-reads TLS (the
//! accessors are `#[inline(never)]` to pin that down).

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;

use isoaddr::SlotProvider;

use crate::ctx::{marcel_ctx_switch, prepare_initial_context, Context};
use crate::error::SpawnError;
use crate::thread::{
    self, init_stack_slot, stack_layout, switch_reason, ThreadDescriptor, ThreadState,
};

/// Raw pointer to a thread descriptor (always inside a mapped stack slot).
pub type DescPtr = *mut ThreadDescriptor;

thread_local! {
    static CURRENT_SCHED: Cell<*mut SchedInner> = const { Cell::new(std::ptr::null_mut()) };
}

/// What a completed [`Scheduler::run_one`] step observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Thread yielded; requeue it (the scheduler does *not* do so itself, so
    /// the embedder may interleave message pumping fairly).
    Yielded(DescPtr),
    /// Thread finished; release its resources.
    Exited(DescPtr),
    /// Thread called `migrate_self(dest)`: pack and ship it.
    MigrateSelf(DescPtr, usize),
    /// A third party flagged this thread for migration while it was ready;
    /// it has *not* been run.  Pack and ship it (preemptive migration, §2).
    PreemptMigrate(DescPtr, usize),
    /// Thread blocked; re-enqueue only after `unblock`.
    Blocked(DescPtr),
}

/// Consecutive control-lane dispatches before one run-queue quantum is
/// interleaved.  Control work overtakes compute floods, but a control
/// thread stuck in a poll+yield wait (a balancer daemon waiting for
/// replies that *compute threads* must help generate) cannot livelock the
/// node: the normal lane always progresses at ≥ 1/(CTL_BURST+1) speed.
const CTL_BURST: u32 = 4;

struct SchedInner {
    node: usize,
    /// Control lane: threads flagged [`thread::flags::CONTROL`] (protocol
    /// handlers).  Dispatched before the run queue, in bursts of
    /// [`CTL_BURST`], so a flood of compute quanta cannot starve
    /// migration/negotiation exchanges — and vice versa.
    ctl_queue: VecDeque<DescPtr>,
    run_queue: VecDeque<DescPtr>,
    /// Control dispatches since the last run-queue dispatch.
    ctl_streak: u32,
    current: DescPtr,
    sched_ctx: Context,
    tid_counter: u64,
    resident: usize,
}

impl SchedInner {
    /// Enqueue into the lane the descriptor's flags select.
    ///
    /// # Safety
    /// `d` must be a live descriptor owned by this scheduler's node.
    unsafe fn enqueue(&mut self, d: DescPtr) {
        if (*d).flags & thread::flags::CONTROL != 0 {
            self.ctl_queue.push_back(d);
        } else {
            self.run_queue.push_back(d);
        }
    }
}

/// A per-node scheduler.  Owns no threads' memory — descriptors live in
/// their stack slots; the scheduler only queues pointers to them.
pub struct Scheduler {
    inner: Box<UnsafeCell<SchedInner>>,
}

// SAFETY: a Scheduler is driven by exactly one OS thread at a time (the
// node's), which the embedder guarantees; descriptors it queues are only
// touched by that thread.
unsafe impl Send for Scheduler {}

impl Scheduler {
    /// Create the scheduler for `node`.
    pub fn new(node: usize) -> Scheduler {
        Scheduler {
            inner: Box::new(UnsafeCell::new(SchedInner {
                node,
                ctl_queue: VecDeque::new(),
                run_queue: VecDeque::new(),
                ctl_streak: 0,
                current: std::ptr::null_mut(),
                sched_ctx: Context::default(),
                tid_counter: 0,
                resident: 0,
            })),
        }
    }

    fn ptr(&self) -> *mut SchedInner {
        self.inner.get()
    }

    /// Bind this scheduler to the calling OS thread.  Must be called by the
    /// driving thread before `run_one`, and again whenever the driving
    /// thread switches between schedulers (deterministic single-thread mode).
    pub fn activate(&self) {
        CURRENT_SCHED.with(|c| c.set(self.ptr()));
    }

    /// Node id.
    pub fn node(&self) -> usize {
        unsafe { (*self.ptr()).node }
    }

    /// Number of runnable threads queued (both lanes).
    pub fn queue_len(&self) -> usize {
        unsafe {
            let inner = &*self.ptr();
            inner.ctl_queue.len() + inner.run_queue.len()
        }
    }

    /// Is any thread ready to run?  The embedder's driver consults this
    /// before parking: parking is only safe when the scheduler is idle
    /// (`!has_ready()`) *and* the message inbox is drained.
    pub fn has_ready(&self) -> bool {
        unsafe {
            let inner = &*self.ptr();
            !inner.ctl_queue.is_empty() || !inner.run_queue.is_empty()
        }
    }

    /// Number of threads resident on this node (queued + running + blocked).
    pub fn resident(&self) -> usize {
        unsafe { (*self.ptr()).resident }
    }

    /// Allocate a fresh thread id.
    pub fn next_tid(&self) -> u64 {
        unsafe {
            let inner = &mut *self.ptr();
            inner.tid_counter += 1;
            ((inner.node as u64) << 40) | inner.tid_counter
        }
    }

    /// Spawn a thread executing `f`.  The closure value is *moved into the
    /// thread's stack slot*, so the whole thread — descriptor, closure and
    /// stack — lives in iso-address memory and can migrate.
    ///
    /// The paper's point that "thread creation is a local operation …
    /// since a single slot is required" (§4.1) holds whenever the closure
    /// fits; enormous closures fall back to a multi-slot stack.
    pub fn spawn<F>(&self, provider: &mut dyn SlotProvider, f: F) -> Result<DescPtr, SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = self.next_tid();
        self.spawn_with_tid(provider, tid, f)
    }

    /// [`Scheduler::spawn`] with an externally assigned thread id (used for
    /// host-initiated spawns, whose ids are allocated by the machine).
    pub fn spawn_with_tid<F>(
        &self,
        provider: &mut dyn SlotProvider,
        tid: u64,
        f: F,
    ) -> Result<DescPtr, SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        self.spawn_with_tid_flags(provider, tid, 0, f)
    }

    /// [`Scheduler::spawn_with_tid`] with extra descriptor flags OR-ed in
    /// at birth — pass [`thread::flags::CONTROL`] to start the thread in
    /// the control lane from its very first quantum (protocol handlers
    /// must not wait behind a backlog of compute threads even once).
    pub fn spawn_with_tid_flags<F>(
        &self,
        provider: &mut dyn SlotProvider,
        tid: u64,
        extra_flags: u32,
        f: F,
    ) -> Result<DescPtr, SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        let slot_size = provider.slot_size();
        let closure_size = std::mem::size_of::<F>();
        debug_assert!(std::mem::align_of::<F>() <= 16, "closure over-aligned");
        // Smallest n for which the layout leaves a sane stack.
        let mut n = 1usize;
        while stack_layout(0, n, slot_size, closure_size).is_none() {
            n += 1;
            if n > 1024 {
                return Err(SpawnError::ClosureTooLarge(closure_size));
            }
        }
        let base = provider.acquire_slots(n).map_err(SpawnError::Provider)?;
        let layout = stack_layout(base, n, slot_size, closure_size)
            .expect("layout feasibility is base-independent");
        let first_slot = (base - provider.area_base()) / slot_size;
        unsafe {
            let inner = &mut *self.ptr();
            let d = init_stack_slot(&layout, first_slot as u64, n, tid, inner.node as u32);
            isomalloc::heap::heap_init(&mut (*d).heap, isomalloc::FitPolicy::FirstFit, true);
            // Move the closure into the slot and record its invoker.
            std::ptr::write(layout.closure as *mut F, f);
            (*d).entry_data = layout.closure;
            (*d).entry_invoke = invoke_closure::<F> as unsafe fn(*mut u8) as usize;
            (*d).ctx = prepare_initial_context(layout.stack_top, d as usize);
            (*d).flags |= extra_flags;
            inner.enqueue(d);
            inner.resident += 1;
            Ok(d)
        }
    }

    /// Enqueue a thread that yielded or was woken.
    ///
    /// # Safety
    /// `d` must be a live, Ready descriptor resident on this scheduler's
    /// node (returned by a previous [`RunOutcome::Yielded`]).
    pub unsafe fn requeue(&self, d: DescPtr) {
        debug_assert_eq!((*d).thread_state(), ThreadState::Ready);
        (*self.ptr()).enqueue(d);
    }

    /// Wake a blocked thread.
    ///
    /// # Safety
    /// `d` must be a live, Blocked descriptor resident on this scheduler's
    /// node (returned by a previous [`RunOutcome::Blocked`]).
    pub unsafe fn unblock(&self, d: DescPtr) {
        debug_assert_eq!((*d).thread_state(), ThreadState::Blocked);
        (*d).state = ThreadState::Ready as u32;
        (*self.ptr()).enqueue(d);
    }

    /// Adopt a thread that just arrived by migration: its slots are mapped
    /// and unpacked; mark it resident and runnable here.
    ///
    /// # Safety
    /// `d` must point at a fully unpacked descriptor whose slots are mapped
    /// on this node.
    pub unsafe fn adopt_arrival(&self, d: DescPtr) {
        self.adopt_arrivals(&[d]);
    }

    /// Adopt a whole migration *train* in one scheduler-state acquisition:
    /// every descriptor is marked resident and enqueued under a single
    /// exclusive borrow, so a k-thread arrival costs one state entry, not k.
    ///
    /// # Safety
    /// Every pointer must reference a fully unpacked descriptor whose slots
    /// are mapped on this node.
    pub unsafe fn adopt_arrivals(&self, ds: &[DescPtr]) {
        let inner = &mut *self.ptr();
        for &d in ds {
            (*d).state = ThreadState::Ready as u32;
            (*d).cur_node = inner.node as u32;
            (*d).migrate_dest = -1;
            // The CONTROL flag migrated with the descriptor: an arriving
            // protocol handler keeps its lane.
            inner.enqueue(d);
            inner.resident += 1;
        }
    }

    /// Pull every *ready* thread currently flagged for preemptive migration
    /// out of both lanes (up to `max` of them), returning `(descriptor,
    /// destination)` pairs in queue order.  None of them has been run since
    /// being flagged — exactly the [`RunOutcome::PreemptMigrate`] contract.
    ///
    /// This is the group-migration sweep: when one departure is already
    /// being packed, the embedder collects every other thread bound for the
    /// wire in the same drain and ships same-destination ones as a single
    /// message (a *train*) instead of paying per-thread message latency.
    pub fn take_migrating(&self, max: usize) -> Vec<(DescPtr, usize)> {
        let mut out = Vec::new();
        unsafe {
            let inner = &mut *self.ptr();
            for q in [&mut inner.ctl_queue, &mut inner.run_queue] {
                q.retain(|&d| {
                    if out.len() < max && (*d).migrate_dest >= 0 {
                        out.push((d, (*d).migrate_dest as usize));
                        false
                    } else {
                        true
                    }
                });
            }
        }
        out
    }

    /// Account a thread leaving this node (migration departure or exit).
    pub fn note_gone(&self) {
        unsafe {
            let inner = &mut *self.ptr();
            inner.resident -= 1;
        }
    }

    /// Run the next ready thread until it switches back.  Returns `None`
    /// when the run queue is empty (the embedder then pumps the network or
    /// parks).
    pub fn run_one(&self) -> Option<RunOutcome> {
        let inner = self.ptr();
        unsafe {
            // Control lane first, in bounded bursts: protocol handlers
            // overtake compute quanta, but a poll-yielding control thread
            // can never monopolize the node (see CTL_BURST).
            let take_ctl = !(*inner).ctl_queue.is_empty()
                && ((*inner).run_queue.is_empty() || (*inner).ctl_streak < CTL_BURST);
            let d = if take_ctl {
                (*inner).ctl_streak += 1;
                (*inner).ctl_queue.pop_front()?
            } else {
                (*inner).ctl_streak = 0;
                (*inner).run_queue.pop_front()?
            };
            // Preemptive migration: a third party tagged the thread while it
            // was ready.  Ship it without running it — the thread itself
            // contains no migration code whatsoever (transparency, §2).
            if (*d).migrate_dest >= 0 {
                return Some(RunOutcome::PreemptMigrate(d, (*d).migrate_dest as usize));
            }
            (*d).state = ThreadState::Running as u32;
            (*inner).current = d;
            marcel_ctx_switch(
                std::ptr::addr_of_mut!((*inner).sched_ctx),
                std::ptr::addr_of!((*d).ctx),
            );
            (*inner).current = std::ptr::null_mut();
            debug_assert!((*d).canary_ok(), "stack overflow on tid {:#x}", (*d).tid);
            let outcome = match (*d).switch_reason {
                switch_reason::YIELD => {
                    (*d).state = ThreadState::Ready as u32;
                    if (*d).migrate_dest >= 0 {
                        RunOutcome::PreemptMigrate(d, (*d).migrate_dest as usize)
                    } else {
                        RunOutcome::Yielded(d)
                    }
                }
                switch_reason::EXIT => {
                    (*d).state = ThreadState::Exited as u32;
                    RunOutcome::Exited(d)
                }
                switch_reason::MIGRATE_SELF => {
                    (*d).state = ThreadState::Migrating as u32;
                    RunOutcome::MigrateSelf(d, (*d).migrate_dest as usize)
                }
                switch_reason::BLOCK => {
                    (*d).state = ThreadState::Blocked as u32;
                    RunOutcome::Blocked(d)
                }
                r => unreachable!("corrupt switch reason {r}"),
            };
            Some(outcome)
        }
    }

    /// Request preemptive migration of `d` to `dest`.  Takes effect at the
    /// thread's next scheduling point; if the thread is currently ready it
    /// is shipped without running again.
    ///
    /// # Safety
    /// `d` must be resident on this scheduler's node.
    pub unsafe fn request_migration(&self, d: DescPtr, dest: usize) -> bool {
        if (*d).flags & thread::flags::MIGRATABLE == 0 {
            return false;
        }
        match (*d).thread_state() {
            ThreadState::Ready | ThreadState::Running => {
                (*d).migrate_dest = dest as i64;
                true
            }
            _ => false,
        }
    }
}

/// Release every resource of an exited or stillborn thread: its iso heap
/// slots and finally its stack slot, all to the node hosting `provider`
/// (Fig. 6 step 4: the *destination* node acquires the slots of a thread
/// that dies after migrating).
///
/// # Safety
/// `d` must be an exited (never-again-run) thread resident on the node that
/// owns `provider`; no references into its slots may survive this call.
pub unsafe fn release_thread_resources(
    d: DescPtr,
    provider: &mut dyn SlotProvider,
) -> Result<(), isomalloc::AllocError> {
    isomalloc::heap::heap_release_all(std::ptr::addr_of_mut!((*d).heap), provider)?;
    let base = (*d).stack_base;
    let n = (*d).stack_slots;
    // The descriptor lives in this slot: read everything needed first.
    provider.release_slots(base, n)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Green-side API (called from inside Marcel threads).
// ---------------------------------------------------------------------------

#[inline(never)]
fn cur_inner() -> *mut SchedInner {
    let p = CURRENT_SCHED.with(|c| c.get());
    assert!(
        !p.is_null(),
        "marcel API called outside a scheduler-driven thread"
    );
    p
}

/// Descriptor of the calling Marcel thread.
#[inline(never)]
pub fn current_desc() -> DescPtr {
    unsafe {
        let d = (*cur_inner()).current;
        assert!(
            !d.is_null(),
            "no Marcel thread is running on this OS thread"
        );
        d
    }
}

/// Node currently executing the caller.  Re-reads TLS on every call, so the
/// answer is correct immediately after a migration.
#[inline(never)]
pub fn current_node() -> usize {
    unsafe { (*cur_inner()).node }
}

/// Thread id of the caller.
pub fn current_tid() -> u64 {
    unsafe { (*current_desc()).tid }
}

unsafe fn switch_to_sched(reason: u32) {
    let d = current_desc();
    (*d).switch_reason = reason;
    let inner = cur_inner();
    marcel_ctx_switch(
        std::ptr::addr_of_mut!((*d).ctx),
        std::ptr::addr_of!((*inner).sched_ctx),
    );
    // Resumed — possibly on another node's OS thread.  `inner` is stale
    // here; nothing below may use it.
}

/// Cooperatively yield to the scheduler.
pub fn yield_now() {
    unsafe { switch_to_sched(switch_reason::YIELD) }
}

/// Terminate the calling thread.  Never returns.
pub fn exit_current() -> ! {
    unsafe {
        switch_to_sched(switch_reason::EXIT);
        unreachable!("exited thread resumed");
    }
}

/// Block the calling thread until someone calls [`Scheduler::unblock`].
pub fn block_current() {
    unsafe { switch_to_sched(switch_reason::BLOCK) }
}

/// Migrate the calling thread to `dest` (the engine behind `pm2_migrate`
/// with the caller as target).  Returns after the thread has been resumed on
/// the destination node; every pointer it holds is still valid because all
/// of its memory reappeared at the same virtual addresses.
pub fn migrate_self(dest: usize) {
    unsafe {
        let d = current_desc();
        if (*cur_inner()).node == dest {
            return; // already there — the paper treats this as a no-op
        }
        (*d).migrate_dest = dest as i64;
        switch_to_sched(switch_reason::MIGRATE_SELF);
        // Running again: we are on `dest` now.
    }
}

/// Entry point of every Marcel thread (reached via the asm trampoline).
///
/// # Safety
/// Called only by `marcel_thread_tramp` with a valid descriptor.
#[no_mangle]
unsafe extern "C" fn marcel_thread_entry(desc: *mut ThreadDescriptor) -> ! {
    let invoke: unsafe fn(*mut u8) = std::mem::transmute((*desc).entry_invoke);
    let data = (*desc).entry_data as *mut u8;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| invoke(data)));
    if result.is_err() {
        (*desc).panicked = 1;
    }
    exit_current()
}

unsafe fn invoke_closure<F: FnOnce()>(data: *mut u8) {
    // Move the closure out of the slot and run it.  After this read the
    // closure area is dead (it is still packed on migration, which is
    // harmless: it is part of the metadata prefix).
    let f = (data as *mut F).read();
    f()
}
