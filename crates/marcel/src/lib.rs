//! # marcel — the user-level thread substrate
//!
//! PM2's threads are provided by *Marcel*, a user-level thread library with
//! "very efficient primitives … creation, destruction and context
//! switching" (§2).  This crate rebuilds the parts the paper depends on:
//!
//! * threads whose **descriptor, stack and spawn closure all live inside an
//!   iso-address stack slot** (so a thread is exactly "a set of resources"
//!   that can be packed, shipped, and re-mapped at the same addresses);
//! * ~20-instruction x86-64 context switching ([`ctx`]);
//! * a per-node cooperative [`Scheduler`] that reports *why* each thread
//!   switched out — yield, exit, block, self-migration, or third-party
//!   (preemptive) migration — leaving all slot and network side effects to
//!   the embedding runtime.
//!
//! The crate is deliberately runtime-agnostic: `pm2` (the core crate) wires
//! schedulers to the slot managers and the Madeleine fabric; the tests here
//! drive schedulers by hand, including a complete two-node migration at the
//! substrate level.

pub mod ctx;
pub mod error;
pub mod sched;
pub mod thread;

pub use ctx::Context;
pub use error::SpawnError;
pub use sched::{
    block_current, current_desc, current_node, current_tid, exit_current, migrate_self,
    release_thread_resources, yield_now, DescPtr, RunOutcome, Scheduler,
};
pub use thread::{
    desc_addr, stack_layout, ThreadDescriptor, ThreadState, AFF_EMPTY, AFF_TOP_K, DESC_MAGIC,
    STACK_CANARY,
};

#[cfg(test)]
mod tests;
