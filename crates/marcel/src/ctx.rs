//! x86-64 SysV context switching.
//!
//! A context is the callee-saved register set plus the FP control words —
//! exactly what a synchronous function call is allowed to clobber-protect.
//! Switching is ~20 instructions; this is the mechanism behind PM2's "very
//! efficient primitives … creation, destruction and context switching" (§2).
//!
//! Migration interacts with contexts in one crucial way: the saved `rsp`,
//! `rbp` and every pointer spilled on the stack are *virtual addresses into
//! the thread's stack slot*.  Because the iso-address discipline recreates
//! the slot at the same address on the destination node, a saved context is
//! resumable after migration **with no fix-up whatsoever** — switching into
//! it simply returns into the migrated stack.

#![allow(clippy::missing_safety_doc)]

/// Saved execution context (callee-saved registers + FP control state).
///
/// Field offsets are hard-coded in the assembly below — keep in sync.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct Context {
    /// Stack pointer; points at the return address to resume at.
    pub rsp: u64, // 0x00
    /// Frame pointer.
    pub rbp: u64, // 0x08
    pub rbx: u64, // 0x10
    pub r12: u64, // 0x18
    pub r13: u64, // 0x20
    pub r14: u64, // 0x28
    pub r15: u64, // 0x30
    /// SSE control/status register (rounding mode etc. are callee-saved).
    pub mxcsr: u32, // 0x38
    /// x87 FPU control word.
    pub fcw: u16, // 0x3c
    pub _pad: u16,
}

const _: () = assert!(std::mem::size_of::<Context>() == 0x40);

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
std::arch::global_asm!(
    r#"
    .text
    .globl marcel_ctx_switch
    .p2align 4
    // fn marcel_ctx_switch(save: *mut Context [rdi], restore: *const Context [rsi])
    marcel_ctx_switch:
        mov [rdi + 0x00], rsp
        mov [rdi + 0x08], rbp
        mov [rdi + 0x10], rbx
        mov [rdi + 0x18], r12
        mov [rdi + 0x20], r13
        mov [rdi + 0x28], r14
        mov [rdi + 0x30], r15
        stmxcsr [rdi + 0x38]
        fnstcw  [rdi + 0x3c]
        mov rsp, [rsi + 0x00]
        mov rbp, [rsi + 0x08]
        mov rbx, [rsi + 0x10]
        mov r12, [rsi + 0x18]
        mov r13, [rsi + 0x20]
        mov r14, [rsi + 0x28]
        mov r15, [rsi + 0x30]
        ldmxcsr [rsi + 0x38]
        fldcw   [rsi + 0x3c]
        ret

    .globl marcel_thread_tramp
    .p2align 4
    // First activation target of a fresh thread.  The spawner parks the
    // descriptor pointer in r12 (callee-saved, so marcel_ctx_switch restores
    // it); we move it to rdi and enter Rust.  marcel_thread_entry never
    // returns.
    marcel_thread_tramp:
        mov rdi, r12
        // Entered with rsp ≡ 8 (mod 16), like any function.  Realign so the
        // callee is entered with standard alignment (rsp ≡ 8 after its own
        // return address is pushed); marcel_thread_entry never returns.
        sub rsp, 8
        call marcel_thread_entry
        ud2
"#
);

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
extern "C" {
    /// Save the current context into `save` and resume `restore`.
    ///
    /// Returns when something later switches back into `save` — possibly on
    /// a different OS thread and, after a migration, a different node.
    pub fn marcel_ctx_switch(save: *mut Context, restore: *const Context);
    /// Assembly trampoline; never called from Rust directly.
    pub fn marcel_thread_tramp();
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
compile_error!(
    "marcel's context switching is implemented for x86-64 Linux only \
     (the platform of this reproduction, mirroring the paper's PentiumPro/Linux cluster)"
);

/// Current MXCSR value (so spawned threads inherit FP behaviour).
#[inline]
pub fn current_mxcsr() -> u32 {
    let mut v: u32 = 0;
    // SAFETY: stmxcsr only writes CPU control state into our local.
    unsafe { std::arch::asm!("stmxcsr [{}]", in(reg) &mut v, options(nostack)) };
    v
}

/// Default x87 control word (64-bit precision, round-to-nearest, masked
/// exceptions) — what the SysV ABI mandates at function entry.
pub const DEFAULT_FCW: u16 = 0x037F;

/// Prepare a fresh context that, when first switched into, enters
/// `marcel_thread_tramp` with `desc` in `r12` on the given stack.
///
/// `stack_top` must be 16-byte aligned; the top 16 bytes are consumed.
pub fn prepare_initial_context(stack_top: usize, desc: usize) -> Context {
    assert_eq!(stack_top % 16, 0, "stack top must be 16-byte aligned");
    // After `ret` pops the trampoline address, rsp ≡ 8 (mod 16) — the
    // standard alignment at function entry (as if reached by `call`).
    let rsp = stack_top - 16;
    // SAFETY: the caller guarantees the stack memory is mapped and owned.
    unsafe {
        (rsp as *mut u64).write(marcel_thread_tramp as unsafe extern "C" fn() as usize as u64);
    }
    Context {
        rsp: rsp as u64,
        rbp: 0,
        rbx: 0,
        r12: desc as u64,
        r13: 0,
        r14: 0,
        r15: 0,
        mxcsr: current_mxcsr(),
        fcw: DEFAULT_FCW,
        _pad: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A self-contained ping-pong between a host context and a coroutine on a
    // plain heap stack, exercising the raw switch mechanics without any
    // scheduler.
    static mut HOST: Context = Context {
        rsp: 0,
        rbp: 0,
        rbx: 0,
        r12: 0,
        r13: 0,
        r14: 0,
        r15: 0,
        mxcsr: 0,
        fcw: 0,
        _pad: 0,
    };
    static mut CORO: Context = HostInit::ZERO;
    static mut TRACE: u64 = 0;

    struct HostInit;
    impl HostInit {
        const ZERO: Context = Context {
            rsp: 0,
            rbp: 0,
            rbx: 0,
            r12: 0,
            r13: 0,
            r14: 0,
            r15: 0,
            mxcsr: 0,
            fcw: 0,
            _pad: 0,
        };
    }

    unsafe extern "C" fn coro_body(arg: u64) -> ! {
        (&raw mut TRACE).write((&raw const TRACE).read() * 10 + arg);
        marcel_ctx_switch(&raw mut CORO, &raw const HOST);
        (&raw mut TRACE).write((&raw const TRACE).read() * 10 + 7);
        marcel_ctx_switch(&raw mut CORO, &raw const HOST);
        unreachable!("coroutine resumed after final switch-out");
    }

    // Hand-rolled trampoline for this test: r12 carries the argument, enter
    // coro_body.
    std::arch::global_asm!(
        r#"
        .text
        .globl marcel_test_tramp
        marcel_test_tramp:
            mov rdi, r12
            sub rsp, 8
            call {body}
            ud2
    "#,
        body = sym coro_body
    );
    extern "C" {
        fn marcel_test_tramp();
    }

    #[test]
    fn raw_switch_roundtrip() {
        // 64 KiB heap stack, 16-aligned top.
        let mut stack = vec![0u8; 64 * 1024];
        let top = (stack.as_mut_ptr() as usize + stack.len()) & !15;
        unsafe {
            let rsp = top - 16;
            (rsp as *mut u64).write(marcel_test_tramp as unsafe extern "C" fn() as usize as u64);
            (&raw mut CORO).write(Context {
                rsp: rsp as u64,
                r12: 3,
                mxcsr: current_mxcsr(),
                fcw: DEFAULT_FCW,
                ..HostInit::ZERO
            });
            (&raw mut TRACE).write(0);
            marcel_ctx_switch(&raw mut HOST, &raw const CORO);
            assert_eq!(
                (&raw const TRACE).read(),
                3,
                "first leg runs up to the switch-back"
            );
            (&raw mut TRACE).write((&raw const TRACE).read() * 10 + 5);
            marcel_ctx_switch(&raw mut HOST, &raw const CORO);
            assert_eq!(
                (&raw const TRACE).read(),
                357,
                "host and coroutine interleave"
            );
        }
    }

    #[test]
    fn initial_context_alignment() {
        let mut stack = vec![0u8; 4096];
        let top = (stack.as_mut_ptr() as usize + stack.len()) & !15;
        let ctx = prepare_initial_context(top, 0x1234);
        assert_eq!(ctx.rsp % 16, 0);
        assert_eq!(ctx.r12, 0x1234);
        unsafe {
            assert_eq!(
                (ctx.rsp as *const u64).read(),
                marcel_thread_tramp as unsafe extern "C" fn() as usize as u64
            );
        }
    }
}
