//! Substrate-level tests, culminating in a complete two-node thread
//! migration driven by hand (the preview of what the `pm2` runtime does).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use isoaddr::{AreaConfig, Distribution, IsoArea, NodeSlotManager, SlotProvider, SlotRange};
use isomalloc::layout::SlotKind;
use isomalloc::pack::{pack_heap_slot, pack_raw_extents, peek_header, unpack_into_mapped};

use crate::sched::{RunOutcome, Scheduler};
use crate::thread::desc_addr;
use crate::{current_node, current_tid, migrate_self, yield_now, DescPtr};

fn rig(nodes: usize) -> (Arc<IsoArea>, Vec<NodeSlotManager>) {
    let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
    let mgrs = (0..nodes)
        .map(|n| NodeSlotManager::new(n, nodes, Arc::clone(&area), Distribution::RoundRobin, 0))
        .collect();
    (area, mgrs)
}

/// Drive a scheduler until its queue drains, requeuing yields and releasing
/// exited threads.
fn drive(s: &Scheduler, m: &mut NodeSlotManager) {
    s.activate();
    while let Some(outcome) = s.run_one() {
        match outcome {
            RunOutcome::Yielded(d) => unsafe { s.requeue(d) },
            RunOutcome::Exited(d) => unsafe {
                s.note_gone();
                crate::release_thread_resources(d, m).unwrap();
            },
            other => panic!("unexpected outcome in drive(): {other:?}"),
        }
    }
}

#[test]
fn spawn_runs_to_completion() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let ran = Arc::new(AtomicUsize::new(0));
    let ran2 = Arc::clone(&ran);
    s.spawn(&mut mgrs[0], move || {
        ran2.store(41 + 1, Ordering::SeqCst);
    })
    .unwrap();
    drive(&s, &mut mgrs[0]);
    assert_eq!(ran.load(Ordering::SeqCst), 42);
    assert_eq!(s.resident(), 0);
}

#[test]
fn stack_slot_is_released_on_exit() {
    let (area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    s.spawn(&mut mgrs[0], || {}).unwrap();
    assert_eq!(
        area.committed_slots(),
        1,
        "stack slot mapped while thread lives"
    );
    drive(&s, &mut mgrs[0]);
    assert_eq!(area.committed_slots(), 0, "stack slot unmapped after exit");
    assert_eq!(mgrs[0].owned_free_slots(), 64);
}

#[test]
fn closure_captures_move_into_slot() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let out = Arc::new(Mutex::new(String::new()));
    let out2 = Arc::clone(&out);
    let payload = vec![7u8; 3000]; // bigger than the descriptor, still fits
    let text = String::from("moved into the slot");
    s.spawn(&mut mgrs[0], move || {
        assert!(payload.iter().all(|&b| b == 7));
        out2.lock().unwrap().push_str(&text);
    })
    .unwrap();
    drive(&s, &mut mgrs[0]);
    assert_eq!(&*out.lock().unwrap(), "moved into the slot");
}

#[test]
fn yields_interleave_round_robin() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let log = Arc::new(Mutex::new(Vec::new()));
    for id in 0..3u32 {
        let log = Arc::clone(&log);
        s.spawn(&mut mgrs[0], move || {
            for round in 0..3u32 {
                log.lock().unwrap().push((round, id));
                yield_now();
            }
        })
        .unwrap();
    }
    drive(&s, &mut mgrs[0]);
    let log = log.lock().unwrap();
    assert_eq!(
        *log,
        vec![
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 1),
            (2, 2)
        ],
        "cooperative round-robin order"
    );
}

#[test]
fn many_threads() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let sum = Arc::new(AtomicUsize::new(0));
    // 40 threads in a 64-slot area (each consumes one stack slot while live).
    for i in 0..40usize {
        let sum = Arc::clone(&sum);
        s.spawn(&mut mgrs[0], move || {
            yield_now();
            sum.fetch_add(i, Ordering::SeqCst);
        })
        .unwrap();
    }
    drive(&s, &mut mgrs[0]);
    assert_eq!(sum.load(Ordering::SeqCst), (0..40).sum());
}

#[test]
fn thread_ids_are_unique_and_tagged_with_home_node() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let tids = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..5 {
        let tids = Arc::clone(&tids);
        s.spawn(&mut mgrs[0], move || {
            tids.lock().unwrap().push(current_tid());
        })
        .unwrap();
    }
    drive(&s, &mut mgrs[0]);
    let mut v = tids.lock().unwrap().clone();
    v.sort_unstable();
    v.dedup();
    assert_eq!(v.len(), 5);
}

#[test]
fn panic_in_thread_is_contained() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let after = Arc::new(AtomicUsize::new(0));
    let after2 = Arc::clone(&after);
    s.spawn(&mut mgrs[0], || {
        panic!("thread body panics");
    })
    .unwrap();
    s.spawn(&mut mgrs[0], move || {
        after2.store(1, Ordering::SeqCst);
    })
    .unwrap();
    s.activate();
    let mut saw_panicked = false;
    while let Some(outcome) = s.run_one() {
        match outcome {
            RunOutcome::Yielded(d) => unsafe { s.requeue(d) },
            RunOutcome::Exited(d) => unsafe {
                if (*d).panicked == 1 {
                    saw_panicked = true;
                }
                s.note_gone();
                crate::release_thread_resources(d, &mut mgrs[0]).unwrap();
            },
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(saw_panicked, "panicked flag must be set");
    assert_eq!(
        after.load(Ordering::SeqCst),
        1,
        "other threads keep running"
    );
}

#[test]
fn block_and_unblock() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let stage = Arc::new(AtomicUsize::new(0));
    let stage2 = Arc::clone(&stage);
    s.spawn(&mut mgrs[0], move || {
        stage2.store(1, Ordering::SeqCst);
        crate::block_current();
        stage2.store(2, Ordering::SeqCst);
    })
    .unwrap();
    s.activate();
    let RunOutcome::Blocked(d) = s.run_one().unwrap() else {
        panic!("expected block")
    };
    assert_eq!(stage.load(Ordering::SeqCst), 1);
    assert!(s.run_one().is_none(), "blocked thread must not be runnable");
    unsafe { s.unblock(d) };
    let RunOutcome::Exited(d) = s.run_one().unwrap() else {
        panic!("expected exit")
    };
    unsafe {
        s.note_gone();
        crate::release_thread_resources(d, &mut mgrs[0]).unwrap();
    }
    assert_eq!(stage.load(Ordering::SeqCst), 2);
}

#[test]
fn has_ready_tracks_both_lanes() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    assert!(!s.has_ready(), "fresh scheduler is idle");
    s.spawn(&mut mgrs[0], || {}).unwrap();
    assert!(s.has_ready());
    assert_eq!(s.queue_len(), 1);
    drive(&s, &mut mgrs[0]);
    assert!(!s.has_ready(), "drained scheduler is idle again");
    // A control-lane spawn flips it too.
    let tid = s.next_tid();
    s.spawn_with_tid_flags(&mut mgrs[0], tid, crate::thread::flags::CONTROL, || {})
        .unwrap();
    assert!(s.has_ready());
    assert_eq!(s.queue_len(), 1);
    drive(&s, &mut mgrs[0]);
}

#[test]
fn control_lane_overtakes_compute_quanta() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let log = Arc::new(Mutex::new(Vec::new()));
    // Three compute threads first…
    for id in 0..3u32 {
        let log = Arc::clone(&log);
        s.spawn(&mut mgrs[0], move || {
            log.lock().unwrap().push(format!("compute{id}"));
        })
        .unwrap();
    }
    // …then a control-priority handler, spawned last.
    let log2 = Arc::clone(&log);
    let tid = s.next_tid();
    s.spawn_with_tid_flags(
        &mut mgrs[0],
        tid,
        crate::thread::flags::CONTROL,
        move || {
            log2.lock().unwrap().push("control".into());
        },
    )
    .unwrap();
    drive(&s, &mut mgrs[0]);
    assert_eq!(
        log.lock().unwrap()[0],
        "control",
        "control lane dispatches before older compute threads"
    );
}

#[test]
fn control_flag_keeps_lane_across_requeues() {
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let log = Arc::new(Mutex::new(Vec::new()));
    let log_c = Arc::clone(&log);
    let tid = s.next_tid();
    s.spawn_with_tid_flags(
        &mut mgrs[0],
        tid,
        crate::thread::flags::CONTROL,
        move || {
            for round in 0..3u32 {
                log_c.lock().unwrap().push(format!("control{round}"));
                yield_now();
            }
        },
    )
    .unwrap();
    let log_n = Arc::clone(&log);
    s.spawn(&mut mgrs[0], move || {
        for round in 0..3u32 {
            log_n.lock().unwrap().push(format!("compute{round}"));
            yield_now();
        }
    })
    .unwrap();
    drive(&s, &mut mgrs[0]);
    let log = log.lock().unwrap();
    // Every control quantum lands before every compute quantum: the flag
    // re-selects the control lane on each requeue.
    assert_eq!(
        *log,
        vec!["control0", "control1", "control2", "compute0", "compute1", "compute2"]
    );
}

#[test]
fn polling_control_thread_cannot_starve_compute() {
    // A control daemon that yield-polls for a condition only a *compute*
    // thread can satisfy: bounded control bursts must let the compute
    // thread finish (an unbounded control lane would livelock here).
    let (_area, mut mgrs) = rig(1);
    let s = Scheduler::new(0);
    let done = Arc::new(AtomicUsize::new(0));
    let done_d = Arc::clone(&done);
    let tid = s.next_tid();
    s.spawn_with_tid_flags(
        &mut mgrs[0],
        tid,
        crate::thread::flags::CONTROL,
        move || {
            while done_d.load(Ordering::SeqCst) == 0 {
                yield_now();
            }
        },
    )
    .unwrap();
    let done_c = Arc::clone(&done);
    s.spawn(&mut mgrs[0], move || {
        done_c.store(1, Ordering::SeqCst);
    })
    .unwrap();
    // 64 steps are plenty under CTL_BURST fairness; without it this drive
    // would never terminate.
    s.activate();
    for _ in 0..64 {
        match s.run_one() {
            Some(RunOutcome::Yielded(d)) => unsafe { s.requeue(d) },
            Some(RunOutcome::Exited(d)) => unsafe {
                s.note_gone();
                crate::release_thread_resources(d, &mut mgrs[0]).unwrap();
            },
            Some(other) => panic!("unexpected: {other:?}"),
            None => break,
        }
    }
    assert_eq!(done.load(Ordering::SeqCst), 1, "compute thread starved");
    assert_eq!(s.resident(), 0, "daemon observed the flag and exited");
}

// ---------------------------------------------------------------------------
// Hand-driven migration: the substrate-level proof of the paper's mechanism.
// ---------------------------------------------------------------------------

/// Pack a frozen thread (stack slot + heap slots) and unmap its slots on the
/// source node.  This mirrors `pm2`'s migration engine.
unsafe fn pack_and_surrender(d: DescPtr, m: &mut NodeSlotManager) -> Vec<u8> {
    let desc = &*d;
    let slot_size = m.slot_size();
    let area_base = m.area_base();
    let mut buf = Vec::new();
    pack_raw_extents(
        desc.stack_base,
        SlotKind::Stack as u32,
        desc.stack_slots,
        &desc.stack_extents(),
        &mut buf,
    );
    let heap = isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap));
    for &(base, _n) in &heap {
        pack_heap_slot(base, slot_size, &mut buf).unwrap();
    }
    let stack_first = (desc.stack_base - area_base) / slot_size;
    let stack_slots = desc.stack_slots;
    m.surrender(SlotRange::new(stack_first, stack_slots))
        .unwrap();
    for &(base, n) in &heap {
        let first = (base - area_base) / slot_size;
        m.surrender(SlotRange::new(first, n)).unwrap();
    }
    buf
}

/// Map and unpack a packed thread on the destination node; returns the
/// descriptor (at the same address it had on the source).
unsafe fn adopt_and_unpack(buf: &[u8], m: &mut NodeSlotManager) -> DescPtr {
    let slot_size = m.slot_size();
    let area_base = m.area_base();
    let mut off = 0;
    let mut desc: DescPtr = std::ptr::null_mut();
    while off < buf.len() {
        let info = peek_header(&buf[off..]).unwrap();
        let first = (info.base - area_base) / slot_size;
        m.adopt(SlotRange::new(first, info.n_slots)).unwrap();
        unpack_into_mapped(&buf[off..], slot_size).unwrap();
        if info.kind == SlotKind::Stack as u32 {
            desc = desc_addr(info.base) as DescPtr;
        }
        off += info.record_len;
    }
    assert!(!desc.is_null(), "migration buffer contained no stack slot");
    desc
}

#[test]
fn migration_preserves_stack_and_pointers() {
    let (_area, mut mgrs) = rig(2);
    let mut m1 = mgrs.pop().unwrap();
    let mut m0 = mgrs.pop().unwrap();
    let s0 = Scheduler::new(0);
    let s1 = Scheduler::new(1);
    let (tx, rx) = std::sync::mpsc::channel();

    s0.spawn(&mut m0, move || {
        // Fig. 1 + Fig. 2 of the paper, but through the real mechanism: a
        // stack variable and a pointer to it survive migration unchanged.
        let x: u64 = 0xFEED_FACE;
        let px = &x as *const u64;
        let before = current_node();
        migrate_self(1);
        let after = current_node();
        let through_pointer = unsafe { *px };
        tx.send((before, after, through_pointer, x)).unwrap();
    })
    .unwrap();

    // Node 0 runs the thread until it freezes for migration.
    s0.activate();
    let RunOutcome::MigrateSelf(d, dest) = s0.run_one().unwrap() else {
        panic!("expected a migration request")
    };
    assert_eq!(dest, 1);
    s0.note_gone();
    let buf = unsafe { pack_and_surrender(d, &mut m0) };
    // A null thread's buffer is small — metadata + a shallow live stack.
    assert!(
        buf.len() < 8 * 1024,
        "packed null thread is {} bytes",
        buf.len()
    );

    // "Network": the buffer is the only thing crossing nodes.
    let d1 = unsafe { adopt_and_unpack(&buf, &mut m1) };
    assert_eq!(d1, d, "descriptor reappears at the same virtual address");
    unsafe { s1.adopt_arrival(d1) };

    // Node 1 resumes the thread; it finishes there.
    drive(&s1, &mut m1);
    let (before, after, through_pointer, x) = rx.recv().unwrap();
    assert_eq!(before, 0);
    assert_eq!(after, 1);
    assert_eq!(x, 0xFEED_FACE);
    assert_eq!(
        through_pointer, 0xFEED_FACE,
        "pointer to stack data valid after migration"
    );
}

#[test]
fn migration_carries_isomalloc_heap() {
    let (_area, mut mgrs) = rig(2);
    let mut m1 = mgrs.pop().unwrap();
    let mut m0 = mgrs.pop().unwrap();
    let s0 = Scheduler::new(0);
    let s1 = Scheduler::new(1);
    let (tx, rx) = std::sync::mpsc::channel();
    // The green thread reaches the providers through raw pointers; the test
    // driver guarantees no concurrent access (single OS thread, and the
    // driver only touches a manager while the thread is frozen).
    let p0 = &mut m0 as *mut NodeSlotManager as usize;
    let p1 = &mut m1 as *mut NodeSlotManager as usize;

    s0.spawn(
        unsafe { &mut *(p0 as *mut NodeSlotManager) },
        move || unsafe {
            let d = crate::current_desc();
            let heap = std::ptr::addr_of_mut!((*d).heap);
            let m0 = p0 as *mut NodeSlotManager;
            let m1 = p1 as *mut NodeSlotManager;
            // Build a little linked list in iso memory (paper Fig. 7).
            #[repr(C)]
            struct Item {
                value: u64,
                next: *mut Item,
            }
            let mut head: *mut Item = std::ptr::null_mut();
            for j in 0..100u64 {
                let it = isomalloc::heap::isomalloc(heap, &mut *m0, std::mem::size_of::<Item>())
                    .unwrap() as *mut Item;
                (*it).value = j * 2 + 1;
                (*it).next = head;
                head = it;
            }
            migrate_self(1);
            // Traverse on node 1: every pointer must still be valid.
            let mut sum = 0u64;
            let mut count = 0u64;
            let mut cur = head;
            while !cur.is_null() {
                sum += (*cur).value;
                count += 1;
                let next = (*cur).next;
                // Free as we go — releases slots to NODE 1 (Fig. 6 step 4).
                isomalloc::heap::isofree(heap, &mut *m1, cur as *mut u8).unwrap();
                cur = next;
            }
            tx.send((count, sum, current_node())).unwrap();
        },
    )
    .unwrap();

    s0.activate();
    let RunOutcome::MigrateSelf(d, _) = s0.run_one().unwrap() else {
        panic!()
    };
    s0.note_gone();
    let buf = unsafe { pack_and_surrender(d, &mut m0) };
    let d1 = unsafe { adopt_and_unpack(&buf, &mut m1) };
    unsafe { s1.adopt_arrival(d1) };
    drive(&s1, &mut m1);

    let (count, sum, node) = rx.recv().unwrap();
    assert_eq!(count, 100);
    assert_eq!(sum, (0..100u64).map(|j| j * 2 + 1).sum());
    assert_eq!(node, 1);
    // The heap slot was freed on node 1, so node 1 gained ownership of a
    // slot it did not initially possess.
    assert!(
        m1.owned_free_slots() > 32,
        "node 1 must end up with extra slots"
    );
}

#[test]
fn take_migrating_sweeps_flagged_ready_threads() {
    let (_area, mut mgrs) = rig(2);
    let s = Scheduler::new(0);
    let counter = Arc::new(AtomicUsize::new(0));
    let mut descs = Vec::new();
    for _ in 0..4 {
        let c = Arc::clone(&counter);
        descs.push(
            s.spawn(&mut mgrs[0], move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap(),
        );
    }
    // Flag threads 1 and 3 for different destinations; 0 and 2 stay.
    unsafe {
        assert!(s.request_migration(descs[1], 1));
        assert!(s.request_migration(descs[3], 1));
    }
    // A capped sweep takes only the first flagged thread…
    let first = s.take_migrating(1);
    assert_eq!(first.len(), 1);
    assert_eq!(first[0], (descs[1], 1));
    // …a follow-up sweep takes the rest; unflagged threads are untouched.
    let rest = s.take_migrating(usize::MAX);
    assert_eq!(rest, vec![(descs[3], 1)]);
    assert!(s.take_migrating(usize::MAX).is_empty());
    assert_eq!(s.queue_len(), 2, "unflagged threads stay queued");
    // The embedder un-counts swept threads when it packs them…
    s.note_gone();
    s.note_gone();
    assert_eq!(s.resident(), 2);
    // …and the destination re-adopts the whole train in one batch, which
    // makes them runnable again and clears the migration flag.
    unsafe { s.adopt_arrivals(&[first[0].0, rest[0].0]) };
    assert_eq!(
        s.resident(),
        4,
        "adopt_arrivals counts arrivals as resident"
    );
    drive(&s, &mut mgrs[0]);
    assert_eq!(counter.load(Ordering::SeqCst), 4, "every thread ran once");
}

#[test]
fn preemptive_migration_of_a_ready_thread() {
    let (_area, mut mgrs) = rig(2);
    let mut m1 = mgrs.pop().unwrap();
    let mut m0 = mgrs.pop().unwrap();
    let s0 = Scheduler::new(0);
    let s1 = Scheduler::new(1);
    let (tx, rx) = std::sync::mpsc::channel();

    // The application thread contains NO migration code — transparency.
    s0.spawn(&mut m0, move || {
        let mut nodes_seen = Vec::new();
        for _ in 0..4 {
            nodes_seen.push(current_node());
            yield_now();
        }
        tx.send(nodes_seen).unwrap();
    })
    .unwrap();

    s0.activate();
    // Run one quantum on node 0.
    let RunOutcome::Yielded(d) = s0.run_one().unwrap() else {
        panic!()
    };
    unsafe { s0.requeue(d) };
    // A third party (here: the test, playing the load balancer) tags it.
    assert!(unsafe { s0.request_migration(d, 1) });
    let RunOutcome::PreemptMigrate(d, dest) = s0.run_one().unwrap() else {
        panic!("tagged ready thread must be shipped, not run")
    };
    assert_eq!(dest, 1);
    s0.note_gone();
    let buf = unsafe { pack_and_surrender(d, &mut m0) };
    let d1 = unsafe { adopt_and_unpack(&buf, &mut m1) };
    unsafe { s1.adopt_arrival(d1) };
    drive(&s1, &mut m1);

    let nodes_seen = rx.recv().unwrap();
    assert_eq!(
        nodes_seen,
        vec![0, 1, 1, 1],
        "thread observed its own relocation"
    );
}
