//! Data-plane throughput benchmarks (ISSUE 2): migration ping-pong rate
//! and broadcast fan-out cost on the pooled zero-copy payload path.
//!
//! * `pingpong/*` — sustained one-way thread migrations per second on a
//!   2-node machine (the reciprocal of E5's latency, reported as a rate so
//!   the perf trajectory has a "bigger is better" series).
//! * `broadcast/*` — one 16-way broadcast of an N-byte payload, receivers
//!   drained.  Fan-out is by refcount, so the cost must stay flat in the
//!   payload size (the old path copied the payload once per destination).

use madeleine::{Fabric, NetProfile};
use pm2_bench::crit::Criterion;
use pm2_bench::migration_pingpong_us;
use pm2_bench::{criterion_group, criterion_main};
use std::time::{Duration, Instant};

fn bench_migration_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput: migration ping-pong");
    g.sample_size(5);
    g.measurement_time(Duration::from_secs(4));
    for (name, net) in [
        ("instant", NetProfile::instant()),
        ("myrinet", NetProfile::myrinet_bip()),
    ] {
        for payload in [0usize, 32 * 1024] {
            g.bench_function(format!("pingpong/{name}/payload_{payload}B"), |b| {
                b.iter_custom(|iters| {
                    let hops = (iters as usize).max(64);
                    let us = migration_pingpong_us(net, payload, hops);
                    Duration::from_nanos((us * 1000.0 * iters as f64) as u64)
                });
            });
        }
    }
    g.finish();
}

fn bench_broadcast_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput: 16-way broadcast fan-out");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for payload in [64usize, 4 * 1024, 64 * 1024] {
        g.bench_function(format!("broadcast/16way/payload_{payload}B"), |b| {
            let eps = Fabric::new(17, NetProfile::instant());
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    let mut buf = eps[0].pool().checkout(payload);
                    buf.resize(payload, 0xA5);
                    eps[0].broadcast(7, buf).unwrap();
                    for ep in &eps[1..] {
                        std::hint::black_box(ep.try_recv().expect("delivered"));
                    }
                }
                t0.elapsed()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_migration_rate, bench_broadcast_fanout);
criterion_main!(benches);
