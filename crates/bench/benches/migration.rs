//! E5 — criterion benchmark: one-way thread migration latency
//! (ping-pong between 2 nodes, paper §5 ¶1: < 75 µs on BIP/Myrinet).

use pm2::NetProfile;
use pm2_bench::crit::Criterion;
use pm2_bench::migration_pingpong_us;
use pm2_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn us_to_total(us_per_op: f64, iters: u64) -> Duration {
    Duration::from_nanos((us_per_op * 1000.0 * iters as f64) as u64)
}

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_migration");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));

    for (name, net) in [
        ("instant", NetProfile::instant()),
        ("myrinet", NetProfile::myrinet_bip()),
    ] {
        for payload in [0usize, 32 * 1024] {
            g.bench_function(format!("{name}/payload_{payload}B"), |b| {
                b.iter_custom(|iters| {
                    let hops = (iters as usize).max(16);
                    let us = migration_pingpong_us(net, payload, hops);
                    us_to_total(us, iters)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
