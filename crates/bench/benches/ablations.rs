//! A1–A6 — criterion benchmarks for the design-choice ablations.  Each
//! iteration is a complete workload on a fresh machine (launch included);
//! `bin/ablations` reports per-operation microcosts.

use pm2::{Distribution, MigrationScheme, NetProfile};
use pm2_bench::crit::Criterion;
use pm2_bench::{criterion_group, criterion_main};
use pm2_bench::{distribution_outcome, pack_outcome, scheme_migration_us, slot_cache_cycle_us};
use std::time::Duration;

fn bench_distribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_distribution");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for (name, dist) in [
        ("round_robin", Distribution::RoundRobin),
        ("block_cyclic8", Distribution::BlockCyclic(8)),
        ("partitioned", Distribution::Partitioned),
    ] {
        g.bench_function(format!("{name}/p4_32_multislot_allocs"), |b| {
            b.iter(|| {
                std::hint::black_box(distribution_outcome(dist, 4, NetProfile::myrinet_bip()))
            });
        });
    }
    g.finish();
}

fn bench_slot_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_slot_cache");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for cap in [0usize, 32] {
        g.bench_function(format!("syscall_strategy/cache{cap}/100_cycles"), |b| {
            b.iter(|| std::hint::black_box(slot_cache_cycle_us(cap, 100)));
        });
    }
    g.finish();
}

fn bench_scheme(c: &mut Criterion) {
    let mut g = c.benchmark_group("a5_scheme");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for (name, scheme, k) in [
        ("iso_address", MigrationScheme::IsoAddress, 0usize),
        (
            "registered_ptrs_16",
            MigrationScheme::RegisteredPointers,
            16,
        ),
    ] {
        g.bench_function(format!("{name}/64_hop_pingpong"), |b| {
            b.iter(|| std::hint::black_box(scheme_migration_us(scheme, k, 64)));
        });
    }
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("a6_pack");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    for (name, full) in [("extents", false), ("whole_slots", true)] {
        g.bench_function(format!("{name}/sparse64k_32_hops"), |b| {
            b.iter(|| std::hint::black_box(pack_outcome(full, 64 * 1024, 32)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_distribution,
    bench_slot_cache,
    bench_scheme,
    bench_pack
);
criterion_main!(benches);
