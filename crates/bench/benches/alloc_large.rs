//! E8 — criterion benchmark: Figure 11 (bottom).  One iteration = a
//! 4-allocation batch on a fresh 2-node machine.

use pm2::NetProfile;
use pm2_bench::crit::Criterion;
use pm2_bench::{alloc_series_us, Allocator};
use pm2_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn bench_alloc_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_large");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for size in [1024 * 1024usize, 8 * 1024 * 1024] {
        for (name, alloc) in [
            ("malloc", Allocator::Malloc),
            ("isomalloc", Allocator::Isomalloc),
        ] {
            g.bench_function(
                format!("{name}/{}MB/4_alloc_batch", size / (1024 * 1024)),
                |b| {
                    b.iter(|| {
                        std::hint::black_box(alloc_series_us(
                            alloc,
                            &[size],
                            NetProfile::myrinet_bip(),
                            4,
                            true,
                        ))
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_alloc_large);
criterion_main!(benches);
