//! E7 — criterion benchmark: Figure 11 (top).  One iteration = a
//! 16-allocation batch on a fresh 2-node machine; `bin/fig11` reports the
//! per-allocation microcosts.

use pm2::NetProfile;
use pm2_bench::crit::Criterion;
use pm2_bench::{alloc_series_us, Allocator};
use pm2_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn bench_alloc_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_small");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for size in [4 * 1024usize, 64 * 1024, 256 * 1024] {
        for (name, alloc) in [
            ("malloc", Allocator::Malloc),
            ("isomalloc", Allocator::Isomalloc),
        ] {
            g.bench_function(format!("{name}/{size}B/16_alloc_batch"), |b| {
                b.iter(|| {
                    std::hint::black_box(alloc_series_us(
                        alloc,
                        &[size],
                        NetProfile::myrinet_bip(),
                        16,
                        true,
                    ))
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_alloc_small);
criterion_main!(benches);
