//! E6 — criterion benchmark: global negotiation cost vs node count
//! (paper §5 ¶2).  One iteration = a full 8-round negotiation workload on a
//! fresh machine (launch included); `bin/e6_negotiation` reports the
//! per-negotiation microcosts.

use pm2::NetProfile;
use pm2_bench::crit::Criterion;
use pm2_bench::negotiation_us;
use pm2_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn bench_negotiation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_negotiation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    for p in [2usize, 4, 8] {
        g.bench_function(format!("myrinet/p{p}/8_round_workload"), |b| {
            b.iter(|| std::hint::black_box(negotiation_us(p, NetProfile::myrinet_bip(), 8)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_negotiation);
criterion_main!(benches);
