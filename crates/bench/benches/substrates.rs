//! S — criterion benchmarks for the substrates underneath the headline
//! numbers: context switching, thread creation, bitmap search, packing.

use pm2_bench::crit::{BatchSize, Criterion};
use pm2_bench::{criterion_group, criterion_main};
use pm2_bench::{ctx_switch_ns, spawn_us};
use std::time::Duration;

fn bench_threading(c: &mut Criterion) {
    let mut g = c.benchmark_group("s_threading");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    g.bench_function("context_switch_yield", |b| {
        b.iter_custom(|iters| {
            // Run exactly `iters` yields (floor of 64 so a fresh machine's
            // first quanta don't dominate) and report the measured time for
            // the yields we actually ran, scaled to `iters`.
            let n = (iters as usize).max(64);
            let ns = ctx_switch_ns(n);
            Duration::from_nanos((ns * iters as f64).max(1.0) as u64)
        });
    });
    g.bench_function("thread_create_run_join", |b| {
        b.iter_custom(|iters| {
            let n = (iters as usize).max(16);
            let us = spawn_us(n);
            Duration::from_nanos((us * 1000.0 * iters as f64).max(1.0) as u64)
        });
    });
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    use isoaddr::{Distribution, SlotBitmap, SlotRange};
    let mut g = c.benchmark_group("s_bitmap");
    // Paper-scale bitmap: 57344 slots (7 kB).
    let n = 57_344;
    let rr = Distribution::RoundRobin.initial_bitmap(0, 2, n);
    g.bench_function("find_first_fit_1_of_57344_round_robin", |b| {
        b.iter(|| std::hint::black_box(rr.find_first_fit(1, 0)));
    });
    g.bench_function("find_first_fit_2_of_57344_round_robin_fails", |b| {
        // Worst case: scans the whole bitmap and finds nothing.
        b.iter(|| std::hint::black_box(rr.find_first_fit(2, 0)));
    });
    let full = SlotBitmap::new_set(n);
    g.bench_function("find_first_fit_128_of_57344_full", |b| {
        b.iter(|| std::hint::black_box(full.find_first_fit(128, 0)));
    });
    g.bench_function("or_with_57344", |b| {
        b.iter_batched(
            || full.clone(),
            |mut a| {
                a.or_with(&rr);
                a
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("serialize_57344", |b| {
        b.iter(|| std::hint::black_box(rr.to_bytes()));
    });
    let mut half = SlotBitmap::new_clear(n);
    half.set_range(SlotRange::new(n / 2, 64));
    g.bench_function("find_first_fit_64_midway", |b| {
        b.iter(|| std::hint::black_box(half.find_first_fit(64, 0)));
    });
    g.finish();
}

fn bench_pack_layer(c: &mut Criterion) {
    use isoaddr::{AreaConfig, Distribution, IsoArea, NodeSlotManager};
    use isomalloc::heap::{heap_init, heap_slots, isomalloc, IsoHeapState};
    use isomalloc::pack::pack_heap_slot;
    use std::sync::Arc;

    let mut g = c.benchmark_group("s_pack");
    let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
    let mut mgr = NodeSlotManager::new(0, 1, area, Distribution::RoundRobin, 0);
    let mut heap: Box<IsoHeapState> = Box::new(unsafe { std::mem::zeroed() });
    unsafe {
        heap_init(heap.as_mut(), isomalloc::FitPolicy::FirstFit, false);
        // Fill one slot with a busy/free checkerboard.
        let ptrs: Vec<_> = (0..40)
            .map(|_| isomalloc(heap.as_mut(), &mut mgr, 700).unwrap())
            .collect();
        for p in ptrs.iter().step_by(2) {
            isomalloc::heap::isofree(heap.as_mut(), &mut mgr, *p).unwrap();
        }
    }
    let (slot_base, _) = unsafe { heap_slots(heap.as_ref())[0] };
    let slot_size = 64 * 1024;
    g.bench_function("pack_heap_slot_checkerboard", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(32 * 1024);
            unsafe { pack_heap_slot(slot_base, slot_size, &mut buf).unwrap() };
            std::hint::black_box(buf.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_threading, bench_bitmap, bench_pack_layer);
criterion_main!(benches);
