//! `BENCH_affinity.json`: end-to-end judgment of affinity-aware balancing.
//!
//! Two communication-shaped scenarios run on the modelled Myrinet wire
//! (remote hop ≈ 22 µs, co-located self-send free — so placement, not
//! raw pump speed, decides throughput), each with the balancer's affinity
//! pass **on** vs **off** at p = 4 and p = 8:
//!
//! * **ring** — producer/consumer rings of long-lived threads scattered
//!   round-robin across the machine; each member echo-RPCs the node
//!   hosting its ring successor in a loop.  Load is perfectly balanced
//!   from the start, so the pure-load balancer sees nothing to do and
//!   every hop stays remote; the affinity pass co-locates the rings and
//!   turns hops into self-sends.  The acceptance bar is a *throughput*
//!   win (≥ 1.3× sustained ops/s at p = 8, or a ≥ 2× remote-ratio
//!   reduction at equal throughput) — prettier migration counts don't
//!   count.
//! * **hotspot** — migratable clients on every node hammer one popular
//!   service node.  This drill is SLO-gated: affinity-on must not
//!   regress throughput vs affinity-off (the pass may co-locate clients
//!   with the service when the load guard allows, but must never thrash).
//!
//! Each run warms up until the balancer converges, then measures a
//! steady-state window after `Machine::stats_reset`, reporting ops/s,
//! the remote-vs-local RPC message ratio, and the balancer's own
//! counters (moves, affinity moves, probes saved).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm2::api::{pm2_rpc_call, pm2_thread_location, pm2_yield};
use pm2::loadbal::BalancerConfig;
use pm2::{Machine, MachineMode, NetProfile, Pm2Config};
use pm2_workload::{register_services, Echo};

/// Members per ring (scattered over min(RING_SIZE, p) distinct nodes).
pub const RING_SIZE: usize = 4;
/// Echo payload bytes for both scenarios.
const PAYLOAD: usize = 64;
/// Cooperative yields between calls: the window in which a member is
/// Ready + migratable and a balancer probe can catch it.
const YIELDS_BETWEEN_CALLS: usize = 16;
/// Balancer convergence time before the measured window.
const WARMUP: Duration = Duration::from_millis(600);
/// The measured steady-state window.
const MEASURE: Duration = Duration::from_millis(500);

/// One measured run.
#[derive(Debug, Clone)]
pub struct AffinityOutcome {
    pub scenario: &'static str,
    pub p: usize,
    pub affinity: bool,
    /// Completed echo round trips in the measured window.
    pub ops: u64,
    pub elapsed_s: f64,
    pub ops_per_sec: f64,
    /// RPC-shaped messages that stayed on-node in the window…
    pub rpc_local: u64,
    /// …and those that paid the modelled wire.
    pub rpc_remote: u64,
    /// `rpc_remote / (rpc_local + rpc_remote)` over the window.
    pub remote_ratio: f64,
    /// Migrations that landed during the window (warmup moves excluded).
    pub migrations: u64,
    /// Balancer counters over the whole run (warmup included).
    pub balancer_moves: u64,
    pub affinity_moves: u64,
    pub probes_saved: u64,
}

fn launch(p: usize) -> Machine {
    let cfg = Pm2Config::new(p)
        .with_net(NetProfile::myrinet_bip())
        .with_mode(MachineMode::Threaded)
        .with_reply_deadline(Duration::from_secs(2));
    let m = Machine::launch(cfg).expect("launch");
    register_services(&m);
    m
}

fn balancer_cfg(affinity: bool) -> BalancerConfig {
    BalancerConfig::default().with_affinity(affinity)
}

/// Shared state of one looping caller thread.
struct CallerPlan {
    /// Slot of the peer whose hosting node this caller aims at, in
    /// `tids` (ring successor), or a fixed node for the hotspot shape.
    next_slot: Option<usize>,
    fixed_dest: usize,
    fallback_dest: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_callers(
    m: &Machine,
    p: usize,
    scenario: &'static str,
    affinity: bool,
    placements: Vec<(usize, CallerPlan)>,
) -> AffinityOutcome {
    let n = placements.len();
    let tids: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let start = Arc::new(AtomicBool::new(false));
    let run = Arc::new(AtomicBool::new(true));
    let ops = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::with_capacity(n);
    for (home, plan) in placements {
        let (tids2, start2, run2, ops2) = (
            Arc::clone(&tids),
            Arc::clone(&start),
            Arc::clone(&run),
            Arc::clone(&ops),
        );
        let t = m
            .spawn_on(home, move || {
                while !start2.load(Ordering::Acquire) {
                    pm2_yield();
                }
                let payload = vec![0u8; PAYLOAD];
                while run2.load(Ordering::Relaxed) {
                    let dest = match plan.next_slot {
                        Some(slot) => {
                            let next = tids2[slot].load(Ordering::Relaxed);
                            pm2_thread_location(next).unwrap_or(plan.fallback_dest)
                        }
                        None => plan.fixed_dest,
                    };
                    if pm2_rpc_call::<Echo>(dest, payload.clone()).is_ok() {
                        ops2.fetch_add(1, Ordering::Relaxed);
                    }
                    // The migratable window: between calls the member is
                    // Ready and unpinned, so balancer rounds can move it.
                    for _ in 0..YIELDS_BETWEEN_CALLS {
                        pm2_yield();
                    }
                }
            })
            .expect("spawn caller");
        threads.push(t);
    }
    // The host assigned every tid at spawn time: publish them, then fire.
    for (i, t) in threads.iter().enumerate() {
        tids[i].store(t.tid, Ordering::Release);
    }
    let bal = pm2::loadbal::start_balancer(m, balancer_cfg(affinity)).expect("balancer");
    start.store(true, Ordering::Release);

    std::thread::sleep(WARMUP);
    m.stats_reset();
    let ops0 = ops.load(Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(MEASURE);
    let window_ops = ops.load(Ordering::Relaxed) - ops0;
    let elapsed = t0.elapsed().as_secs_f64();
    let (mut local, mut remote, mut migs) = (0u64, 0u64, 0u64);
    for node in 0..p {
        let s = m.node_stats(node);
        local += s.rpc_local;
        remote += s.rpc_remote;
        migs += s.migrations_in;
    }

    run.store(false, Ordering::Relaxed);
    for t in threads {
        m.join(t);
    }
    let (moves, aff_moves, probes_saved) = (bal.moves(), bal.affinity_moves(), bal.probes_saved());
    bal.stop(m);

    let total = local + remote;
    AffinityOutcome {
        scenario,
        p,
        affinity,
        ops: window_ops,
        elapsed_s: elapsed,
        ops_per_sec: window_ops as f64 / elapsed,
        rpc_local: local,
        rpc_remote: remote,
        remote_ratio: if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        },
        migrations: migs,
        balancer_moves: moves,
        affinity_moves: aff_moves,
        probes_saved,
    }
}

/// The ring scenario: p rings of [`RING_SIZE`], ring r member j starting
/// on node `(r + j) % p`, each member calling the node hosting its ring
/// successor.
pub fn run_ring(p: usize, affinity: bool) -> AffinityOutcome {
    let mut m = launch(p);
    let mut placements = Vec::new();
    for r in 0..p {
        for j in 0..RING_SIZE {
            let slot_of = |jj: usize| r * RING_SIZE + jj;
            placements.push((
                (r + j) % p,
                CallerPlan {
                    next_slot: Some(slot_of((j + 1) % RING_SIZE)),
                    fixed_dest: 0,
                    fallback_dest: (r + (j + 1) % RING_SIZE) % p,
                },
            ));
        }
    }
    let out = run_callers(&m, p, "ring", affinity, placements);
    m.shutdown();
    out
}

/// The hotspot scenario: two clients per non-hot node, all calling the
/// service hosted on node 0.
pub fn run_hotspot(p: usize, affinity: bool) -> AffinityOutcome {
    let mut m = launch(p);
    let mut placements = Vec::new();
    for node in 1..p {
        for _ in 0..2 {
            placements.push((
                node,
                CallerPlan {
                    next_slot: None,
                    fixed_dest: 0,
                    fallback_dest: 0,
                },
            ));
        }
    }
    let out = run_callers(&m, p, "hotspot", affinity, placements);
    m.shutdown();
    out
}

/// The acceptance verdict for an affinity-on run against its off twin.
pub fn verdict(on: &AffinityOutcome, off: &AffinityOutcome) -> &'static str {
    let tput_win = on.ops_per_sec >= 1.3 * off.ops_per_sec;
    let ratio_win = on.ops_per_sec >= 0.95 * off.ops_per_sec
        && off.remote_ratio >= 2.0 * on.remote_ratio.max(1e-6);
    match on.scenario {
        "ring" if tput_win || ratio_win => "pass",
        "ring" => "FAIL",
        // Hotspot is SLO-gated: no regression allowed, wins welcome.
        _ if on.ops_per_sec >= 0.9 * off.ops_per_sec => "pass",
        _ => "FAIL",
    }
}

fn row(o: &AffinityOutcome, verdict: Option<&str>) -> String {
    format!(
        "{{\"scenario\": \"{}\", \"p\": {}, \"affinity\": {}, \"ops\": {}, \
         \"ops_per_sec\": {:.1}, \"window_s\": {:.3}, \"rpc_local\": {}, \
         \"rpc_remote\": {}, \"remote_ratio\": {:.4}, \"migrations_in_window\": {}, \
         \"balancer_moves\": {}, \"affinity_moves\": {}, \"probes_saved\": {}, \
         \"verdict\": {}}}",
        o.scenario,
        o.p,
        o.affinity,
        o.ops,
        o.ops_per_sec,
        o.elapsed_s,
        o.rpc_local,
        o.rpc_remote,
        o.remote_ratio,
        o.migrations,
        o.balancer_moves,
        o.affinity_moves,
        o.probes_saved,
        match verdict {
            Some(v) => format!("\"{v}\""),
            None => "null".into(),
        }
    )
}

fn print_outcome(o: &AffinityOutcome) {
    println!(
        "affinity [{} p={} affinity={}]: {:.0} ops/s, remote ratio {:.3} \
         ({} local / {} remote), {} moves ({} affinity), {} probes saved",
        o.scenario,
        o.p,
        o.affinity,
        o.ops_per_sec,
        o.remote_ratio,
        o.rpc_local,
        o.rpc_remote,
        o.balancer_moves,
        o.affinity_moves,
        o.probes_saved
    );
}

/// Run the full matrix and write `BENCH_affinity.json` into the current
/// directory.  Prints every run and the on-vs-off verdicts; never panics
/// on a miss (CI uploads the JSON either way).
pub fn write_affinity_json() {
    let mut rows = Vec::new();
    for p in [4usize, 8] {
        for scenario in ["ring", "hotspot"] {
            let runner = if scenario == "ring" {
                run_ring
            } else {
                run_hotspot
            };
            let off = runner(p, false);
            print_outcome(&off);
            let on = runner(p, true);
            print_outcome(&on);
            let v = verdict(&on, &off);
            println!(
                "affinity [{} p={}]: on {:.0} ops/s vs off {:.0} ops/s \
                 (ratio {:.3} vs {:.3}) — {}",
                scenario, p, on.ops_per_sec, off.ops_per_sec, on.remote_ratio, off.remote_ratio, v
            );
            rows.push(row(&off, None));
            rows.push(row(&on, Some(v)));
        }
    }
    crate::report::emit_json(
        "BENCH_affinity.json",
        "affinity",
        "end-to-end throughput and remote-vs-local RPC message ratio for the balancer's \
         affinity pass on vs off, on the modelled Myrinet wire (remote hop ~22 µs, \
         co-located self-send free); ring = scattered producer/consumer rings (acceptance: \
         >=1.3x ops/s or >=2x remote-ratio cut at p=8), hotspot = all-to-one service \
         drill (SLO: no regression); measured over a steady-state window after warmup, \
         balancer counters cover the whole run",
        "cargo run --release -p pm2-bench --bin affinity",
        &rows,
    );
}
