//! A minimal, criterion-compatible timing harness.
//!
//! The workspace builds in an offline sandbox, so the real `criterion`
//! cannot be resolved from a registry.  This module implements the small
//! API surface our benches use — `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_custom, iter_batched}`,
//! `sample_size`, `measurement_time` — with the same calling conventions,
//! so the bench files read identically and can be pointed back at the
//! real criterion by swapping one `use` line if a registry is available.
//!
//! Measurement model: per sample, run the routine enough iterations to
//! fill ~`measurement_time / sample_size`, report the median, min and max
//! of the per-iteration times across samples.  No warm-up discard beyond
//! one untimed iteration, no outlier analysis — this is a table printer,
//! not a statistics engine; EXPERIMENTS.md numbers come from the `bin/`
//! drivers.

use std::time::{Duration, Instant};

/// How batched setup results are sized (API compatibility; the shim
/// treats all variants the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Fresh harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Back-compat with `criterion_group!`'s configure hook.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group with shared sampling settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target wall-clock spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<S: AsRef<str>>(
        &mut self,
        id: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id.as_ref());
        self
    }

    /// End the group (printing is incremental; nothing left to flush).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean per-iteration time of each sample, in ns.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One untimed call to warm caches and size the batch.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time / self.sample_size as u32;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time with a custom measurement: `routine(iters)` returns the total
    /// elapsed time for `iters` iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        // Keep per-sample iteration counts modest: iter_custom benches here
        // drive whole simulated machines.
        let iters = 16u64;
        for _ in 0..self.sample_size {
            let total = routine(iters);
            self.samples_ns.push(total.as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let budget = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            while elapsed < budget || iters == 0 {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t0.elapsed();
                iters += 1;
                if iters >= 100_000 {
                    break;
                }
            }
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let lo = self.samples_ns[0];
        let hi = *self.samples_ns.last().unwrap();
        println!(
            "{id:<44} {:>12} [{} .. {}]  ({} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group!(name, target...)` — defines `fn name()` running each
/// target against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::crit::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group...)` — defines `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(3).measurement_time(Duration::from_millis(30));
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 3);
    }

    #[test]
    fn iter_custom_and_batched_run() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim-test-2");
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters))
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
