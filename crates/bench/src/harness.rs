//! Workload generators and timed experiment drivers.
//!
//! Experiment ids refer to DESIGN.md's per-experiment index:
//! E5 = migration latency (§5 ¶1), E6 = negotiation cost (§5 ¶2),
//! E7/E8 = Figure 11 top/bottom, A1–A6 = ablations.

use std::time::{Duration, Instant};

use pm2::api::*;
use pm2::{
    AreaConfig, Distribution, FitPolicy, Machine, MachineMode, MapStrategy, MigrationScheme,
    NetProfile, Pm2Config,
};

/// Paper-scale area: 3.5 GB of iso-address space in 64 KiB slots, giving
/// the paper's 7 kB per-node bitmaps (§4.2).
pub fn paper_area() -> AreaConfig {
    AreaConfig {
        slot_size: 64 * 1024,
        n_slots: 57_344,
    }
}

/// The machine configuration used by the paper's experiments: round-robin
/// distribution, first-fit blocks, threaded nodes.
pub fn paper_config(nodes: usize, net: NetProfile) -> Pm2Config {
    Pm2Config::new(nodes)
        .with_area(paper_area())
        .with_net(net)
        .with_mode(MachineMode::Threaded)
        .with_slot_cache(0)
}

// ---------------------------------------------------------------------------
// E5 — thread migration latency (ping-pong, §5 ¶1)
// ---------------------------------------------------------------------------

/// Migrate a thread back and forth `hops` times carrying `payload` bytes of
/// isomalloc'd data; returns the average one-way migration time in µs.
///
/// "The time needed to migrate a thread with no static data between two
/// nodes is less than 75 µs … measured by means of a thread ping-pong
/// between two nodes" — `payload = 0` reproduces that configuration.
pub fn migration_pingpong_us(net: NetProfile, payload: usize, hops: usize) -> f64 {
    let mut m = Machine::launch(paper_config(2, net)).expect("launch");
    let total_us = m
        .run_on(0, move || {
            let block = if payload > 0 {
                let p = pm2_isomalloc(payload).unwrap();
                unsafe { std::ptr::write_bytes(p, 0xAB, payload) };
                Some(p)
            } else {
                None
            };
            // Warm up both directions (first hop maps cold structures).
            for _ in 0..8 {
                pm2_migrate(1).unwrap();
                pm2_migrate(0).unwrap();
            }
            let t0 = Instant::now();
            for i in 0..hops {
                pm2_migrate(1 - (i % 2)).unwrap();
            }
            let us = t0.elapsed().as_micros() as f64;
            if pm2_self() != 0 {
                pm2_migrate(0).unwrap();
            }
            if let Some(p) = block {
                pm2_isofree(p).unwrap();
            }
            us
        })
        .expect("pingpong");
    m.shutdown();
    total_us / hops as f64
}

/// Per-stage cost breakdown of a migration ping-pong run (ISSUE 2: the
/// numbers behind `BENCH_migration.json`).  All per-migration figures are
/// means over every migration the run performed, measured by the runtime's
/// own stage counters (pack at the source, wire + unpack at the
/// destination).
#[derive(Debug, Clone, Copy)]
pub struct MigrationBreakdown {
    /// Timed one-way hops.
    pub hops: usize,
    /// isomalloc'd payload carried by the thread (bytes).
    pub payload: usize,
    /// Mean one-way migration latency, µs (wall clock over the timed hops).
    pub one_way_us: f64,
    /// Mean freeze-and-gather (pack) time per migration, µs.
    pub pack_us: f64,
    /// Mean modelled wire time per migration, µs.
    pub wire_us: f64,
    /// Mean adopt-and-copy (unpack) time per migration, µs.
    pub unpack_us: f64,
    /// Mean migration buffer size, bytes.
    pub bytes_per_migration: u64,
    /// Throughput implied by the one-way latency.
    pub migrations_per_sec: f64,
    /// Payload-pool allocations across both nodes (flat after warm-up).
    pub pool_allocs: u64,
    /// Payload-pool buffer reuses across both nodes.
    pub pool_reuses: u64,
    /// Driver doorbell parks across both nodes (event-driven core: each
    /// hop parks the sender once; a polling driver would show zero parks
    /// and a huge step count instead).
    pub driver_parks: u64,
    /// Driver wake-ups across both nodes (ring or park-timeout).
    pub driver_wakeups: u64,
    /// Scheduler steps across both nodes.
    pub steps: u64,
}

/// Run a 2-node migration ping-pong carrying `payload` isomalloc'd bytes
/// and collect the per-stage breakdown from the runtime's counters.
pub fn migration_breakdown(net: NetProfile, payload: usize, hops: usize) -> MigrationBreakdown {
    let mut m = Machine::launch(paper_config(2, net)).expect("launch");
    let total_us = m
        .run_on(0, move || {
            let block = if payload > 0 {
                let p = pm2_isomalloc(payload).unwrap();
                unsafe { std::ptr::write_bytes(p, 0xAB, payload) };
                Some(p)
            } else {
                None
            };
            for _ in 0..8 {
                pm2_migrate(1).unwrap();
                pm2_migrate(0).unwrap();
            }
            let t0 = Instant::now();
            for i in 0..hops {
                pm2_migrate(1 - (i % 2)).unwrap();
            }
            let us = t0.elapsed().as_micros() as f64;
            if pm2_self() != 0 {
                pm2_migrate(0).unwrap();
            }
            if let Some(p) = block {
                pm2_isofree(p).unwrap();
            }
            us
        })
        .expect("pingpong");
    let (s0, s1) = (m.node_stats(0), m.node_stats(1));
    let migrations = (s0.migrations_out + s1.migrations_out).max(1);
    let per_us = |ns: u64| (ns as f64 / migrations as f64) / 1000.0;
    let one_way_us = total_us / hops as f64;
    let (p0, p1) = (m.pool_stats(0), m.pool_stats(1));
    m.shutdown();
    MigrationBreakdown {
        hops,
        payload,
        one_way_us,
        pack_us: per_us(s0.migration_pack_ns + s1.migration_pack_ns),
        wire_us: per_us(s0.migration_wire_ns + s1.migration_wire_ns),
        unpack_us: per_us(s0.migration_unpack_ns + s1.migration_unpack_ns),
        bytes_per_migration: (s0.migration_bytes_out + s1.migration_bytes_out) / migrations,
        migrations_per_sec: 1.0e6 / one_way_us,
        pool_allocs: p0.allocs + p1.allocs,
        pool_reuses: p0.reuses + p1.reuses,
        driver_parks: s0.driver_parks + s1.driver_parks,
        driver_wakeups: s0.driver_wakeups + s1.driver_wakeups,
        steps: s0.steps + s1.steps,
    }
}

/// One-way migration buffer size for a given payload (bytes on the wire).
pub fn migration_buffer_bytes(payload: usize) -> u64 {
    let mut m = Machine::launch(paper_config(2, NetProfile::instant())).expect("launch");
    m.run_on(0, move || {
        let block = if payload > 0 {
            let p = pm2_isomalloc(payload).unwrap();
            unsafe { std::ptr::write_bytes(p, 0xAB, payload) };
            Some(p)
        } else {
            None
        };
        pm2_migrate(1).unwrap();
        pm2_migrate(0).unwrap();
        if let Some(p) = block {
            pm2_isofree(p).unwrap();
        }
    })
    .expect("hop");
    let bytes = m.node_stats(0).migration_bytes_out;
    m.shutdown();
    bytes
}

// ---------------------------------------------------------------------------
// E6 — global negotiation cost vs. node count (§5 ¶2)
// ---------------------------------------------------------------------------

/// Average negotiation time in µs on a `p`-node machine (round-robin, so
/// every multi-slot allocation negotiates).  Measured by the runtime's own
/// per-negotiation timer, over `rounds` live 2-slot allocations.
pub fn negotiation_us(p: usize, net: NetProfile, rounds: usize) -> f64 {
    // Trading is pinned off: E6 measures the paper's §4.4 global protocol
    // itself (the trade-vs-global comparison lives in `negotiate.rs`).
    let mut m = Machine::launch(paper_config(p, net).with_slot_trade(false)).expect("launch");
    let slot = m.area().slot_size();
    m.run_on(0, move || {
        // Keep every block live so each allocation needs fresh contiguous
        // slots — under round-robin each one triggers a negotiation.
        let mut live = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            live.push(pm2_isomalloc(slot + 1).unwrap());
        }
        for q in live {
            pm2_isofree(q).unwrap();
        }
    })
    .expect("negotiation workload");
    let stats = m.node_stats(0);
    m.shutdown();
    assert!(
        stats.negotiations >= rounds as u64,
        "every allocation must negotiate"
    );
    (stats.negotiation_ns as f64 / stats.negotiations as f64) / 1000.0
}

// ---------------------------------------------------------------------------
// E7/E8 — Figure 11: malloc vs pm2_isomalloc allocation time
// ---------------------------------------------------------------------------

/// Which allocator a Fig. 11 series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocator {
    /// The `malloc` baseline: the *same block layer* on a private,
    /// single-owner heap — slot acquisition is always local, never
    /// negotiated.  This isolates exactly what the paper's comparison
    /// shows: the premium of the iso-address discipline, with identical
    /// per-byte costs on both sides.  (The host `malloc` is not a usable
    /// baseline inside this sandboxed kernel: its mmap and page-fault costs
    /// are ~100× the paper's hardware and would swamp the signal — see
    /// `Allocator::HostMalloc`.)
    Malloc,
    /// `pm2_isomalloc` on the 2-node round-robin machine.
    Isomalloc,
    /// The real process allocator, for reference only (distorted by the
    /// host kernel's page-fault/mmap costs; reported separately).
    HostMalloc,
}

/// Average allocation time in µs for each size in `sizes`.
///
/// Mirrors the paper's Fig. 11 protocol: on a 2-node machine (round-robin),
/// allocate `batch` live blocks of the size, touching each (the paper's
/// times for large blocks are only explicable if pages are actually used),
/// then free them; only the alloc+touch time is averaged.
pub fn alloc_series_us(
    alloc: Allocator,
    sizes: &[usize],
    net: NetProfile,
    batch: usize,
    touch: bool,
) -> Vec<(usize, f64)> {
    // One fresh machine per size point: freed multi-slot ranges would
    // otherwise leave the node with local contiguity and let later sizes
    // skip the negotiation the paper's experiment is about.
    sizes
        .iter()
        .map(|&size| {
            let us = alloc_point_us(alloc, size, net, batch, touch);
            (size, us)
        })
        .collect()
}

fn alloc_point_us(
    alloc: Allocator,
    size: usize,
    net: NetProfile,
    batch: usize,
    touch: bool,
) -> f64 {
    // Trading pinned off: Fig. 11 reproduces the paper's isomalloc cost
    // curve, whose multi-slot knee *is* the negotiation.
    let mut m = Machine::launch(paper_config(2, net).with_slot_trade(false)).expect("launch");
    let sizes_owned: Vec<usize> = vec![size];
    let out = m
        .run_on(0, move || {
            // Private single-owner heap for the Malloc baseline: same block
            // layer, same Resident-mode area, no iso-address discipline.
            let private_area =
                std::sync::Arc::new(isoaddr::IsoArea::new(paper_area()).expect("private area"));
            let mut private_mgr =
                isoaddr::NodeSlotManager::new(0, 1, private_area, pm2::Distribution::RoundRobin, 0);
            let mut private_heap: Box<isomalloc::IsoHeapState> =
                Box::new(unsafe { std::mem::zeroed() });
            unsafe { isomalloc::heap_init(private_heap.as_mut(), pm2::FitPolicy::FirstFit, true) };

            // Untimed warm-up: fault in runtime paths and the first pages
            // of both heaps.
            {
                let w = match alloc {
                    Allocator::Isomalloc => pm2_isomalloc(1024).unwrap(),
                    Allocator::Malloc => unsafe {
                        isomalloc::isomalloc(private_heap.as_mut(), &mut private_mgr, 1024).unwrap()
                    },
                    Allocator::HostMalloc => unsafe {
                        std::alloc::alloc(std::alloc::Layout::from_size_align(1024, 16).unwrap())
                    },
                };
                unsafe { std::ptr::write_bytes(w, 1, 1024) };
                match alloc {
                    Allocator::Isomalloc => pm2_isofree(w).unwrap(),
                    Allocator::Malloc => unsafe {
                        isomalloc::isofree(private_heap.as_mut(), &mut private_mgr, w).unwrap()
                    },
                    Allocator::HostMalloc => unsafe {
                        std::alloc::dealloc(
                            w,
                            std::alloc::Layout::from_size_align(1024, 16).unwrap(),
                        )
                    },
                }
            }
            let mut out = Vec::with_capacity(sizes_owned.len());
            for &size in &sizes_owned {
                let mut live: Vec<*mut u8> = Vec::with_capacity(batch);
                let t0 = Instant::now();
                for _ in 0..batch {
                    let p = match alloc {
                        Allocator::Isomalloc => pm2_isomalloc(size).unwrap(),
                        Allocator::Malloc => unsafe {
                            isomalloc::isomalloc(private_heap.as_mut(), &mut private_mgr, size)
                                .unwrap()
                        },
                        Allocator::HostMalloc => unsafe {
                            let layout =
                                std::alloc::Layout::from_size_align(size.max(1), 16).unwrap();
                            std::alloc::alloc(layout)
                        },
                    };
                    if touch {
                        unsafe { std::ptr::write_bytes(p, 0x5A, size) };
                    }
                    live.push(p);
                }
                let us = t0.elapsed().as_micros() as f64 / batch as f64;
                for p in live {
                    match alloc {
                        Allocator::Isomalloc => pm2_isofree(p).unwrap(),
                        Allocator::Malloc => unsafe {
                            isomalloc::isofree(private_heap.as_mut(), &mut private_mgr, p).unwrap()
                        },
                        Allocator::HostMalloc => unsafe {
                            let layout =
                                std::alloc::Layout::from_size_align(size.max(1), 16).unwrap();
                            std::alloc::dealloc(p, layout);
                        },
                    }
                }
                out.push((size, us));
            }
            out
        })
        .expect("alloc series");
    m.shutdown();
    out[0].1
}

/// The paper's Fig. 11 (top) x-axis: small requests, 4 B – 500 KB.
pub fn fig11_small_sizes() -> Vec<usize> {
    vec![
        4,
        256,
        4 * 1024,
        16 * 1024,
        48 * 1024,
        64 * 1024,
        96 * 1024,
        128 * 1024,
        192 * 1024,
        256 * 1024,
        384 * 1024,
        500 * 1024,
    ]
}

/// The paper's Fig. 11 (bottom) x-axis: large requests, 1 MB – 8 MB.
pub fn fig11_large_sizes() -> Vec<usize> {
    (1..=8).map(|m| m * 1024 * 1024).collect()
}

// ---------------------------------------------------------------------------
// A1 — initial slot distribution ablation (§4.1)
// ---------------------------------------------------------------------------

/// Result of a distribution run: mean multi-slot allocation time and how
/// many negotiations the workload triggered.
#[derive(Debug, Clone, Copy)]
pub struct DistributionOutcome {
    pub mean_alloc_us: f64,
    pub negotiations: u64,
}

/// Fixed multi-slot workload (32 live allocations of 2–5 slots) under a
/// given initial distribution.
pub fn distribution_outcome(dist: Distribution, p: usize, net: NetProfile) -> DistributionOutcome {
    // Trading pinned off: A1 measures how each *distribution* interacts
    // with the paper's negotiation protocol (with trades on, round-robin's
    // multi-slot weakness is absorbed by one batch trade instead).
    let mut m = Machine::launch(
        paper_config(p, net)
            .with_distribution(dist)
            .with_slot_trade(false),
    )
    .expect("launch");
    let slot = m.area().slot_size();
    let mean_alloc_us = m
        .run_on(0, move || {
            let mut live = Vec::new();
            let t0 = Instant::now();
            for i in 0..32usize {
                let slots = 2 + i % 4;
                live.push(pm2_isomalloc(slots * slot - 256).unwrap());
            }
            let us = t0.elapsed().as_micros() as f64 / 32.0;
            for q in live {
                pm2_isofree(q).unwrap();
            }
            us
        })
        .expect("workload");
    let negotiations = m.node_stats(0).negotiations;
    m.shutdown();
    DistributionOutcome {
        mean_alloc_us,
        negotiations,
    }
}

// ---------------------------------------------------------------------------
// A2 — mmapped-slot cache ablation (§6)
// ---------------------------------------------------------------------------

/// Mean single-slot acquire+release cycle (µs) with a given cache capacity,
/// under the *Syscall* map strategy (where the mmap cost the cache avoids
/// is real).
pub fn slot_cache_cycle_us(cache_capacity: usize, cycles: usize) -> f64 {
    let mut m = Machine::launch(
        Pm2Config::new(1)
            .with_area(AreaConfig {
                slot_size: 64 * 1024,
                n_slots: 1024,
            })
            .with_net(NetProfile::instant())
            .with_mode(MachineMode::Threaded)
            .with_slot_cache(cache_capacity)
            .with_map_strategy(MapStrategy::Syscall),
    )
    .expect("launch");
    let slot = m.area().slot_size();
    let us = m
        .run_on(0, move || {
            // Allocate slightly less than a slot so every cycle acquires
            // and (trim) releases exactly one slot.
            let size = slot / 2;
            let t0 = Instant::now();
            for _ in 0..cycles {
                let p = pm2_isomalloc(size).unwrap();
                unsafe { p.write(1) };
                pm2_isofree(p).unwrap();
            }
            t0.elapsed().as_micros() as f64 / cycles as f64
        })
        .expect("cycle");
    m.shutdown();
    us
}

// ---------------------------------------------------------------------------
// A4 — fit policy ablation (§4.3)
// ---------------------------------------------------------------------------

/// Outcome of a fit-policy run over a fragmentation-heavy workload.
#[derive(Debug, Clone, Copy)]
pub struct FitOutcome {
    pub mean_alloc_us: f64,
    pub slots_used: u64,
}

/// Fragmentation-heavy alloc/free pattern under a fit policy; reports mean
/// allocation time and the number of slots the heap had to acquire.
pub fn fit_policy_outcome(fit: FitPolicy, ops: usize) -> FitOutcome {
    let mut m = Machine::launch(
        Pm2Config::new(1)
            .with_area(AreaConfig {
                slot_size: 64 * 1024,
                n_slots: 4096,
            })
            .with_net(NetProfile::instant())
            .with_mode(MachineMode::Threaded)
            .with_fit(fit),
    )
    .expect("launch");
    let (us, _) = m
        .run_on(0, move || {
            let mut rng = testkit::StdRng::seed_from_u64(42);
            let mut live: Vec<(*mut u8, usize)> = Vec::new();
            let mut alloc_ns = 0u128;
            for i in 0..ops {
                if live.len() > 40 && rng.random_bool(0.55) {
                    let idx = rng.random_range(0..live.len());
                    let (p, _) = live.swap_remove(idx);
                    pm2_isofree(p).unwrap();
                } else {
                    let sz = rng.random_range(32..6000usize);
                    let t0 = Instant::now();
                    let p = pm2_isomalloc(sz).unwrap();
                    alloc_ns += t0.elapsed().as_nanos();
                    live.push((p, sz));
                }
                let _ = i;
            }
            for (p, _) in live {
                pm2_isofree(p).unwrap();
            }
            (alloc_ns as f64 / ops as f64 / 1000.0, 0u64)
        })
        .expect("fit workload");
    let slots_used = m.slot_stats(0).local_acquires + m.slot_stats(0).multi_acquires;
    m.shutdown();
    FitOutcome {
        mean_alloc_us: us,
        slots_used,
    }
}

// ---------------------------------------------------------------------------
// A5 — migration scheme ablation: iso-address vs registered pointers (§2)
// ---------------------------------------------------------------------------

/// Per-migration µs under a migration scheme, with `registered` legacy
/// pointer registrations on the thread.
pub fn scheme_migration_us(scheme: MigrationScheme, registered: usize, hops: usize) -> f64 {
    let mut m = Machine::launch(paper_config(2, NetProfile::instant()).with_scheme(scheme))
        .expect("launch");
    let us = m
        .run_on(0, move || {
            // Register pointer variables like an early-PM2 application had to.
            let cells: Vec<usize> = (0..registered).map(|i| i * 8).collect();
            let mut keys = Vec::new();
            for c in &cells {
                if let Some(k) = pm2_register_pointer(c as *const usize as usize) {
                    keys.push(k);
                }
            }
            for _ in 0..8 {
                pm2_migrate(1).unwrap();
                pm2_migrate(0).unwrap();
            }
            let t0 = Instant::now();
            for i in 0..hops {
                pm2_migrate(1 - (i % 2)).unwrap();
            }
            let us = t0.elapsed().as_micros() as f64 / hops as f64;
            if pm2_self() != 0 {
                pm2_migrate(0).unwrap();
            }
            us
        })
        .expect("scheme pingpong");
    m.shutdown();
    us
}

// ---------------------------------------------------------------------------
// A6 — pack extents vs whole slots (§6)
// ---------------------------------------------------------------------------

/// (bytes on wire, µs per migration) for a thread carrying `heap_bytes` of
/// sparse heap, with and without the "send only allocated blocks"
/// optimization.
pub fn pack_outcome(pack_full: bool, heap_bytes: usize, hops: usize) -> (u64, f64) {
    let mut m =
        Machine::launch(paper_config(2, NetProfile::myrinet_bip()).with_pack_full(pack_full))
            .expect("launch");
    let us = m
        .run_on(0, move || {
            // A sparse heap: allocate 2×, free every other block.
            let mut blocks = Vec::new();
            for _ in 0..(heap_bytes / 1024).max(1) {
                blocks.push(pm2_isomalloc(1024).unwrap());
            }
            for (i, &p) in blocks.iter().enumerate() {
                if i % 2 == 1 {
                    pm2_isofree(p).unwrap();
                }
            }
            for _ in 0..4 {
                pm2_migrate(1).unwrap();
                pm2_migrate(0).unwrap();
            }
            let t0 = Instant::now();
            for i in 0..hops {
                pm2_migrate(1 - (i % 2)).unwrap();
            }
            let us = t0.elapsed().as_micros() as f64 / hops as f64;
            if pm2_self() != 0 {
                pm2_migrate(0).unwrap();
            }
            us
        })
        .expect("pack pingpong");
    let stats = m.node_stats(0);
    let per_hop = stats.migration_bytes_out / stats.migrations_out.max(1);
    m.shutdown();
    (per_hop, us)
}

// ---------------------------------------------------------------------------
// A3 — slot size ablation (§4.1)
// ---------------------------------------------------------------------------

/// Negotiation count for a mixed workload under a given slot size
/// (trading pinned off — A3 counts the paper-protocol runs each slot
/// size induces).
pub fn slot_size_outcome(slot_size: usize, net: NetProfile) -> (u64, f64) {
    let n_slots = (256 * 1024 * 1024) / slot_size; // constant 256 MB area
    let mut m = Machine::launch(
        Pm2Config::new(2)
            .with_area(AreaConfig { slot_size, n_slots })
            .with_net(net)
            .with_mode(MachineMode::Threaded)
            .with_slot_trade(false),
    )
    .expect("launch");
    let mean_us = m
        .run_on(0, move || {
            // Mixed block sizes up to 256 KB — crossing most slot sizes.
            let mut live = Vec::new();
            let t0 = Instant::now();
            for i in 0..48usize {
                let sz = 1 << (10 + i % 9); // 1 KB .. 256 KB
                live.push(pm2_isomalloc(sz).unwrap());
            }
            let us = t0.elapsed().as_micros() as f64 / 48.0;
            for q in live {
                pm2_isofree(q).unwrap();
            }
            us
        })
        .expect("slot size workload");
    let negotiations = m.node_stats(0).negotiations;
    m.shutdown();
    (negotiations, mean_us)
}

/// Simple least-squares slope (µs per extra node) for E6 reporting.
pub fn linear_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Spin-measured context-switch cost (yield round-robin between two
/// threads), in nanoseconds — PM2's "very efficient … context switching".
pub fn ctx_switch_ns(iters: usize) -> f64 {
    let mut m =
        Machine::launch(Pm2Config::test(1).with_mode(MachineMode::Threaded)).expect("launch");
    let partner = m
        .spawn_on(0, move || {
            // Partner yields forever until its peer finishes; it exits when
            // the machine shuts down the thread via the normal exit path.
            for _ in 0..iters + 64 {
                pm2_yield();
            }
        })
        .expect("partner");
    let ns = m
        .run_on(0, move || {
            for _ in 0..64 {
                pm2_yield();
            }
            let t0 = Instant::now();
            for _ in 0..iters {
                pm2_yield();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .expect("yielder");
    m.join(partner);
    m.shutdown();
    ns
}

/// Thread create + run-to-exit + join cost, µs.
pub fn spawn_us(iters: usize) -> f64 {
    let mut m = Machine::launch(Pm2Config::test(1)).expect("launch");
    let us = m
        .run_on(0, move || {
            let t0 = Instant::now();
            for _ in 0..iters {
                let t = pm2_thread_create(|| {}).unwrap();
                pm2_join(t);
            }
            t0.elapsed().as_micros() as f64 / iters as f64
        })
        .expect("spawn loop");
    m.shutdown();
    us
}

/// A quick sanity run used by `bin/run_all` to prove the harness agrees
/// with the integration tests before measuring.
pub fn smoke() {
    let us = migration_pingpong_us(NetProfile::instant(), 0, 50);
    assert!(us > 0.0 && us < 10_000.0, "nonsense migration time {us}");
}

/// Convenience wrapper for durations in µs.
pub fn as_us(d: Duration) -> f64 {
    d.as_nanos() as f64 / 1000.0
}
