//! Plain-text table / CSV rendering for the experiment binaries.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rendered experiment table: header row + data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as an aligned ASCII table.
    pub fn ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(header, "{:>w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (no title line).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the ASCII form and persist both forms under
    /// `target/experiments/<name>.{txt,csv}`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.ascii());
        let dir = Path::new("target/experiments");
        let _ = std::fs::create_dir_all(dir);
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = f.write_all(self.ascii().as_bytes());
        }
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.csv"))) {
            let _ = f.write_all(self.csv().as_bytes());
        }
    }
}

/// Format a µs value with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Format a byte count.
pub fn bytes(v: u64) -> String {
    if v >= 1024 * 1024 {
        format!("{:.1} MiB", v as f64 / (1024.0 * 1024.0))
    } else if v >= 1024 {
        format!("{:.1} KiB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let a = t.ascii();
        assert!(a.contains("== demo =="));
        assert!(a.contains("bb"));
        assert_eq!(t.csv(), "a,bb\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(3.456), "3.46");
        assert_eq!(us(42.0), "42.0");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
