//! Plain-text table / CSV rendering for the experiment binaries, plus the
//! one JSON emitter behind every repo-root `BENCH_*.json` perf-trajectory
//! file.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rendered experiment table: header row + data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as an aligned ASCII table.
    pub fn ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(header, "{:>w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (no title line).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the ASCII form and persist both forms under
    /// `target/experiments/<name>.{txt,csv}`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.ascii());
        let dir = Path::new("target/experiments");
        let _ = std::fs::create_dir_all(dir);
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
            let _ = f.write_all(self.ascii().as_bytes());
        }
        if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.csv"))) {
            let _ = f.write_all(self.csv().as_bytes());
        }
    }
}

/// Write one repo-root `BENCH_*.json` perf-trajectory file.
///
/// Every tracked benchmark shares this envelope — `bench` id, a
/// `unit_note` explaining what the numbers mean, the `generated_by`
/// command, and a `configs` array of row objects — so the trajectory
/// files stay mutually greppable.  `rows` are pre-rendered JSON objects
/// *without* indentation (this helper owns the layout); `unit_note` and
/// friends must not contain raw `"` characters.
pub fn emit_json(file: &str, bench: &str, unit_note: &str, generated_by: &str, rows: &[String]) {
    let body: Vec<String> = rows.iter().map(|r| format!("    {r}")).collect();
    let json = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"unit_note\": \"{unit_note}\",\n  \
         \"generated_by\": \"{generated_by}\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(file, &json).unwrap_or_else(|e| panic!("writing {file}: {e}"));
    println!("wrote {file}");
}

/// Format a µs value with sensible precision.
pub fn us(v: f64) -> String {
    if v >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Format a byte count.
pub fn bytes(v: u64) -> String {
    if v >= 1024 * 1024 {
        format!("{:.1} MiB", v as f64 / (1024.0 * 1024.0))
    } else if v >= 1024 {
        format!("{:.1} KiB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let a = t.ascii();
        assert!(a.contains("== demo =="));
        assert!(a.contains("bb"));
        assert_eq!(t.csv(), "a,bb\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn emit_json_writes_the_shared_envelope() {
        let dir = std::env::temp_dir().join(format!("pm2_emit_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("BENCH_demo.json");
        let path = file.to_str().unwrap();
        emit_json(
            path,
            "demo",
            "a unit note",
            "cargo run --bin demo",
            &["{\"x\": 1}".to_string(), "{\"x\": 2}".to_string()],
        );
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"bench\": \"demo\""));
        assert!(text.contains("\"unit_note\": \"a unit note\""));
        assert!(text.contains("    {\"x\": 1},\n    {\"x\": 2}"));
        assert!(text.ends_with("  ]\n}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(3.456), "3.46");
        assert_eq!(us(42.0), "42.0");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
