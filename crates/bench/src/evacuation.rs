//! `BENCH_evacuation.json`: bulk-migration (group train) perf trajectory.
//!
//! Measures the ISSUE-4 scenario end to end: 64 threads drained off one
//! node of a 4-node machine, once with migration trains + batched group
//! commands (the default) and once with the pre-train baseline — one
//! thread per `MIGRATE_CMD`, one thread per `MIGRATION` message, each
//! command's ack awaited before the next is sent (`max_train = 1`
//! reproduces the per-thread wire behaviour exactly).
//!
//! Batched evacuation is latency-proportional to the number of
//! *destinations* (one command RTT + one train per destination); the
//! baseline pays k message latencies and k command RTTs.  On the
//! `myrinet_bip` profile the wall-clock gap is expected to be ≥ 3×.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm2::api::*;
use pm2::{Machine, MachineMode, NetProfile, Pm2Config};

use crate::harness::paper_area;

/// Threads evacuated per run.
pub const EVAC_THREADS: usize = 64;

/// One measured evacuation run.
#[derive(Debug, Clone)]
pub struct EvacRow {
    pub net: &'static str,
    /// Wall-clock from the evacuator's first command until the last
    /// thread adopted, milliseconds — train path.
    pub batched_ms: f64,
    /// Same, with `max_train = 1` and serialized per-thread commands.
    pub per_thread_ms: f64,
    /// per_thread_ms / batched_ms.
    pub speedup: f64,
    /// Mean threads per outgoing `MIGRATION` message in the batched run.
    pub threads_per_message: f64,
    /// `MIGRATION` messages the batched run used (baseline uses 64).
    pub trains: u64,
    /// `MIGRATE_CMD` messages the batched run used (baseline uses 64).
    pub commands: u64,
}

struct RunStats {
    wall_ms: f64,
    trains: u64,
    threads_per_message: f64,
    commands: u64,
}

/// Drain [`EVAC_THREADS`] threads off node 0 of a 4-node machine and time
/// it.  `batched`: group commands + trains; otherwise the per-thread
/// baseline.
fn evacuate_once(net: NetProfile, batched: bool) -> RunStats {
    let cfg = Pm2Config::new(4)
        .with_area(paper_area())
        .with_net(net)
        .with_mode(MachineMode::Threaded)
        .with_slot_cache(0)
        .with_max_train(if batched { EVAC_THREADS } else { 1 });
    let mut m = Machine::launch(cfg).expect("launch");

    // The evacuees: plain yield-loops on node 0 until told to finish —
    // Ready at every instant, no migration code of their own.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for _ in 0..EVAC_THREADS {
        let stop = Arc::clone(&stop);
        workers.push(
            m.spawn_on(0, move || {
                while !stop.load(Ordering::Relaxed) {
                    pm2_yield();
                }
            })
            .expect("spawn worker"),
        );
    }
    let tids: Vec<u64> = workers.iter().map(|w| w.tid).collect();
    while m.node_stats(0).spawns < EVAC_THREADS as u64 {
        std::thread::sleep(Duration::from_micros(200));
    }

    // The evacuator lives on node 1 (so its commands really cross the
    // wire) and spreads the load over nodes 1..3, like a balancer round
    // evacuating a machine node would.
    let started = Arc::new(AtomicBool::new(false));
    let started2 = Arc::clone(&started);
    let n_cmds = if batched { 3 } else { EVAC_THREADS };
    let evacuator = m
        .spawn_on(1, move || {
            pm2_set_migratable(false);
            pm2_set_control_priority(true);
            started2.store(true, Ordering::SeqCst);
            if batched {
                // One group command per destination, full tid list each.
                for dest in 1..4usize {
                    let group: Vec<u64> = tids
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| 1 + i % 3 == dest)
                        .map(|(_, &t)| t)
                        .collect();
                    let accepted = pm2_group_migrate(0, dest, &group).expect("group migrate");
                    assert_eq!(accepted, group.len(), "all evacuees must be accepted");
                }
            } else {
                // The pre-train baseline: one command per thread, each
                // ack awaited before the next command goes out.
                for (i, &tid) in tids.iter().enumerate() {
                    let dest = 1 + i % 3;
                    let accepted = pm2_group_migrate(0, dest, &[tid]).expect("single migrate");
                    assert_eq!(accepted, 1, "evacuee must be accepted");
                }
            }
        })
        .expect("spawn evacuator");
    while !started.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_micros(50));
    }
    let t0 = Instant::now();
    loop {
        let arrived: u64 = (1..4).map(|n| m.node_stats(n).migrations_in).sum();
        if arrived >= EVAC_THREADS as u64 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "evacuation wedged: {arrived}/{EVAC_THREADS} arrived"
        );
        std::thread::sleep(Duration::from_micros(100));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert!(!m.join(evacuator).panicked);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        assert!(!m.join(w).panicked);
    }
    let s0 = m.node_stats(0);
    assert_eq!(s0.migrations_out, EVAC_THREADS as u64);
    let stats = RunStats {
        wall_ms,
        trains: s0.trains_out,
        threads_per_message: s0.threads_per_message(),
        commands: n_cmds as u64,
    };
    m.shutdown();
    stats
}

/// Measure batched vs per-thread evacuation on each net profile.
pub fn evacuation_rows() -> Vec<EvacRow> {
    [
        ("instant", NetProfile::instant()),
        ("myrinet_bip", NetProfile::myrinet_bip()),
        ("fast_ethernet", NetProfile::fast_ethernet()),
    ]
    .into_iter()
    .map(|(net, profile)| {
        let b = evacuate_once(profile, true);
        let p = evacuate_once(profile, false);
        EvacRow {
            net,
            batched_ms: b.wall_ms,
            per_thread_ms: p.wall_ms,
            speedup: p.wall_ms / b.wall_ms,
            threads_per_message: b.threads_per_message,
            trains: b.trains,
            commands: b.commands,
        }
    })
    .collect()
}

/// Run the evacuation benchmark and write `BENCH_evacuation.json` into the
/// current directory (the repo root under `cargo run`).  Also prints each
/// row to stdout.
pub fn write_evacuation_json() {
    let rows = evacuation_rows();
    let mut out = Vec::new();
    for r in &rows {
        println!(
            "evacuation [{}]: {} threads off 1 node → 3 nodes: batched {:.2} ms \
             ({} trains, {:.1} threads/msg, {} cmds) vs per-thread {:.2} ms — {:.1}×",
            r.net,
            EVAC_THREADS,
            r.batched_ms,
            r.trains,
            r.threads_per_message,
            r.commands,
            r.per_thread_ms,
            r.speedup
        );
        out.push(format!(
            "{{\"net\": \"{}\", \"threads\": {}, \"batched_ms\": {:.3}, \
             \"per_thread_ms\": {:.3}, \"speedup\": {:.2}, \
             \"threads_per_message\": {:.2}, \"trains\": {}, \"commands\": {}}}",
            r.net,
            EVAC_THREADS,
            r.batched_ms,
            r.per_thread_ms,
            r.speedup,
            r.threads_per_message,
            r.trains,
            r.commands
        ));
    }
    crate::report::emit_json(
        "BENCH_evacuation.json",
        "evacuation",
        "wall-clock ms to drain 64 threads off node 0 of a 4-node threaded machine onto \
         nodes 1-3, per net profile; batched = group MIGRATE_CMD per destination + \
         migration trains, per_thread = the pre-train baseline (one command and one wire \
         message per thread, serialized acks, max_train=1); threads_per_message > 1 proves \
         trains formed",
        "cargo run --release -p pm2-bench --bin evacuate",
        &out,
    );
}
