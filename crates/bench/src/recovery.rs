//! Node-death recovery benchmark: heartbeat detection latency, spill-log
//! replay + survivor re-adoption, and orphan-slot reclamation, at p = 4
//! and p = 8.
//!
//! The scenario is the chaos drill from ISSUE 7: a machine with a spill
//! directory checkpoints a population of iso-allocating threads on the
//! victim node, two more threads are spawned *after* the checkpoint (so
//! they are unrecoverable by construction), the victim's power cord is
//! pulled **silently**, and the clock runs on three phases:
//!
//! * **detect** — kill → the survivors' heartbeat detector declares the
//!   corpse dead (`Machine::wait_node_dead` observes the broadcast);
//! * **recover** — spill replay + re-adoption `MIGRATION` trains until
//!   every checkpointed thread's location points at a survivor;
//! * **reclaim** — survivor audit + orphan-range grant until the
//!   exclusive-ownership partition closes again.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm2::{Machine, Pm2Config};

/// One recovery drill's measurements.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Node count.
    pub nodes: usize,
    /// Threads covered by the pre-kill checkpoint.
    pub checkpointed: u32,
    /// Threads re-adopted onto survivors.
    pub threads_recovered: usize,
    /// Threads lost (spawned after the checkpoint, by construction).
    pub threads_lost: usize,
    /// Orphaned slots granted back to a survivor.
    pub slots_reclaimed: usize,
    /// Silent kill → NODE_DEAD observed at the host.
    pub detect_ms: f64,
    /// Spill replay + re-adoption of every checkpointed thread.
    pub recover_ms: f64,
    /// Survivor audit + orphan-slot grant.
    pub reclaim_ms: f64,
    /// Did the post-recovery audit pass the exclusive-ownership check?
    pub partition_ok: bool,
}

/// Run the drill on a fresh machine with `nodes` nodes.
pub fn recovery_drill(nodes: usize) -> RecoveryRun {
    assert!(nodes >= 2, "recovery needs a survivor");
    let dir = std::env::temp_dir().join(format!(
        "pm2-bench-recovery-{}-p{nodes}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch spill dir");
    let mut m = Machine::launch(
        Pm2Config::test(nodes)
            .with_reply_deadline(Duration::from_secs(5))
            .with_spill_dir(&dir)
            .with_failure_timeout(Duration::from_millis(200))
            .with_heartbeat_every(Duration::from_millis(25))
            .with_idle_park(Duration::from_millis(25)),
    )
    .expect("launch");
    let victim = 1usize;
    let stop = Arc::new(AtomicBool::new(false));

    // Eight iso-allocating loop threads on the victim, checkpointed…
    let mut recovered_handles = Vec::new();
    for i in 0..8u64 {
        let stop = Arc::clone(&stop);
        recovered_handles.push(
            m.spawn_on_ret(victim, move || {
                let cell = pm2::IsoBox::new(0xBEEF00 + i).expect("isomalloc");
                while !stop.load(Ordering::SeqCst) {
                    marcel::yield_now();
                }
                *cell
            })
            .expect("spawn"),
        );
    }
    std::thread::sleep(Duration::from_millis(100));
    let checkpointed = m.checkpoint_node(victim).expect("checkpoint");

    // …and two post-checkpoint threads: unrecoverable by construction.
    let mut lost_handles = Vec::new();
    for _ in 0..2 {
        let stop = Arc::clone(&stop);
        lost_handles.push(
            m.spawn_on_ret(victim, move || {
                while !stop.load(Ordering::SeqCst) {
                    marcel::yield_now();
                }
                0u64
            })
            .expect("spawn"),
        );
    }
    std::thread::sleep(Duration::from_millis(50));

    let t0 = Instant::now();
    m.kill_node_silent(victim).expect("kill");
    assert!(
        m.wait_node_dead(victim, Duration::from_secs(30)),
        "heartbeat detector must declare the corpse dead"
    );
    let detect_ms = t0.elapsed().as_secs_f64() * 1e3;

    let rep = m.recover_node(victim).expect("recover");

    // Everything resolves: recovered threads finish with their iso value,
    // lost threads fail typed.
    stop.store(true, Ordering::SeqCst);
    for (i, h) in recovered_handles.into_iter().enumerate() {
        if rep.threads_recovered == 8 {
            assert_eq!(h.join().expect("recovered join"), 0xBEEF00 + i as u64);
        } else {
            let _ = h.join();
        }
    }
    for h in lost_handles {
        assert!(h.join().is_err(), "lost threads must fail typed");
    }
    let partition_ok = m.audit().expect("audit").check_partition().is_ok();
    m.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    RecoveryRun {
        nodes,
        checkpointed,
        threads_recovered: rep.threads_recovered,
        threads_lost: rep.threads_lost,
        slots_reclaimed: rep.slots_reclaimed,
        detect_ms,
        recover_ms: rep.recovery.as_secs_f64() * 1e3,
        reclaim_ms: rep.reclaim.as_secs_f64() * 1e3,
        partition_ok,
    }
}

/// Emit `BENCH_recovery.json` at the repo root (p = 4 and p = 8).
pub fn write_recovery_json() {
    let mut rows = Vec::new();
    for nodes in [4usize, 8] {
        let r = recovery_drill(nodes);
        println!(
            "recovery [p={}]: detect {:.1} ms, recover {:.1} ms, reclaim {:.2} ms — \
             {} recovered / {} lost / {} slots reclaimed, partition {}",
            r.nodes,
            r.detect_ms,
            r.recover_ms,
            r.reclaim_ms,
            r.threads_recovered,
            r.threads_lost,
            r.slots_reclaimed,
            if r.partition_ok { "ok" } else { "BROKEN" }
        );
        assert!(r.partition_ok, "post-recovery audit must pass");
        assert_eq!(
            r.threads_recovered as u32, r.checkpointed,
            "zero checkpointed threads may be lost"
        );
        rows.push(format!(
            "{{\"nodes\": {}, \"checkpointed\": {}, \"threads_recovered\": {}, \
             \"threads_lost\": {}, \"slots_reclaimed\": {}, \"detect_ms\": {:.3}, \
             \"recover_ms\": {:.3}, \"reclaim_ms\": {:.3}, \"partition_ok\": {}}}",
            r.nodes,
            r.checkpointed,
            r.threads_recovered,
            r.threads_lost,
            r.slots_reclaimed,
            r.detect_ms,
            r.recover_ms,
            r.reclaim_ms,
            r.partition_ok
        ));
    }
    crate::report::emit_json(
        "BENCH_recovery.json",
        "recovery",
        "node-death drill: silent kill → heartbeat detection → spill-log replay + \
         survivor re-adoption → orphan-slot reclamation; detect_ms is kill-to-NODE_DEAD \
         at the host, recover_ms is replay + re-adoption, reclaim_ms is audit + grant; \
         8 checkpointed threads must all survive, 2 post-checkpoint threads are lost by \
         construction; instant wire profile",
        "cargo run --release -p pm2-bench --bin recover",
        &rows,
    );
}
