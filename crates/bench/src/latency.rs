//! `BENCH_latency.json`: the poll-latency perf trajectory.
//!
//! Records what the event-driven driver core is worth: one-way migration
//! hop latency per net profile together with the driver wake-up counters
//! that prove the latency comes from doorbell wake-ups, not polling (a
//! polling driver shows a huge `steps_per_hop` and zero parks; the
//! event-driven one parks roughly once per hop).  The PR-2 polled baseline
//! measured ~1,079 µs one-way on the `instant` profile — pure driver
//! latency, since pack+unpack cost ~2.5 µs.

use pm2::NetProfile;

use crate::harness::migration_breakdown;

/// One measured profile row of [`write_latency_json`].
#[derive(Debug, Clone)]
pub struct LatencyRow {
    pub net: &'static str,
    pub one_way_us: f64,
    pub pack_us: f64,
    pub wire_us: f64,
    pub unpack_us: f64,
    pub driver_parks: u64,
    pub driver_wakeups: u64,
    pub steps_per_hop: f64,
    pub hops: usize,
}

/// Measure the zero-payload ping-pong on each net profile.
pub fn latency_rows(hops: usize) -> Vec<LatencyRow> {
    [
        ("instant", NetProfile::instant()),
        ("myrinet_bip", NetProfile::myrinet_bip()),
    ]
    .into_iter()
    .map(|(net, profile)| {
        let b = migration_breakdown(profile, 0, hops);
        LatencyRow {
            net,
            one_way_us: b.one_way_us,
            pack_us: b.pack_us,
            wire_us: b.wire_us,
            unpack_us: b.unpack_us,
            driver_parks: b.driver_parks,
            driver_wakeups: b.driver_wakeups,
            steps_per_hop: b.steps as f64 / b.hops as f64,
            hops: b.hops,
        }
    })
    .collect()
}

/// Run the latency benchmark and write `BENCH_latency.json` into the
/// current directory (the repo root under `cargo run`).  Also prints each
/// row to stdout.
pub fn write_latency_json(hops: usize) {
    let rows = latency_rows(hops);
    let mut out = Vec::new();
    for r in &rows {
        println!(
            "latency [{}]: {:.1} µs one-way (pack {:.2} + wire {:.2} + unpack {:.2}), \
             {} parks / {} wakeups over {} hops, {:.1} steps/hop",
            r.net,
            r.one_way_us,
            r.pack_us,
            r.wire_us,
            r.unpack_us,
            r.driver_parks,
            r.driver_wakeups,
            r.hops,
            r.steps_per_hop
        );
        out.push(format!(
            "{{\"net\": \"{}\", \"hops\": {}, \"one_way_us\": {:.3}, \
             \"pack_us\": {:.3}, \"wire_us\": {:.3}, \"unpack_us\": {:.3}, \
             \"driver_parks\": {}, \"driver_wakeups\": {}, \"steps_per_hop\": {:.1}}}",
            r.net,
            r.hops,
            r.one_way_us,
            r.pack_us,
            r.wire_us,
            r.unpack_us,
            r.driver_parks,
            r.driver_wakeups,
            r.steps_per_hop
        ));
    }
    crate::report::emit_json(
        "BENCH_latency.json",
        "latency",
        "one-way hop latency of a zero-payload 2-node ping-pong (threaded mode) per net \
         profile; driver_parks/driver_wakeups count doorbell parks of the event-driven \
         drivers — a polling driver would show zero parks and orders of magnitude more \
         steps_per_hop",
        "cargo run --release -p pm2-bench --bin latency",
        &out,
    );
}
