//! `BENCH_chaos.json`: what the machine sustains when the fabric
//! misbehaves.
//!
//! Three drills, all judged by the capacity harness's IC-style SLO gates
//! (failure rate ≤ 0.2, p99 ≤ 5000 ms):
//!
//! * **Lossy ramp** — the mixed chaos workload ramped to its max
//!   sustainable RPS under a seeded loss plan at 0%, 0.1% and 1% message
//!   loss, p = 4 and p = 8.  The protected exactly-once tag class and the
//!   control-plane retry/dedup machinery are what keep the 1% column from
//!   collapsing: every row records whether at least one SLO-gated round
//!   passed.
//! * **Kill-node recovery** — the `pm2-workload` kill drill: baseline
//!   round, checkpoint, kill node 0 (the §4.4 coordinator — its successor
//!   is elected), recover, aftermath round.  The headline is the
//!   disruption window in ms.
//! * **Partition heal** — cut the fabric in two for 300 ms under load,
//!   heal, and demand re-convergence: nobody falsely declared dead,
//!   gossiped wealth fresh everywhere, the same rate sustained post-heal,
//!   far-side residents intact.
//!
//! Same seed ⇒ same fault schedule, so a regression in any row replays.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pm2::{FaultPlan, Machine, Pm2Config};
use pm2_workload::{
    register_services, run_kill_node, run_partition, run_ramp, CapacityReport, ChaosReport,
    PartitionReport, RampConfig, WorkloadSpec,
};

/// Injector threads feeding the issuer per round.
pub const CHAOS_INJECTORS: usize = 2;

/// The seeded fault schedules: one seed for the whole file, so the
/// entire bench replays byte-identically.
pub const CHAOS_SEED: u64 = 0xB0A7_1999;

/// Loss rates tracked by the ramp matrix: healthy, 0.1%, 1%.
pub const LOSS_RATES: [f64; 3] = [0.0, 0.001, 0.01];

/// Node counts tracked by every drill.
pub const NODE_COUNTS: [usize; 2] = [4, 8];

/// Fixed offered rate for the kill and partition drills: modest on
/// purpose — those gates judge fault handling, not saturation.
pub const DRILL_RPS: u64 = 50;

fn scratch_dir(name: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pm2-bench-chaos-{name}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The CI-sized lossy ramp: 250 ms rounds from 50 rps to a 250 rps
/// ceiling.  Generous drain/quiet windows — retries through loss take a
/// retry-slice or two to land and must not be miscounted as timeouts.
pub fn lossy_ramp() -> RampConfig {
    RampConfig {
        initial_rps: 50,
        increment_rps: 100,
        max_rps: 250,
        round_duration: Duration::from_millis(250),
        drain_grace: Duration::from_secs(2),
        quiet_timeout: Duration::from_secs(10),
        ..RampConfig::default()
    }
}

/// The fixed-rate gate config for the kill and partition drills.
pub fn drill_gate() -> RampConfig {
    RampConfig {
        round_duration: Duration::from_millis(300),
        drain_grace: Duration::from_secs(2),
        quiet_timeout: Duration::from_secs(10),
        ..RampConfig::default()
    }
}

/// Ramp the mixed chaos workload on a p-node machine under `loss`.
pub fn run_lossy_ramp(nodes: usize, loss: f64) -> CapacityReport {
    let mut cfg = Pm2Config::test(nodes).with_reply_deadline(Duration::from_secs(5));
    if loss > 0.0 {
        cfg = cfg.with_fault_plan(FaultPlan::lossy(CHAOS_SEED, loss));
    }
    let mut m = Machine::launch(cfg).expect("launch");
    register_services(&m);
    let report = run_ramp(&m, &WorkloadSpec::chaos(), lossy_ramp(), CHAOS_INJECTORS);
    m.shutdown();
    report
}

/// The kill-node drill on a p-node machine: victim 0, so the drill also
/// covers coordinator election.
pub fn run_kill_drill(nodes: usize) -> ChaosReport {
    let dir = scratch_dir("kill");
    let mut m = Machine::launch(
        Pm2Config::test(nodes)
            .with_reply_deadline(Duration::from_secs(5))
            .with_spill_dir(&dir),
    )
    .expect("launch");
    register_services(&m);
    let rep =
        run_kill_node(&mut m, 0, &drill_gate(), DRILL_RPS, CHAOS_INJECTORS).expect("kill drill");
    m.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    rep
}

/// The partition drill on a p-node machine: halves cut for 300 ms, with
/// the detector armed but timed well past the window.
pub fn run_partition_drill(nodes: usize) -> PartitionReport {
    let mut m = Machine::launch(
        Pm2Config::test(nodes)
            .with_reply_deadline(Duration::from_secs(5))
            .with_failure_timeout(Duration::from_secs(30))
            .with_heartbeat_every(Duration::from_millis(25)),
    )
    .expect("launch");
    register_services(&m);
    let half = nodes / 2;
    let a: Vec<usize> = (0..half).collect();
    let b: Vec<usize> = (half..nodes).collect();
    let rep = run_partition(
        &mut m,
        &a,
        &b,
        Duration::from_millis(300),
        &drill_gate(),
        DRILL_RPS,
        CHAOS_INJECTORS,
    )
    .expect("partition drill");
    m.shutdown();
    rep
}

fn ramp_row(loss: f64, r: &CapacityReport) -> String {
    let rounds: Vec<String> = r
        .rounds
        .iter()
        .map(|rd| {
            format!(
                "{{\"rps\": {}, \"issued\": {}, \"ok\": {}, \"failed\": {}, \
                 \"timed_out\": {}, \"failure_rate\": {:.4}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"verdict\": \"{}\"}}",
                rd.rps,
                rd.issued,
                rd.ok,
                rd.failed,
                rd.timed_out,
                rd.failure_rate,
                rd.p50_ms,
                rd.p99_ms,
                rd.verdict.label()
            )
        })
        .collect();
    let max = match r.max_sustainable_rps {
        Some(rps) => rps.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"drill\": \"lossy_ramp\", \"workload\": \"{}\", \"p\": {}, \
         \"loss\": {}, \"seed\": {}, \"max_sustainable_rps\": {}, \
         \"slo_round_passed\": {}, \"rounds\": [{}]}}",
        r.workload,
        r.nodes,
        loss,
        CHAOS_SEED,
        max,
        r.max_sustainable_rps.is_some(),
        rounds.join(", ")
    )
}

fn kill_row(r: &ChaosReport) -> String {
    format!(
        "{{\"drill\": \"kill_node\", \"workload\": \"{}\", \"p\": {}, \
         \"victim\": {}, \"rps\": {}, \"baseline_verdict\": \"{}\", \
         \"checkpointed\": {}, \"disruption_ms\": {:.3}, \
         \"threads_recovered\": {}, \"threads_lost\": {}, \
         \"slots_reclaimed\": {}, \"aftermath_verdict\": \"{}\", \
         \"residents_recovered\": {}, \"slo_ok\": {}}}",
        r.workload,
        r.nodes,
        r.victim,
        r.rps,
        r.baseline.verdict.label(),
        r.checkpointed,
        r.disruption_ms,
        r.recovery.threads_recovered,
        r.recovery.threads_lost,
        r.recovery.slots_reclaimed,
        r.aftermath.verdict.label(),
        r.residents_recovered,
        r.slo_ok()
    )
}

fn partition_row(r: &PartitionReport) -> String {
    format!(
        "{{\"drill\": \"partition\", \"workload\": \"{}\", \"p\": {}, \
         \"rps\": {}, \"baseline_verdict\": \"{}\", \"partition_ms\": {:.3}, \
         \"messages_cut\": {}, \"false_deaths\": {}, \"wealth_converged\": {}, \
         \"aftermath_verdict\": \"{}\", \"residents_recovered\": {}, \
         \"slo_ok\": {}}}",
        r.workload,
        r.nodes,
        r.rps,
        r.baseline.verdict.label(),
        r.partition_ms,
        r.messages_cut,
        r.false_deaths,
        r.wealth_converged,
        r.aftermath.verdict.label(),
        r.residents_recovered,
        r.slo_ok()
    )
}

/// Run the full drill matrix and write `BENCH_chaos.json` into the
/// current directory (the repo root under `cargo run`).  Prints each
/// row's summary as it lands so a hung drill is visible in CI logs.
pub fn write_chaos_json() {
    let mut rows = Vec::new();

    for &nodes in &NODE_COUNTS {
        for &loss in &LOSS_RATES {
            let r = run_lossy_ramp(nodes, loss);
            println!(
                "chaos [lossy p={} loss={:.1}%]: max sustainable {} rps over {} rounds",
                nodes,
                loss * 100.0,
                r.max_sustainable_rps
                    .map_or_else(|| "none".into(), |v| v.to_string()),
                r.rounds.len()
            );
            rows.push(ramp_row(loss, &r));
        }
    }

    for &nodes in &NODE_COUNTS {
        let r = run_kill_drill(nodes);
        println!("chaos [kill p={nodes}]: {}", r.summary());
        rows.push(kill_row(&r));

        let r = run_partition_drill(nodes);
        println!("chaos [partition p={nodes}]: {}", r.summary());
        rows.push(partition_row(&r));
    }

    crate::report::emit_json(
        "BENCH_chaos.json",
        "chaos",
        "fault-injected capacity and recovery: max sustainable RPS of the mixed chaos \
         workload under seeded message loss (0%, 0.1%, 1%; same seed replays the same \
         schedule), kill-node disruption window in ms (victim 0 = the §4.4 coordinator, \
         so each run covers election), and transient-partition heal (messages cut, false \
         deaths, gossip re-convergence); every round SLO-gated at failure_rate ≤ 0.2 \
         and p99 ≤ 5000 ms",
        "cargo run --release -p pm2-bench --bin chaos",
        &rows,
    );
}
