//! A1–A6 — ablations of the design choices DESIGN.md calls out.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin ablations
//! ```

use pm2::{Distribution, FitPolicy, MigrationScheme, NetProfile};
use pm2_bench::{
    distribution_outcome, fit_policy_outcome, pack_outcome, scheme_migration_us,
    slot_cache_cycle_us, slot_size_outcome, Table,
};

fn a1_distribution() {
    let mut t = Table::new(
        "A1: initial slot distribution vs multi-slot allocation (32 allocs of 2–5 slots)",
        &["distribution", "nodes", "negotiations", "mean alloc (µs)"],
    );
    for p in [2usize, 4, 8] {
        for dist in [
            Distribution::RoundRobin,
            Distribution::BlockCyclic(8),
            Distribution::Partitioned,
        ] {
            let o = distribution_outcome(dist, p, NetProfile::myrinet_bip());
            t.row(vec![
                dist.name(),
                p.to_string(),
                o.negotiations.to_string(),
                pm2_bench::us(o.mean_alloc_us),
            ]);
        }
    }
    t.emit("a1_distribution");
}

fn a2_slot_cache() {
    let mut t = Table::new(
        "A2: mmapped-slot cache (§6) — slot acquire/release cycle, Syscall map strategy",
        &["cache capacity", "µs per cycle"],
    );
    for cap in [0usize, 1, 8, 32] {
        let us = slot_cache_cycle_us(cap, 300);
        t.row(vec![cap.to_string(), pm2_bench::us(us)]);
    }
    t.emit("a2_slot_cache");
}

fn a3_slot_size() {
    let mut t = Table::new(
        "A3: slot size vs negotiation rate (2 nodes, mixed 1 KB–256 KB blocks)",
        &["slot size", "negotiations", "mean alloc (µs)"],
    );
    for ss in [16 * 1024usize, 64 * 1024, 256 * 1024, 1024 * 1024] {
        let (negs, us) = slot_size_outcome(ss, NetProfile::myrinet_bip());
        t.row(vec![
            pm2_bench::bytes(ss as u64),
            negs.to_string(),
            pm2_bench::us(us),
        ]);
    }
    t.emit("a3_slot_size");
}

fn a4_fit_policy() {
    let mut t = Table::new(
        "A4: block placement policy (random alloc/free churn, 4000 ops)",
        &["policy", "mean alloc (µs)", "slots acquired"],
    );
    for (fit, name) in [
        (FitPolicy::FirstFit, "first-fit (paper)"),
        (FitPolicy::BestFit, "best-fit"),
        (FitPolicy::NextFit, "next-fit"),
    ] {
        let o = fit_policy_outcome(fit, 4000);
        t.row(vec![
            name.into(),
            pm2_bench::us(o.mean_alloc_us),
            o.slots_used.to_string(),
        ]);
    }
    t.emit("a4_fit_policy");
}

fn a5_scheme() {
    let mut t = Table::new(
        "A5: migration scheme — iso-address vs early-PM2 registered pointers",
        &["scheme", "registered ptrs", "µs/migration"],
    );
    let iso = scheme_migration_us(MigrationScheme::IsoAddress, 0, 300);
    t.row(vec![
        "iso-address (paper)".into(),
        "n/a".into(),
        pm2_bench::us(iso),
    ]);
    for k in [0usize, 4, 16] {
        let us = scheme_migration_us(MigrationScheme::RegisteredPointers, k, 300);
        t.row(vec![
            "registered-pointers".into(),
            k.to_string(),
            pm2_bench::us(us),
        ]);
    }
    t.emit("a5_scheme");
}

fn a6_pack() {
    let mut t = Table::new(
        "A6: migration packing — busy blocks only (§6) vs whole slots (sparse 64 KB heap)",
        &["packing", "bytes on wire", "µs/migration (myrinet)"],
    );
    for (full, name) in [(false, "extents (paper §6)"), (true, "whole slots")] {
        let (bytes, us) = pack_outcome(full, 64 * 1024, 120);
        t.row(vec![
            name.into(),
            pm2_bench::bytes(bytes),
            pm2_bench::us(us),
        ]);
    }
    t.emit("a6_pack");
}

fn main() {
    a1_distribution();
    a2_slot_cache();
    a3_slot_size();
    a4_fit_policy();
    a5_scheme();
    a6_pack();
}
