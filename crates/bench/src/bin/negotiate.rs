//! Emit `BENCH_negotiation.json` (slot-acquisition latency: decentralized
//! trades vs the forced-global §4.4 protocol, plus prefetch hit rate).
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin negotiate
//! ```

fn main() {
    pm2_bench::write_negotiation_json();
}
