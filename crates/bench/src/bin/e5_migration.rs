//! E5 — thread migration latency (paper §5 ¶1).
//!
//! "The time needed to migrate a thread with no static data between two
//! nodes is less than 75 µs … This time should be compared to the 150 µs
//! reported for the migration of a null thread in Active Threads."
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin e5_migration
//! ```

use pm2::NetProfile;
use pm2_bench::{migration_buffer_bytes, migration_pingpong_us, Table};

fn main() {
    let hops = 400;

    let mut t = Table::new(
        "E5: one-way thread migration latency (ping-pong, 2 nodes)",
        &[
            "wire model",
            "payload",
            "buffer",
            "µs/migration",
            "paper reference",
        ],
    );
    for net in [
        NetProfile::instant(),
        NetProfile::myrinet_bip(),
        NetProfile::fast_ethernet(),
    ] {
        for payload in [0usize, 4 * 1024, 32 * 1024, 256 * 1024] {
            let us = migration_pingpong_us(net, payload, hops);
            let buf = migration_buffer_bytes(payload);
            let reference = if payload == 0 && net.name == "myrinet-bip" {
                "paper: < 75 µs; Active Threads: 150 µs"
            } else {
                ""
            };
            t.row(vec![
                net.name.to_string(),
                pm2_bench::bytes(payload as u64),
                pm2_bench::bytes(buf),
                pm2_bench::us(us),
                reference.into(),
            ]);
        }
    }
    t.emit("e5_migration");

    // Headline check: null-thread migration on the Myrinet model.
    let headline = migration_pingpong_us(NetProfile::myrinet_bip(), 0, hops);
    println!(
        "headline: null-thread migration = {:.1} µs  (paper < 75 µs → {})",
        headline,
        if headline < 75.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
