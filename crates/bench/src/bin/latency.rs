//! Emit `BENCH_latency.json` (one-way hop latency + driver wake-up
//! counts per net profile) — the quick CI-friendly slice of `run_all`.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin latency
//! ```

fn main() {
    pm2_bench::write_latency_json(400);
}
