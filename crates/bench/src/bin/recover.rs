//! Emit `BENCH_recovery.json` (node-death drill: heartbeat detection,
//! checkpoint recovery, orphan-slot reclamation at p = 4 and p = 8).
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin recover
//! ```

fn main() {
    pm2_bench::write_recovery_json();
}
