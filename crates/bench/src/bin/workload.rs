//! Ramp the tracked workload mixes to their max sustainable rate and
//! write `BENCH_throughput.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin workload
//! ```

fn main() {
    pm2_bench::write_throughput_json();
}
