//! Emit `BENCH_evacuation.json` (bulk evacuation wall-clock, batched
//! migration trains vs the per-thread-message baseline).
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin evacuate
//! ```

fn main() {
    pm2_bench::write_evacuation_json();
}
