//! E7/E8 — Figure 11: compared performance of `malloc` and `pm2_isomalloc`
//! for small (top panel, ≤ 500 KB) and large (bottom panel, 1–8 MB)
//! requests in a 2-node configuration.
//!
//! Expected shape (paper): the two curves coincide below the slot size;
//! beyond it `pm2_isomalloc` pays a near-constant negotiation premium
//! (every multi-slot allocation negotiates under round-robin), which
//! becomes insignificant relative to total allocation time for large
//! blocks — "our approach scales well".
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin fig11
//! ```

use pm2::NetProfile;
use pm2_bench::{alloc_series_us, fig11_large_sizes, fig11_small_sizes, Allocator, Table};

fn panel(title: &str, name: &str, sizes: &[usize], batch: usize) {
    let net = NetProfile::myrinet_bip();
    let iso = alloc_series_us(Allocator::Isomalloc, sizes, net, batch, true);
    let mal = alloc_series_us(Allocator::Malloc, sizes, net, batch, true);
    let mut t = Table::new(
        title,
        &[
            "block size (B)",
            "malloc (µs)",
            "pm2_isomalloc (µs)",
            "overhead (µs)",
            "overhead (%)",
        ],
    );
    for ((size, iso_us), (_, mal_us)) in iso.iter().zip(mal.iter()) {
        let over = iso_us - mal_us;
        let pct = if *mal_us > 0.0 {
            100.0 * over / mal_us
        } else {
            0.0
        };
        t.row(vec![
            size.to_string(),
            pm2_bench::us(*mal_us),
            pm2_bench::us(*iso_us),
            pm2_bench::us(over),
            format!("{pct:.0}%"),
        ]);
    }
    t.emit(name);
}

fn main() {
    panel(
        "Fig. 11 (top): average allocation time, small requests (2 nodes, round-robin)",
        "fig11_small",
        &fig11_small_sizes(),
        24,
    );
    panel(
        "Fig. 11 (bottom): average allocation time, large requests (2 nodes, round-robin)",
        "fig11_large",
        &fig11_large_sizes(),
        6,
    );

    // Reference only: the host allocator under this (sandboxed) kernel.
    let net = NetProfile::myrinet_bip();
    let host = alloc_series_us(Allocator::HostMalloc, &fig11_small_sizes(), net, 24, true);
    let mut t = Table::new(
        "reference: host malloc under the sandboxed kernel (page faults ~100× paper hardware)",
        &["block size (B)", "host malloc (µs)"],
    );
    for (size, us) in host {
        t.row(vec![size.to_string(), pm2_bench::us(us)]);
    }
    t.emit("fig11_hostmalloc");

    println!(
        "shape check: isomalloc ≈ malloc below the 64 KiB slot size; a near-constant\n\
         negotiation premium above it; premium relatively insignificant by 8 MB."
    );
}
