//! E6 — global negotiation cost vs node count (paper §5 ¶2).
//!
//! "This negotiation takes 255 µs in a 2-node configuration when using
//! BIP/Myrinet.  If the underlying architecture provides more than 2 nodes,
//! another 165 µs should be added per extra node."
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin e6_negotiation
//! ```

use pm2::NetProfile;
use pm2_bench::{linear_slope, negotiation_us, Table};

fn main() {
    let rounds = 40;
    let mut t = Table::new(
        "E6: multi-slot negotiation cost vs node count (round-robin)",
        &[
            "nodes",
            "instant wire (µs)",
            "myrinet-bip (µs)",
            "paper (µs)",
        ],
    );
    let mut myri_points = Vec::new();
    for p in [2usize, 3, 4, 6, 8] {
        let inst = negotiation_us(p, NetProfile::instant(), rounds);
        let myri = negotiation_us(p, NetProfile::myrinet_bip(), rounds);
        myri_points.push((p as f64, myri));
        let paper = 255.0 + 165.0 * (p as f64 - 2.0);
        t.row(vec![
            p.to_string(),
            pm2_bench::us(inst),
            pm2_bench::us(myri),
            format!("{paper:.0}"),
        ]);
    }
    t.emit("e6_negotiation");

    let slope = linear_slope(&myri_points);
    let base = myri_points[0].1;
    println!(
        "fit: cost(p) ≈ {:.0} µs at p=2, +{:.0} µs per extra node \
         (paper: 255 µs at p=2, +165 µs per node) — affine shape {}",
        base,
        slope,
        if slope > 0.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
