//! Run every experiment table in sequence (E5, E6, Fig. 11, A1–A6 plus the
//! substrate microbenchmarks) and leave the results under
//! `target/experiments/`.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin run_all
//! ```

use pm2_bench::{ctx_switch_ns, smoke, spawn_us, Table};

fn substrates() {
    let mut t = Table::new("S: substrate microcosts", &["operation", "cost"]);
    t.row(vec![
        "context switch (yield round-robin)".into(),
        format!("{:.0} ns", ctx_switch_ns(20_000)),
    ]);
    t.row(vec![
        "thread create + run + join".into(),
        format!("{:.1} µs", spawn_us(400)),
    ]);
    t.emit("substrates");
}

fn run(name: &str) {
    let exe = std::env::current_exe().unwrap();
    let dir = exe.parent().unwrap();
    let status = std::process::Command::new(dir.join(name))
        .status()
        .unwrap_or_else(|e| panic!("running {name}: {e}"));
    assert!(status.success(), "{name} failed");
}

fn main() {
    println!("smoke-checking the harness against the runtime…");
    smoke();
    substrates();
    for bin in ["e5_migration", "e6_negotiation", "fig11", "ablations"] {
        println!("\n───────── {bin} ─────────");
        run(bin);
    }
    println!("\nall experiment tables written to target/experiments/");
}
