//! Run every experiment table in sequence (E5, E6, Fig. 11, A1–A6 plus the
//! substrate microbenchmarks) and leave the results under
//! `target/experiments/`.  Also refreshes the repo-root perf-trajectory
//! files `BENCH_migration.json`, `BENCH_latency.json`,
//! `BENCH_evacuation.json`, `BENCH_negotiation.json`,
//! `BENCH_throughput.json`, `BENCH_recovery.json` and
//! `BENCH_affinity.json`.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin run_all
//! ```

use pm2::NetProfile;
use pm2_bench::{
    ctx_switch_ns, emit_json, migration_breakdown, smoke, spawn_us, write_affinity_json,
    write_evacuation_json, write_latency_json, write_negotiation_json, write_recovery_json,
    write_throughput_json, Table,
};

/// Emit `BENCH_migration.json` at the repo root: the per-stage migration
/// breakdown (pack / wire / unpack) plus throughput, starting the
/// machine-readable perf trajectory (one such file per tracked benchmark).
fn migration_json() {
    let mut rows = Vec::new();
    for (name, net) in [
        ("instant", NetProfile::instant()),
        ("myrinet_bip", NetProfile::myrinet_bip()),
    ] {
        for payload in [0usize, 32 * 1024] {
            let b = migration_breakdown(net, payload, 400);
            println!(
                "migration [{name}, {payload} B]: {:.1} µs one-way \
                 (pack {:.2} + wire {:.2} + unpack {:.2}), {:.0}/s, {} B, \
                 pool allocs {} / reuses {}",
                b.one_way_us,
                b.pack_us,
                b.wire_us,
                b.unpack_us,
                b.migrations_per_sec,
                b.bytes_per_migration,
                b.pool_allocs,
                b.pool_reuses
            );
            rows.push(format!(
                "{{\"net\": \"{name}\", \"payload_bytes\": {}, \"hops\": {}, \
                 \"one_way_us\": {:.3}, \"pack_us\": {:.3}, \"wire_us\": {:.3}, \
                 \"unpack_us\": {:.3}, \"bytes_per_migration\": {}, \
                 \"migrations_per_sec\": {:.1}, \"pool_allocs\": {}, \
                 \"pool_reuses\": {}}}",
                b.payload,
                b.hops,
                b.one_way_us,
                b.pack_us,
                b.wire_us,
                b.unpack_us,
                b.bytes_per_migration,
                b.migrations_per_sec,
                b.pool_allocs,
                b.pool_reuses
            ));
        }
    }
    emit_json(
        "BENCH_migration.json",
        "migration",
        "per-stage means over all migrations in a 2-node ping-pong; wire time is the \
         calibrated model charged at the receiver",
        "cargo run --release -p pm2-bench --bin run_all",
        &rows,
    );
}

fn substrates() {
    let mut t = Table::new("S: substrate microcosts", &["operation", "cost"]);
    t.row(vec![
        "context switch (yield round-robin)".into(),
        format!("{:.0} ns", ctx_switch_ns(20_000)),
    ]);
    t.row(vec![
        "thread create + run + join".into(),
        format!("{:.1} µs", spawn_us(400)),
    ]);
    t.emit("substrates");
}

fn run(name: &str) {
    let exe = std::env::current_exe().unwrap();
    let dir = exe.parent().unwrap();
    let status = std::process::Command::new(dir.join(name))
        .status()
        .unwrap_or_else(|e| panic!("running {name}: {e}"));
    assert!(status.success(), "{name} failed");
}

fn main() {
    println!("smoke-checking the harness against the runtime…");
    smoke();
    substrates();
    migration_json();
    write_latency_json(400);
    write_evacuation_json();
    write_negotiation_json();
    write_throughput_json();
    write_recovery_json();
    write_affinity_json();
    for bin in ["e5_migration", "e6_negotiation", "fig11", "ablations"] {
        println!("\n───────── {bin} ─────────");
        run(bin);
    }
    println!("\nall experiment tables written to target/experiments/");
}
