//! Regenerate `BENCH_chaos.json`: the fault-injection drill matrix —
//! lossy-fabric capacity ramps (0% / 0.1% / 1% seeded message loss),
//! kill-node recovery with coordinator election, and transient-partition
//! heal, each judged by the workload harness's SLO gates.

fn main() {
    pm2_bench::write_chaos_json();
}
