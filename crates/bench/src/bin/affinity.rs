//! Judge the balancer's affinity pass end to end (ring + hotspot, on vs
//! off) and write `BENCH_affinity.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin affinity
//! ```

fn main() {
    pm2_bench::write_affinity_json();
}
