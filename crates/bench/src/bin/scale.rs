//! Emit `BENCH_scale.json` (machine-size scaling on the multiplexed
//! executor: idle/hop/evacuation/negotiation/workload drills at p = 16,
//! 64 and 256 nodes, per-node cost curves).
//!
//! ```sh
//! cargo run --release -p pm2-bench --bin scale
//! ```

fn main() {
    pm2_bench::write_scale_json();
}
