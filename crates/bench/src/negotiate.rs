//! `BENCH_negotiation.json`: slot-acquisition scaling — the decentralized
//! trade economy vs the paper's §4.4 global negotiation, per node count.
//!
//! Two workloads:
//!
//! * **acquire** — a thread on node 0 of a round-robin machine performs
//!   `ROUNDS` live multi-slot (2-slot) allocations.  Under round-robin no
//!   node ever owns two contiguous slots, so every allocation needs remote
//!   slots.  With trading on, the first shortfall's batch covers many
//!   later allocations (O(1) `SLOT_TRADE` messages per acquire, no lock,
//!   no freeze, no bitmap gather); with trading off every allocation runs
//!   the global protocol, whose cost is affine in `p` (the paper's
//!   "another 165 µs per extra node").  The acceptance bar: trade-mode
//!   steady-state acquisition ≥ 3× faster than forced-global at p = 8.
//!
//! * **prefetch** — node 0 of a partitioned machine drains its contiguous
//!   share with single-slot allocations (yielding between them); once the
//!   reserve dips under the low watermark the driver prefetches a batch
//!   asynchronously.  The hit rate is the fraction of refills that were
//!   prefetches (the allocator never blocked) rather than demand trades.

use std::time::Instant;

use pm2::api::*;
use pm2::{AreaConfig, Distribution, Machine, NetProfile};

use crate::harness::paper_config;

/// Live 2-slot allocations per acquire run.
pub const ROUNDS: usize = 48;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct NegRow {
    pub p: usize,
    /// Mean µs per 2-slot acquisition, trade-first economy.
    pub trade_us: f64,
    /// Mean µs per 2-slot acquisition, forced-global (§4.4 every time).
    pub global_us: f64,
    /// global_us / trade_us.
    pub speedup: f64,
    /// Demand trades the trade run used (the whole run, all ROUNDS).
    pub trades: u64,
    /// Demand trades that fell back to the global protocol.
    pub fallbacks: u64,
    /// Global negotiations in the trade run (== fallbacks when healthy).
    pub negotiations: u64,
    /// Trade wire messages per acquisition (req + resp per trade; the
    /// O(1)-messages claim, vs the global path's 3 + 2(p−1) + buys).
    pub msgs_per_acquire: f64,
    /// Watermark prefetches sent in the prefetch workload.
    pub prefetches: u64,
    /// Prefetches that returned slots.
    pub prefetch_fills: u64,
    /// prefetch_fills / (prefetch_fills + demand trades) in the prefetch
    /// workload: 1.0 = the allocator never blocked on a shortfall.
    pub prefetch_hit_rate: f64,
}

/// Time `ROUNDS` live 2-slot allocations on node 0; returns the mean µs
/// per allocation plus node 0's runtime counters.
fn acquire_run(p: usize, net: NetProfile, trade: bool) -> (f64, pm2::node::NodeStatsSnapshot) {
    let mut m = Machine::launch(paper_config(p, net).with_slot_trade(trade)).expect("launch");
    let slot = m.area().slot_size();
    let mean_us = m
        .run_on(0, move || {
            let mut live = Vec::with_capacity(ROUNDS);
            let t0 = Instant::now();
            for _ in 0..ROUNDS {
                live.push(pm2_isomalloc(slot + 1).unwrap()); // 2 slots
            }
            let mean = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
            for q in live {
                pm2_isofree(q).unwrap();
            }
            mean
        })
        .expect("acquire workload");
    let stats = m.node_stats(0);
    m.shutdown();
    (mean_us, stats)
}

/// Drain node 0's partitioned share past the low watermark and report the
/// prefetch counters.
fn prefetch_run(p: usize, net: NetProfile) -> pm2::node::NodeStatsSnapshot {
    let cfg = paper_config(p, net)
        .with_area(AreaConfig {
            slot_size: 64 * 1024,
            n_slots: 4096,
        })
        .with_distribution(Distribution::Partitioned)
        .with_slot_watermarks(64, 256);
    let mut m = Machine::launch(cfg).expect("launch");
    let slot = m.area().slot_size();
    let share = m.area().n_slots() / p;
    m.run_on(0, move || {
        let mut live = Vec::new();
        for _ in 0..(share + 192) {
            live.push(pm2_isomalloc(slot - 1024).unwrap()); // 1 slot
            pm2_yield();
        }
        for q in live {
            pm2_isofree(q).unwrap();
        }
    })
    .expect("prefetch workload");
    let stats = m.node_stats(0);
    m.shutdown();
    stats
}

/// Measure every configuration on the BIP/Myrinet wire model.
pub fn negotiation_rows() -> Vec<NegRow> {
    [2usize, 4, 8]
        .into_iter()
        .map(|p| {
            let (trade_us, ts) = acquire_run(p, NetProfile::myrinet_bip(), true);
            let (global_us, _) = acquire_run(p, NetProfile::myrinet_bip(), false);
            let pf = prefetch_run(p, NetProfile::myrinet_bip());
            let refills = pf.prefetch_fills + pf.trades;
            NegRow {
                p,
                trade_us,
                global_us,
                speedup: global_us / trade_us,
                trades: ts.trades,
                fallbacks: ts.trade_fallbacks,
                negotiations: ts.negotiations,
                msgs_per_acquire: 2.0 * (ts.trades + ts.prefetches) as f64 / ROUNDS as f64,
                prefetches: pf.prefetches,
                prefetch_fills: pf.prefetch_fills,
                prefetch_hit_rate: if refills == 0 {
                    1.0
                } else {
                    pf.prefetch_fills as f64 / refills as f64
                },
            }
        })
        .collect()
}

/// Run the benchmark and write `BENCH_negotiation.json` into the current
/// directory (the repo root under `cargo run`).  Also prints each row.
pub fn write_negotiation_json() {
    let rows = negotiation_rows();
    let mut out = Vec::new();
    for r in &rows {
        println!(
            "negotiation [p={}]: trade {:.1} µs/acquire ({} trades, {} fallbacks, \
             {:.2} msgs/acquire) vs forced-global {:.1} µs — {:.1}×; prefetch hit \
             rate {:.2} ({} fills / {} prefetches)",
            r.p,
            r.trade_us,
            r.trades,
            r.fallbacks,
            r.msgs_per_acquire,
            r.global_us,
            r.speedup,
            r.prefetch_hit_rate,
            r.prefetch_fills,
            r.prefetches
        );
        out.push(format!(
            "{{\"p\": {}, \"net\": \"myrinet_bip\", \"rounds\": {}, \
             \"trade_us\": {:.3}, \"global_us\": {:.3}, \"speedup\": {:.2}, \
             \"trades\": {}, \"fallbacks\": {}, \"negotiations\": {}, \
             \"msgs_per_acquire\": {:.3}, \"prefetches\": {}, \
             \"prefetch_fills\": {}, \"prefetch_hit_rate\": {:.3}}}",
            r.p,
            ROUNDS,
            r.trade_us,
            r.global_us,
            r.speedup,
            r.trades,
            r.fallbacks,
            r.negotiations,
            r.msgs_per_acquire,
            r.prefetches,
            r.prefetch_fills,
            r.prefetch_hit_rate
        ));
    }
    crate::report::emit_json(
        "BENCH_negotiation.json",
        "negotiation",
        "mean µs per live 2-slot acquisition on node 0 of a round-robin threaded machine \
         (myrinet_bip wire model): trade = decentralized slot economy (one SLOT_TRADE \
         batch per shortfall, O(1) messages per acquire), global = slot_trade(false) \
         forcing the paper's §4.4 lock+gather+freeze protocol on every allocation; \
         prefetch_hit_rate from a separate partitioned drain workload = \
         prefetch_fills/(prefetch_fills+demand trades)",
        "cargo run --release -p pm2-bench --bin negotiate",
        &out,
    );
}
