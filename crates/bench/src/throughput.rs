//! `BENCH_throughput.json`: max sustainable request rate per workload mix.
//!
//! The capacity trajectory: for each (workload, node-count) scenario the
//! `pm2-workload` ramp drives an open-loop op stream at an increasing
//! target rate, gates every round on the IC-suite SLOs (failure rate and
//! p99 latency), and reports the last passing round as the machine's max
//! sustainable RPS.  Two mixes are tracked — the pure ping-pong RPC
//! workload (the classic echo round trip, 64 B payloads) and the mixed
//! spawn/RPC/migrate/alloc stew — each at p = 4 and p = 8 on the
//! `instant` wire profile, so the number measures the runtime (drivers,
//! scheduler, slot economy), not the modelled network.
//!
//! The ramp parameters here are sized for CI: short rounds, a hard rate
//! ceiling, seconds per scenario.  The per-round rows keep the full
//! driver-side quantiles *and* the machine-side counters so a regression
//! shows up with its mechanism attached (e.g. p99 blowing up while
//! `driver_parks` collapses = the pump saturated).

use std::time::Duration;

use pm2::{Machine, MachineMode, NetProfile, Pm2Config};
use pm2_workload::{register_services, run_ramp, CapacityReport, RampConfig, WorkloadSpec};

/// Injector threads feeding the issuer per round.
pub const INJECTORS: usize = 2;

/// The CI-sized ramp: 250 ms rounds from 150 rps to a 1,200 rps ceiling
/// in 150 rps steps, IC gate constants scaled to the round length.
pub fn ci_ramp() -> RampConfig {
    RampConfig {
        initial_rps: 150,
        increment_rps: 150,
        max_rps: 1_200,
        round_duration: Duration::from_millis(250),
        drain_grace: Duration::from_millis(500),
        quiet_timeout: Duration::from_secs(3),
        ..RampConfig::default()
    }
}

/// One tracked scenario: a workload mix on a p-node machine.
pub struct Scenario {
    pub spec: WorkloadSpec,
    pub nodes: usize,
}

/// The tracked scenario matrix: both mixes at p = 4 and p = 8.
pub fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();
    for nodes in [4usize, 8] {
        v.push(Scenario {
            spec: WorkloadSpec::pingpong_rpc(64),
            nodes,
        });
        v.push(Scenario {
            spec: WorkloadSpec::mixed(),
            nodes,
        });
    }
    v
}

/// Launch a machine for one scenario and run the ramp to completion.
pub fn run_scenario(sc: &Scenario, ramp: RampConfig) -> CapacityReport {
    let cfg = Pm2Config::new(sc.nodes)
        .with_net(NetProfile::instant())
        .with_mode(MachineMode::Threaded)
        .with_reply_deadline(Duration::from_secs(2));
    let mut m = Machine::launch(cfg).expect("launch");
    register_services(&m);
    let report = run_ramp(&m, &sc.spec, ramp, INJECTORS);
    m.shutdown();
    report
}

/// Render one capacity report as a single `configs[]` row: scenario
/// identity, the headline max sustainable rate, and the full per-round
/// trajectory nested under `rounds`.
pub fn report_row(r: &CapacityReport) -> String {
    let rounds: Vec<String> = r
        .rounds
        .iter()
        .map(|rd| {
            format!(
                "{{\"rps\": {}, \"issued\": {}, \"ok\": {}, \"failed\": {}, \
                 \"timed_out\": {}, \"failure_rate\": {:.4}, \"p50_ms\": {:.3}, \
                 \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
                 \"quiesced\": {}, \"steps\": {}, \"driver_parks\": {}, \
                 \"spawns\": {}, \"migrations\": {}, \"trains\": {}, \
                 \"trades\": {}, \"pool_allocs\": {}, \"pool_reuses\": {}, \
                 \"verdict\": \"{}\"}}",
                rd.rps,
                rd.issued,
                rd.ok,
                rd.failed,
                rd.timed_out,
                rd.failure_rate,
                rd.p50_ms,
                rd.p90_ms,
                rd.p99_ms,
                rd.mean_ms,
                rd.quiesced,
                rd.machine.steps,
                rd.machine.driver_parks,
                rd.machine.spawns,
                rd.machine.migrations,
                rd.machine.trains,
                rd.machine.trades,
                rd.machine.pool_allocs,
                rd.machine.pool_reuses,
                rd.verdict.label()
            )
        })
        .collect();
    let max = match r.max_sustainable_rps {
        Some(rps) => rps.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"workload\": \"{}\", \"p\": {}, \"net\": \"{}\", \
         \"max_sustainable_rps\": {}, \"rounds\": [{}]}}",
        r.workload,
        r.nodes,
        r.net,
        max,
        rounds.join(", ")
    )
}

/// Run the full scenario matrix and write `BENCH_throughput.json` into
/// the current directory (the repo root under `cargo run`).  Also prints
/// each round and the per-scenario summary.
pub fn write_throughput_json() {
    let ramp = ci_ramp();
    let mut rows = Vec::new();
    for sc in scenarios() {
        let r = run_scenario(&sc, ramp.clone());
        for rd in &r.rounds {
            println!(
                "throughput [{} p={}]: {} rps → ok {} / failed {} / timed_out {} \
                 (failure {:.1}%), p50 {:.2} ms p99 {:.2} ms — {}",
                r.workload,
                r.nodes,
                rd.rps,
                rd.ok,
                rd.failed,
                rd.timed_out,
                rd.failure_rate * 100.0,
                rd.p50_ms,
                rd.p99_ms,
                rd.verdict.label()
            );
        }
        println!("{}", r.summary());
        rows.push(report_row(&r));
    }
    crate::report::emit_json(
        "BENCH_throughput.json",
        "throughput",
        "max sustainable request rate per workload mix (open-loop ramp, IC-style SLO \
         gates: round fails when failure_rate > 0.2 or p99 > 5000 ms; latency measured \
         from each op's scheduled issue time so queueing counts); instant wire profile — \
         the rate measures the runtime, not the modelled network; per-round machine \
         counters say why a round saturated",
        "cargo run --release -p pm2-bench --bin workload",
        &rows,
    );
}
