//! Measurement harness regenerating every table and figure of the paper's
//! evaluation (§5).  The criterion benches and the `bin/` table printers
//! both call into this module, so the numbers in EXPERIMENTS.md and the
//! statistically-validated benchmarks come from the same code paths.

pub mod affinity;
pub mod chaos;
pub mod crit;
pub mod evacuation;
pub mod harness;
pub mod latency;
pub mod negotiate;
pub mod recovery;
pub mod report;
pub mod scale;
pub mod throughput;

pub use affinity::*;
pub use chaos::*;
pub use evacuation::*;
pub use harness::*;
pub use latency::*;
pub use negotiate::*;
pub use recovery::*;
pub use report::*;
pub use scale::*;
pub use throughput::*;
