//! `BENCH_scale.json`: machine-size scaling on the multiplexed executor.
//!
//! The ISSUE-8 trajectory: the same four drills at p = 16, 64 and 256
//! nodes on one worker pool, with the per-node cost counters that prove
//! the gossip-scale protocols hold — per-node background traffic and
//! per-op driver work must stay *flat-ish* as p grows 16×, and the whole
//! matrix must finish in CI seconds (instant wire profile, failure
//! detector armed so liveness + gossip + silence scans are all on).
//!
//! Drills per node count:
//!
//! * **idle** — a quiet window on a freshly launched machine: per-node
//!   driver steps/s and wire messages/s.  Under the old all-pairs beacon
//!   this grew linearly in p (every node messaged every node each tick);
//!   under gossip fan-out it is O(1) per node by construction.
//! * **hop** — 100 ping-pong migrations between nodes 0 and 1 (µs per
//!   hop, plus steps/parks/messages per hop summed over the two
//!   participants — the other p − 2 nodes' background is not billed to
//!   the op).
//! * **evacuation** — 64 yield-loop threads drained off node 0 by group
//!   commands to three destinations (ms total, per-thread cost over the
//!   four participants).
//! * **negotiation** — 16 live single-slot acquisitions on node 0 *after*
//!   its own 128-slot share is exhausted, so every measured allocation
//!   must be fed by peers through the decentralized trade economy —
//!   synchronous demand trades against the gossiped-richest peer, with
//!   watermark prefetch disabled so nothing is hidden in the background
//!   (µs per acquire, node-0 cost).  Batched grants keep this O(1)
//!   amortized messages per acquire at any p; contrast the §4.4 global
//!   gather, which stays O(p) and is what multi-slot requests fall back
//!   to under round-robin.
//! * **workload** — the pm2-workload open-loop ramp (ping-pong RPC mix,
//!   uniform targeting over all p nodes), SLO-gated: the max sustainable
//!   RPS the machine sustains at this size.
//!
//! The executor claim rides the `workers` column: every row runs with the
//! auto-sized pool (≪ p on any host), so p = 256 machines on a handful of
//! cores is the measurement, not an aspiration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm2::api::*;
use pm2::{AreaConfig, Machine, MachineMode, NetProfile, Pm2Config};
use pm2_workload::{register_services, run_ramp, RampConfig, WorkloadSpec};

/// The tracked machine sizes.
pub const PS: [usize; 3] = [16, 64, 256];

/// Threads drained in the evacuation drill.
pub const SCALE_EVAC_THREADS: usize = 64;

/// Measured slot acquisitions in the negotiation drill.
pub const NEG_ROUNDS: usize = 16;

/// Unmeasured single-slot allocations that exhaust node 0's own share
/// (128 slots) before the measured rounds, so every measured acquisition
/// rides the steady-state demand-trade economy instead of the free local
/// bitmap.
pub const NEG_WARMUP: usize = 160;

/// Migration round trips in the hop drill.
pub const HOP_PAIRS: usize = 100;

/// One measured machine size.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    pub p: usize,
    /// Executor pool size actually used (auto-sized; the point is ≪ p).
    pub workers: usize,
    pub idle_steps_per_node_s: f64,
    pub idle_msgs_per_node_s: f64,
    pub hop_us: f64,
    pub hop_steps_per_op: f64,
    pub hop_parks_per_op: f64,
    pub hop_msgs_per_op: f64,
    pub evac_ms: f64,
    pub evac_steps_per_op: f64,
    pub evac_msgs_per_op: f64,
    pub neg_us: f64,
    pub neg_steps_per_op: f64,
    pub neg_msgs_per_op: f64,
    pub max_rps: Option<u64>,
    pub rps_rounds: usize,
}

/// The scale-drill machine: threaded (executor pool auto-sized), instant
/// wire, detector armed so the full gossip/suspicion machinery runs, and
/// an area that keeps per-node slot ownership constant (128 slots each —
/// remote spawns fail typed rather than trade, so the evacuation drill's
/// 64 stacks must fit node 0's own share) as p grows.  The area is a
/// lazy virtual reservation; unused slots cost no memory.
fn launch(p: usize) -> Machine {
    let cfg = Pm2Config::new(p)
        .with_net(NetProfile::instant())
        .with_mode(MachineMode::Threaded)
        .with_area(AreaConfig {
            slot_size: 64 * 1024,
            n_slots: (128 * p).max(256),
        })
        .with_failure_timeout(Duration::from_secs(2))
        .with_reply_deadline(Duration::from_secs(5))
        // No watermark prefetch: the negotiation drill measures the
        // *synchronous* demand-trade RTT per acquisition, not how well
        // the background prefetcher hides it (that amortization is the
        // negotiate bench's subject).
        .with_slot_watermarks(0, 0);
    Machine::launch(cfg).expect("launch")
}

/// Sum (steps, driver_parks) over a node range.
fn steps_parks(m: &Machine, nodes: std::ops::Range<usize>) -> (u64, u64) {
    nodes.fold((0, 0), |(s, k), n| {
        let st = m.node_stats(n);
        (s + st.steps, k + st.driver_parks)
    })
}

/// Sum endpoint messages sent over a node range.
fn msgs_sent(m: &Machine, nodes: std::ops::Range<usize>) -> u64 {
    nodes
        .filter_map(|n| m.net_stats(n))
        .map(|s| s.msgs_sent)
        .sum()
}

/// Measure one machine size end to end.
pub fn scale_row(p: usize) -> ScaleRow {
    eprintln!("scale [p={p}]: launching");
    let mut m = launch(p);
    let workers = m.worker_threads();
    assert!(workers < p.max(2), "the pool must multiplex, not 1:1");

    // -- idle: per-node background cost in a quiet window ------------------
    std::thread::sleep(Duration::from_millis(300)); // settle gossip/detector
    m.stats_reset();
    let msgs0 = msgs_sent(&m, 0..p);
    let window = Duration::from_millis(700);
    std::thread::sleep(window);
    let (steps, _) = steps_parks(&m, 0..p);
    let msgs = msgs_sent(&m, 0..p) - msgs0;
    let per_node_s = 1.0 / (window.as_secs_f64() * p as f64);
    let idle_steps_per_node_s = steps as f64 * per_node_s;
    let idle_msgs_per_node_s = msgs as f64 * per_node_s;

    eprintln!("scale [p={p}]: hop drill");
    // -- hop: 0 ↔ 1 ping-pong migration ------------------------------------
    m.stats_reset();
    let msgs0 = msgs_sent(&m, 0..2);
    let t0 = Instant::now();
    m.run_on(0, || {
        for _ in 0..HOP_PAIRS {
            pm2_migrate(1).unwrap();
            pm2_migrate(0).unwrap();
        }
    })
    .expect("hop workload");
    let ops = (2 * HOP_PAIRS) as f64;
    let hop_us = t0.elapsed().as_secs_f64() * 1e6 / ops;
    let (steps, parks) = steps_parks(&m, 0..2);
    let hop_steps_per_op = steps as f64 / ops;
    let hop_parks_per_op = parks as f64 / ops;
    let hop_msgs_per_op = (msgs_sent(&m, 0..2) - msgs0) as f64 / ops;

    eprintln!("scale [p={p}]: evacuation drill");
    // -- evacuation: drain 64 threads off node 0 ---------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let mut evacuees = Vec::new();
    for _ in 0..SCALE_EVAC_THREADS {
        let stop = Arc::clone(&stop);
        evacuees.push(
            m.spawn_on(0, move || {
                while !stop.load(Ordering::Relaxed) {
                    pm2_yield();
                }
            })
            .expect("spawn evacuee"),
        );
    }
    let tids: Vec<u64> = evacuees.iter().map(|w| w.tid).collect();
    let spawn_t0 = Instant::now();
    while m.node_stats(0).spawns < SCALE_EVAC_THREADS as u64 {
        std::thread::sleep(Duration::from_millis(1));
        if spawn_t0.elapsed() > Duration::from_secs(5) {
            eprintln!(
                "scale [p={p}]: still waiting on spawns: {}/{SCALE_EVAC_THREADS}",
                m.node_stats(0).spawns
            );
            std::thread::sleep(Duration::from_secs(1));
        }
    }
    eprintln!("scale [p={p}]: evacuees spawned, migrating");
    m.stats_reset();
    let msgs0 = msgs_sent(&m, 0..4);
    let t0 = Instant::now();
    m.run_on(1, move || {
        pm2_set_control_priority(true);
        for dest in 1..4usize {
            let group: Vec<u64> = tids
                .iter()
                .enumerate()
                .filter(|(i, _)| 1 + i % 3 == dest)
                .map(|(_, &t)| t)
                .collect();
            let accepted = pm2_group_migrate(0, dest, &group).expect("group migrate");
            assert_eq!(accepted, group.len(), "all evacuees must be accepted");
        }
    })
    .expect("evacuator");
    let evac_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (steps, _) = steps_parks(&m, 0..4);
    let evac_steps_per_op = steps as f64 / SCALE_EVAC_THREADS as f64;
    let evac_msgs_per_op = (msgs_sent(&m, 0..4) - msgs0) as f64 / SCALE_EVAC_THREADS as f64;
    stop.store(true, Ordering::SeqCst);
    for w in evacuees {
        m.join(w);
    }

    eprintln!("scale [p={p}]: negotiation drill");
    // -- negotiation: remote slot acquisitions through the trade economy ---
    // Single-slot blocks big enough that two can never pack into one slot,
    // held live, with node 0's own 128-slot share exhausted first — so
    // every measured acquisition must be fed by peers.  (Multi-slot
    // allocations are deliberately *not* the drill: under the paper's
    // round-robin distribution no node ever owns two contiguous slots, so
    // a 2-slot request bypasses the O(1) trade path and pays the §4.4
    // global gather — O(p) by design, not a protocol regression.)
    // Iso blocks die with their green thread, so the whole warm → measure →
    // free cycle lives in one thread; the host snapshots node-0 counters at
    // the phase boundaries through a pair of atomic handshakes.
    let sz = m.area().slot_size() * 3 / 4;
    // The frees ride inside the measured window on purpose: they are local
    // bitmap work in a single dispatch (a freed slot re-homes to the node
    // the thread is visiting — no wire traffic), whereas a second spin
    // handshake would pollute the step counter for milliseconds.
    let warmed = Arc::new(AtomicBool::new(false));
    let go = Arc::new(AtomicBool::new(false));
    let (w2, g2) = (Arc::clone(&warmed), Arc::clone(&go));
    let negotiator = m
        .spawn_on_ret(0, move || {
            let warm: Vec<*mut u8> = (0..NEG_WARMUP)
                .map(|_| pm2_isomalloc(sz).unwrap())
                .collect();
            w2.store(true, Ordering::SeqCst);
            while !g2.load(Ordering::SeqCst) {
                pm2_yield();
            }
            let mut live = Vec::with_capacity(NEG_ROUNDS);
            let t0 = Instant::now();
            for _ in 0..NEG_ROUNDS {
                live.push(pm2_isomalloc(sz).unwrap());
            }
            let mean = t0.elapsed().as_secs_f64() * 1e6 / NEG_ROUNDS as f64;
            for q in warm.into_iter().chain(live) {
                pm2_isofree(q).unwrap();
            }
            mean
        })
        .expect("spawn negotiator");
    while !warmed.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(1));
    }
    m.stats_reset();
    let msgs0 = msgs_sent(&m, 0..1);
    go.store(true, Ordering::SeqCst);
    let neg_us = negotiator.join().expect("negotiation workload");
    let (steps, _) = steps_parks(&m, 0..1);
    let neg_msgs_per_op = (msgs_sent(&m, 0..1) - msgs0) as f64 / NEG_ROUNDS as f64;
    let neg_steps_per_op = steps as f64 / NEG_ROUNDS as f64;

    eprintln!("scale [p={p}]: workload ramp");
    // -- workload: SLO-gated max sustainable RPS ---------------------------
    register_services(&m);
    let ramp = RampConfig {
        initial_rps: 150,
        increment_rps: 150,
        max_rps: 450,
        round_duration: Duration::from_millis(250),
        drain_grace: Duration::from_millis(300),
        quiet_timeout: Duration::from_secs(3),
        ..RampConfig::default()
    };
    let report = run_ramp(&m, &WorkloadSpec::pingpong_rpc(64), ramp, 2);
    m.shutdown();

    ScaleRow {
        p,
        workers,
        idle_steps_per_node_s,
        idle_msgs_per_node_s,
        hop_us,
        hop_steps_per_op,
        hop_parks_per_op,
        hop_msgs_per_op,
        evac_ms,
        evac_steps_per_op,
        evac_msgs_per_op,
        neg_us,
        neg_steps_per_op,
        neg_msgs_per_op,
        max_rps: report.max_sustainable_rps,
        rps_rounds: report.rounds.len(),
    }
}

/// Run the full size matrix and write `BENCH_scale.json` into the current
/// directory (the repo root under `cargo run`).  Prints each row and the
/// p = 256 / p = 16 per-node cost ratios (the flat-ish acceptance curve).
pub fn write_scale_json() {
    let rows: Vec<ScaleRow> = PS.iter().map(|&p| scale_row(p)).collect();
    let mut out = Vec::new();
    for r in &rows {
        println!(
            "scale [p={} workers={}]: idle {:.1} steps/s {:.1} msgs/s per node; \
             hop {:.1} µs ({:.1} steps, {:.1} msgs/op); evac {:.1} ms \
             ({:.1} steps/thread); neg {:.1} µs ({:.1} msgs/acquire); max {} rps",
            r.p,
            r.workers,
            r.idle_steps_per_node_s,
            r.idle_msgs_per_node_s,
            r.hop_us,
            r.hop_steps_per_op,
            r.hop_msgs_per_op,
            r.evac_ms,
            r.evac_steps_per_op,
            r.neg_us,
            r.neg_msgs_per_op,
            r.max_rps
                .map(|v| v.to_string())
                .unwrap_or_else(|| "<none>".into()),
        );
        out.push(format!(
            "{{\"p\": {}, \"workers\": {}, \"idle_steps_per_node_s\": {:.2}, \
             \"idle_msgs_per_node_s\": {:.2}, \"hop_us\": {:.2}, \
             \"hop_steps_per_op\": {:.2}, \"hop_parks_per_op\": {:.2}, \
             \"hop_msgs_per_op\": {:.2}, \"evac_ms\": {:.2}, \
             \"evac_steps_per_op\": {:.2}, \"evac_msgs_per_op\": {:.2}, \
             \"neg_us\": {:.2}, \"neg_steps_per_op\": {:.2}, \
             \"neg_msgs_per_op\": {:.2}, \"max_rps\": {}, \"rps_rounds\": {}}}",
            r.p,
            r.workers,
            r.idle_steps_per_node_s,
            r.idle_msgs_per_node_s,
            r.hop_us,
            r.hop_steps_per_op,
            r.hop_parks_per_op,
            r.hop_msgs_per_op,
            r.evac_ms,
            r.evac_steps_per_op,
            r.evac_msgs_per_op,
            r.neg_us,
            r.neg_steps_per_op,
            r.neg_msgs_per_op,
            r.max_rps
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into()),
            r.rps_rounds,
        ));
    }
    let (lo, hi) = (&rows[0], &rows[rows.len() - 1]);
    let ratio = |a: f64, b: f64| if a > 0.0 { b / a } else { f64::NAN };
    println!(
        "scale ratios p={}/p={}: idle msgs/node {:.2}×, idle steps/node {:.2}×, \
         hop steps/op {:.2}×, evac msgs/thread {:.2}×, neg msgs/acquire {:.2}×",
        hi.p,
        lo.p,
        ratio(lo.idle_msgs_per_node_s, hi.idle_msgs_per_node_s),
        ratio(lo.idle_steps_per_node_s, hi.idle_steps_per_node_s),
        ratio(lo.hop_steps_per_op, hi.hop_steps_per_op),
        ratio(lo.evac_msgs_per_op, hi.evac_msgs_per_op),
        ratio(lo.neg_msgs_per_op, hi.neg_msgs_per_op),
    );
    crate::report::emit_json(
        "BENCH_scale.json",
        "scale",
        "machine-size scaling on the multiplexed executor (threaded mode, auto worker \
         pool, instant wire profile, failure detector armed at 2 s / 50 ms heartbeats): \
         idle_* = per-node background driver steps and wire messages per second in a \
         quiet 700 ms window (gossip-scale protocols keep this flat in p); hop/evac/neg \
         costs are per-op deltas over the participating nodes only; evac_steps includes \
         the evacuees' own yield-loop spinning and so tracks drill duration, not p — \
         evac_msgs is the scalability signal; neg_* = single-slot acquisitions on node 0 \
         past its own share, each fed synchronously by the demand-trade path (watermark \
         prefetch disabled); max_rps from the \
         SLO-gated pm2-workload ping-pong ramp, uniform targeting over all p nodes",
        "cargo run --release -p pm2-bench --bin scale",
        &out,
    );
}
