//! Message framing.
//!
//! Madeleine messages are tagged, ordered, point-to-point byte buffers.  The
//! tag space belongs to the layer above (the PM2 runtime defines migration,
//! negotiation, spawn, … tags); this crate only transports them.

/// A point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Protocol tag (namespace owned by the layer above).
    pub tag: u16,
    /// Fabric-assigned global sequence number (diagnostics only).
    pub seq: u64,
    /// Modelled wire time for this message, charged at the receiver
    /// (nanoseconds).
    pub wire_ns: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Message {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Little helper for writing framed integers into payloads.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Start a payload, reserving `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        PayloadWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Append a length-prefixed byte string.
    pub fn lp_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }

    /// Finish and take the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor for reading framed integers back out of payloads.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read a `u8`; `None` on underrun.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    /// Read a `u16`; `None` on underrun.
    pub fn u16(&mut self) -> Option<u16> {
        let s = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(s.try_into().ok()?))
    }

    /// Read a `u64`; `None` on underrun.
    pub fn u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    /// Read a `u32`; `None` on underrun.
    pub fn u32(&mut self) -> Option<u32> {
        let s = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    /// Read a length-prefixed byte string.
    pub fn lp_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.bytes(n)
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = PayloadWriter::with_capacity(64);
        w.u64(0xDEAD_BEEF)
            .u32(42)
            .lp_bytes(b"hello")
            .bytes(&[1, 2, 3]);
        let payload = w.finish();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u64(), Some(0xDEAD_BEEF));
        assert_eq!(r.u32(), Some(42));
        assert_eq!(r.lp_bytes(), Some(&b"hello"[..]));
        assert_eq!(r.rest(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_underrun_is_none() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), None);
        assert_eq!(r.u32(), None);
        assert_eq!(r.bytes(4), None);
        assert_eq!(r.bytes(3), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn message_len() {
        let m = Message {
            src: 0,
            dst: 1,
            tag: 7,
            seq: 0,
            wire_ns: 0,
            payload: vec![0; 10],
        };
        assert_eq!(m.len(), 10);
        assert!(!m.is_empty());
    }
}
