//! Message framing.
//!
//! Madeleine messages are tagged, ordered, point-to-point byte buffers.  The
//! tag space belongs to the layer above (the PM2 runtime defines migration,
//! negotiation, spawn, … tags); this crate only transports them.
//!
//! Payloads are [`Payload`] values: sealed, refcounted, usually pooled (see
//! [`crate::buf`]).  Receivers read them through `Deref<Target = [u8]>`;
//! dropping the message recycles a pooled buffer into its origin pool.

use crate::buf::{BufPool, Payload, PayloadBuf};

/// A point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Protocol tag (namespace owned by the layer above).
    pub tag: u16,
    /// Per-sender sequence number (diagnostics only; monotonic per source
    /// endpoint, hence per sender/receiver pair).
    pub seq: u64,
    /// Modelled wire time for this message, charged at the receiver
    /// (nanoseconds).
    pub wire_ns: u64,
    /// Payload bytes (refcounted; cloning the message does not copy them).
    pub payload: Payload,
}

impl Message {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

enum WriterBuf {
    /// A plain vector (tests, cold paths, [`crate::Wire::encode_vec`]).
    Plain(Vec<u8>),
    /// A pool checkout — the hot protocol-encoder path.
    Pooled(PayloadBuf),
}

/// Little helper for writing framed integers into payloads.
///
/// Construct with [`PayloadWriter::with_capacity`] (plain vector) or
/// [`PayloadWriter::pooled`] (pool checkout — no allocation in steady
/// state); [`PayloadWriter::finish`] seals either into a [`Payload`].
pub struct PayloadWriter {
    buf: WriterBuf,
}

impl Default for PayloadWriter {
    fn default() -> Self {
        PayloadWriter {
            buf: WriterBuf::Plain(Vec::new()),
        }
    }
}

impl std::fmt::Debug for PayloadWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PayloadWriter")
            .field("len", &self.vec().len())
            .field("pooled", &matches!(self.buf, WriterBuf::Pooled(_)))
            .finish()
    }
}

impl PayloadWriter {
    /// Start a payload on a fresh vector, reserving `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        PayloadWriter {
            buf: WriterBuf::Plain(Vec::with_capacity(cap)),
        }
    }

    /// Start a payload on a buffer checked out of `pool`, reserving `cap`
    /// bytes.  [`PayloadWriter::finish`] then seals it with no copy, and
    /// the eventual receiver's drop recycles it.
    pub fn pooled(pool: &BufPool, cap: usize) -> Self {
        PayloadWriter {
            buf: WriterBuf::Pooled(pool.checkout(cap)),
        }
    }

    fn vec(&self) -> &Vec<u8> {
        match &self.buf {
            WriterBuf::Plain(v) => v,
            WriterBuf::Pooled(b) => b,
        }
    }

    fn vec_mut(&mut self) -> &mut Vec<u8> {
        match &mut self.buf {
            WriterBuf::Plain(v) => v,
            WriterBuf::Pooled(b) => b,
        }
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.vec_mut().push(v);
        self
    }

    /// Append a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.vec_mut().extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.vec_mut().extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.vec_mut().extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.vec_mut().extend_from_slice(b);
        self
    }

    /// Append a length-prefixed byte string.
    pub fn lp_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.vec_mut().extend_from_slice(b);
        self
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec().len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.vec().is_empty()
    }

    /// Finish and seal the payload.  Zero-copy for both variants: a pooled
    /// buffer freezes in place, a plain vector is adopted by refcount.
    pub fn finish(self) -> Payload {
        match self.buf {
            WriterBuf::Plain(v) => v.into(),
            WriterBuf::Pooled(b) => b.freeze(),
        }
    }

    /// Finish into a plain byte vector (the [`crate::Wire::encode_vec`]
    /// path, which hands callers an owned `Vec`).  Copies if the writer was
    /// pooled — prefer [`PayloadWriter::finish`] on the message path.
    pub fn finish_vec(self) -> Vec<u8> {
        match self.buf {
            WriterBuf::Plain(v) => v,
            WriterBuf::Pooled(b) => b.to_vec(),
        }
    }
}

/// Cursor for reading framed integers back out of payloads.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read a `u8`; `None` on underrun.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    /// Read a `u16`; `None` on underrun.
    pub fn u16(&mut self) -> Option<u16> {
        let s = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(s.try_into().ok()?))
    }

    /// Read a `u64`; `None` on underrun.
    pub fn u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    /// Read a `u32`; `None` on underrun.
    pub fn u32(&mut self) -> Option<u32> {
        let s = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().ok()?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    /// Read a length-prefixed byte string.
    pub fn lp_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.bytes(n)
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = PayloadWriter::with_capacity(64);
        w.u64(0xDEAD_BEEF)
            .u32(42)
            .lp_bytes(b"hello")
            .bytes(&[1, 2, 3]);
        let payload = w.finish();
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u64(), Some(0xDEAD_BEEF));
        assert_eq!(r.u32(), Some(42));
        assert_eq!(r.lp_bytes(), Some(&b"hello"[..]));
        assert_eq!(r.rest(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn pooled_writer_recycles_through_payload_drop() {
        let pool = BufPool::new();
        let mut w = PayloadWriter::pooled(&pool, 32);
        w.u64(7).lp_bytes(b"abc");
        let p = w.finish();
        let ptr = p.as_ptr();
        assert_eq!(PayloadReader::new(&p).u64(), Some(7));
        drop(p);
        assert_eq!(pool.free_len(), 1);
        let mut w = PayloadWriter::pooled(&pool, 32);
        w.u8(1);
        assert_eq!(w.finish().as_ptr(), ptr, "writer reuses the pooled buffer");
    }

    #[test]
    fn reader_underrun_is_none() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), None);
        assert_eq!(r.u32(), None);
        assert_eq!(r.bytes(4), None);
        assert_eq!(r.bytes(3), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn message_len() {
        let m = Message {
            src: 0,
            dst: 1,
            tag: 7,
            seq: 0,
            wire_ns: 0,
            payload: vec![0; 10].into(),
        };
        assert_eq!(m.len(), 10);
        assert!(!m.is_empty());
    }
}
