//! Pooled, refcounted payload buffers — the zero-copy data plane.
//!
//! The migration hot path lives or dies on buffer management: a 24 µs
//! iso-address copy is instantly swamped if every message allocates a fresh
//! `Vec`, every broadcast re-copies its payload per destination, and every
//! received buffer is dropped on the floor.  This module provides the two
//! types the whole message path is built on:
//!
//! * [`BufPool`] — a per-endpoint free list of byte buffers.  `checkout`
//!   hands out a writable [`PayloadBuf`]; when the last reader of the
//!   sealed payload drops, the buffer (capacity intact) returns to the
//!   free list of the pool it came from.  Steady-state traffic therefore
//!   performs **zero payload heap allocations**: the same backing buffer
//!   cycles checkout → send → receive → drop → checkout.
//! * [`Payload`] — a sealed, refcounted, read-only byte buffer
//!   (`Deref<Target = [u8]>`).  `clone` is a refcount bump, never a copy,
//!   which is what lets `broadcast` fan a single buffer out to `p − 1`
//!   receivers with one allocation total.
//!
//! Lifecycle (the aliasing discipline the `unsafe` below relies on):
//!
//! ```text
//! BufPool::checkout ──► PayloadBuf (unique writer)
//!                          │ freeze / Into<Payload>
//!                          ▼
//!                       Payload ──clone──► Payload …   (shared readers)
//!                          │ last drop
//!                          ▼
//!                 recycled into the origin pool's free list
//! ```
//!
//! A slab is referenced by **exactly one** of: a `PayloadBuf` (mutable
//! access), one or more `Payload`s (read-only access), or the pool's free
//! list (no access).  The transitions are all moves (`checkout` pops a
//! uniquely-owned slab, `freeze` consumes the writer, recycling requires
//! `Arc::get_mut` to prove uniqueness), so readers and the writer can never
//! coexist.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// One pooled backing buffer.  The `UnsafeCell` is what lets the pool hand
/// the same heap allocation alternately to a unique writer and to shared
/// readers without re-allocating an `Arc` per cycle.
struct Slab {
    data: UnsafeCell<Vec<u8>>,
    /// The pool this slab recycles into (`Weak`: a live payload must not
    /// keep a dead pool alive).
    pool: Weak<PoolShared>,
}

// SAFETY: access to `data` is governed by the ownership protocol documented
// on the module: a slab is reachable through exactly one of PayloadBuf
// (unique `&mut`), Payloads (shared `&`), or the free list (idle), and the
// transitions between those states are moves.  No state allows a writer and
// a reader to alias.
unsafe impl Send for Slab {}
unsafe impl Sync for Slab {}

#[derive(Debug, Default)]
struct PoolCounters {
    checkouts: AtomicU64,
    reuses: AtomicU64,
    allocs: AtomicU64,
    recycles: AtomicU64,
}

struct PoolShared {
    free: Mutex<Vec<Arc<Slab>>>,
    /// Free-list capacity: beyond this, returning buffers are simply freed
    /// (bounds worst-case memory after a traffic burst).
    max_free: usize,
    counters: PoolCounters,
}

/// Point-in-time counters of a [`BufPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// Total `checkout` calls.
    pub checkouts: u64,
    /// Checkouts served from the free list (no allocation).
    pub reuses: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub allocs: u64,
    /// Buffers returned to the free list by payload drops.
    pub recycles: u64,
}

/// A free list of reusable payload buffers, cheaply clonable (`Arc` handle).
///
/// Every [`crate::Endpoint`] owns one (uncontended in steady state: a node's
/// sends check out of its own endpoint's pool), and upper layers reach it
/// through [`crate::Endpoint::pool`].
#[derive(Clone)]
pub struct BufPool {
    shared: Arc<PoolShared>,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("free", &self.free_len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufPool {
    /// A pool keeping up to 64 idle buffers.
    pub fn new() -> Self {
        BufPool::with_capacity_limit(64)
    }

    /// A pool keeping at most `max_free` idle buffers.
    pub fn with_capacity_limit(max_free: usize) -> Self {
        BufPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                max_free,
                counters: PoolCounters::default(),
            }),
        }
    }

    /// Check out a writable buffer with at least `cap` bytes of capacity,
    /// reusing a pooled buffer when one is available.
    pub fn checkout(&self, cap: usize) -> PayloadBuf {
        let c = &self.shared.counters;
        c.checkouts.fetch_add(1, Ordering::Relaxed);
        let recycled = self.shared.free.lock().expect("buf pool poisoned").pop();
        match recycled {
            Some(slab) => {
                c.reuses.fetch_add(1, Ordering::Relaxed);
                let mut buf = PayloadBuf { slab };
                let v = buf.vec_mut();
                v.clear();
                v.reserve(cap);
                buf
            }
            None => {
                c.allocs.fetch_add(1, Ordering::Relaxed);
                PayloadBuf {
                    slab: Arc::new(Slab {
                        data: UnsafeCell::new(Vec::with_capacity(cap)),
                        pool: Arc::downgrade(&self.shared),
                    }),
                }
            }
        }
    }

    /// Number of idle buffers currently on the free list.
    pub fn free_len(&self) -> usize {
        self.shared.free.lock().expect("buf pool poisoned").len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufPoolStats {
        let c = &self.shared.counters;
        BufPoolStats {
            checkouts: c.checkouts.load(Ordering::Relaxed),
            reuses: c.reuses.load(Ordering::Relaxed),
            allocs: c.allocs.load(Ordering::Relaxed),
            recycles: c.recycles.load(Ordering::Relaxed),
        }
    }
}

/// A checked-out, writable payload buffer — the **unique** owner of its
/// backing slab until it is sealed with [`PayloadBuf::freeze`] (or
/// `.into()` a [`Payload`], or sent — `Endpoint::send` seals implicitly).
///
/// Dereferences to `Vec<u8>`, so the packing code writes into it exactly
/// as it would into a plain vector — but the allocation came from, and
/// returns to, the pool.
pub struct PayloadBuf {
    slab: Arc<Slab>,
}

impl PayloadBuf {
    fn vec_mut(&mut self) -> &mut Vec<u8> {
        // SAFETY: a PayloadBuf is constructed only around a uniquely-owned
        // slab (fresh, or popped off the free list which held the only
        // reference) and is neither Clone nor convertible back from a
        // Payload, so `&mut self` proves exclusive slab access.
        unsafe { &mut *self.slab.data.get() }
    }

    fn vec(&self) -> &Vec<u8> {
        // SAFETY: as in `vec_mut`; shared reborrow of the unique owner.
        unsafe { &*self.slab.data.get() }
    }

    /// Seal the buffer into a shareable, read-only [`Payload`] without
    /// copying or allocating.
    pub fn freeze(self) -> Payload {
        Payload {
            repr: Repr::Pooled(self.slab),
        }
    }
}

impl Deref for PayloadBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.vec()
    }
}

impl DerefMut for PayloadBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.vec_mut()
    }
}

impl std::fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PayloadBuf")
            .field("len", &self.len())
            .finish()
    }
}

enum Repr {
    /// A sealed pool slab; recycled on last drop.
    Pooled(Arc<Slab>),
    /// An adopted plain vector (`From<Vec<u8>>`); freed on last drop.
    Owned(Arc<Vec<u8>>),
    /// Borrowed static bytes — notably the shared empty payload, so
    /// zero-byte control messages never allocate.
    Static(&'static [u8]),
}

/// A sealed, refcounted, read-only message payload.
///
/// `clone` bumps a refcount (no copy), `Deref<Target = [u8]>` gives byte
/// access, and dropping the last clone of a pooled payload recycles the
/// backing buffer into its origin [`BufPool`].
pub struct Payload {
    repr: Repr,
}

impl Payload {
    /// The shared empty payload (no allocation, ever).
    pub const fn empty() -> Payload {
        Payload {
            repr: Repr::Static(&[]),
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            // SAFETY: sealed slab — the unique writer was consumed by
            // `freeze`, so only shared readers remain (see module docs).
            Repr::Pooled(slab) => unsafe { &*slab.data.get() },
            Repr::Owned(v) => v.as_slice(),
            Repr::Static(s) => s,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when there are no payload bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload {
            repr: match &self.repr {
                Repr::Pooled(s) => Repr::Pooled(Arc::clone(s)),
                Repr::Owned(v) => Repr::Owned(Arc::clone(v)),
                Repr::Static(s) => Repr::Static(s),
            },
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        if let Repr::Pooled(slab) = std::mem::replace(&mut self.repr, Repr::Static(&[])) {
            recycle(slab);
        }
    }
}

/// Return a slab to its origin pool if this was the last reference and the
/// pool still exists (and has room).  This is the **fast path**: the whole
/// `Arc` goes back on the free list, so the next checkout allocates
/// nothing at all.  If two final clones race `Arc::get_mut` here, both
/// fail and the plain `Arc` teardown runs instead — where [`Slab`]'s
/// `Drop` still salvages the byte buffer (the allocation that matters).
fn recycle(mut slab: Arc<Slab>) {
    // `Arc::get_mut` succeeds only for the sole owner, which is exactly the
    // proof needed to turn the last reader back into an idle pool entry.
    if Arc::get_mut(&mut slab).is_none() {
        return; // not provably last; Slab::drop catches the true last one
    }
    let Some(pool) = slab.pool.upgrade() else {
        return; // pool torn down; just free the buffer
    };
    let mut free = pool.free.lock().expect("buf pool poisoned");
    if free.len() < pool.max_free {
        pool.counters.recycles.fetch_add(1, Ordering::Relaxed);
        free.push(slab);
        return;
    }
    drop(free);
    // List full: neutralize the pool link so the Slab teardown below does
    // not try to salvage the buffer we just decided to discard.
    if let Some(s) = Arc::get_mut(&mut slab) {
        s.pool = Weak::new();
    }
}

impl Drop for Slab {
    /// Slow-path salvage.  Runs when the last reference to a slab dies
    /// without taking the fast path above: a [`PayloadBuf`] dropped before
    /// `freeze` (error paths), or two final [`Payload`] clones racing
    /// `Arc::get_mut` (e.g. broadcast receivers on different threads).
    /// The byte buffer is moved into a fresh slab on the free list, so
    /// the heap allocation that backs payloads is never lost to the pool —
    /// only the small refcount block is re-created, and only on this rare
    /// path.
    fn drop(&mut self) {
        let Some(pool) = self.pool.upgrade() else {
            return; // pool gone (or link neutralized): really free it
        };
        let data = std::mem::take(self.data.get_mut());
        if data.capacity() == 0 {
            return;
        }
        let origin = std::mem::replace(&mut self.pool, Weak::new());
        let mut free = pool.free.lock().expect("buf pool poisoned");
        if free.len() < pool.max_free {
            pool.counters.recycles.fetch_add(1, Ordering::Relaxed);
            free.push(Arc::new(Slab {
                data: UnsafeCell::new(data),
                pool: origin,
            }));
        }
        // `data` (when the list was full) drops here, after the lock guard:
        // a Vec teardown cannot re-enter the pool.
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({} B)", self.len())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl From<Vec<u8>> for Payload {
    /// Adopt a vector.  Empty vectors become the shared empty payload;
    /// everything else is wrapped (one refcount allocation, no byte copy).
    fn from(v: Vec<u8>) -> Payload {
        if v.is_empty() {
            Payload::empty()
        } else {
            Payload {
                repr: Repr::Owned(Arc::new(v)),
            }
        }
    }
}

impl From<&[u8]> for Payload {
    /// Copies the bytes (the one conversion that must).
    fn from(s: &[u8]) -> Payload {
        s.to_vec().into()
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(s: &[u8; N]) -> Payload {
        s.as_slice().into()
    }
}

impl From<PayloadBuf> for Payload {
    fn from(b: PayloadBuf) -> Payload {
        b.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_write_freeze_read() {
        let pool = BufPool::new();
        let mut b = pool.checkout(16);
        b.extend_from_slice(b"hello");
        b.push(b'!');
        let p = b.freeze();
        assert_eq!(p, b"hello!");
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn recycle_preserves_allocation() {
        let pool = BufPool::new();
        let mut b = pool.checkout(64);
        b.extend_from_slice(&[7u8; 40]);
        let ptr = b.as_ptr();
        drop(b.freeze());
        assert_eq!(pool.free_len(), 1);
        for i in 0..10 {
            let mut b = pool.checkout(64);
            assert_eq!(b.as_ptr(), ptr, "cycle {i} must reuse the same buffer");
            assert!(b.is_empty(), "recycled buffers come back cleared");
            b.extend_from_slice(&[i as u8; 64]);
            drop(b.freeze());
        }
        let s = pool.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.reuses, 10);
        assert_eq!(s.recycles, 11);
    }

    #[test]
    fn clone_aliases_and_last_drop_recycles() {
        let pool = BufPool::new();
        let mut b = pool.checkout(8);
        b.extend_from_slice(&[1, 2, 3]);
        let p = b.freeze();
        let clones: Vec<Payload> = (0..16).map(|_| p.clone()).collect();
        for c in &clones {
            assert_eq!(c.as_ptr(), p.as_ptr(), "clones must alias, not copy");
        }
        drop(p);
        assert_eq!(pool.free_len(), 0, "live clones keep the slab out");
        drop(clones);
        assert_eq!(pool.free_len(), 1, "last drop recycles");
    }

    #[test]
    fn unfrozen_writer_recycles_on_drop() {
        // Error paths drop checked-out writers without sealing them; the
        // byte buffer must still return to the pool (Slab::drop salvage).
        let pool = BufPool::new();
        let mut b = pool.checkout(64);
        b.extend_from_slice(&[9u8; 64]);
        let ptr = b.as_ptr();
        drop(b);
        assert_eq!(pool.free_len(), 1);
        let b2 = pool.checkout(16);
        assert_eq!(b2.as_ptr(), ptr, "salvaged buffer must be reused");
    }

    #[test]
    fn racing_final_clones_still_recycle() {
        // Many threads dropping the last clones concurrently: whichever
        // path wins (fast get_mut or Slab::drop salvage), the buffer ends
        // up back in the pool every round.
        let pool = BufPool::new();
        for _ in 0..50 {
            let p = pool.checkout(64).freeze();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = p.clone();
                    std::thread::spawn(move || drop(c))
                })
                .collect();
            drop(p);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(pool.free_len(), 1, "buffer lost to a drop race");
        }
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufPool::with_capacity_limit(2);
        let bufs: Vec<Payload> = (0..5).map(|_| pool.checkout(8).freeze()).collect();
        drop(bufs);
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn vec_and_static_payloads() {
        let p: Payload = vec![9u8, 8, 7].into();
        assert_eq!(p, vec![9u8, 8, 7]);
        let q = p.clone();
        assert_eq!(q.as_ptr(), p.as_ptr());
        let e: Payload = Vec::new().into();
        assert!(e.is_empty());
        assert_eq!(e, Payload::empty());
    }

    #[test]
    fn cross_thread_recycle() {
        let pool = BufPool::new();
        let mut b = pool.checkout(32);
        b.extend_from_slice(&[5u8; 32]);
        let p = b.freeze();
        std::thread::spawn(move || drop(p)).join().unwrap();
        assert_eq!(pool.free_len(), 1);
    }
}
