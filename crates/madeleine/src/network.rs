//! The in-process fabric.
//!
//! [`Fabric::new`] wires `n` endpoints together with unbounded lock-free
//! channels (one inbox per node).  Message order is preserved per
//! sender/receiver pair, as on a real Myrinet source-routed network.
//!
//! The wire model is **receiver-clocked**: a send is asynchronous (BIP DMAs
//! the frame out), and the destination pays `latency + bytes × per-byte
//! cost` for each message as it dequeues it — BIP receives are polled by
//! the host CPU, so the receiving node is genuinely occupied for the
//! transfer.  Receiver-clocking is what serializes a gather of `p − 1`
//! bitmaps at the negotiation initiator, the effect behind the paper's
//! "another 165 µs per extra node".  Self-sends are free (no NIC).
//!
//! The data plane is zero-copy: [`Endpoint::send`] takes anything
//! convertible [`Into<Payload>`] and ships the sealed buffer by reference
//! count — no copy on send, one shared buffer for an entire
//! [`Endpoint::broadcast`], and pooled buffers (see [`crate::buf`]) return
//! to their origin endpoint's free list when the receiver drops them.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::time::Instant;

use crate::buf::{BufPool, Payload};
use crate::chaos::{EndpointChaos, FaultPlan, Verdict};
use crate::doorbell::Doorbell;
use crate::message::Message;
use crate::profile::{spin_for, NetProfile};
use crate::stats::{EndpointStats, EndpointStatsSnapshot};

/// Partition group id meaning "reachable from every group" — used for
/// nodes outside either side of a cut (e.g. an embedder's host endpoint).
pub const WILD_GROUP: u8 = u8::MAX;

/// Errors from the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination node id is outside the fabric.
    NoSuchNode(usize),
    /// The destination endpoint has been dropped.
    Disconnected(usize),
    /// The named node has been declared dead ([`Endpoint::mark_dead`]).
    /// Sends *to* a corpse fail instead of enqueuing to nowhere, and sends
    /// *from* a corpse fail so a zombie driver cannot keep talking.
    NodeDead(usize),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            NetError::Disconnected(n) => write!(f, "node {n} disconnected"),
            NetError::NodeDead(n) => write!(f, "node {n} is dead"),
        }
    }
}

impl std::error::Error for NetError {}

struct Shared {
    senders: Vec<Sender<Message>>,
    profile: NetProfile,
    stats: Vec<Arc<EndpointStats>>,
    /// Doorbell rung when a message is enqueued for node *i*.  Entries may
    /// alias one shared bell (deterministic-mode single driver).
    doorbells: Vec<Doorbell>,
    /// Death certificates, one per node.  Set once (never cleared) by
    /// [`Endpoint::mark_dead`]; the send path refuses traffic to *and from*
    /// a flagged node, turning "enqueue to nowhere" into a typed error the
    /// moment a failure is declared.
    dead: Vec<AtomicBool>,
    /// Runtime partition override: one group id per node, messages
    /// crossing groups are cut ([`WILD_GROUP`] reaches everything).  The
    /// atomic gates the lock so the un-partitioned hot path costs one
    /// relaxed load.
    partition_on: AtomicBool,
    partition: Mutex<Vec<u8>>,
    /// The fault plan in force (`None` = perfect wire) and the fabric
    /// birth instant its scheduled partition windows count from.
    plan: Option<FaultPlan>,
    t0: Instant,
}

/// Factory for a set of connected endpoints.
pub struct Fabric;

impl Fabric {
    /// Build an `n`-node fabric; returns one [`Endpoint`] per node, in node
    /// order, each with its own doorbell.  (`Fabric` itself is a pure
    /// factory and holds no state.)
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize, profile: NetProfile) -> Vec<Endpoint> {
        Fabric::build(n, profile, (0..n).map(|_| Doorbell::new()).collect(), None)
    }

    /// [`Fabric::new`], but every endpoint rings — and can park on — one
    /// **shared** doorbell.  This is what a single OS thread driving all
    /// nodes round-robin wants: it parks once for the whole fabric and any
    /// send to any node wakes it.
    pub fn new_shared_doorbell(n: usize, profile: NetProfile) -> Vec<Endpoint> {
        let bell = Doorbell::new();
        Fabric::build(n, profile, vec![bell; n], None)
    }

    /// [`Fabric::new`] under a seeded [`FaultPlan`]: the send path may
    /// drop, duplicate, delay, or hold back eligible messages, and the
    /// plan's scheduled partition windows cut traffic (see
    /// [`crate::chaos`]).
    pub fn new_chaotic(n: usize, profile: NetProfile, plan: FaultPlan) -> Vec<Endpoint> {
        Fabric::build(
            n,
            profile,
            (0..n).map(|_| Doorbell::new()).collect(),
            Some(plan),
        )
    }

    /// [`Fabric::new_shared_doorbell`] under a seeded [`FaultPlan`].
    pub fn new_shared_doorbell_chaotic(
        n: usize,
        profile: NetProfile,
        plan: FaultPlan,
    ) -> Vec<Endpoint> {
        let bell = Doorbell::new();
        Fabric::build(n, profile, vec![bell; n], Some(plan))
    }

    fn build(
        n: usize,
        profile: NetProfile,
        doorbells: Vec<Doorbell>,
        plan: Option<FaultPlan>,
    ) -> Vec<Endpoint> {
        assert!(n >= 1, "a fabric needs at least one node");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let stats: Vec<_> = (0..n).map(|_| Arc::new(EndpointStats::default())).collect();
        let dead = (0..n).map(|_| AtomicBool::new(false)).collect();
        let shared = Arc::new(Shared {
            senders,
            profile,
            stats,
            doorbells,
            dead,
            partition_on: AtomicBool::new(false),
            partition: Mutex::new(vec![WILD_GROUP; n]),
            plan,
            t0: Instant::now(),
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(node, rx)| Endpoint {
                node,
                rx,
                chaos: shared
                    .plan
                    .as_ref()
                    .map(|p| RefCell::new(EndpointChaos::new(p, node, n))),
                shared: Arc::clone(&shared),
                pool: BufPool::new(),
                seq: Cell::new(0),
            })
            .collect()
    }
}

/// A cheap, cloneable, `Send + Sync` view of the fabric's death
/// certificates.  Lets host-side handles (a typed join handle, say)
/// observe node deaths without holding an [`Endpoint`] — an endpoint owns
/// its receiver and cannot be cloned.
#[derive(Clone)]
pub struct DeathWatch {
    shared: Arc<Shared>,
}

impl DeathWatch {
    /// True when `node` has been declared dead ([`Endpoint::mark_dead`]).
    pub fn is_dead(&self, node: usize) -> bool {
        self.shared
            .dead
            .get(node)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }
}

/// One node's attachment to the fabric.
pub struct Endpoint {
    node: usize,
    rx: Receiver<Message>,
    shared: Arc<Shared>,
    /// This endpoint's payload-buffer free list: outgoing traffic checks
    /// out of it, and receivers' drops recycle into it.
    pool: BufPool,
    /// Per-endpoint sequence counter (uncontended, unlike the old
    /// fabric-global atomic; seq numbers stay monotonic per
    /// sender/receiver pair on a perfect wire — under a fault plan a
    /// chaos *duplicate* reuses its original's seq, which is exactly how
    /// receiver dedup windows recognize it).
    seq: Cell<u64>,
    /// Fault-injection state, present only on chaotic fabrics: per-link
    /// RNG streams and holdback slots, owned by this endpoint's driver.
    chaos: Option<RefCell<EndpointChaos>>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of nodes on the fabric.
    pub fn n_nodes(&self) -> usize {
        self.shared.senders.len()
    }

    /// The wire model in force.
    pub fn profile(&self) -> NetProfile {
        self.shared.profile
    }

    /// This endpoint's payload-buffer pool.  Check hot-path payloads out of
    /// it (directly or via [`crate::message::PayloadWriter::pooled`]) so
    /// steady-state traffic allocates nothing.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// A cloneable [`DeathWatch`] over this fabric's death certificates.
    pub fn death_watch(&self) -> DeathWatch {
        DeathWatch {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Send `payload` to `dst` under `tag`.  Asynchronous; the modelled
    /// wire time is recorded on the message and charged at the receiver.
    ///
    /// Accepts anything [`Into<Payload>`]: a pool checkout or a sealed
    /// [`Payload`] ships with no copy, a `Vec<u8>` is adopted by refcount,
    /// a `&[u8]` is copied.
    pub fn send(&self, dst: usize, tag: u16, payload: impl Into<Payload>) -> Result<(), NetError> {
        self.send_payload(dst, tag, payload.into())
    }

    /// [`Endpoint::send`], recording that this one wire message carries a
    /// *batch* of `items` logical items (a migration train of `items`
    /// threads, say).  The fabric itself treats the payload like any other
    /// message; the batch counters exist so embedders can prove their
    /// coalescing works (`items_per_batch` on the stats snapshot).
    pub fn send_batched(
        &self,
        dst: usize,
        tag: u16,
        payload: impl Into<Payload>,
        items: usize,
    ) -> Result<(), NetError> {
        self.send_payload(dst, tag, payload.into())?;
        self.shared.stats[self.node].on_batch(items);
        Ok(())
    }

    fn send_payload(&self, dst: usize, tag: u16, payload: Payload) -> Result<(), NetError> {
        if dst >= self.shared.senders.len() {
            return Err(NetError::NoSuchNode(dst));
        }
        // A dead destination is unreachable; a dead *source* is a zombie
        // whose late traffic must be dropped at the NIC, not delivered.
        if self.shared.dead[dst].load(Ordering::Acquire) {
            return Err(NetError::NodeDead(dst));
        }
        if self.shared.dead[self.node].load(Ordering::Acquire) {
            return Err(NetError::NodeDead(self.node));
        }
        if self.partition_blocks(dst) {
            // A severed cable eats the frame silently: the sender sees
            // success and the protocol layer sees a timeout, exactly like
            // a real cut.  Counted, never errored.
            self.shared.stats[self.node].on_chaos_cut();
            return Ok(());
        }
        let len = payload.len();
        let mut wire_ns = if dst != self.node {
            self.shared.profile.delay_for(len).as_nanos() as u64
        } else {
            0
        };
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        // Self-sends have no NIC to misbehave, and protected tags are the
        // embedder's unacknowledged state-transfer traffic — both bypass
        // the fault dice (but still release any held message afterwards,
        // so a holdback never starves a link).
        let chaotic = self
            .chaos
            .as_ref()
            .filter(|c| dst != self.node && !c.borrow().plan.is_protected(tag));
        let verdict = match chaotic {
            Some(c) => c.borrow_mut().verdict(dst),
            None => Verdict::Deliver,
        };
        let stats = &self.shared.stats[self.node];
        if let Verdict::Delay(extra) = verdict {
            // Chaos delay is modelled wire time: charged at the receiver
            // on dequeue, like the profile's own latency — the wire clock
            // itself is never falsified.
            wire_ns += extra;
            stats.on_chaos_delay();
        }
        let msg = Message {
            src: self.node,
            dst,
            tag,
            seq,
            wire_ns,
            payload,
        };
        match verdict {
            Verdict::Drop => {
                stats.on_chaos_drop();
            }
            Verdict::Duplicate => {
                stats.on_chaos_dup();
                self.enqueue(msg.clone())?;
                self.enqueue(msg)?;
                self.flush_held(dst)?;
            }
            Verdict::Hold => {
                stats.on_chaos_hold();
                // One-slot bounded holdback per link: park the message;
                // it is released strictly *behind* the next send on this
                // link (the reorder).  A second hold releases both.
                let prev = self.chaos.as_ref().unwrap().borrow_mut().links[dst]
                    .held
                    .replace(msg);
                if let Some(h) = prev {
                    let ours = self.chaos.as_ref().unwrap().borrow_mut().links[dst]
                        .held
                        .take()
                        .expect("just parked");
                    self.enqueue(ours)?;
                    self.enqueue(h)?;
                }
            }
            Verdict::Deliver | Verdict::Delay(_) => {
                self.enqueue(msg)?;
                if self.chaos.is_some() {
                    self.flush_held(dst)?;
                }
            }
        }
        Ok(())
    }

    /// Enqueue one message on the destination's channel, ring its bell,
    /// count the send.  The chaos layer funnels every actual delivery —
    /// originals, duplicates, released holdbacks — through here.
    fn enqueue(&self, msg: Message) -> Result<(), NetError> {
        let (dst, len) = (msg.dst, msg.len());
        self.shared.senders[dst]
            .send(msg)
            .map_err(|_| NetError::Disconnected(dst))?;
        // Ring strictly *after* the enqueue: a driver that snapshots the
        // ring counter, finds its inbox empty and parks is then guaranteed
        // to observe either the message or the ring (see `doorbell`).
        self.shared.doorbells[dst].ring();
        self.shared.stats[self.node].on_send(len);
        Ok(())
    }

    /// Release the holdback slot of link `dst`, if occupied — always
    /// called after a delivery on that link, so a held message trails the
    /// one that flushed it by exactly one position.
    fn flush_held(&self, dst: usize) -> Result<(), NetError> {
        let held = self
            .chaos
            .as_ref()
            .and_then(|c| c.borrow_mut().links[dst].held.take());
        match held {
            Some(h) => self.enqueue(h),
            None => Ok(()),
        }
    }

    /// Is `self → dst` currently cut by a runtime partition
    /// ([`Endpoint::set_partition`]) or a scheduled plan window?
    fn partition_blocks(&self, dst: usize) -> bool {
        if dst == self.node {
            return false;
        }
        if self.shared.partition_on.load(Ordering::Acquire) {
            let groups = self.shared.partition.lock().unwrap();
            let (a, b) = (groups[self.node], groups[dst]);
            if a != WILD_GROUP && b != WILD_GROUP && a != b {
                return true;
            }
        }
        match &self.shared.plan {
            Some(p) if p.has_windows() => p.window_blocks(self.node, dst, self.shared.t0.elapsed()),
            _ => false,
        }
    }

    /// Impose a runtime partition: messages between nodes with different
    /// group ids are cut (silently dropped, both directions, all tags);
    /// [`WILD_GROUP`] entries reach everything.  `groups` must have one
    /// entry per node.  Overwrites any previous runtime partition; heal
    /// with [`Endpoint::clear_partition`].  Works on any fabric, fault
    /// plan or not.
    pub fn set_partition(&self, groups: Vec<u8>) {
        assert_eq!(groups.len(), self.n_nodes(), "one group id per node");
        *self.shared.partition.lock().unwrap() = groups;
        self.shared.partition_on.store(true, Ordering::Release);
    }

    /// Heal a [`Endpoint::set_partition`] cut.
    pub fn clear_partition(&self) {
        self.shared.partition_on.store(false, Ordering::Release);
    }

    fn charge_and_count(&self, m: Message) -> Message {
        if m.wire_ns > 0 {
            spin_for(Duration::from_nanos(m.wire_ns));
        }
        self.shared.stats[self.node].on_recv(m.len(), m.wire_ns);
        m
    }

    /// Send the same payload to every other node (negotiation scatter).
    ///
    /// The payload is sealed **once**; each destination receives a
    /// refcount bump of the same buffer, so fan-out cost is independent of
    /// the payload size and no per-destination copies are made.
    pub fn broadcast(&self, tag: u16, payload: impl Into<Payload>) -> Result<(), NetError> {
        let payload = payload.into();
        for dst in 0..self.n_nodes() {
            // Skip corpses: a broadcast reaches every *survivor* (e.g. the
            // NODE_DEAD announcement itself) instead of aborting at the
            // first dead destination.
            if dst != self.node && !self.is_dead(dst) {
                self.send_payload(dst, tag, payload.clone())?;
            }
        }
        Ok(())
    }

    /// Declare `node` dead fabric-wide.  Idempotent and irreversible: every
    /// subsequent send to — or from — `node` fails with
    /// [`NetError::NodeDead`].  Messages already enqueued are unaffected
    /// (they were "on the wire" when the node died); embedders drop those
    /// at dispatch by checking the source against their own dead set.
    pub fn mark_dead(&self, node: usize) {
        if let Some(flag) = self.shared.dead.get(node) {
            flag.store(true, Ordering::Release);
            // Wake the corpse's driver (and any shared-bell driver) so it
            // can observe the death instead of parking forever.
            self.shared.doorbells[node].ring();
        }
    }

    /// Has `node` been declared dead?
    pub fn is_dead(&self, node: usize) -> bool {
        self.shared
            .dead
            .get(node)
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Non-blocking poll.  If a message is pending, the caller pays its
    /// modelled wire time (the receive is where a BIP node spends the CPU).
    pub fn try_recv(&self) -> Option<Message> {
        match self.rx.try_recv() {
            Ok(m) => Some(self.charge_and_count(m)),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a timeout; `None` on timeout or teardown.
    /// The wait is a genuine park (no polling): the channel wakes the
    /// caller the moment a message is enqueued.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Some(self.charge_and_count(m)),
            Err(_) => None,
        }
    }

    /// Blocking receive until `deadline`; `None` once the deadline passes
    /// (or on teardown).  Like [`Endpoint::recv_timeout`], this parks — it
    /// never slices the wait into polls.
    pub fn recv_until(&self, deadline: Instant) -> Option<Message> {
        let now = Instant::now();
        if now >= deadline {
            return self.try_recv();
        }
        self.recv_timeout(deadline - now)
    }

    /// The doorbell rung whenever a message is enqueued for this endpoint.
    /// Drivers park on it when both the inbox and the local scheduler are
    /// idle; under [`Fabric::new_shared_doorbell`] all endpoints return
    /// handles to the same bell.
    pub fn doorbell(&self) -> &Doorbell {
        &self.shared.doorbells[self.node]
    }

    /// Statistics for this endpoint.
    pub fn stats(&self) -> EndpointStatsSnapshot {
        self.shared.stats[self.node].snapshot()
    }

    /// Statistics for an arbitrary node (host-side reporting).
    pub fn stats_of(&self, node: usize) -> Option<EndpointStatsSnapshot> {
        self.shared.stats.get(node).map(|s| s.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn point_to_point_delivery() {
        let eps = Fabric::new(2, NetProfile::instant());
        eps[0].send(1, 7, vec![1, 2, 3]).unwrap();
        let m = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((m.src, m.dst, m.tag), (0, 1, 7));
        assert_eq!(m.payload, vec![1, 2, 3]);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn per_pair_ordering() {
        let eps = Fabric::new(2, NetProfile::instant());
        for i in 0..100u8 {
            eps[0].send(1, 0, vec![i]).unwrap();
        }
        for i in 0..100u8 {
            let m = eps[1].try_recv().unwrap();
            assert_eq!(m.payload[0], i);
        }
    }

    #[test]
    fn per_endpoint_seq_is_monotonic_per_pair() {
        let eps = Fabric::new(3, NetProfile::instant());
        for _ in 0..10 {
            eps[0].send(2, 0, Vec::new()).unwrap();
            eps[1].send(2, 0, Vec::new()).unwrap();
        }
        let mut last: [Option<u64>; 2] = [None, None];
        for _ in 0..20 {
            let m = eps[2].try_recv().unwrap();
            if let Some(prev) = last[m.src] {
                assert!(m.seq > prev, "seq must increase per sender");
            }
            last[m.src] = Some(m.seq);
        }
    }

    #[test]
    fn cross_thread_delivery() {
        let mut eps = Fabric::new(2, NetProfile::instant());
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let m = e1.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(m.tag, 9);
            e1.send(0, 10, m.payload).unwrap();
        });
        e0.send(1, 9, vec![42]).unwrap();
        let back = e0.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(back.tag, 10);
        assert_eq!(back.payload, vec![42]);
        t.join().unwrap();
    }

    #[test]
    fn wire_model_is_charged_at_the_receiver() {
        // 100 µs latency profile: sends are async and cheap…
        let profile = NetProfile {
            name: "test",
            latency_ns: 100_000,
            ns_per_byte: 0.0,
        };
        let eps = Fabric::new(2, profile);
        let t0 = Instant::now();
        for _ in 0..10 {
            eps[0].send(1, 0, Vec::new()).unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_micros(500),
            "sends must be async"
        );
        // …while dequeuing the 10 messages serializes ≥ 1 ms of wire time.
        let t0 = Instant::now();
        for _ in 0..10 {
            eps[1].try_recv().unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_micros(1000));
        assert!(eps[1].stats().wire_ns >= 1_000_000);
        // Self-sends are free on both sides.
        let t0 = Instant::now();
        for _ in 0..10 {
            eps[0].send(0, 0, Vec::new()).unwrap();
            eps[0].try_recv().unwrap();
        }
        assert!(t0.elapsed() < Duration::from_micros(500));
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let eps = Fabric::new(4, NetProfile::instant());
        eps[2].broadcast(5, &[9]).unwrap();
        for (i, ep) in eps.iter().enumerate() {
            if i == 2 {
                assert!(ep.try_recv().is_none());
            } else {
                assert_eq!(ep.try_recv().unwrap().tag, 5);
            }
        }
    }

    #[test]
    fn broadcast_aliases_one_buffer() {
        let eps = Fabric::new(17, NetProfile::instant());
        let mut b = eps[0].pool().checkout(1024);
        b.extend_from_slice(&[0xC3; 1024]);
        eps[0].broadcast(5, b).unwrap();
        let msgs: Vec<Message> = eps[1..]
            .iter()
            .map(|ep| ep.try_recv().expect("delivered"))
            .collect();
        let first = msgs[0].payload.as_ptr();
        for m in &msgs {
            assert_eq!(
                m.payload.as_ptr(),
                first,
                "all receivers must share one buffer"
            );
            assert_eq!(m.payload.len(), 1024);
        }
        // One checkout allocation for the whole 16-way fan-out…
        assert_eq!(eps[0].pool().stats().allocs, 1);
        // …recycled once the last receiver lets go.
        drop(msgs);
        assert_eq!(eps[0].pool().free_len(), 1);
    }

    #[test]
    fn pooled_sends_reuse_one_buffer() {
        let eps = Fabric::new(2, NetProfile::instant());
        let mut ptr = None;
        for round in 0..32u8 {
            let mut b = eps[0].pool().checkout(256);
            b.extend_from_slice(&[round; 200]);
            eps[0].send(1, 3, b).unwrap();
            let m = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.payload, vec![round; 200]);
            match ptr {
                None => ptr = Some(m.payload.as_ptr()),
                Some(p) => assert_eq!(m.payload.as_ptr(), p, "round {round} re-allocated"),
            }
        }
        let s = eps[0].pool().stats();
        assert_eq!(s.allocs, 1, "steady state must not allocate: {s:?}");
        assert_eq!(s.reuses, 31);
    }

    #[test]
    fn send_rings_destination_doorbell() {
        let eps = Fabric::new(3, NetProfile::instant());
        let before = eps[1].doorbell().rings();
        eps[0].send(1, 0, Vec::new()).unwrap();
        assert_eq!(eps[1].doorbell().rings(), before + 1);
        // Node 2's bell is untouched: per-endpoint bells are independent.
        assert_eq!(eps[2].doorbell().rings(), 0);
        assert!(!eps[1].doorbell().same_bell(eps[2].doorbell()));
    }

    #[test]
    fn shared_doorbell_covers_every_endpoint() {
        let eps = Fabric::new_shared_doorbell(3, NetProfile::instant());
        assert!(eps[0].doorbell().same_bell(eps[2].doorbell()));
        let seen = eps[0].doorbell().rings();
        eps[1].send(2, 0, Vec::new()).unwrap();
        // A send to *any* node moves the one shared counter.
        assert_eq!(eps[0].doorbell().rings(), seen + 1);
    }

    #[test]
    fn parked_receiver_wakes_on_send() {
        let mut eps = Fabric::new(2, NetProfile::instant());
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            // Park on the doorbell with the two-phase protocol, then drain.
            let seen = e1.doorbell().rings();
            if e1.try_recv().is_none() {
                e1.doorbell().wait_past(seen, Duration::from_secs(5));
            }
            e1.recv_until(Instant::now() + Duration::from_secs(5))
                .expect("woken with a message pending")
        });
        std::thread::sleep(Duration::from_millis(10));
        e0.send(1, 9, vec![1]).unwrap();
        let m = t.join().unwrap();
        assert_eq!(m.tag, 9);
    }

    #[test]
    fn recv_until_respects_past_deadlines() {
        let eps = Fabric::new(2, NetProfile::instant());
        // Expired deadline: degenerates to a non-blocking poll.
        assert!(eps[1].recv_until(Instant::now()).is_none());
        eps[0].send(1, 4, Vec::new()).unwrap();
        assert_eq!(eps[1].recv_until(Instant::now()).unwrap().tag, 4);
    }

    #[test]
    fn bad_destination() {
        let eps = Fabric::new(2, NetProfile::instant());
        assert_eq!(eps[0].send(5, 0, Vec::new()), Err(NetError::NoSuchNode(5)));
    }

    #[test]
    fn dead_node_refuses_traffic_both_ways() {
        let eps = Fabric::new(3, NetProfile::instant());
        eps[0].send(1, 0, vec![1]).unwrap();
        eps[0].mark_dead(1);
        assert!(
            eps[1].is_dead(1) && eps[2].is_dead(1),
            "death is fabric-wide"
        );
        // To the corpse: typed error, not enqueue-to-nowhere.
        assert_eq!(eps[0].send(1, 0, Vec::new()), Err(NetError::NodeDead(1)));
        // From the corpse (zombie): also refused.
        assert_eq!(eps[1].send(2, 0, Vec::new()), Err(NetError::NodeDead(1)));
        // In-flight messages from before the death are still deliverable.
        assert_eq!(eps[1].try_recv().unwrap().payload, vec![1]);
        // Broadcast skips the corpse and reaches the survivor.
        eps[0].broadcast(7, Vec::new()).unwrap();
        assert_eq!(eps[2].try_recv().unwrap().tag, 7);
        // mark_dead is idempotent.
        eps[2].mark_dead(1);
        assert!(eps[0].is_dead(1));
    }

    /// Drive the same send schedule through a chaotic fabric and return
    /// what node 1 actually receives, as (tag, seq) pairs.
    fn chaos_run(plan: FaultPlan, sends: usize) -> (Vec<(u16, u64)>, EndpointStatsSnapshot) {
        let eps = Fabric::new_chaotic(2, NetProfile::instant(), plan);
        for i in 0..sends {
            eps[0].send(1, (i % 7) as u16, vec![i as u8]).unwrap();
        }
        let mut got = Vec::new();
        while let Some(m) = eps[1].try_recv() {
            got.push((m.tag, m.seq));
        }
        (got, eps[0].stats())
    }

    #[test]
    fn identical_fault_plan_seeds_replay_byte_identically() {
        let plan = FaultPlan::lossy(0x5EED, 0.10).with_delay(0.05, Duration::from_nanos(10));
        let (a, sa) = chaos_run(plan.clone(), 2000);
        let (b, sb) = chaos_run(plan, 2000);
        assert_eq!(a, b, "same seed ⇒ identical delivered schedule");
        assert_eq!(sa, sb, "…and identical fault counters");
        assert!(sa.chaos_dropped > 0 && sa.chaos_duplicated > 0 && sa.chaos_held > 0);
        let (c, _) = chaos_run(FaultPlan::lossy(0x0DD5_EED0, 0.10), 2000);
        assert_ne!(a, c, "a different seed must reshuffle the schedule");
    }

    #[test]
    fn duplicates_reuse_the_original_seq() {
        // Duplicate everything: each send arrives exactly twice, the
        // copy carrying the same sequence number as the original.
        let plan = FaultPlan::new(1).with_duplicate(1.0);
        let (got, stats) = chaos_run(plan, 50);
        assert_eq!(got.len(), 100);
        assert_eq!(stats.chaos_duplicated, 50);
        for pair in got.chunks(2) {
            assert_eq!(pair[0], pair[1], "copy must be indistinguishable");
        }
    }

    #[test]
    fn holdback_reorders_behind_the_next_send() {
        // Hold everything: message k is parked and released behind
        // message k+1, so seqs arrive 1,0,3,2,…; the final message stays
        // parked (released only by later traffic on the link).
        let plan = FaultPlan::new(2).with_hold(1.0);
        let (got, stats) = chaos_run(plan, 6);
        let seqs: Vec<u64> = got.iter().map(|&(_, s)| s).collect();
        assert_eq!(seqs, vec![1, 0, 3, 2, 5, 4]);
        assert_eq!(stats.chaos_held, 6);
    }

    #[test]
    fn protected_tags_pass_untouched_and_flush_holdbacks() {
        let plan = FaultPlan::new(3).with_drop(1.0).protect_tags(&[9]);
        let eps = Fabric::new_chaotic(2, NetProfile::instant(), plan);
        eps[0].send(1, 0, Vec::new()).unwrap(); // dropped
        eps[0].send(1, 9, Vec::new()).unwrap(); // protected: delivered
        assert_eq!(eps[1].try_recv().unwrap().tag, 9);
        assert!(eps[1].try_recv().is_none());
        assert_eq!(eps[0].stats().chaos_dropped, 1);
    }

    #[test]
    fn self_sends_are_never_faulted() {
        let plan = FaultPlan::new(4).with_drop(1.0);
        let eps = Fabric::new_chaotic(2, NetProfile::instant(), plan);
        for _ in 0..20 {
            eps[0].send(0, 1, Vec::new()).unwrap();
            assert!(eps[0].try_recv().is_some(), "self-sends bypass chaos");
        }
        assert_eq!(eps[0].stats().chaos_dropped, 0);
    }

    #[test]
    fn chaos_delay_is_charged_at_the_receiver() {
        let plan = FaultPlan::new(5).with_delay(1.0, Duration::from_micros(200));
        let eps = Fabric::new_chaotic(2, NetProfile::instant(), plan);
        for _ in 0..5 {
            eps[0].send(1, 0, Vec::new()).unwrap();
        }
        let t0 = Instant::now();
        for _ in 0..5 {
            eps[1].try_recv().unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_micros(1000));
        assert_eq!(eps[0].stats().chaos_delayed, 5);
        assert!(eps[1].stats().wire_ns >= 1_000_000);
    }

    #[test]
    fn runtime_partition_cuts_then_heals() {
        let eps = Fabric::new(4, NetProfile::instant());
        // {0,1} vs {2}; node 3 is wild (an embedder's host endpoint).
        eps[0].set_partition(vec![0, 0, 1, WILD_GROUP]);
        eps[0].send(2, 7, Vec::new()).unwrap(); // eaten silently
        eps[2].send(1, 7, Vec::new()).unwrap(); // eaten both directions
        eps[0].send(1, 8, Vec::new()).unwrap(); // intra-set: flows
        eps[3].send(2, 9, Vec::new()).unwrap(); // wild: flows
        assert!(eps[2].try_recv().map(|m| m.tag) == Some(9));
        assert!(eps[2].try_recv().is_none());
        assert_eq!(eps[1].try_recv().unwrap().tag, 8);
        assert!(eps[1].try_recv().is_none());
        assert_eq!(eps[0].stats().chaos_cut, 1);
        assert_eq!(eps[2].stats().chaos_cut, 1);
        // Heal: the same link carries traffic again.
        eps[1].clear_partition();
        eps[0].send(2, 11, Vec::new()).unwrap();
        assert_eq!(eps[2].try_recv().unwrap().tag, 11);
    }

    #[test]
    fn scheduled_partition_window_expires() {
        let plan = FaultPlan::partition(0, &[0], &[1], Duration::from_millis(60));
        let eps = Fabric::new_chaotic(2, NetProfile::instant(), plan);
        eps[0].send(1, 1, Vec::new()).unwrap();
        assert!(eps[1].try_recv().is_none(), "window open: cut");
        std::thread::sleep(Duration::from_millis(80));
        eps[0].send(1, 2, Vec::new()).unwrap();
        assert_eq!(eps[1].try_recv().unwrap().tag, 2, "window healed");
        assert_eq!(eps[0].stats().chaos_cut, 1);
    }

    #[test]
    fn stats_track_traffic() {
        let eps = Fabric::new(2, NetProfile::instant());
        eps[0].send(1, 0, vec![0; 50]).unwrap();
        eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(eps[0].stats().msgs_sent, 1);
        assert_eq!(eps[0].stats().bytes_sent, 50);
        assert_eq!(eps[1].stats().msgs_recv, 1);
        assert_eq!(eps[0].stats_of(1).unwrap().bytes_recv, 50);
    }
}
