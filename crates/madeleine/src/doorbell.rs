//! The endpoint doorbell: the event that makes drivers event-driven.
//!
//! A [`Doorbell`] is a tiny eventcount (a ring counter behind a mutex plus
//! a condvar).  Every [`Endpoint::send`](crate::Endpoint::send) *rings* the
//! destination endpoint's doorbell after the message is enqueued, so an
//! idle driver can **park** on the doorbell instead of spin- or
//! sleep-polling its inbox — the difference between a node burning a whole
//! OS timeslice per poll (≈1 ms of migration latency on a busy host) and a
//! futex wake-up (a few µs).
//!
//! ## The missed-wakeup protocol
//!
//! Waiting is two-phase so a ring can never be lost between "I found no
//! work" and "I went to sleep":
//!
//! ```text
//! let seen = db.rings();          // 1. snapshot the counter
//! if try_recv() is Some { … }     // 2. re-check for work
//! db.wait_past(seen, timeout);    // 3. park; returns at once if a ring
//!                                 //    landed after step 1
//! ```
//!
//! Because a sender enqueues the message *before* ringing, any message that
//! arrives after step 2 necessarily rings after step 1's snapshot, so
//! `wait_past` observes `rings() != seen` and returns immediately.
//!
//! One doorbell may cover many endpoints: deterministic-mode machines wire
//! every node's endpoint to a single shared doorbell
//! ([`crate::Fabric::new_shared_doorbell`]), so the one driver thread parks
//! once for the whole fabric.

use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Callback invoked on every ring, after the counter bump is published.
pub type RingListener = Arc<dyn Fn() + Send + Sync>;

#[derive(Default)]
struct Inner {
    rings: Mutex<u64>,
    cv: Condvar,
    /// Optional side-channel: an executor routes this bell's rings into its
    /// ready queue.  Installed at most once, invoked *outside* the rings
    /// lock so the listener may take its own locks freely.
    listener: OnceLock<RingListener>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("rings", &self.rings)
            .field("listener", &self.listener.get().map(|_| "…"))
            .finish()
    }
}

/// A cloneable wake-up channel between senders and a parked driver.
///
/// Cloning is a refcount bump; all clones ring and wait on the same
/// counter.
#[derive(Debug, Clone, Default)]
pub struct Doorbell {
    inner: Arc<Inner>,
}

impl Doorbell {
    /// Fresh doorbell with a zeroed ring counter.
    pub fn new() -> Doorbell {
        Doorbell::default()
    }

    /// Ring: bump the counter and wake every parked waiter.
    pub fn ring(&self) {
        {
            let mut rings = self.inner.rings.lock().unwrap();
            *rings += 1;
            // Notify while holding the lock: a waiter between its counter
            // check and its `wait` cannot miss this ring.
            self.inner.cv.notify_all();
        }
        // Listener runs after the lock is dropped: it may take arbitrary
        // locks of its own (an executor's ready-queue mutex) without any
        // ordering constraint against the rings mutex.
        if let Some(l) = self.inner.listener.get() {
            l();
        }
    }

    /// Install a ring listener.  At most one listener per bell; later calls
    /// are ignored.  Because every sender enqueues its message *before*
    /// ringing, a listener that schedules the receiving driver observes the
    /// same no-lost-wakeup guarantee as a parked waiter.
    pub fn set_listener(&self, l: RingListener) {
        let _ = self.inner.listener.set(l);
    }

    /// Current ring count.  Snapshot this *before* the final work re-check
    /// that precedes [`Doorbell::wait_past`].
    pub fn rings(&self) -> u64 {
        *self.inner.rings.lock().unwrap()
    }

    /// Park until the ring count moves past `seen` or `timeout` elapses;
    /// returns the count at wake-up.  Returns immediately when a ring
    /// already landed after the `seen` snapshot.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let mut rings = self.inner.rings.lock().unwrap();
        let deadline = std::time::Instant::now() + timeout;
        while *rings == seen {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            rings = self.inner.cv.wait_timeout(rings, deadline - now).unwrap().0;
        }
        *rings
    }

    /// Do two handles ring the same bell?
    pub fn same_bell(&self, other: &Doorbell) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn ring_before_wait_returns_immediately() {
        let db = Doorbell::new();
        let seen = db.rings();
        db.ring();
        let t0 = Instant::now();
        let now = db.wait_past(seen, Duration::from_secs(5));
        assert_eq!(now, seen + 1);
        assert!(t0.elapsed() < Duration::from_millis(100), "must not block");
    }

    #[test]
    fn wait_times_out_without_ring() {
        let db = Doorbell::new();
        let seen = db.rings();
        let t0 = Instant::now();
        let now = db.wait_past(seen, Duration::from_millis(20));
        assert_eq!(now, seen);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn cross_thread_ring_wakes_waiter() {
        let db = Doorbell::new();
        let db2 = db.clone();
        assert!(db.same_bell(&db2));
        let seen = db.rings();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            db2.ring();
        });
        let now = db.wait_past(seen, Duration::from_secs(5));
        assert!(now > seen);
        t.join().unwrap();
    }

    #[test]
    fn listener_fires_on_every_ring_from_any_clone() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let db = Doorbell::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        db.set_listener(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        db.ring();
        db.clone().ring();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        // Second install is a no-op, the first listener keeps firing.
        db.set_listener(Arc::new(|| panic!("must not replace")));
        db.ring();
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn listener_may_ring_sibling_bells_without_deadlock() {
        // The executor pattern: a listener takes its own lock and touches
        // other state.  Re-ringing the same bell from the listener would
        // recurse forever, but ringing *another* bell must be safe.
        let a = Doorbell::new();
        let b = Doorbell::new();
        let b2 = b.clone();
        a.set_listener(Arc::new(move || b2.ring()));
        let seen = b.rings();
        a.ring();
        assert_eq!(b.rings(), seen + 1);
    }

    #[test]
    fn stale_snapshot_never_blocks() {
        let db = Doorbell::new();
        db.ring();
        db.ring();
        // A snapshot taken before those rings is already "past".
        assert_eq!(db.wait_past(0, Duration::from_secs(5)), 2);
    }
}
