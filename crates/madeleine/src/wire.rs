//! The [`Wire`] trait: typed encode/decode over Madeleine payloads.
//!
//! PM2's protocols were historically framed by hand with
//! [`PayloadWriter`]/[`PayloadReader`] calls at every site.  `Wire` gives
//! the same little-endian framing one canonical, composable definition per
//! type, so a protocol message is a tuple of typed fields rather than a
//! sequence of `w.u64(...)` calls — and the typed LRPC / value-join layers
//! of the `pm2` crate can ship any `Wire` value without bespoke codecs.
//!
//! Framing rules (all little-endian):
//!
//! * fixed-width integers and floats: their byte representation;
//! * `usize`/`isize`: always 8 bytes (u64/i64) — node-independent;
//! * `bool`: one byte, 0 or 1 (any other value fails to decode);
//! * `String`, `Vec<T>`: u32 element count, then the elements;
//! * `Option<T>`: one presence byte, then the value if present;
//! * tuples: fields in order, no header.
//!
//! Decoding is total: every method returns `None` on underrun or invalid
//! encoding instead of panicking, because payloads cross node boundaries.

use crate::message::{PayloadReader, PayloadWriter};

/// A value that can be encoded onto / decoded from a Madeleine payload.
pub trait Wire: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut PayloadWriter);

    /// Decode one value, advancing `r`; `None` on underrun or bad bytes.
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self>;

    /// Encode into a fresh byte vector.
    fn encode_vec(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(16);
        self.encode(&mut w);
        w.finish_vec()
    }

    /// Decode from a complete buffer; `None` unless exactly consumed.
    fn decode_vec(buf: &[u8]) -> Option<Self> {
        let mut r = PayloadReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() == 0 {
            Some(v)
        } else {
            None
        }
    }
}

macro_rules! impl_wire_int {
    ($($t:ty => $wide:ty, $write:ident, $read:ident);* $(;)?) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut PayloadWriter) {
                w.$write(*self as $wide);
            }
            fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
                r.$read().map(|v| v as $t)
            }
        }
    )*};
}

impl_wire_int! {
    u8 => u8, u8, u8;
    i8 => u8, u8, u8;
    u16 => u16, u16, u16;
    i16 => u16, u16, u16;
    u32 => u32, u32, u32;
    i32 => u32, u32, u32;
    u64 => u64, u64, u64;
    i64 => u64, u64, u64;
    usize => u64, u64, u64;
    isize => u64, u64, u64;
}

impl Wire for bool {
    fn encode(&self, w: &mut PayloadWriter) {
        w.u8(*self as u8);
    }
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for f32 {
    fn encode(&self, w: &mut PayloadWriter) {
        w.u32(self.to_bits());
    }
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
        r.u32().map(f32::from_bits)
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut PayloadWriter) {
        w.u64(self.to_bits());
    }
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
        r.u64().map(f64::from_bits)
    }
}

impl Wire for () {
    fn encode(&self, _w: &mut PayloadWriter) {}
    fn decode(_r: &mut PayloadReader<'_>) -> Option<Self> {
        Some(())
    }
}

impl Wire for String {
    fn encode(&self, w: &mut PayloadWriter) {
        w.lp_bytes(self.as_bytes());
    }
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
        String::from_utf8(r.lp_bytes()?.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut PayloadWriter) {
        w.u32(self.len() as u32);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
        let n = r.u32()? as usize;
        // Guard capacity by what the buffer could possibly hold, so a
        // corrupt length cannot trigger a huge pre-allocation.
        let mut out = Vec::with_capacity(n.min(r.remaining().max(1)));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Some(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut PayloadWriter) {
        match self {
            None => {
                w.u8(0);
            }
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(None),
            1 => Some(Some(T::decode(r)?)),
            _ => None,
        }
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, w: &mut PayloadWriter) {
                let ($($name,)+) = self;
                $($name.encode(w);)+
            }
            fn decode(r: &mut PayloadReader<'_>) -> Option<Self> {
                Some(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A);
impl_wire_tuple!(A, B);
impl_wire_tuple!(A, B, C);
impl_wire_tuple!(A, B, C, D);
impl_wire_tuple!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_vec();
        assert_eq!(T::decode_vec(&bytes), Some(v));
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(-7i32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.25f64);
        roundtrip(());
    }

    #[test]
    fn compounds_roundtrip() {
        roundtrip(String::from("héllo"));
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u8>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<String>::None);
        roundtrip((1u32, String::from("x"), vec![9u8], false));
    }

    #[test]
    fn invalid_bool_and_trailing_bytes_rejected() {
        assert_eq!(bool::decode_vec(&[2]), None);
        assert_eq!(u8::decode_vec(&[1, 2]), None, "trailing bytes");
        assert_eq!(String::decode_vec(&[255, 0, 0, 0]), None, "length underrun");
    }

    #[test]
    fn corrupt_vec_length_is_safe() {
        let mut w = PayloadWriter::with_capacity(8);
        w.u32(u32::MAX);
        assert_eq!(Vec::<u64>::decode_vec(&w.finish()), None);
    }
}
