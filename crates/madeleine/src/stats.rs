//! Per-endpoint traffic statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Payload bytes sent.
    pub bytes_sent: AtomicU64,
    /// Messages received.
    pub msgs_recv: AtomicU64,
    /// Payload bytes received.
    pub bytes_recv: AtomicU64,
    /// Modelled wire nanoseconds charged at this receiver.
    pub wire_ns: AtomicU64,
}

impl EndpointStats {
    pub(crate) fn on_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn on_recv(&self, bytes: usize, wire_ns: u64) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        self.wire_ns.fetch_add(wire_ns, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> EndpointStatsSnapshot {
        EndpointStatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            wire_ns: self.wire_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`EndpointStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStatsSnapshot {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    /// Modelled wire nanoseconds paid dequeuing (receiver-clocked model).
    pub wire_ns: u64,
}

impl std::fmt::Display for EndpointStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent {} msgs / {} B, received {} msgs / {} B",
            self.msgs_sent, self.bytes_sent, self.msgs_recv, self.bytes_recv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = EndpointStats::default();
        s.on_send(100);
        s.on_send(24);
        s.on_recv(7, 1500);
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 124);
        assert_eq!(snap.msgs_recv, 1);
        assert_eq!(snap.bytes_recv, 7);
        assert_eq!(snap.wire_ns, 1500);
    }
}
