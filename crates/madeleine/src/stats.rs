//! Per-endpoint traffic statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Messages sent.
    pub msgs_sent: AtomicU64,
    /// Payload bytes sent.
    pub bytes_sent: AtomicU64,
    /// Messages received.
    pub msgs_recv: AtomicU64,
    /// Payload bytes received.
    pub bytes_recv: AtomicU64,
    /// Modelled wire nanoseconds charged at this receiver.
    pub wire_ns: AtomicU64,
    /// Messages sent through [`crate::Endpoint::send_batched`] — wire
    /// messages that carry a *train* of logical items (e.g. k migrating
    /// threads) instead of one item per message.
    pub batch_msgs_sent: AtomicU64,
    /// Total logical items carried by those batched messages.  The ratio
    /// `batch_items_sent / batch_msgs_sent` is the mean train length
    /// (threads per message, for the migration path).
    pub batch_items_sent: AtomicU64,
    /// Chaos: messages dropped by the fault plan on this sender.
    pub chaos_dropped: AtomicU64,
    /// Chaos: messages duplicated (the extra copy reuses the original's
    /// seq, so receiver dedup windows see it).
    pub chaos_duplicated: AtomicU64,
    /// Chaos: messages given extra modelled wire delay.
    pub chaos_delayed: AtomicU64,
    /// Chaos: messages parked in a link's holdback slot (reordered).
    pub chaos_held: AtomicU64,
    /// Messages eaten by a partition cut (runtime or scheduled window).
    pub chaos_cut: AtomicU64,
}

impl EndpointStats {
    pub(crate) fn on_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn on_batch(&self, items: usize) {
        self.batch_msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.batch_items_sent
            .fetch_add(items as u64, Ordering::Relaxed);
    }

    pub(crate) fn on_recv(&self, bytes: usize, wire_ns: u64) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        self.wire_ns.fetch_add(wire_ns, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_drop(&self) {
        self.chaos_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_dup(&self) {
        self.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_delay(&self) {
        self.chaos_delayed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_hold(&self) {
        self.chaos_held.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_chaos_cut(&self) {
        self.chaos_cut.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> EndpointStatsSnapshot {
        EndpointStatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            wire_ns: self.wire_ns.load(Ordering::Relaxed),
            batch_msgs_sent: self.batch_msgs_sent.load(Ordering::Relaxed),
            batch_items_sent: self.batch_items_sent.load(Ordering::Relaxed),
            chaos_dropped: self.chaos_dropped.load(Ordering::Relaxed),
            chaos_duplicated: self.chaos_duplicated.load(Ordering::Relaxed),
            chaos_delayed: self.chaos_delayed.load(Ordering::Relaxed),
            chaos_held: self.chaos_held.load(Ordering::Relaxed),
            chaos_cut: self.chaos_cut.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`EndpointStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStatsSnapshot {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    /// Modelled wire nanoseconds paid dequeuing (receiver-clocked model).
    pub wire_ns: u64,
    /// Batched (multi-item) messages sent — see [`EndpointStats`].
    pub batch_msgs_sent: u64,
    /// Logical items carried by batched messages.
    pub batch_items_sent: u64,
    /// Chaos: messages dropped by the fault plan on this sender.
    pub chaos_dropped: u64,
    /// Chaos: messages duplicated (same-seq extra copy).
    pub chaos_duplicated: u64,
    /// Chaos: messages given extra modelled wire delay.
    pub chaos_delayed: u64,
    /// Chaos: messages held back one slot (reordered).
    pub chaos_held: u64,
    /// Messages eaten by a partition cut.
    pub chaos_cut: u64,
}

impl EndpointStatsSnapshot {
    /// Total fault events this sender injected (cuts included).
    pub fn chaos_events(&self) -> u64 {
        self.chaos_dropped
            + self.chaos_duplicated
            + self.chaos_delayed
            + self.chaos_held
            + self.chaos_cut
    }
    /// Mean logical items per batched message (1.0 when none were sent):
    /// for the migration path, the observed threads-per-message train
    /// length.
    pub fn items_per_batch(&self) -> f64 {
        if self.batch_msgs_sent == 0 {
            return 1.0;
        }
        self.batch_items_sent as f64 / self.batch_msgs_sent as f64
    }
}

impl std::fmt::Display for EndpointStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent {} msgs / {} B, received {} msgs / {} B",
            self.msgs_sent, self.bytes_sent, self.msgs_recv, self.bytes_recv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = EndpointStats::default();
        s.on_send(100);
        s.on_send(24);
        s.on_recv(7, 1500);
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.bytes_sent, 124);
        assert_eq!(snap.msgs_recv, 1);
        assert_eq!(snap.bytes_recv, 7);
        assert_eq!(snap.wire_ns, 1500);
        assert_eq!(snap.items_per_batch(), 1.0, "no batches yet");
    }

    #[test]
    fn batch_counters_yield_mean_train_length() {
        let s = EndpointStats::default();
        s.on_batch(7);
        s.on_batch(1);
        let snap = s.snapshot();
        assert_eq!(snap.batch_msgs_sent, 2);
        assert_eq!(snap.batch_items_sent, 8);
        assert_eq!(snap.items_per_batch(), 4.0);
    }
}
