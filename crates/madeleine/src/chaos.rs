//! Seeded message-level fault injection — the chaos fabric.
//!
//! A [`FaultPlan`] describes, per directed link, which faults the fabric
//! may inject on the send path: **drop**, **duplicate** (same sequence
//! number, so receiver dedup windows catch it), **delay** (extra modelled
//! wire time, charged at the receiver like any other wire cost), **hold**
//! (a bounded one-slot holdback per link that releases behind the next
//! send, producing a genuine same-class reorder), and **partitions**
//! (transient bidirectional cuts between two node sets, either scheduled
//! on the plan or toggled at runtime through
//! [`crate::Endpoint::set_partition`]).
//!
//! Determinism: every link owns its own SplitMix64 stream seeded from
//! `(plan seed, src, dst)`, and decisions are drawn one per eligible send
//! in send order.  Two fabrics built from the same plan and driven with
//! the same per-endpoint send sequences therefore inject byte-identical
//! fault schedules — chaos runs replay exactly in deterministic mode.
//! (Scheduled partition windows are the one wall-clock element; replay
//! tests use the RNG-driven faults.)
//!
//! Scoping: faults never apply to self-sends (no NIC on that path), and
//! tags listed in [`FaultPlan::protect_tags`] are exempt from every
//! RNG-driven fault — embedders protect their unacknowledged
//! state-transfer messages (a migration train *is* the thread) while
//! leaving retried request/reply traffic chaotic.  The modelled wire
//! clock itself is never corrupted: a delayed message still pays
//! `latency + bytes × cost (+ chaos delay)` at the receiver, exactly
//! once.

use std::time::Duration;

use crate::message::Message;

/// Parts-per-million helper: probability `p` (0.0..=1.0) as ppm.
fn ppm(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 1_000_000.0) as u32
}

/// The same SplitMix64 the test kit uses, embedded so this crate keeps
/// zero dependencies and the schedule is reproducible from a bare seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Roll an event with probability `ppm` parts-per-million.
    fn roll(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next_u64() % 1_000_000 < ppm as u64
    }
}

/// A scheduled transient partition: nodes in `a` cannot reach nodes in
/// `b` (bidirectionally) while the window is open, measured from fabric
/// construction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PartitionWindow {
    a: Vec<usize>,
    b: Vec<usize>,
    start: Duration,
    dur: Duration,
}

/// A seeded per-link fault schedule.  Build one with [`FaultPlan::new`]
/// (or the [`FaultPlan::lossy`] preset), tune it with the `with_*`
/// knobs, and hand it to `Fabric::new_chaotic`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_ppm: u32,
    dup_ppm: u32,
    delay_ppm: u32,
    delay: Duration,
    hold_ppm: u32,
    windows: Vec<PartitionWindow>,
    /// Tags exempt from RNG-driven faults (sorted for binary search).
    protected: Vec<u16>,
}

impl FaultPlan {
    /// A plan that injects nothing until knobs are turned.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay: Duration::from_micros(200),
            hold_ppm: 0,
            windows: Vec::new(),
            protected: Vec::new(),
        }
    }

    /// Preset: a uniformly lossy network.  Each eligible message is
    /// dropped with probability `loss`, duplicated or held back with a
    /// quarter of that probability each — the mix a retried control
    /// plane has to survive.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        FaultPlan::new(seed)
            .with_drop(loss)
            .with_duplicate(loss / 4.0)
            .with_hold(loss / 4.0)
    }

    /// Preset: one scheduled bidirectional partition between node sets
    /// `a` and `b`, open for `dur` starting at fabric construction.
    /// (For a partition opened mid-run, use
    /// [`crate::Endpoint::set_partition`] instead.)
    pub fn partition(seed: u64, a: &[usize], b: &[usize], dur: Duration) -> Self {
        FaultPlan::new(seed).with_partition_window(a, b, Duration::ZERO, dur)
    }

    /// Drop each eligible message with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_ppm = ppm(p);
        self
    }

    /// Duplicate each eligible message (same seq) with probability `p`.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.dup_ppm = ppm(p);
        self
    }

    /// Add `extra` modelled wire time to each eligible message with
    /// probability `p`.
    pub fn with_delay(mut self, p: f64, extra: Duration) -> Self {
        self.delay_ppm = ppm(p);
        self.delay = extra;
        self
    }

    /// Hold each eligible message back (one-slot bounded holdback per
    /// link, released behind the next send on that link) with
    /// probability `p` — the reorder fault.
    pub fn with_hold(mut self, p: f64) -> Self {
        self.hold_ppm = ppm(p);
        self
    }

    /// Add a scheduled partition window (see [`FaultPlan::partition`]).
    pub fn with_partition_window(
        mut self,
        a: &[usize],
        b: &[usize],
        start: Duration,
        dur: Duration,
    ) -> Self {
        self.windows.push(PartitionWindow {
            a: a.to_vec(),
            b: b.to_vec(),
            start,
            dur,
        });
        self
    }

    /// Exempt `tags` from every RNG-driven fault.  Embedders list their
    /// unacknowledged state-transfer tags here; partitions still cut
    /// everything (a severed cable does not read headers).
    pub fn protect_tags(mut self, tags: &[u16]) -> Self {
        self.protected.extend_from_slice(tags);
        self.protected.sort_unstable();
        self.protected.dedup();
        self
    }

    /// The plan's seed (for reporting).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Does any scheduled window cut `src → dst` at `elapsed` since
    /// fabric construction?
    pub(crate) fn window_blocks(&self, src: usize, dst: usize, elapsed: Duration) -> bool {
        self.windows.iter().any(|w| {
            elapsed >= w.start
                && elapsed < w.start + w.dur
                && ((w.a.contains(&src) && w.b.contains(&dst))
                    || (w.b.contains(&src) && w.a.contains(&dst)))
        })
    }

    pub(crate) fn is_protected(&self, tag: u16) -> bool {
        self.protected.binary_search(&tag).is_ok()
    }

    pub(crate) fn has_windows(&self) -> bool {
        !self.windows.is_empty()
    }

    fn link_rng(&self, src: usize, dst: usize) -> SplitMix64 {
        // Decorrelate links: fold (src, dst) into the seed through one
        // mix round so adjacent links draw unrelated streams.
        let mut s = SplitMix64(
            self.seed ^ ((src as u64) << 32) ^ (dst as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        SplitMix64(s.next_u64())
    }
}

/// What the fault roll decided for one eligible message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    Deliver,
    Drop,
    Duplicate,
    /// Deliver with `extra_ns` added to the modelled wire time.
    Delay(u64),
    /// Park in the link's holdback slot; released behind the next send.
    Hold,
}

/// Per-link chaos state owned by one endpoint: the link's RNG stream and
/// its one-slot holdback queue.  Single-threaded (the owning driver),
/// hence plain fields behind the endpoint's `RefCell`.
#[derive(Debug)]
pub(crate) struct LinkState {
    rng: SplitMix64,
    pub(crate) held: Option<Message>,
}

/// One endpoint's view of the fault plan: a [`LinkState`] per
/// destination.
#[derive(Debug)]
pub(crate) struct EndpointChaos {
    pub(crate) plan: FaultPlan,
    pub(crate) links: Vec<LinkState>,
}

impl EndpointChaos {
    pub(crate) fn new(plan: &FaultPlan, src: usize, n: usize) -> Self {
        let links = (0..n)
            .map(|dst| LinkState {
                rng: plan.link_rng(src, dst),
                held: None,
            })
            .collect();
        EndpointChaos {
            plan: plan.clone(),
            links,
        }
    }

    /// Roll the fault dice for one eligible message on link `dst`.
    /// Exactly one draw per call, in send order — the determinism
    /// contract.
    pub(crate) fn verdict(&mut self, dst: usize) -> Verdict {
        let plan = &self.plan;
        let rng = &mut self.links[dst].rng;
        if rng.roll(plan.drop_ppm) {
            return Verdict::Drop;
        }
        if rng.roll(plan.dup_ppm) {
            return Verdict::Duplicate;
        }
        if rng.roll(plan.hold_ppm) {
            return Verdict::Hold;
        }
        if rng.roll(plan.delay_ppm) {
            return Verdict::Delay(plan.delay.as_nanos() as u64);
        }
        Verdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_verdict_streams() {
        let plan = FaultPlan::lossy(0xDEAD_BEEF, 0.05).with_delay(0.02, Duration::from_micros(50));
        let mut a = EndpointChaos::new(&plan, 0, 4);
        let mut b = EndpointChaos::new(&plan, 0, 4);
        for i in 0..10_000 {
            let dst = i % 4;
            assert_eq!(a.verdict(dst), b.verdict(dst), "message {i}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let pa = FaultPlan::lossy(1, 0.10);
        let pb = FaultPlan::lossy(2, 0.10);
        let mut a = EndpointChaos::new(&pa, 0, 2);
        let mut b = EndpointChaos::new(&pb, 0, 2);
        let same = (0..10_000).filter(|_| a.verdict(1) == b.verdict(1)).count();
        assert!(same < 10_000, "independent seeds must not replay");
    }

    #[test]
    fn links_draw_independent_streams() {
        let plan = FaultPlan::lossy(7, 0.5);
        let mut c = EndpointChaos::new(&plan, 0, 3);
        let s1: Vec<_> = (0..100).map(|_| c.verdict(1)).collect();
        let s2: Vec<_> = (0..100).map(|_| c.verdict(2)).collect();
        assert_ne!(s1, s2, "links 0→1 and 0→2 must be decorrelated");
    }

    #[test]
    fn loss_rate_tracks_the_knob() {
        let plan = FaultPlan::new(42).with_drop(0.01);
        let mut c = EndpointChaos::new(&plan, 0, 2);
        let drops = (0..100_000)
            .filter(|_| c.verdict(1) == Verdict::Drop)
            .count();
        assert!((600..1400).contains(&drops), "1% of 100k ≈ {drops}");
    }

    #[test]
    fn scheduled_window_cuts_both_directions_then_heals() {
        let plan = FaultPlan::partition(0, &[0, 1], &[2, 3], Duration::from_millis(100));
        let mid = Duration::from_millis(50);
        let after = Duration::from_millis(150);
        assert!(plan.window_blocks(0, 2, mid));
        assert!(plan.window_blocks(3, 1, mid));
        assert!(!plan.window_blocks(0, 1, mid), "intra-set traffic flows");
        assert!(!plan.window_blocks(0, 2, after), "the window heals");
    }

    #[test]
    fn protected_tags_are_recognized() {
        let plan = FaultPlan::new(0).protect_tags(&[4, 1, 4, 9]);
        assert!(plan.is_protected(1));
        assert!(plan.is_protected(4));
        assert!(plan.is_protected(9));
        assert!(!plan.is_protected(2));
    }
}
