//! Wire models.
//!
//! A [`NetProfile`] charges every message `latency + len × per-byte cost`,
//! the standard linear (Hockney) model.  The defaults are calibrated to the
//! hardware of the paper's evaluation (§5: "a Myrinet network from Myricom
//! accessed through the BIP low-level communication interface" on 200 MHz
//! PentiumPro nodes):
//!
//! * BIP over Myrinet reported ~8 µs one-way latency for short messages and
//!   ~126 MB/s asymptotic bandwidth (Prylli & Tourancheau, "BIP: a new
//!   protocol designed for high performance networking on Myrinet", 1998).
//!
//! Delays are realized by busy-waiting: sleeping cannot hit microsecond
//! targets, and the sender-side spin also models BIP's synchronous sends.

use std::time::{Duration, Instant};

/// Linear wire-cost model applied to every message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetProfile {
    /// Human-readable name (appears in bench reports).
    pub name: &'static str,
    /// One-way per-message latency, nanoseconds.
    pub latency_ns: u64,
    /// Transmission cost per payload byte, nanoseconds.
    pub ns_per_byte: f64,
}

impl NetProfile {
    /// BIP over Myrinet, the paper's network: ~8 µs latency, ~126 MB/s.
    pub fn myrinet_bip() -> Self {
        NetProfile {
            name: "myrinet-bip",
            latency_ns: 8_000,
            ns_per_byte: 1e9 / 126.0e6,
        }
    }

    /// 100 Mb/s Fast Ethernet with a kernel TCP stack of the era
    /// (~60 µs latency, ~11 MB/s) — the "slow network" contrast case.
    pub fn fast_ethernet() -> Self {
        NetProfile {
            name: "fast-ethernet",
            latency_ns: 60_000,
            ns_per_byte: 1e9 / 11.0e6,
        }
    }

    /// No wire cost at all: isolates protocol CPU cost; used by tests for
    /// determinism and speed.
    pub fn instant() -> Self {
        NetProfile {
            name: "instant",
            latency_ns: 0,
            ns_per_byte: 0.0,
        }
    }

    /// Total modelled wire time for a message of `bytes` payload bytes.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        let ns = self.latency_ns as f64 + self.ns_per_byte * bytes as f64;
        Duration::from_nanos(ns as u64)
    }

    /// Is this the zero-cost model?
    pub fn is_instant(&self) -> bool {
        self.latency_ns == 0 && self.ns_per_byte == 0.0
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::myrinet_bip()
    }
}

/// Busy-wait for `d`.  Microsecond-scale precision; returns immediately for
/// zero durations.
#[inline]
pub fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bip_figures() {
        let p = NetProfile::myrinet_bip();
        // Small message ≈ latency.
        let d0 = p.delay_for(0);
        assert_eq!(d0, Duration::from_micros(8));
        // 64 KiB at 126 MB/s ≈ 520 µs + latency.
        let d64k = p.delay_for(64 * 1024);
        assert!(
            d64k > Duration::from_micros(500) && d64k < Duration::from_micros(560),
            "{d64k:?}"
        );
    }

    #[test]
    fn instant_is_free() {
        let p = NetProfile::instant();
        assert!(p.is_instant());
        assert_eq!(p.delay_for(1 << 20), Duration::ZERO);
    }

    #[test]
    fn spin_waits_roughly_right() {
        let t0 = Instant::now();
        spin_for(Duration::from_micros(200));
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_micros(200));
        assert!(
            dt < Duration::from_millis(50),
            "spin overshot wildly: {dt:?}"
        );
    }

    #[test]
    fn ethernet_slower_than_myrinet() {
        let m = NetProfile::myrinet_bip();
        let e = NetProfile::fast_ethernet();
        assert!(e.delay_for(1024) > m.delay_for(1024));
    }
}
