//! # madeleine — the communication substrate
//!
//! PM2 runs on Madeleine, "an efficient and portable communication
//! interface for multithreaded environments" (Bougé, Méhaut, Namyst,
//! PACT'98), which in the paper's experiments drives a Myrinet network
//! through the BIP low-level interface.  The reported 75 µs migrations and
//! 255 µs negotiations are dominated by this layer's per-message latency and
//! per-byte cost.
//!
//! This reproduction keeps the *interface* (typed point-to-point messages
//! between nodes, blocking and polling receives) and replaces the wire with
//! an in-process fabric of lock-free channels plus a **calibrated wire
//! model**: each message records `latency + bytes × per-byte cost` and the
//! receiver busy-waits it as it dequeues (receiver-clocked, like polled BIP
//! receives), using published BIP/Myrinet figures
//! ([`NetProfile::myrinet_bip`]).  `NetProfile::instant()` turns the model
//! off to isolate protocol CPU cost, and tests use it for determinism.
//!
//! The substitution preserves what the paper's evaluation actually
//! exercises: the *number* of messages each protocol needs and the size of
//! each message — which is where the per-node negotiation cost and the
//! migration latency shape come from.
//!
//! ## The zero-copy payload model
//!
//! Payloads are [`Payload`] values (see [`buf`]): sealed, refcounted byte
//! buffers, usually checked out of a per-endpoint [`BufPool`].  The send
//! path never copies a sealed buffer — a clone is a refcount bump — and a
//! pooled buffer returns to its origin endpoint's free list when the last
//! receiver drops it, so steady-state traffic performs **zero payload heap
//! allocations**: checkout → send → receive → drop → checkout cycles one
//! backing buffer.
//!
//! When does [`Endpoint::send`] copy?
//!
//! | payload argument                  | copy? | allocation?                      |
//! |-----------------------------------|-------|----------------------------------|
//! | [`PayloadBuf`] (pool checkout)    | no    | none after warm-up (pool reuse)  |
//! | [`Payload`] (sealed, e.g. clone)  | no    | none (refcount bump)             |
//! | `Vec<u8>`                         | no    | one `Arc` adopting the vector    |
//! | empty `Vec<u8>` / `&[]`           | no    | none (shared empty payload)      |
//! | `&[u8]`                           | yes   | one vector (the bytes are copied)|
//!
//! [`Endpoint::broadcast`] seals its payload once and fans it out by
//! refcount: one buffer serves all `p − 1` destinations regardless of size.
//!
//! ## Doorbells: event-driven receivers
//!
//! Every send rings the destination endpoint's [`Doorbell`] *after*
//! enqueuing the message, so an idle driver parks (futex wait) instead of
//! spin- or sleep-polling — on a loaded host the difference between a
//! ~1 ms OS-timeslice of added latency per message and a few-µs wake-up.
//! The two-phase snapshot/re-check/park protocol (see [`doorbell`]) makes
//! the park race-free, [`Endpoint::recv_until`] gives a deadline-bounded
//! blocking receive, and [`Fabric::new_shared_doorbell`] aliases one bell
//! across every endpoint for single-driver (deterministic) embedders.
//!
//! ## The fault model
//!
//! By default every link is a perfect wire: no loss, no duplication, no
//! reordering beyond the documented per-pair FIFO guarantee.
//! [`Fabric::new_chaotic`] replaces it with a seeded [`FaultPlan`] (see
//! [`chaos`]) that may, per directed link and in a byte-identical
//! schedule for a given seed:
//!
//! * **drop** a message (the sender still sees `Ok` — loss is silent,
//!   like a real NIC);
//! * **duplicate** a message — the copy reuses the original's sequence
//!   number, so a receiver-side dedup window can recognize it;
//! * **delay** a message by extra modelled wire time, charged at the
//!   receiver exactly like the profile's own latency;
//! * **hold** a message in a one-slot per-link holdback queue, releasing
//!   it behind the next send on that link — a bounded same-link reorder;
//! * **cut** traffic between two node sets (scheduled windows on the
//!   plan, or [`Endpoint::set_partition`] /
//!   [`Endpoint::clear_partition`] at runtime) — partitions eat every
//!   tag bidirectionally until healed.
//!
//! What the fabric still guarantees under any plan: the modelled wire
//! clock is never falsified (each *delivered* message pays its cost at
//! the receiver exactly once), death certificates stay monotonic, and
//! tags listed in [`FaultPlan::protect_tags`] are exempt from the RNG
//! faults — embedders protect unacknowledged state-transfer messages
//! (PM2 protects migration trains, spawns, and thread-exit records:
//! those are *exactly-once* by construction, while its request/reply
//! control traffic is *at-least-once* — retried above, deduplicated at
//! the receiver).  Every injected fault is counted on the sender's
//! [`EndpointStatsSnapshot`] (`chaos_*` fields).

pub mod buf;
pub mod chaos;
pub mod doorbell;
pub mod message;
pub mod network;
pub mod profile;
pub mod stats;
pub mod wire;

pub use buf::{BufPool, BufPoolStats, Payload, PayloadBuf};
pub use chaos::FaultPlan;
pub use doorbell::Doorbell;
pub use message::Message;
pub use network::{DeathWatch, Endpoint, Fabric, NetError, WILD_GROUP};
pub use profile::{spin_for, NetProfile};
pub use stats::{EndpointStats, EndpointStatsSnapshot};
pub use wire::Wire;
