//! # madeleine — the communication substrate
//!
//! PM2 runs on Madeleine, "an efficient and portable communication
//! interface for multithreaded environments" (Bougé, Méhaut, Namyst,
//! PACT'98), which in the paper's experiments drives a Myrinet network
//! through the BIP low-level interface.  The reported 75 µs migrations and
//! 255 µs negotiations are dominated by this layer's per-message latency and
//! per-byte cost.
//!
//! This reproduction keeps the *interface* (typed point-to-point messages
//! between nodes, blocking and polling receives) and replaces the wire with
//! an in-process fabric of lock-free channels plus a **calibrated wire
//! model**: each send busy-waits `latency + bytes × per-byte cost` before
//! the message becomes visible, using published BIP/Myrinet figures
//! ([`NetProfile::myrinet_bip`]).  `NetProfile::instant()` turns the model
//! off to isolate protocol CPU cost, and tests use it for determinism.
//!
//! The substitution preserves what the paper's evaluation actually
//! exercises: the *number* of messages each protocol needs and the size of
//! each message — which is where the per-node negotiation cost and the
//! migration latency shape come from.

pub mod message;
pub mod network;
pub mod profile;
pub mod stats;
pub mod wire;

pub use message::Message;
pub use network::{Endpoint, Fabric, NetError};
pub use profile::{spin_for, NetProfile};
pub use stats::{EndpointStats, EndpointStatsSnapshot};
pub use wire::Wire;
