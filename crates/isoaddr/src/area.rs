//! The process-wide iso-address area (paper §3.1, §4.1 and Fig. 5).
//!
//! One [`IsoArea`] is reserved per "machine" (cluster simulation).  All
//! nodes of that machine allocate their slots *within the same reservation*,
//! which is exactly the paper's premise — "the iso-address area covers the
//! same virtual address range on all nodes" — taken to its logical extreme:
//! since a slot busy on one node is guaranteed free on every other node, the
//! nodes' live mappings never collide and can legally coexist in a single
//! address space.
//!
//! The area enforces that invariant at runtime: [`IsoArea::commit_slots`]
//! atomically records which slots are mapped process-wide and fails loudly
//! on any overlap.  A passing test suite is therefore a machine-checked
//! proof that the slot-ownership protocol never double-allocates an
//! address.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::error::{IsoAddrError, Result};
use crate::layout::AreaConfig;
use crate::slots::{SlotRange, VAddr};
use crate::sys;

/// How logical commit/decommit of slots maps onto the host kernel.
///
/// The paper's nodes `mmap`/`munmap` slots directly (§4.1), and §6 already
/// introduces a cache of mmapped slots *because those syscalls are the
/// dominant cost*.  Sandboxed or virtualized kernels can make each page-
/// table operation 100×+ slower than the paper's hardware, which would put
/// host-kernel artifacts — not the algorithms — in every measurement, so
/// the area supports two strategies with identical observable semantics
/// (enforced by the same accounting; see `strategy_equivalence` test):
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapStrategy {
    /// Faithful syscalls: commit = `mprotect(RW)`, decommit = fresh
    /// `mmap(PROT_NONE, MAP_FIXED)` dropping the pages.  Reads of
    /// uncommitted slots fault, exactly like the paper's system.
    Syscall,
    /// The whole area is committed read/write once at reservation; logical
    /// commit is accounting only and logical decommit is accounting plus a
    /// zero fill (preserving "a fresh commit reads zeroes").  This is the
    /// paper's §6 mmap-avoidance taken to its limit and is the default for
    /// benchmarking.  Relaxation: stray reads of uncommitted slots return
    /// zeroes instead of faulting — the invariant checker still catches any
    /// double *commit*.
    Resident,
}

/// A reserved iso-address area divided into fixed-size slots.
pub struct IsoArea {
    base: VAddr,
    cfg: AreaConfig,
    strategy: MapStrategy,
    /// One bit per slot: 1 ⇔ currently committed (mapped R/W) by some node.
    /// This is *process-global accounting*, not ownership — ownership lives
    /// in the per-node bitmaps and per-thread slot lists.
    mapped: Vec<AtomicU64>,
    /// Running count of committed slots (for stats / leak checks).
    committed: AtomicUsize,
}

// SAFETY: all mutation goes through atomics; the raw memory behind `base`
// is handed out in disjoint slot ranges guarded by `mapped`.
unsafe impl Send for IsoArea {}
unsafe impl Sync for IsoArea {}

impl IsoArea {
    /// Reserve a fresh iso-address area with the default (Resident)
    /// strategy.
    pub fn new(cfg: AreaConfig) -> Result<Self> {
        Self::with_strategy(cfg, MapStrategy::Resident)
    }

    /// Reserve a fresh iso-address area with an explicit map strategy.
    pub fn with_strategy(cfg: AreaConfig, strategy: MapStrategy) -> Result<Self> {
        cfg.validate()?;
        let base = sys::reserve_anywhere(cfg.area_size())?;
        if strategy == MapStrategy::Resident {
            // One mprotect for the whole area; pages materialize on touch.
            // SAFETY: fresh reservation, exclusively ours.
            unsafe { sys::commit(base, cfg.area_size())? };
        }
        let n_words = cfg.n_slots.div_ceil(64);
        let mapped = (0..n_words).map(|_| AtomicU64::new(0)).collect();
        Ok(IsoArea {
            base,
            cfg,
            strategy,
            mapped,
            committed: AtomicUsize::new(0),
        })
    }

    /// The map strategy in force.
    pub fn strategy(&self) -> MapStrategy {
        self.strategy
    }

    /// Base virtual address of the area.
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// Geometry of the area.
    pub fn config(&self) -> AreaConfig {
        self.cfg
    }

    /// Slot size in bytes.
    #[inline]
    pub fn slot_size(&self) -> usize {
        self.cfg.slot_size
    }

    /// Total number of slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.cfg.n_slots
    }

    /// Virtual address of the first byte of slot `idx`.
    #[inline]
    pub fn slot_addr(&self, idx: usize) -> VAddr {
        debug_assert!(idx < self.cfg.n_slots);
        self.base + idx * self.cfg.slot_size
    }

    /// Virtual address range `[start, end)` of a slot range.
    pub fn range_addr(&self, range: SlotRange) -> (VAddr, VAddr) {
        (
            self.slot_addr(range.first),
            self.slot_addr(range.first) + range.count * self.slot_size(),
        )
    }

    /// Slot index containing virtual address `addr`.
    pub fn slot_of(&self, addr: VAddr) -> Result<usize> {
        if addr < self.base || addr >= self.base + self.cfg.area_size() {
            return Err(IsoAddrError::OutOfArea(addr));
        }
        Ok((addr - self.base) / self.cfg.slot_size)
    }

    /// Does `addr` fall inside the area?
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.base && addr < self.base + self.cfg.area_size()
    }

    /// Number of slots currently committed process-wide.
    pub fn committed_slots(&self) -> usize {
        self.committed.load(Ordering::Relaxed)
    }

    /// Atomically mark `range` as mapped; error if any slot already was.
    fn account_commit(&self, range: SlotRange) -> Result<()> {
        // Set bits one word at a time, checking the previous value.  On
        // conflict, roll back the bits we set and report the violation.
        let mut done: Vec<(usize, u64)> = Vec::new();
        for idx in range.iter() {
            let word = idx / 64;
            let bit = 1u64 << (idx % 64);
            let prev = self.mapped[word].fetch_or(bit, Ordering::AcqRel);
            if prev & bit != 0 {
                for &(w, b) in &done {
                    self.mapped[w].fetch_and(!b, Ordering::AcqRel);
                }
                return Err(IsoAddrError::DoubleCommit(range));
            }
            done.push((word, bit));
        }
        self.committed.fetch_add(range.count, Ordering::Relaxed);
        Ok(())
    }

    /// Atomically mark `range` as unmapped; error if any slot wasn't mapped.
    fn account_decommit(&self, range: SlotRange) -> Result<()> {
        for idx in range.iter() {
            let word = idx / 64;
            let bit = 1u64 << (idx % 64);
            let prev = self.mapped[word].fetch_and(!bit, Ordering::AcqRel);
            if prev & bit == 0 {
                return Err(IsoAddrError::NotCommitted(range));
            }
        }
        self.committed.fetch_sub(range.count, Ordering::Relaxed);
        Ok(())
    }

    /// Commit (map read/write) the memory of `range`.
    ///
    /// Fails with [`IsoAddrError::DoubleCommit`] if any slot of the range is
    /// already mapped anywhere in the process — the iso-address invariant.
    pub fn commit_slots(&self, range: SlotRange) -> Result<VAddr> {
        if range.count == 0 || range.end() > self.cfg.n_slots {
            return Err(IsoAddrError::BadConfig(format!("bad slot range {range:?}")));
        }
        self.account_commit(range)?;
        let (start, end) = self.range_addr(range);
        if self.strategy == MapStrategy::Syscall {
            // SAFETY: the accounting above guarantees exclusive use of the
            // range within this area's reservation.
            if let Err(e) = unsafe { sys::commit(start, end - start) } {
                let _ = self.account_decommit(range);
                return Err(e);
            }
        }
        Ok(start)
    }

    /// Decommit (drop pages, return to reserved state) the memory of `range`.
    pub fn decommit_slots(&self, range: SlotRange) -> Result<()> {
        if range.count == 0 || range.end() > self.cfg.n_slots {
            return Err(IsoAddrError::BadConfig(format!("bad slot range {range:?}")));
        }
        self.account_decommit(range)?;
        let (start, end) = self.range_addr(range);
        match self.strategy {
            // SAFETY: accounting says we own the only mapping of the range.
            MapStrategy::Syscall => unsafe { sys::decommit(start, end - start) },
            MapStrategy::Resident => {
                // Zero fill preserves "a fresh commit reads zeroes" without
                // a page-table round trip.
                // SAFETY: as above; the range stays mapped RW.
                unsafe { std::ptr::write_bytes(start as *mut u8, 0, end - start) };
                Ok(())
            }
        }
    }

    /// Is slot `idx` currently committed (mapped) process-wide?
    pub fn is_committed(&self, idx: usize) -> bool {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        self.mapped[word].load(Ordering::Acquire) & bit != 0
    }
}

impl Drop for IsoArea {
    fn drop(&mut self) {
        // SAFETY: we created the reservation in `new` and nothing may hold
        // references into a dropped area.
        unsafe {
            let _ = sys::release(self.base, self.cfg.area_size());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_area() -> IsoArea {
        IsoArea::new(AreaConfig::small()).unwrap()
    }

    #[test]
    fn geometry() {
        let a = small_area();
        assert_eq!(a.n_slots(), 64);
        assert_eq!(a.slot_addr(0), a.base());
        assert_eq!(a.slot_addr(1), a.base() + a.slot_size());
        assert_eq!(a.slot_of(a.base()).unwrap(), 0);
        assert_eq!(a.slot_of(a.base() + a.slot_size() * 3 + 17).unwrap(), 3);
        assert!(a.slot_of(a.base() - 1).is_err());
        assert!(a.slot_of(a.base() + a.config().area_size()).is_err());
    }

    #[test]
    fn commit_write_read_decommit() {
        let a = small_area();
        let r = SlotRange::new(5, 2);
        let addr = a.commit_slots(r).unwrap();
        assert_eq!(addr, a.slot_addr(5));
        assert_eq!(a.committed_slots(), 2);
        unsafe {
            let p = addr as *mut u8;
            std::ptr::write_bytes(p, 0xAB, a.slot_size() * 2);
            assert_eq!(p.add(a.slot_size() * 2 - 1).read(), 0xAB);
        }
        a.decommit_slots(r).unwrap();
        assert_eq!(a.committed_slots(), 0);
    }

    #[test]
    fn double_commit_is_detected() {
        let a = small_area();
        a.commit_slots(SlotRange::new(10, 4)).unwrap();
        // Exact overlap.
        assert_eq!(
            a.commit_slots(SlotRange::new(10, 4)),
            Err(IsoAddrError::DoubleCommit(SlotRange::new(10, 4)))
        );
        // Partial overlap; roll-back must leave non-overlapping part free.
        assert!(a.commit_slots(SlotRange::new(13, 2)).is_err());
        a.commit_slots(SlotRange::new(14, 2)).unwrap();
        assert_eq!(a.committed_slots(), 6);
    }

    #[test]
    fn decommit_unmapped_is_detected() {
        let a = small_area();
        assert!(matches!(
            a.decommit_slots(SlotRange::new(0, 1)),
            Err(IsoAddrError::NotCommitted(_))
        ));
    }

    #[test]
    fn fresh_commit_is_zeroed() {
        let a = small_area();
        let r = SlotRange::single(7);
        let addr = a.commit_slots(r).unwrap();
        unsafe {
            (addr as *mut u64).write(0x1122_3344_5566_7788);
        }
        a.decommit_slots(r).unwrap();
        let addr = a.commit_slots(r).unwrap();
        unsafe {
            assert_eq!((addr as *const u64).read(), 0, "decommit must drop pages");
        }
        a.decommit_slots(r).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let a = small_area();
        assert!(a.commit_slots(SlotRange::new(63, 2)).is_err());
        assert!(a.commit_slots(SlotRange::new(0, 0)).is_err());
    }

    /// Both strategies expose identical observable semantics.
    #[test]
    fn strategy_equivalence() {
        for strategy in [MapStrategy::Syscall, MapStrategy::Resident] {
            let a = IsoArea::with_strategy(AreaConfig::small(), strategy).unwrap();
            assert_eq!(a.strategy(), strategy);
            let r = SlotRange::new(3, 2);
            let addr = a.commit_slots(r).unwrap();
            unsafe {
                // Fresh commit reads zero; writes stick.
                assert_eq!((addr as *const u64).read(), 0, "{strategy:?}");
                (addr as *mut u64).write(0xA5A5);
            }
            // Double commit detected identically.
            assert!(matches!(
                a.commit_slots(SlotRange::new(4, 1)),
                Err(IsoAddrError::DoubleCommit(_))
            ));
            a.decommit_slots(r).unwrap();
            // Decommit of unmapped detected identically.
            assert!(a.decommit_slots(r).is_err());
            // Recommit reads zero again (pages dropped / zero-filled).
            let addr = a.commit_slots(r).unwrap();
            unsafe { assert_eq!((addr as *const u64).read(), 0, "{strategy:?}") };
            a.decommit_slots(r).unwrap();
            assert_eq!(a.committed_slots(), 0);
        }
    }

    #[test]
    fn syscall_strategy_still_maps_and_unmaps() {
        let a = IsoArea::with_strategy(AreaConfig::small(), MapStrategy::Syscall).unwrap();
        let r = SlotRange::single(0);
        let addr = a.commit_slots(r).unwrap();
        unsafe {
            std::ptr::write_bytes(addr as *mut u8, 0xEE, a.slot_size());
        }
        a.decommit_slots(r).unwrap();
        // (Reading now would fault — that is the point of Syscall mode.)
        let addr = a.commit_slots(r).unwrap();
        unsafe { assert_eq!((addr as *const u8).read(), 0) };
        a.decommit_slots(r).unwrap();
    }

    #[test]
    fn concurrent_commit_same_slot_only_one_wins() {
        use std::sync::Arc;
        let a = Arc::new(small_area());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                a.commit_slots(SlotRange::new(20, 3)).is_ok() as usize
            }));
        }
        let wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(wins, 1);
        assert_eq!(a.committed_slots(), 3);
    }
}
