//! Initial slot distributions (paper §4.1, "Slot distribution").
//!
//! "Initially, slots are distributed among the nodes according to some
//! user-defined distribution pattern … In our current implementation, slots
//! are assigned to nodes in a round-robin fashion: slot *i* belongs to node
//! *i mod p* … This choice has been made for simplicity, but it behaves
//! rather poorly for multi-slot allocations."
//!
//! The paper also suggests block-cyclic distribution and a full partition of
//! the area into `p` sub-areas; all three are implemented here and compared
//! by the `ablation_distribution` bench (experiment A1 in DESIGN.md).

use crate::bitmap::SlotBitmap;

/// How the slots of the iso-address area are initially assigned to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Slot `i` belongs to node `i mod p` (the paper's implementation).
    /// Simple, but *every* multi-slot allocation needs a negotiation when
    /// `p ≥ 2` since no node owns two contiguous slots.
    RoundRobin,
    /// Blocks of `k` consecutive slots are dealt cyclically: slot `i`
    /// belongs to node `(i / k) mod p`.  Multi-slot allocations up to `k`
    /// slots stay local.
    BlockCyclic(usize),
    /// The area is split into `p` equal contiguous sub-areas, one per node
    /// ("an extreme choice … not advisable if the heap of the container
    /// process needs to grow in unpredictable ways").
    Partitioned,
}

impl Distribution {
    /// Which node initially owns slot `slot` in a `p`-node configuration?
    pub fn owner(&self, slot: usize, p: usize, n_slots: usize) -> usize {
        debug_assert!(p > 0 && slot < n_slots);
        match *self {
            Distribution::RoundRobin => slot % p,
            Distribution::BlockCyclic(k) => {
                let k = k.max(1);
                (slot / k) % p
            }
            Distribution::Partitioned => {
                // Equal contiguous shares; the remainder goes to the last
                // node so every slot has exactly one owner.
                let share = n_slots / p;
                if share == 0 {
                    return slot.min(p - 1);
                }
                (slot / share).min(p - 1)
            }
        }
    }

    /// Build the initial private bitmap of `node` (bit set ⇔ slot owned by
    /// `node` and free).
    pub fn initial_bitmap(&self, node: usize, p: usize, n_slots: usize) -> SlotBitmap {
        let mut bm = SlotBitmap::new_clear(n_slots);
        for slot in 0..n_slots {
            if self.owner(slot, p, n_slots) == node {
                bm.set(slot);
            }
        }
        bm
    }

    /// Longest run of contiguous slots a single node owns initially.  This
    /// is the largest multi-slot allocation guaranteed to avoid negotiation.
    pub fn max_local_contiguity(&self, p: usize, n_slots: usize) -> usize {
        if p == 1 {
            return n_slots;
        }
        match *self {
            Distribution::RoundRobin => 1,
            Distribution::BlockCyclic(k) => k.max(1).min(n_slots),
            Distribution::Partitioned => (n_slots / p).max(1),
        }
    }

    /// A short human-readable name (used by the bench harnesses).
    pub fn name(&self) -> String {
        match self {
            Distribution::RoundRobin => "round-robin".into(),
            Distribution::BlockCyclic(k) => format!("block-cyclic({k})"),
            Distribution::Partitioned => "partitioned".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every slot has exactly one owner, whatever the distribution — the
    /// "no slot is shared by several nodes" requirement of §4.1.
    fn check_partition(d: Distribution, p: usize, n: usize) {
        let maps: Vec<_> = (0..p).map(|node| d.initial_bitmap(node, p, n)).collect();
        for slot in 0..n {
            let owners = maps.iter().filter(|m| m.get(slot)).count();
            assert_eq!(owners, 1, "{d:?} p={p} n={n} slot={slot}");
        }
    }

    #[test]
    fn distributions_partition_the_area() {
        for d in [
            Distribution::RoundRobin,
            Distribution::BlockCyclic(4),
            Distribution::Partitioned,
        ] {
            for p in [1usize, 2, 3, 5, 8] {
                for n in [1usize, 7, 64, 130] {
                    check_partition(d, p, n);
                }
            }
        }
    }

    #[test]
    fn round_robin_matches_paper_formula() {
        let d = Distribution::RoundRobin;
        for slot in 0..100 {
            assert_eq!(d.owner(slot, 4, 100), slot % 4);
        }
    }

    #[test]
    fn block_cyclic_blocks_are_contiguous() {
        let d = Distribution::BlockCyclic(8);
        let bm = d.initial_bitmap(0, 2, 64);
        assert!(bm.all_set(crate::SlotRange::new(0, 8)));
        assert!(bm.all_clear(crate::SlotRange::new(8, 8)));
        assert!(bm.all_set(crate::SlotRange::new(16, 8)));
    }

    #[test]
    fn partitioned_gives_contiguous_shares() {
        let d = Distribution::Partitioned;
        let bm0 = d.initial_bitmap(0, 4, 100);
        let bm3 = d.initial_bitmap(3, 4, 100);
        assert!(bm0.all_set(crate::SlotRange::new(0, 25)));
        assert!(bm0.all_clear(crate::SlotRange::new(25, 75)));
        // Node p-1 absorbs the remainder.
        assert!(bm3.all_set(crate::SlotRange::new(75, 25)));
    }

    #[test]
    fn contiguity_bounds() {
        assert_eq!(Distribution::RoundRobin.max_local_contiguity(2, 64), 1);
        assert_eq!(Distribution::RoundRobin.max_local_contiguity(1, 64), 64);
        assert_eq!(Distribution::BlockCyclic(4).max_local_contiguity(2, 64), 4);
        assert_eq!(Distribution::Partitioned.max_local_contiguity(4, 64), 16);
    }
}
