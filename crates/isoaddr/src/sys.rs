//! Thin wrappers around the `mmap` family.
//!
//! The paper's allocator is built directly on `mmap` at fixed virtual
//! addresses ("Memory allocation is done using the mmap primitive, which
//! allows for memory allocation at specified virtual addresses", §4.1).
//! These wrappers keep all `libc` usage in one audited module.
//!
//! Mapping states used by the area:
//!
//! * **reserved** — `PROT_NONE`, `MAP_NORESERVE`: address range is claimed so
//!   nothing else in the process can land there, but no memory is committed;
//! * **committed** — readable/writable anonymous memory;
//! * decommitting replaces the range with a *fresh* reserved mapping, which
//!   atomically drops the backing pages (equivalent to the paper's
//!   `munmap`, without ever giving the range back to the OS allocator).

use crate::error::{IsoAddrError, Result};

/// Minimal raw bindings to the `mmap` family.  Declared in-tree (this
/// sandbox builds with no external crates); the process links libc anyway,
/// so the symbols are always present.  Linux-only constants.
mod raw {
    use std::ffi::{c_int, c_long, c_void};

    pub const PROT_NONE: c_int = 0;
    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_FIXED: c_int = 0x10;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const MAP_NORESERVE: c_int = 0x4000;
    pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
    pub const _SC_PAGESIZE: c_int = 30;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
        pub fn sysconf(name: c_int) -> c_long;
    }
}

use raw as libc_shim;
use std::ffi::c_void;

/// System page size, cached after the first query.
pub fn page_size() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static PAGE: AtomicUsize = AtomicUsize::new(0);
    let cached = PAGE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    // SAFETY: sysconf is always safe to call.
    let sz = unsafe { libc_shim::sysconf(libc_shim::_SC_PAGESIZE) } as usize;
    let sz = if sz == 0 { 4096 } else { sz };
    PAGE.store(sz, Ordering::Relaxed);
    sz
}

fn last_errno() -> i32 {
    std::io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

/// Reserve `len` bytes of address space anywhere, without committing memory.
///
/// Returns the base address of the reservation.
pub fn reserve_anywhere(len: usize) -> Result<usize> {
    // SAFETY: anonymous PROT_NONE mapping with addr=NULL cannot clobber
    // existing mappings.
    let ptr = unsafe {
        libc_shim::mmap(
            std::ptr::null_mut(),
            len,
            libc_shim::PROT_NONE,
            libc_shim::MAP_PRIVATE | libc_shim::MAP_ANONYMOUS | libc_shim::MAP_NORESERVE,
            -1,
            0,
        )
    };
    if ptr == libc_shim::MAP_FAILED {
        return Err(IsoAddrError::Mmap {
            addr: 0,
            len,
            errno: last_errno(),
        });
    }
    Ok(ptr as usize)
}

/// Commit (make read/write) `len` bytes at `addr`, which must lie inside an
/// existing reservation created by [`reserve_anywhere`].
///
/// # Safety
/// `addr..addr+len` must be inside a reservation owned by the caller and must
/// not be in use by anyone else (the iso-address discipline guarantees this;
/// [`crate::IsoArea`] additionally checks it).
pub unsafe fn commit(addr: usize, len: usize) -> Result<()> {
    let rc = libc_shim::mprotect(
        addr as *mut c_void,
        len,
        libc_shim::PROT_READ | libc_shim::PROT_WRITE,
    );
    if rc != 0 {
        return Err(IsoAddrError::Mmap {
            addr,
            len,
            errno: last_errno(),
        });
    }
    Ok(())
}

/// Decommit `len` bytes at `addr`: drop the backing pages and return the
/// range to the reserved (inaccessible) state, keeping the address range
/// claimed by this process.
///
/// # Safety
/// Same contract as [`commit`]; additionally no live references into the
/// range may exist.
pub unsafe fn decommit(addr: usize, len: usize) -> Result<()> {
    // A fresh fixed anonymous PROT_NONE mapping atomically replaces the old
    // pages (their contents are discarded) while keeping the range reserved.
    let ptr = libc_shim::mmap(
        addr as *mut c_void,
        len,
        libc_shim::PROT_NONE,
        libc_shim::MAP_PRIVATE
            | libc_shim::MAP_ANONYMOUS
            | libc_shim::MAP_NORESERVE
            | libc_shim::MAP_FIXED,
        -1,
        0,
    );
    if ptr == libc_shim::MAP_FAILED {
        return Err(IsoAddrError::Mmap {
            addr,
            len,
            errno: last_errno(),
        });
    }
    Ok(())
}

/// Release a whole reservation back to the OS.
///
/// # Safety
/// `addr`/`len` must denote exactly one reservation from [`reserve_anywhere`]
/// with no live references into it.
pub unsafe fn release(addr: usize, len: usize) -> Result<()> {
    let rc = libc_shim::munmap(addr as *mut c_void, len);
    if rc != 0 {
        return Err(IsoAddrError::Mmap {
            addr,
            len,
            errno: last_errno(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let p = page_size();
        assert!(p >= 4096);
        assert!(p.is_power_of_two());
    }

    #[test]
    fn reserve_commit_write_decommit() {
        let len = 1 << 20;
        let base = reserve_anywhere(len).unwrap();
        unsafe {
            commit(base, len).unwrap();
            // Write and read back through the committed pages.
            let p = base as *mut u64;
            p.write(0xDEAD_BEEF_CAFE_F00D);
            assert_eq!(p.read(), 0xDEAD_BEEF_CAFE_F00D);
            decommit(base, len).unwrap();
            // Re-commit: pages must be zeroed (fresh anonymous memory).
            commit(base, len).unwrap();
            assert_eq!(p.read(), 0);
            release(base, len).unwrap();
        }
    }
}
