//! Per-node slot manager: bitmap + cache + area plumbing (paper §4.2).
//!
//! The manager realizes the slot life cycle of Fig. 6:
//!
//! * **acquire** — a thread asks the *local* node for `n` contiguous slots.
//!   The node finds them in its private bitmap (first-fit), clears the bits
//!   (ownership moves to the thread) and maps the memory.  If the bitmap has
//!   no run of `n` set bits the caller is told to start a *global
//!   negotiation* (§4.4) — the manager itself never talks to other nodes.
//! * **release** — a thread gives slots back to the node it is currently
//!   visiting: bits are set in *this* node's bitmap (which may differ from
//!   the node the slots came from — the paper makes this point explicitly).
//! * **surrender / adopt** — migration support: the departing node unmaps a
//!   migrating thread's slots *without touching any bitmap* (the thread
//!   still owns them; "the bitmaps do not undergo any change on thread
//!   migration"); the destination node maps them back at the same addresses.
//! * **lend / adopt-batch** — the decentralized slot economy: a node lends
//!   a batch of contiguous ranges to a trading peer ([`lend_batch`]
//!   clears the bits *before* the reply leaves, so a slot is set in at
//!   most one bitmap at every instant) and the peer records them with
//!   [`adopt_batch`].  The node's free-slot *reserve* is tracked in O(1)
//!   ([`owned_free_slots`]) so watermark checks and wealth piggybacking
//!   cost nothing on the hot path.
//!
//! [`lend_batch`]: NodeSlotManager::lend_batch
//! [`adopt_batch`]: NodeSlotManager::adopt_batch
//! [`owned_free_slots`]: NodeSlotManager::owned_free_slots
//!
//! Each node's manager is only ever touched by that node's scheduler thread,
//! so no internal locking is needed; the shared [`IsoArea`] performs the
//! cross-node invariant checking.

use std::sync::Arc;

use crate::area::IsoArea;
use crate::bitmap::SlotBitmap;
use crate::cache::SlotCache;
use crate::distribution::Distribution;
use crate::error::{IsoAddrError, Result};
use crate::slots::{SlotRange, VAddr};
use crate::stats::{SlotStats, SlotStatsSnapshot};

/// Result of a local acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Slots acquired locally; memory is mapped at the returned address.
    Acquired(SlotRange, VAddr),
    /// The local bitmap has no run of the requested length: the caller must
    /// run the global negotiation protocol (paper §4.4).
    NeedNegotiation,
}

/// Abstract source of iso-address slots, consumed by the block layer
/// (`isomalloc`) and the thread substrate (`marcel`).
///
/// The PM2 runtime implements this on top of [`NodeSlotManager`] with a
/// negotiation-capable wrapper, so the block layer never needs to know
/// whether a slot came from the local bitmap or from a negotiation.
pub trait SlotProvider {
    /// Size of one slot in bytes.
    fn slot_size(&self) -> usize;
    /// Base virtual address of the iso-address area (used to convert slot
    /// base addresses to area slot indices and back).
    fn area_base(&self) -> VAddr;
    /// Acquire `n` contiguous slots for the calling thread; memory is mapped
    /// and ownership transferred to the caller.  Returns the base address.
    fn acquire_slots(&mut self, n: usize) -> Result<VAddr>;
    /// Release `n` contiguous slots starting at `base` to the provider
    /// (= the node currently hosting the thread).  Memory is unmapped or
    /// cached; ownership returns to the node.
    fn release_slots(&mut self, base: VAddr, n: usize) -> Result<()>;
}

/// The per-node slot manager.
pub struct NodeSlotManager {
    node: usize,
    area: Arc<IsoArea>,
    bitmap: SlotBitmap,
    cache: SlotCache,
    stats: Arc<SlotStats>,
    /// Number of set bits in `bitmap`, maintained incrementally so the
    /// trade layer can read the node's free-slot reserve in O(1) on every
    /// driver step and piggyback it on outgoing protocol traffic.
    free: usize,
}

impl NodeSlotManager {
    /// Create the manager for `node` out of `p` with the given initial
    /// distribution and cache capacity.
    pub fn new(
        node: usize,
        p: usize,
        area: Arc<IsoArea>,
        distribution: Distribution,
        cache_capacity: usize,
    ) -> Self {
        let bitmap = distribution.initial_bitmap(node, p, area.n_slots());
        let free = bitmap.count_ones();
        NodeSlotManager {
            node,
            area,
            bitmap,
            cache: SlotCache::new(cache_capacity),
            stats: SlotStats::new_shared(),
            free,
        }
    }

    /// Node id this manager belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<SlotStats> {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the statistics.
    pub fn stats_snapshot(&self) -> SlotStatsSnapshot {
        self.stats.snapshot()
    }

    /// The underlying area.
    pub fn area(&self) -> &Arc<IsoArea> {
        &self.area
    }

    /// Read-only view of the private bitmap.
    pub fn bitmap(&self) -> &SlotBitmap {
        &self.bitmap
    }

    /// Number of free slots this node currently owns — the node's slot
    /// *reserve*.  O(1): maintained incrementally across every bitmap
    /// mutation (and debug-checked against the bitmap).
    pub fn owned_free_slots(&self) -> usize {
        debug_assert_eq!(self.free, self.bitmap.count_ones(), "reserve drift");
        self.free
    }

    /// Alias for [`Self::owned_free_slots`] in trade-layer vocabulary.
    pub fn free_slots(&self) -> usize {
        self.owned_free_slots()
    }

    /// Number of slots sitting in the mmapped-slot cache.
    pub fn cached_slots(&self) -> usize {
        self.cache.len()
    }

    /// Iterate over cached slot indices (for audits).
    pub fn iter_cached(&self) -> impl Iterator<Item = usize> + '_ {
        self.cache.iter()
    }

    /// Commit a slot range, reusing any cached (already-committed) slots
    /// inside it.  The range's bits must already be cleared from the bitmap.
    fn commit_with_cache(&mut self, range: SlotRange) -> Result<VAddr> {
        // Cached slots inside the range are already mapped; commit the gaps.
        let cached = self.cache.remove_in_range(range);
        if cached.is_empty() {
            SlotStats::bump(&self.stats.commits);
            return self.area.commit_slots(range);
        }
        let mut run_start = range.first;
        for idx in range.iter() {
            if cached.contains(&idx) {
                if idx > run_start {
                    SlotStats::bump(&self.stats.commits);
                    self.area
                        .commit_slots(SlotRange::new(run_start, idx - run_start))?;
                }
                run_start = idx + 1;
            }
        }
        if range.end() > run_start {
            SlotStats::bump(&self.stats.commits);
            self.area
                .commit_slots(SlotRange::new(run_start, range.end() - run_start))?;
        }
        Ok(self.area.slot_addr(range.first))
    }

    /// Try to acquire `n` contiguous slots locally for a thread.
    pub fn try_acquire(&mut self, n: usize) -> Result<AcquireOutcome> {
        assert!(n >= 1, "must acquire at least one slot");
        if n == 1 {
            // Fast path: the mmapped-slot cache (§6).
            if let Some(idx) = self.cache.pop() {
                debug_assert!(self.bitmap.get(idx), "cached slot {idx} not owned");
                self.bitmap.clear(idx);
                self.free -= 1;
                SlotStats::bump(&self.stats.local_acquires);
                SlotStats::bump(&self.stats.cache_hits);
                return Ok(AcquireOutcome::Acquired(
                    SlotRange::single(idx),
                    self.area.slot_addr(idx),
                ));
            }
        }
        match self.bitmap.find_first_fit(n, 0) {
            Some(first) => {
                let range = SlotRange::new(first, n);
                self.bitmap.clear_range(range);
                self.free -= n;
                let addr = self.commit_with_cache(range)?;
                if n == 1 {
                    SlotStats::bump(&self.stats.local_acquires);
                    SlotStats::bump(&self.stats.cache_misses);
                } else {
                    SlotStats::bump(&self.stats.multi_acquires);
                }
                Ok(AcquireOutcome::Acquired(range, addr))
            }
            None => {
                SlotStats::bump(&self.stats.negotiation_required);
                Ok(AcquireOutcome::NeedNegotiation)
            }
        }
    }

    /// Acquire a *specific* slot range (used right after a negotiation has
    /// transferred ownership of the range to this node).
    pub fn acquire_specific(&mut self, range: SlotRange) -> Result<VAddr> {
        assert!(
            self.bitmap.all_set(range),
            "acquire_specific: node {} does not own {range:?}",
            self.node
        );
        self.bitmap.clear_range(range);
        self.free -= range.count;
        let addr = self.commit_with_cache(range)?;
        SlotStats::bump(&self.stats.multi_acquires);
        Ok(addr)
    }

    /// Release a slot range from a thread to this node (isofree, thread
    /// death).  Ownership: bits set in *this* node's bitmap.
    pub fn release(&mut self, range: SlotRange) -> Result<()> {
        debug_assert!(
            self.bitmap.all_clear(range),
            "release: {range:?} already owned by node {}",
            self.node
        );
        self.bitmap.set_range(range);
        self.free += range.count;
        SlotStats::bump(&self.stats.releases);
        if range.count == 1 && !self.cache.disabled() {
            if let Some(evicted) = self.cache.push(range.first) {
                SlotStats::bump(&self.stats.decommits);
                self.area.decommit_slots(SlotRange::single(evicted))?;
            }
            return Ok(());
        }
        SlotStats::bump(&self.stats.decommits);
        self.area.decommit_slots(range)
    }

    /// Unmap a migrating thread's slots on departure.  Ownership stays with
    /// the thread; no bitmap is touched (paper §4.2).
    pub fn surrender(&mut self, range: SlotRange) -> Result<()> {
        debug_assert!(
            self.bitmap.all_clear(range),
            "surrender: {range:?} is owned by node {}, not by a thread",
            self.node
        );
        SlotStats::bump(&self.stats.decommits);
        self.area.decommit_slots(range)
    }

    /// Map an arriving migrated thread's slots.  Ownership stays with the
    /// thread; no bitmap is touched.
    pub fn adopt(&mut self, range: SlotRange) -> Result<VAddr> {
        debug_assert!(
            self.bitmap.all_clear(range),
            "adopt: {range:?} is marked free-owned on destination node {}",
            self.node
        );
        SlotStats::bump(&self.stats.commits);
        self.area.commit_slots(range)
    }

    /// Serialize the private bitmap for a negotiation gather (step b).
    pub fn bitmap_bytes(&self) -> Vec<u8> {
        self.bitmap.to_bytes()
    }

    /// Serialized bitmap size ([`Self::bitmap_bytes_into`]'s contribution).
    pub fn bitmap_wire_len(&self) -> usize {
        self.bitmap.wire_len()
    }

    /// Append the serialized bitmap to a caller-supplied (pooled) buffer.
    pub fn bitmap_bytes_into(&self, out: &mut Vec<u8>) {
        self.bitmap.write_bytes(out);
    }

    /// Sell `range` to another node during a negotiation: clear the bits and
    /// drop any cached mappings inside the range (the buyer will map them).
    pub fn sell(&mut self, range: SlotRange) -> Result<()> {
        assert!(
            self.bitmap.all_set(range),
            "sell: node {} does not own all of {range:?}",
            self.node
        );
        self.bitmap.clear_range(range);
        self.free -= range.count;
        for idx in self.cache.remove_in_range(range) {
            SlotStats::bump(&self.stats.decommits);
            self.area.decommit_slots(SlotRange::single(idx))?;
        }
        SlotStats::add(&self.stats.slots_sold, range.count as u64);
        Ok(())
    }

    /// Record slots bought from other nodes: set the bits.
    pub fn grant(&mut self, range: SlotRange) {
        debug_assert!(
            self.bitmap.all_clear(range),
            "grant: node {} already owns part of {range:?}",
            self.node
        );
        self.bitmap.set_range(range);
        self.free += range.count;
        SlotStats::add(&self.stats.slots_bought, range.count as u64);
    }

    /// Lend up to `max_slots` free slots to a trading peer, as a batch of
    /// contiguous ranges (the `SLOT_TRADE_RESP` payload).  Bits are cleared
    /// *here, before the reply is sent* — the sender-clears-before-
    /// receiver-sets discipline that keeps every slot owned by at most one
    /// bitmap at every instant — and cached mappings inside the lent
    /// ranges are dropped, exactly like a negotiation sale.
    ///
    /// Range selection: if the borrower asked for a minimum contiguous run
    /// (`min_contig > 1`) and we own one, that run is granted first (it
    /// satisfies the borrower outright); the remainder is peeled off the
    /// *top* of the bitmap in maximal runs, leaving the low-address end —
    /// where first-fit scans start — for local allocations.
    pub fn lend_batch(&mut self, max_slots: usize, min_contig: usize) -> Result<Vec<SlotRange>> {
        let mut out = Vec::new();
        let mut remaining = max_slots;
        if min_contig > 1 && min_contig <= remaining {
            if let Some(first) = self.bitmap.find_first_fit(min_contig, 0) {
                let r = SlotRange::new(first, min_contig);
                self.extract_lent(r)?;
                out.push(r);
                remaining -= min_contig;
            }
        }
        while remaining > 0 {
            let Some(r) = self.bitmap.last_run(remaining) else {
                break;
            };
            self.extract_lent(r)?;
            out.push(r);
            remaining -= r.count;
        }
        let total: usize = out.iter().map(|r| r.count).sum();
        SlotStats::add(&self.stats.slots_lent, total as u64);
        Ok(out)
    }

    /// Clear one lent range and drop its cached mappings.
    fn extract_lent(&mut self, range: SlotRange) -> Result<()> {
        debug_assert!(
            self.bitmap.all_set(range),
            "lend: node {} does not own all of {range:?}",
            self.node
        );
        self.bitmap.clear_range(range);
        self.free -= range.count;
        for idx in self.cache.remove_in_range(range) {
            SlotStats::bump(&self.stats.decommits);
            self.area.decommit_slots(SlotRange::single(idx))?;
        }
        Ok(())
    }

    /// Adopt a batch of ranges granted by a trading peer: set the bits.
    /// (Distinct from [`Self::adopt`], which maps a migrated *thread's*
    /// slots without touching the bitmap.)  The peer cleared its bits
    /// before replying, so setting ours completes the ownership transfer.
    ///
    /// The grant is validated in release builds too — a corrupt reply
    /// (range out of the area, or overlapping slots we already own) must
    /// cost the grant, never the node: nothing is adopted and `false` is
    /// returned, exactly like a corrupt migration record is NAKed.
    pub fn adopt_batch(&mut self, ranges: &[SlotRange]) -> bool {
        let n = self.bitmap.len();
        // Validate and set one range at a time (checking against the
        // live bitmap also catches overlaps *within* the batch); roll
        // back on the first bad range so a refusal leaves no trace.
        for (i, r) in ranges.iter().enumerate() {
            let ok =
                r.count >= 1 && r.first < n && r.count <= n - r.first && self.bitmap.all_clear(*r);
            if !ok {
                for done in &ranges[..i] {
                    self.bitmap.clear_range(*done);
                    self.free -= done.count;
                }
                return false;
            }
            self.bitmap.set_range(*r);
            self.free += r.count;
        }
        let total: u64 = ranges.iter().map(|r| r.count as u64).sum();
        SlotStats::add(&self.stats.slots_adopted, total);
        true
    }

    /// Drop all cached mappings (shutdown / reconfiguration).
    pub fn flush_cache(&mut self) -> Result<()> {
        for idx in self.cache.drain_all() {
            SlotStats::bump(&self.stats.decommits);
            self.area.decommit_slots(SlotRange::single(idx))?;
        }
        Ok(())
    }
}

impl SlotProvider for NodeSlotManager {
    fn slot_size(&self) -> usize {
        self.area.slot_size()
    }

    fn area_base(&self) -> VAddr {
        self.area.base()
    }

    fn acquire_slots(&mut self, n: usize) -> Result<VAddr> {
        match self.try_acquire(n)? {
            AcquireOutcome::Acquired(_, addr) => Ok(addr),
            AcquireOutcome::NeedNegotiation => Err(IsoAddrError::NeedNegotiation { requested: n }),
        }
    }

    fn release_slots(&mut self, base: VAddr, n: usize) -> Result<()> {
        let first = self.area.slot_of(base)?;
        self.release(SlotRange::new(first, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AreaConfig;

    fn mgr(p: usize, node: usize, cache: usize) -> NodeSlotManager {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        NodeSlotManager::new(node, p, area, Distribution::RoundRobin, cache)
    }

    #[test]
    fn single_node_owns_everything() {
        let mut m = mgr(1, 0, 0);
        assert_eq!(m.owned_free_slots(), 64);
        let AcquireOutcome::Acquired(r, addr) = m.try_acquire(4).unwrap() else {
            panic!("should be local");
        };
        assert_eq!(r, SlotRange::new(0, 4));
        assert_eq!(addr, m.area().slot_addr(0));
        assert_eq!(m.owned_free_slots(), 60);
        m.release(r).unwrap();
        assert_eq!(m.owned_free_slots(), 64);
    }

    #[test]
    fn round_robin_two_nodes_cannot_do_multislot() {
        let mut m = mgr(2, 0, 0);
        assert_eq!(m.owned_free_slots(), 32);
        // Single slots fine…
        assert!(matches!(
            m.try_acquire(1).unwrap(),
            AcquireOutcome::Acquired(..)
        ));
        // …but no two contiguous slots exist under round-robin with p=2.
        assert_eq!(m.try_acquire(2).unwrap(), AcquireOutcome::NeedNegotiation);
        assert_eq!(m.stats_snapshot().negotiation_required, 1);
    }

    #[test]
    fn acquired_memory_is_usable() {
        let mut m = mgr(2, 1, 0);
        let AcquireOutcome::Acquired(r, addr) = m.try_acquire(1).unwrap() else {
            panic!();
        };
        // Node 1 under round-robin owns odd slots; first fit = slot 1.
        assert_eq!(r.first, 1);
        unsafe {
            std::ptr::write_bytes(addr as *mut u8, 0x5A, m.slot_size());
            assert_eq!((addr as *const u8).add(m.slot_size() - 1).read(), 0x5A);
        }
        m.release(r).unwrap();
    }

    #[test]
    fn cache_hit_skips_mmap_and_keeps_contents() {
        let mut m = mgr(1, 0, 4);
        let AcquireOutcome::Acquired(r, addr) = m.try_acquire(1).unwrap() else {
            panic!()
        };
        unsafe { (addr as *mut u64).write(0xFEED) };
        m.release(r).unwrap();
        assert_eq!(m.cached_slots(), 1);
        let AcquireOutcome::Acquired(r2, addr2) = m.try_acquire(1).unwrap() else {
            panic!()
        };
        assert_eq!(r2, r, "cache must hand back the same slot");
        assert_eq!(addr2, addr);
        // Cached slot keeps stale contents (documented behaviour).
        unsafe { assert_eq!((addr2 as *const u64).read(), 0xFEED) };
        let s = m.stats_snapshot();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        m.release(r2).unwrap();
    }

    #[test]
    fn cache_disabled_always_mmaps_fresh_zeroes() {
        let mut m = mgr(1, 0, 0);
        let AcquireOutcome::Acquired(r, addr) = m.try_acquire(1).unwrap() else {
            panic!()
        };
        unsafe { (addr as *mut u64).write(0xFEED) };
        m.release(r).unwrap();
        let AcquireOutcome::Acquired(_, addr2) = m.try_acquire(1).unwrap() else {
            panic!()
        };
        assert_eq!(addr2, addr);
        unsafe { assert_eq!((addr2 as *const u64).read(), 0) };
    }

    #[test]
    fn multislot_commit_reuses_cached_slots_inside_range() {
        let mut m = mgr(1, 0, 8);
        // Acquire and release slot 1 so it sits in the cache, committed.
        let a1 = m.acquire_specific(SlotRange::single(1)).unwrap();
        unsafe { (a1 as *mut u64).write(7) };
        m.release(SlotRange::single(1)).unwrap();
        assert!(m.cache.contains(1));
        // Now acquire slots [0,4): must not double-commit slot 1.
        let AcquireOutcome::Acquired(r, addr) = m.try_acquire(4).unwrap() else {
            panic!()
        };
        assert_eq!(r, SlotRange::new(0, 4));
        unsafe {
            std::ptr::write_bytes(addr as *mut u8, 1, m.slot_size() * 4);
        }
        assert!(!m.cache.contains(1));
        m.release(r).unwrap();
    }

    #[test]
    fn surrender_and_adopt_roundtrip_between_nodes() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m0 = NodeSlotManager::new(0, 2, Arc::clone(&area), Distribution::RoundRobin, 0);
        let mut m1 = NodeSlotManager::new(1, 2, Arc::clone(&area), Distribution::RoundRobin, 0);
        // Thread acquires slot 0 on node 0 and writes data.
        let AcquireOutcome::Acquired(r, addr) = m0.try_acquire(1).unwrap() else {
            panic!()
        };
        unsafe { (addr as *mut u64).write(0xC0FFEE) };
        // Migration: read out, surrender on node 0, adopt on node 1 at the
        // SAME address, write back.
        let bytes = unsafe { std::slice::from_raw_parts(addr as *const u8, 64).to_vec() };
        m0.surrender(r).unwrap();
        let addr1 = m1.adopt(r).unwrap();
        assert_eq!(addr1, addr, "iso-address: identical virtual address");
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), addr1 as *mut u8, 64);
            assert_eq!((addr1 as *const u64).read(), 0xC0FFEE);
        }
        // Thread dies on node 1: slots released THERE (Fig. 6 step 4).
        m1.release(r).unwrap();
        assert!(m1.bitmap().get(0), "node 1 now owns slot 0");
        assert!(!m0.bitmap().get(0), "node 0 no longer tracks slot 0");
    }

    #[test]
    fn sell_and_grant_move_ownership() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m0 = NodeSlotManager::new(0, 2, Arc::clone(&area), Distribution::RoundRobin, 4);
        let mut m1 = NodeSlotManager::new(1, 2, Arc::clone(&area), Distribution::RoundRobin, 4);
        // Node 1 owns odd slots. Sell slot 1 and 3 to node 0.
        m1.sell(SlotRange::single(1)).unwrap();
        m1.sell(SlotRange::single(3)).unwrap();
        m0.grant(SlotRange::single(1));
        m0.grant(SlotRange::single(3));
        // Node 0 can now make a contiguous 4-slot allocation [0,4).
        let addr = m0.acquire_specific(SlotRange::new(0, 4)).unwrap();
        unsafe { std::ptr::write_bytes(addr as *mut u8, 9, 4 * m0.slot_size()) };
        assert_eq!(m0.stats_snapshot().slots_bought, 2);
        assert_eq!(m1.stats_snapshot().slots_sold, 2);
        m0.release(SlotRange::new(0, 4)).unwrap();
    }

    #[test]
    fn lend_and_adopt_move_reserve() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m0 = NodeSlotManager::new(0, 2, Arc::clone(&area), Distribution::Partitioned, 4);
        let mut m1 = NodeSlotManager::new(1, 2, Arc::clone(&area), Distribution::Partitioned, 4);
        // Partitioned, 64 slots: node 0 owns [0,32), node 1 owns [32,64).
        assert_eq!(m1.free_slots(), 32);
        let lent = m1.lend_batch(8, 2).unwrap();
        let total: usize = lent.iter().map(|r| r.count).sum();
        assert_eq!(total, 8);
        assert_eq!(m1.free_slots(), 24);
        assert!(
            lent.iter().any(|r| r.end() == 64),
            "remainder peeled off the top: {lent:?}"
        );
        assert!(m0.adopt_batch(&lent));
        assert_eq!(m0.free_slots(), 40);
        assert_eq!(m0.stats_snapshot().slots_adopted, 8);
        assert_eq!(m1.stats_snapshot().slots_lent, 8);
        // The transferred slots are allocatable on the adopter…
        for r in &lent {
            let addr = m0.acquire_specific(*r).unwrap();
            unsafe { std::ptr::write_bytes(addr as *mut u8, 3, r.count * m0.slot_size()) };
            m0.release(*r).unwrap();
        }
        // …and the reserve count survived the round trip.
        assert_eq!(m0.free_slots(), 40);
    }

    #[test]
    fn adopt_batch_refuses_corrupt_grants() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m0 = NodeSlotManager::new(0, 2, Arc::clone(&area), Distribution::Partitioned, 0);
        // Partitioned, 64 slots: node 0 owns [0,32); [32,64) is clear.
        assert!(
            !m0.adopt_batch(&[SlotRange::new(1 << 40, 2)]),
            "out of area"
        );
        assert!(
            !m0.adopt_batch(&[SlotRange::new(60, usize::MAX)]),
            "overflow"
        );
        assert!(!m0.adopt_batch(&[SlotRange::new(0, 1)]), "already owned");
        // Overlap *within* one batch rolls the earlier range back out.
        assert!(!m0.adopt_batch(&[SlotRange::new(40, 2), SlotRange::new(41, 2)]));
        assert_eq!(m0.free_slots(), 32, "refusals leave no trace");
        assert!(m0.bitmap().all_clear(SlotRange::new(40, 4)));
        assert_eq!(m0.stats_snapshot().slots_adopted, 0);
        // A valid grant still lands.
        assert!(m0.adopt_batch(&[SlotRange::new(40, 2)]));
        assert_eq!(m0.free_slots(), 34);
    }

    #[test]
    fn lend_batch_without_contiguity_peels_top_singles() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m1 = NodeSlotManager::new(1, 2, Arc::clone(&area), Distribution::RoundRobin, 0);
        // Round-robin node 1 owns the odd slots: no 2-run exists, so the
        // lender still fills the batch with top-end singles.
        let lent = m1.lend_batch(3, 2).unwrap();
        assert_eq!(
            lent,
            vec![
                SlotRange::single(63),
                SlotRange::single(61),
                SlotRange::single(59)
            ]
        );
        assert_eq!(m1.free_slots(), 29);
    }

    #[test]
    fn lend_evicts_cached_mapping() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m1 = NodeSlotManager::new(1, 2, Arc::clone(&area), Distribution::RoundRobin, 4);
        let AcquireOutcome::Acquired(r, _) = m1.try_acquire(1).unwrap() else {
            panic!()
        };
        m1.release(r).unwrap();
        assert_eq!(m1.cached_slots(), 1);
        // Lend everything; the cached slot must be unmapped on the way out.
        let lent = m1.lend_batch(64, 1).unwrap();
        assert_eq!(lent.iter().map(|r| r.count).sum::<usize>(), 32);
        assert_eq!(m1.cached_slots(), 0);
        assert!(
            !area.is_committed(r.first),
            "lent slot must be unmapped by the lender"
        );
    }

    #[test]
    fn sell_evicts_cached_mapping() {
        let area = Arc::new(IsoArea::new(AreaConfig::small()).unwrap());
        let mut m1 = NodeSlotManager::new(1, 2, Arc::clone(&area), Distribution::RoundRobin, 4);
        let AcquireOutcome::Acquired(r, _) = m1.try_acquire(1).unwrap() else {
            panic!()
        };
        m1.release(r).unwrap();
        assert_eq!(m1.cached_slots(), 1);
        m1.sell(r).unwrap();
        assert_eq!(m1.cached_slots(), 0);
        assert!(
            !area.is_committed(r.first),
            "sold slot must be unmapped by seller"
        );
    }

    #[test]
    fn provider_trait_roundtrip() {
        let mut m = mgr(1, 0, 0);
        let base = m.acquire_slots(2).unwrap();
        m.release_slots(base, 2).unwrap();
        let err = {
            let mut m2 = mgr(2, 0, 0);
            m2.acquire_slots(2).unwrap_err()
        };
        assert_eq!(err, IsoAddrError::NeedNegotiation { requested: 2 });
    }

    #[test]
    fn flush_cache_unmaps() {
        let mut m = mgr(1, 0, 8);
        let AcquireOutcome::Acquired(r, _) = m.try_acquire(1).unwrap() else {
            panic!()
        };
        m.release(r).unwrap();
        assert_eq!(m.cached_slots(), 1);
        m.flush_cache().unwrap();
        assert_eq!(m.cached_slots(), 0);
        assert_eq!(m.area().committed_slots(), 0);
    }
}
