//! Error types for the slot layer.

use std::fmt;

/// Errors produced by the iso-address area and slot managers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsoAddrError {
    /// The operating system refused the reservation or mapping.
    Mmap {
        /// Address the operation targeted (0 for "any").
        addr: usize,
        /// Length in bytes.
        len: usize,
        /// `errno` reported by the OS.
        errno: i32,
    },
    /// A configuration parameter is invalid (non-power-of-two slot size,
    /// slot size not a multiple of the page size, zero slots, ...).
    BadConfig(String),
    /// An address passed to the area does not fall inside it.
    OutOfArea(usize),
    /// Attempt to commit a slot range that is already mapped somewhere in
    /// the process — a violation of the iso-address discipline.  This is the
    /// runtime enforcement of the paper's central invariant.
    DoubleCommit(super::SlotRange),
    /// Attempt to decommit a slot range that is not currently mapped.
    NotCommitted(super::SlotRange),
    /// The local node does not own enough (contiguous) slots; the caller
    /// must start a global negotiation (paper §4.4).
    NeedNegotiation {
        /// Number of contiguous slots requested.
        requested: usize,
    },
    /// The whole system is out of slots (even a global negotiation could not
    /// find the requested contiguous range).
    OutOfSlots {
        /// Number of contiguous slots requested.
        requested: usize,
    },
}

impl fmt::Display for IsoAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsoAddrError::Mmap { addr, len, errno } => {
                write!(
                    f,
                    "mmap/mprotect failed at {addr:#x} len {len:#x}: errno {errno}"
                )
            }
            IsoAddrError::BadConfig(msg) => write!(f, "invalid iso-area configuration: {msg}"),
            IsoAddrError::OutOfArea(a) => {
                write!(f, "address {a:#x} is outside the iso-address area")
            }
            IsoAddrError::DoubleCommit(r) => write!(
                f,
                "iso-address invariant violated: slots [{}, {}) are already mapped",
                r.first,
                r.first + r.count
            ),
            IsoAddrError::NotCommitted(r) => write!(
                f,
                "slots [{}, {}) are not mapped but were asked to be decommitted",
                r.first,
                r.first + r.count
            ),
            IsoAddrError::NeedNegotiation { requested } => write!(
                f,
                "local node lacks {requested} contiguous slots; global negotiation required"
            ),
            IsoAddrError::OutOfSlots { requested } => {
                write!(f, "no {requested} contiguous slots available system-wide")
            }
        }
    }
}

impl std::error::Error for IsoAddrError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, IsoAddrError>;
