//! Per-node slot bitmaps (paper §4.2).
//!
//! "Each node keeps track of its private slots by means of a private bitmap.
//! Each bit in this bitmap corresponds to a slot in the iso-address zone. …
//! the bits are set to 1 if they correspond to slots owned by the local
//! node" — a set bit therefore means *owned by this node and free*; a clear
//! bit means the slot belongs to another node or to some thread.
//!
//! The bitmap supports the operations the negotiation protocol needs
//! (§4.4): serialize/deserialize for shipping over the network, bitwise OR
//! across all nodes' bitmaps, and first-fit search for `n` contiguous set
//! bits.

use crate::slots::SlotRange;

const WORD_BITS: usize = 64;

/// A fixed-size bitmap over slot indices.
#[derive(Clone, PartialEq, Eq)]
pub struct SlotBitmap {
    words: Vec<u64>,
    n_bits: usize,
}

impl std::fmt::Debug for SlotBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SlotBitmap({} bits, {} set)",
            self.n_bits,
            self.count_ones()
        )
    }
}

impl SlotBitmap {
    /// Create a bitmap of `n_bits` bits, all clear.
    pub fn new_clear(n_bits: usize) -> Self {
        SlotBitmap {
            words: vec![0; n_bits.div_ceil(WORD_BITS)],
            n_bits,
        }
    }

    /// Create a bitmap of `n_bits` bits, all set.
    pub fn new_set(n_bits: usize) -> Self {
        let mut bm = SlotBitmap {
            words: vec![!0u64; n_bits.div_ceil(WORD_BITS)],
            n_bits,
        };
        bm.clear_tail();
        bm
    }

    /// Zero the padding bits beyond `n_bits` in the last word.
    fn clear_tail(&mut self) {
        let rem = self.n_bits % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits in the bitmap.
    pub fn len(&self) -> usize {
        self.n_bits
    }

    /// True if the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Value of bit `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.n_bits);
        self.words[idx / WORD_BITS] & (1u64 << (idx % WORD_BITS)) != 0
    }

    /// Set bit `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        debug_assert!(idx < self.n_bits);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clear bit `idx`.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        debug_assert!(idx < self.n_bits);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    /// Set every bit in `range`.
    pub fn set_range(&mut self, range: SlotRange) {
        for i in range.iter() {
            self.set(i);
        }
    }

    /// Clear every bit in `range`.
    pub fn clear_range(&mut self, range: SlotRange) {
        for i in range.iter() {
            self.clear(i);
        }
    }

    /// Are all bits of `range` set?
    pub fn all_set(&self, range: SlotRange) -> bool {
        range.iter().all(|i| self.get(i))
    }

    /// Are all bits of `range` clear?
    pub fn all_clear(&self, range: SlotRange) -> bool {
        range.iter().all(|i| !self.get(i))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// First-fit search for `n` contiguous set bits starting the scan at
    /// `from` (wrapping is *not* performed; the negotiation initiator scans
    /// from 0).  Returns the index of the first bit of the run.
    ///
    /// Word-parallel: per word the search does O(log n) shift-AND steps for
    /// fully-contained runs plus O(1) prefix/suffix run accounting for runs
    /// crossing word boundaries.  The worst case the negotiation hits — a
    /// paper-scale 57344-bit round-robin bitmap with *no* 2-run at all —
    /// scans in ~1 µs instead of the ~75 µs of a naive bit loop.
    pub fn find_first_fit(&self, n: usize, from: usize) -> Option<usize> {
        if n == 0 || self.n_bits == 0 || from >= self.n_bits {
            return None;
        }
        if n == 1 {
            return self.first_set(from);
        }
        // Length of the run of set bits ending at the current word boundary.
        let mut run: usize = 0;
        let first_word = from / WORD_BITS;
        for wi in first_word..self.words.len() {
            let mut w = self.words[wi];
            if wi == first_word {
                let bit = from % WORD_BITS;
                w &= !0u64 << bit;
            }
            let base = wi * WORD_BITS;
            if w == 0 {
                run = 0;
                continue;
            }
            // (1) A run carried in from previous words completed by this
            //     word's trailing ones (starts earliest by construction).
            if run > 0 {
                let t = w.trailing_ones() as usize;
                if run + t >= n {
                    let start = base - run;
                    return (start + n <= self.n_bits).then_some(start);
                }
                if t == WORD_BITS {
                    run += WORD_BITS;
                    continue;
                }
                // Otherwise the carried run is broken inside this word and
                // the in-word / suffix handling below takes over.
            }
            if w == !0u64 {
                // Fresh all-ones word: the run starts here.
                run = WORD_BITS;
                if run >= n {
                    let start = base;
                    return (start + n <= self.n_bits).then_some(start);
                }
                continue;
            }
            // (2) Runs fully inside this word: shift-AND with doubling.
            if n <= WORD_BITS {
                let mut x = w;
                let mut have = 1usize;
                while have < n && x != 0 {
                    let s = (n - have).min(have);
                    x &= x >> s;
                    have += s;
                }
                if x != 0 {
                    let start = base + x.trailing_zeros() as usize;
                    if start + n <= self.n_bits {
                        return Some(start);
                    }
                    return None; // only tail-escaping candidates remain
                }
            }
            // (3) A suffix run may continue into the next word.
            run = w.leading_ones() as usize;
        }
        None
    }

    /// Index of the highest set bit, if any.
    pub fn last_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (63 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// The highest-address maximal run of set bits, truncated to at most
    /// `cap` bits (keeping the run's *top* end).  This is the lender's
    /// range-transfer primitive: trading away high-address slots first
    /// leaves the low end — where first-fit scans begin — for local use.
    pub fn last_run(&self, cap: usize) -> Option<SlotRange> {
        if cap == 0 {
            return None;
        }
        let end = self.last_set()?;
        let mut start = end;
        while start > 0 && self.get(start - 1) && end - start + 1 < cap {
            start -= 1;
        }
        Some(SlotRange::new(start, end - start + 1))
    }

    /// Index of the first set bit at or after `from`.
    pub fn first_set(&self, from: usize) -> Option<usize> {
        if from >= self.n_bits {
            return None;
        }
        let mut w = from / WORD_BITS;
        let mut mask = !0u64 << (from % WORD_BITS);
        while w < self.words.len() {
            let bits = self.words[w] & mask;
            if bits != 0 {
                let idx = w * WORD_BITS + bits.trailing_zeros() as usize;
                return (idx < self.n_bits).then_some(idx);
            }
            mask = !0u64;
            w += 1;
        }
        None
    }

    /// In-place bitwise OR with another bitmap of identical length.
    ///
    /// This is step (c) of the negotiation protocol: "Compute a global or
    /// taking all bitmaps as operands".
    pub fn or_with(&mut self, other: &SlotBitmap) {
        assert_eq!(self.n_bits, other.n_bits, "bitmap size mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// In-place bitwise AND (used by audits to detect ownership overlap).
    pub fn and_with(&mut self, other: &SlotBitmap) {
        assert_eq!(self.n_bits, other.n_bits, "bitmap size mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// True if the two bitmaps share at least one set bit.
    pub fn intersects(&self, other: &SlotBitmap) -> bool {
        assert_eq!(self.n_bits, other.n_bits, "bitmap size mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Iterate over the indices of the set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * WORD_BITS;
            let n_bits = self.n_bits;
            let mut word = w;
            std::iter::from_fn(move || {
                while word != 0 {
                    let tz = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let idx = base + tz;
                    if idx < n_bits {
                        return Some(idx);
                    }
                }
                None
            })
        })
    }

    /// Serialize for shipping in a negotiation message (little-endian words).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.write_bytes(&mut out);
        out
    }

    /// Serialized size in bytes (what [`Self::write_bytes`] appends).
    pub fn wire_len(&self) -> usize {
        8 + self.words.len() * 8
    }

    /// Append the serialized form to `out` (same framing as
    /// [`Self::to_bytes`], but into a caller-supplied — e.g. pooled —
    /// buffer).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        out.extend_from_slice(&(self.n_bits as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Deserialize a bitmap previously produced by [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        let n_bits = u64::from_le_bytes(buf[0..8].try_into().ok()?) as usize;
        let n_words = n_bits.div_ceil(WORD_BITS);
        if buf.len() != 8 + n_words * 8 {
            return None;
        }
        let mut words = Vec::with_capacity(n_words);
        for i in 0..n_words {
            let off = 8 + i * 8;
            words.push(u64::from_le_bytes(buf[off..off + 8].try_into().ok()?));
        }
        Some(SlotBitmap { words, n_bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = SlotBitmap::new_clear(130);
        assert_eq!(bm.count_ones(), 0);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn new_set_has_exact_popcount() {
        for n in [1usize, 63, 64, 65, 127, 128, 129, 1000] {
            let bm = SlotBitmap::new_set(n);
            assert_eq!(bm.count_ones(), n, "n={n}");
        }
    }

    #[test]
    fn range_ops() {
        let mut bm = SlotBitmap::new_clear(256);
        bm.set_range(SlotRange::new(60, 10));
        assert!(bm.all_set(SlotRange::new(60, 10)));
        assert!(!bm.get(59) && !bm.get(70));
        bm.clear_range(SlotRange::new(62, 3));
        assert!(bm.all_clear(SlotRange::new(62, 3)));
        assert!(bm.get(61) && bm.get(65));
    }

    #[test]
    fn first_fit_simple() {
        let mut bm = SlotBitmap::new_clear(200);
        bm.set_range(SlotRange::new(10, 3));
        bm.set_range(SlotRange::new(50, 8));
        assert_eq!(bm.find_first_fit(1, 0), Some(10));
        assert_eq!(bm.find_first_fit(3, 0), Some(10));
        assert_eq!(bm.find_first_fit(4, 0), Some(50));
        assert_eq!(bm.find_first_fit(8, 0), Some(50));
        assert_eq!(bm.find_first_fit(9, 0), None);
        assert_eq!(bm.find_first_fit(2, 12), Some(50));
    }

    #[test]
    fn first_fit_spanning_words() {
        let mut bm = SlotBitmap::new_clear(300);
        bm.set_range(SlotRange::new(62, 70)); // crosses two word boundaries
        assert_eq!(bm.find_first_fit(70, 0), Some(62));
        assert_eq!(bm.find_first_fit(71, 0), None);
    }

    #[test]
    fn first_fit_full_bitmap() {
        let bm = SlotBitmap::new_set(1024);
        assert_eq!(bm.find_first_fit(1024, 0), Some(0));
        assert_eq!(bm.find_first_fit(1025, 0), None);
        assert_eq!(bm.find_first_fit(100, 512), Some(512));
    }

    #[test]
    fn last_set_and_last_run() {
        let mut bm = SlotBitmap::new_clear(300);
        assert_eq!(bm.last_set(), None);
        assert_eq!(bm.last_run(4), None);
        bm.set_range(SlotRange::new(10, 5));
        bm.set_range(SlotRange::new(120, 10)); // crosses a word boundary
        assert_eq!(bm.last_set(), Some(129));
        assert_eq!(bm.last_run(100), Some(SlotRange::new(120, 10)));
        assert_eq!(
            bm.last_run(4),
            Some(SlotRange::new(126, 4)),
            "cap keeps the run's top end"
        );
        assert_eq!(bm.last_run(0), None);
        bm.clear_range(SlotRange::new(120, 10));
        assert_eq!(bm.last_run(100), Some(SlotRange::new(10, 5)));
        bm.set(299);
        assert_eq!(bm.last_set(), Some(299));
        assert_eq!(bm.last_run(8), Some(SlotRange::single(299)));
    }

    #[test]
    fn first_set_scans_words() {
        let mut bm = SlotBitmap::new_clear(300);
        bm.set(257);
        assert_eq!(bm.first_set(0), Some(257));
        assert_eq!(bm.first_set(257), Some(257));
        assert_eq!(bm.first_set(258), None);
    }

    #[test]
    fn or_and_intersect() {
        let mut a = SlotBitmap::new_clear(100);
        let mut b = SlotBitmap::new_clear(100);
        a.set(3);
        b.set(97);
        assert!(!a.intersects(&b));
        a.or_with(&b);
        assert!(a.get(3) && a.get(97));
        assert!(a.intersects(&b));
        a.and_with(&b);
        assert!(!a.get(3) && a.get(97));
    }

    #[test]
    fn serde_roundtrip() {
        let mut bm = SlotBitmap::new_clear(777);
        for i in (0..777).step_by(13) {
            bm.set(i);
        }
        let bytes = bm.to_bytes();
        let back = SlotBitmap::from_bytes(&bytes).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn serde_rejects_garbage() {
        assert!(SlotBitmap::from_bytes(&[]).is_none());
        assert!(SlotBitmap::from_bytes(&[1, 2, 3]).is_none());
        let mut bytes = SlotBitmap::new_set(64).to_bytes();
        bytes.pop();
        assert!(SlotBitmap::from_bytes(&bytes).is_none());
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut bm = SlotBitmap::new_clear(500);
        let idxs = [0usize, 1, 63, 64, 65, 200, 499];
        for &i in &idxs {
            bm.set(i);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idxs.to_vec());
    }
}
