//! Slot-layer statistics.
//!
//! Counters are atomics so that the host (bench harness, audits) can read
//! them while node schedulers are running.  Every counter is monotonically
//! increasing; derive rates by snapshotting twice.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, live statistics for one node's slot manager.
#[derive(Debug, Default)]
pub struct SlotStats {
    /// Single-slot acquisitions satisfied from the local bitmap.
    pub local_acquires: AtomicU64,
    /// Multi-slot (contiguous) acquisitions satisfied locally.
    pub multi_acquires: AtomicU64,
    /// Acquisitions that had to report "negotiation required".
    pub negotiation_required: AtomicU64,
    /// Slot releases (ownership returned to this node).
    pub releases: AtomicU64,
    /// Single-slot acquisitions served by the mmapped-slot cache (no mmap).
    pub cache_hits: AtomicU64,
    /// Single-slot acquisitions that had to mmap.
    pub cache_misses: AtomicU64,
    /// Slots this node sold to other nodes during negotiations.
    pub slots_sold: AtomicU64,
    /// Slots this node bought from other nodes during negotiations.
    pub slots_bought: AtomicU64,
    /// Slots this node lent to peers through point-to-point slot trades.
    pub slots_lent: AtomicU64,
    /// Slots this node adopted from peers through slot trades.
    pub slots_adopted: AtomicU64,
    /// mmap (commit) calls issued.
    pub commits: AtomicU64,
    /// munmap-equivalent (decommit) calls issued.
    pub decommits: AtomicU64,
}

impl SlotStats {
    /// Fresh zeroed stats behind an `Arc`.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> SlotStatsSnapshot {
        SlotStatsSnapshot {
            local_acquires: self.local_acquires.load(Ordering::Relaxed),
            multi_acquires: self.multi_acquires.load(Ordering::Relaxed),
            negotiation_required: self.negotiation_required.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            slots_sold: self.slots_sold.load(Ordering::Relaxed),
            slots_bought: self.slots_bought.load(Ordering::Relaxed),
            slots_lent: self.slots_lent.load(Ordering::Relaxed),
            slots_adopted: self.slots_adopted.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            decommits: self.decommits.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`SlotStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStatsSnapshot {
    pub local_acquires: u64,
    pub multi_acquires: u64,
    pub negotiation_required: u64,
    pub releases: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub slots_sold: u64,
    pub slots_bought: u64,
    pub slots_lent: u64,
    pub slots_adopted: u64,
    pub commits: u64,
    pub decommits: u64,
}

impl std::fmt::Display for SlotStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acquires: {} local / {} multi / {} needing negotiation; releases: {}; \
             cache: {} hits / {} misses; negotiated: {} sold / {} bought; \
             traded: {} lent / {} adopted; mmap: {} commits / {} decommits",
            self.local_acquires,
            self.multi_acquires,
            self.negotiation_required,
            self.releases,
            self.cache_hits,
            self.cache_misses,
            self.slots_sold,
            self.slots_bought,
            self.slots_lent,
            self.slots_adopted,
            self.commits,
            self.decommits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = SlotStats::default();
        SlotStats::bump(&s.local_acquires);
        SlotStats::bump(&s.local_acquires);
        SlotStats::add(&s.slots_sold, 5);
        let snap = s.snapshot();
        assert_eq!(snap.local_acquires, 2);
        assert_eq!(snap.slots_sold, 5);
        assert_eq!(snap.cache_hits, 0);
        // Display shouldn't panic and should mention the numbers.
        let text = snap.to_string();
        assert!(text.contains("2 local"));
    }
}
