//! Area geometry configuration.
//!
//! The paper (Fig. 5) places a ~3.5 GB iso-address area between the Unix
//! process stack and the heap; slots are 64 KiB (16 pages), chosen to fit a
//! thread stack so that thread creation is always a local, single-slot
//! operation (§4.1, "Slot size").  The reproduction reserves the area
//! anywhere in the 64-bit address space (`PROT_NONE`, costs no memory) — the
//! paper's requirement is only that the range is *identical on every node*,
//! which holds trivially for our in-process nodes and is asserted by the
//! runtime accounting in [`crate::IsoArea`].

use crate::error::{IsoAddrError, Result};
use crate::sys;

/// Default slot size: 64 KiB, i.e. 16 pages of 4 KiB — the paper's choice.
pub const DEFAULT_SLOT_SIZE: usize = 64 * 1024;

/// Default number of slots: 16384 slots × 64 KiB = 1 GiB of iso-address
/// space.  (The paper used ~3.5 GB on 32-bit machines; reservations are free
/// on 64-bit, but 1 GiB keeps `/proc` maps readable.  Configurable.)
pub const DEFAULT_N_SLOTS: usize = 16 * 1024;

/// Geometry of an iso-address area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaConfig {
    /// Size of one slot in bytes.  Must be a power of two and a multiple of
    /// the page size.
    pub slot_size: usize,
    /// Total number of slots in the area.
    pub n_slots: usize,
}

impl Default for AreaConfig {
    fn default() -> Self {
        AreaConfig {
            slot_size: DEFAULT_SLOT_SIZE,
            n_slots: DEFAULT_N_SLOTS,
        }
    }
}

impl AreaConfig {
    /// A small area for unit tests (64 slots of 64 KiB = 4 MiB).
    pub fn small() -> Self {
        AreaConfig {
            slot_size: DEFAULT_SLOT_SIZE,
            n_slots: 64,
        }
    }

    /// Geometry with a custom slot size (bench ablation A3).
    pub fn with_slot_size(slot_size: usize, n_slots: usize) -> Self {
        AreaConfig { slot_size, n_slots }
    }

    /// Total byte size of the area.
    pub fn area_size(&self) -> usize {
        self.slot_size * self.n_slots
    }

    /// Validate the geometry against the running system.
    pub fn validate(&self) -> Result<()> {
        let page = sys::page_size();
        if self.slot_size == 0 || !self.slot_size.is_power_of_two() {
            return Err(IsoAddrError::BadConfig(format!(
                "slot_size {} must be a non-zero power of two",
                self.slot_size
            )));
        }
        if !self.slot_size.is_multiple_of(page) {
            return Err(IsoAddrError::BadConfig(format!(
                "slot_size {} must be a multiple of the page size {}",
                self.slot_size, page
            )));
        }
        if self.n_slots == 0 {
            return Err(IsoAddrError::BadConfig("n_slots must be non-zero".into()));
        }
        if self.area_size() > (1 << 46) {
            return Err(IsoAddrError::BadConfig(format!(
                "area of {} bytes is unreasonably large",
                self.area_size()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_slot_size() {
        let c = AreaConfig::default();
        assert_eq!(c.slot_size, 64 * 1024);
        assert_eq!(c.slot_size / sys::page_size(), 16); // "16 pages"
        c.validate().unwrap();
    }

    #[test]
    fn rejects_bad_slot_sizes() {
        assert!(AreaConfig::with_slot_size(0, 4).validate().is_err());
        assert!(AreaConfig::with_slot_size(3 * 4096, 4).validate().is_err());
        assert!(AreaConfig::with_slot_size(2048, 4).validate().is_err()); // < page
        assert!(AreaConfig::with_slot_size(4096, 0).validate().is_err());
    }

    #[test]
    fn bitmap_size_matches_paper_arithmetic() {
        // Paper §4.2: 3.5 GB area / 64 KiB slots ≈ a 7 kB bitmap.
        let n_slots = (35 * (1usize << 30) / 10) / DEFAULT_SLOT_SIZE;
        let bitmap_bytes = n_slots / 8;
        assert!(
            (6_500..=7_500).contains(&bitmap_bytes),
            "got {bitmap_bytes}"
        );
    }
}
