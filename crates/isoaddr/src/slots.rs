//! Slot identifiers and ranges.
//!
//! An *address slot* is a fixed-size range of virtual addresses within the
//! iso-address area (paper §3.2).  Slots are identified by their index from
//! the base of the area; a [`SlotRange`] denotes `count` *contiguous* slots
//! (a "large slot" in the paper's terminology once merged, §3.3).

/// A virtual address.  Plain `usize` by design: iso-addresses are the whole
/// point of the system — they are stable across nodes, so they can be stored,
/// shipped in migration buffers and dereferenced on the other side verbatim.
pub type VAddr = usize;

/// A contiguous range of slots `[first, first + count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotRange {
    /// Index of the first slot.
    pub first: usize,
    /// Number of contiguous slots (≥ 1 for a valid range).
    pub count: usize,
}

impl SlotRange {
    /// A range of a single slot.
    pub const fn single(first: usize) -> Self {
        SlotRange { first, count: 1 }
    }

    /// Construct a range; `count` must be ≥ 1.
    pub const fn new(first: usize, count: usize) -> Self {
        SlotRange { first, count }
    }

    /// One-past-the-last slot index.
    pub const fn end(&self) -> usize {
        self.first + self.count
    }

    /// Does this range contain slot `idx`?
    pub const fn contains(&self, idx: usize) -> bool {
        idx >= self.first && idx < self.end()
    }

    /// Do the two ranges overlap?
    pub const fn overlaps(&self, other: &SlotRange) -> bool {
        self.first < other.end() && other.first < self.end()
    }

    /// Iterate over the slot indices in the range.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.first..self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = SlotRange::new(4, 3);
        assert_eq!(r.end(), 7);
        assert!(r.contains(4) && r.contains(6) && !r.contains(7) && !r.contains(3));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn overlap() {
        let a = SlotRange::new(0, 4);
        assert!(a.overlaps(&SlotRange::new(3, 1)));
        assert!(a.overlaps(&SlotRange::new(0, 1)));
        assert!(!a.overlaps(&SlotRange::new(4, 2)));
        assert!(SlotRange::new(2, 10).overlaps(&a));
    }

    #[test]
    fn single() {
        let s = SlotRange::single(9);
        assert_eq!(s, SlotRange::new(9, 1));
    }
}
