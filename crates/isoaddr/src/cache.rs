//! The mmapped-slot cache (paper §6, "A number of optimizations …").
//!
//! "Instead of unmmapping a slot each time it is released, we keep a number
//! of mmapped empty slots in a process-wide cache.  This saves the mmapping
//! time at the next slot allocation."
//!
//! In this reproduction the cache is per *node* (each node is the paper's
//! "process").  Invariant maintained by [`crate::NodeSlotManager`]: every
//! cached slot index is (a) owned by the node (its bitmap bit is set) and
//! (b) still committed (mapped R/W).  Cached slots therefore keep stale
//! contents — callers must initialize memory they acquire, which the block
//! layer and the thread spawner always do.

use std::collections::VecDeque;

use crate::slots::SlotRange;

/// LIFO cache of committed, node-owned, free single slots.
///
/// The store is a `VecDeque`: the hot path pushes and pops at the back
/// (LIFO keeps pages warm), while a full cache evicts its *oldest* entry
/// from the front in O(1) — the former `Vec::remove(0)` shifted the whole
/// store on every eviction of a full cache.
#[derive(Debug)]
pub struct SlotCache {
    capacity: usize,
    slots: VecDeque<usize>,
}

impl SlotCache {
    /// Create a cache holding at most `capacity` slots (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        SlotCache {
            capacity,
            slots: VecDeque::with_capacity(capacity),
        }
    }

    /// Is caching disabled?
    pub fn disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Number of slots currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots are cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pop the most recently released cached slot (LIFO maximizes the chance
    /// its pages are still warm).
    pub fn pop(&mut self) -> Option<usize> {
        self.slots.pop_back()
    }

    /// Offer a slot to the cache.  Returns `Some(evicted)` if accepting it
    /// pushed out the oldest entry, `None` if the slot was simply cached, or
    /// `Some(idx)` (the argument itself) if the cache is disabled.
    pub fn push(&mut self, idx: usize) -> Option<usize> {
        if self.capacity == 0 {
            return Some(idx);
        }
        debug_assert!(!self.slots.contains(&idx), "slot {idx} cached twice");
        let evicted = if self.slots.len() == self.capacity {
            self.slots.pop_front()
        } else {
            None
        };
        self.slots.push_back(idx);
        evicted
    }

    /// Remove a specific slot from the cache (because it is being acquired
    /// or sold).  Returns true if it was cached.
    pub fn remove(&mut self, idx: usize) -> bool {
        if let Some(pos) = self.slots.iter().position(|&s| s == idx) {
            self.slots.swap_remove_back(pos);
            true
        } else {
            false
        }
    }

    /// Is `idx` currently cached?
    pub fn contains(&self, idx: usize) -> bool {
        self.slots.contains(&idx)
    }

    /// Remove every cached slot that falls inside `range`; returns them.
    pub fn remove_in_range(&mut self, range: SlotRange) -> Vec<usize> {
        let mut out = Vec::new();
        self.slots.retain(|&s| {
            if range.contains(s) {
                out.push(s);
                false
            } else {
                true
            }
        });
        out
    }

    /// Drain the whole cache (shutdown path).
    pub fn drain_all(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.slots).into_iter().collect()
    }

    /// Iterate over cached slot indices (audits).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut c = SlotCache::new(4);
        assert!(c.push(1).is_none());
        assert!(c.push(2).is_none());
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(1));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn eviction_is_fifo_among_overflow() {
        let mut c = SlotCache::new(2);
        assert!(c.push(1).is_none());
        assert!(c.push(2).is_none());
        assert_eq!(c.push(3), Some(1)); // oldest evicted
        assert_eq!(c.len(), 2);
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn disabled_cache_rejects_everything() {
        let mut c = SlotCache::new(0);
        assert!(c.disabled());
        assert_eq!(c.push(7), Some(7));
        assert!(c.is_empty());
    }

    #[test]
    fn remove_and_range_eviction() {
        let mut c = SlotCache::new(8);
        for i in [3usize, 10, 11, 20] {
            c.push(i);
        }
        assert!(c.remove(10));
        assert!(!c.remove(10));
        let mut evicted = c.remove_in_range(SlotRange::new(11, 10));
        evicted.sort_unstable();
        assert_eq!(evicted, vec![11, 20]);
        assert_eq!(c.len(), 1);
        assert!(c.contains(3));
    }

    #[test]
    fn drain() {
        let mut c = SlotCache::new(4);
        c.push(1);
        c.push(2);
        let mut all = c.drain_all();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
        assert!(c.is_empty());
    }
}
