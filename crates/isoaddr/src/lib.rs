//! # isoaddr — the iso-address area and slot layer
//!
//! This crate implements the *slot layer* of the PM2 iso-address allocator
//! (Antoniu, Bougé, Namyst, IPPS/SPDP'99, §3.2 and §4.1–4.2):
//!
//! * a process-wide **iso-address area**: a contiguous range of virtual
//!   addresses reserved once (`PROT_NONE`) and divided into fixed-size
//!   **slots** (default 64 KiB = 16 pages, exactly as in the paper);
//! * per-node **slot bitmaps** implementing the *global reservation, local
//!   allocation* discipline: every slot is owned by exactly one agent (a node
//!   or a thread) at any time, so memory mapped at a slot on one node is
//!   guaranteed unmapped at the same addresses on every other node;
//! * initial **slot distributions** (round-robin as in the paper's
//!   implementation, plus block-cyclic and partitioned variants discussed in
//!   §4.1);
//! * the **mmapped-slot cache** optimization of §6 (keep released slots
//!   mapped so the next acquisition skips the `mmap`).
//!
//! The in-process "cluster" simulation maps every node of a [`IsoArea`] into
//! a single OS process.  This is sound *because of* the iso-address
//! discipline: a slot busy on one node is free on all others, hence the union
//! of all nodes' live mappings is collision-free inside one address space.
//! [`IsoArea`] enforces this invariant at runtime with atomic map accounting
//! (see [`IsoArea::commit_slots`]).

pub mod area;
pub mod bitmap;
pub mod cache;
pub mod distribution;
pub mod error;
pub mod layout;
pub mod manager;
pub mod slots;
pub mod stats;
mod sys;

pub use area::{IsoArea, MapStrategy};
pub use bitmap::SlotBitmap;
pub use cache::SlotCache;
pub use distribution::Distribution;
pub use error::IsoAddrError;
pub use layout::AreaConfig;
pub use manager::{AcquireOutcome, NodeSlotManager, SlotProvider};
pub use slots::{SlotRange, VAddr};
pub use stats::{SlotStats, SlotStatsSnapshot};
