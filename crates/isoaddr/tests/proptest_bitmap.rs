//! Property tests: the word-accelerated bitmap agrees with a naive
//! bit-vector model on every operation the negotiation protocol uses.

use proptest::prelude::*;

use isoaddr::{Distribution, SlotBitmap, SlotRange};

/// Naive reference: Vec<bool>.
#[derive(Clone, Debug)]
struct Model(Vec<bool>);

impl Model {
    fn new(n: usize) -> Self {
        Model(vec![false; n])
    }

    fn find_first_fit(&self, n: usize, from: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let mut run = 0usize;
        for (i, &b) in self.0.iter().enumerate().skip(from) {
            if b {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            } else {
                run = 0;
            }
        }
        None
    }
}

#[derive(Clone, Debug)]
enum Op {
    Set(usize),
    Clear(usize),
    SetRange(usize, usize),
    ClearRange(usize, usize),
}

fn ops(n_bits: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0..n_bits).prop_map(Op::Set),
        (0..n_bits).prop_map(Op::Clear),
        (0..n_bits, 1..16usize).prop_map(move |(s, l)| Op::SetRange(s, l.min(n_bits - s))),
        (0..n_bits, 1..16usize).prop_map(move |(s, l)| Op::ClearRange(s, l.min(n_bits - s))),
    ];
    proptest::collection::vec(op, 1..120)
}

proptest! {
    #[test]
    fn bitmap_matches_model(n_bits in 65usize..400, ops in ops(400), fits in proptest::collection::vec((1usize..20, 0usize..400), 1..12)) {
        let mut bm = SlotBitmap::new_clear(n_bits);
        let mut model = Model::new(n_bits);
        for op in &ops {
            match *op {
                Op::Set(i) if i < n_bits => { bm.set(i); model.0[i] = true; }
                Op::Clear(i) if i < n_bits => { bm.clear(i); model.0[i] = false; }
                Op::SetRange(s, l) if s < n_bits && l > 0 => {
                    let l = l.min(n_bits - s);
                    bm.set_range(SlotRange::new(s, l));
                    for i in s..s + l { model.0[i] = true; }
                }
                Op::ClearRange(s, l) if s < n_bits && l > 0 => {
                    let l = l.min(n_bits - s);
                    bm.clear_range(SlotRange::new(s, l));
                    for i in s..s + l { model.0[i] = false; }
                }
                _ => {}
            }
        }
        // Bit-for-bit agreement.
        for i in 0..n_bits {
            prop_assert_eq!(bm.get(i), model.0[i], "bit {}", i);
        }
        prop_assert_eq!(bm.count_ones(), model.0.iter().filter(|&&b| b).count());
        // First-fit agreement for a batch of queries.
        for (n, from) in fits {
            prop_assert_eq!(
                bm.find_first_fit(n, from),
                model.find_first_fit(n, from),
                "find_first_fit({}, {})", n, from
            );
        }
        // first_set agreement.
        let naive_first = model.0.iter().position(|&b| b);
        prop_assert_eq!(bm.first_set(0), naive_first);
        // Serialization roundtrip.
        let back = SlotBitmap::from_bytes(&bm.to_bytes()).unwrap();
        prop_assert_eq!(back, bm);
    }

    #[test]
    fn or_is_union(n in 65usize..300,
                   a in proptest::collection::vec(0usize..300, 0..40),
                   b in proptest::collection::vec(0usize..300, 0..40)) {
        let mut ba = SlotBitmap::new_clear(n);
        let mut bb = SlotBitmap::new_clear(n);
        for &i in a.iter().filter(|&&i| i < n) { ba.set(i); }
        for &i in b.iter().filter(|&&i| i < n) { bb.set(i); }
        let mut un = ba.clone();
        un.or_with(&bb);
        for i in 0..n {
            prop_assert_eq!(un.get(i), ba.get(i) || bb.get(i));
        }
    }

    /// Every distribution partitions the area: each slot owned exactly once.
    #[test]
    fn distributions_partition(p in 1usize..9, n in 1usize..300, k in 1usize..32) {
        for d in [Distribution::RoundRobin, Distribution::BlockCyclic(k), Distribution::Partitioned] {
            let maps: Vec<_> = (0..p).map(|node| d.initial_bitmap(node, p, n)).collect();
            for slot in 0..n {
                let owners = maps.iter().filter(|m| m.get(slot)).count();
                prop_assert_eq!(owners, 1, "{:?} p={} n={} slot={}", d, p, n, slot);
            }
            // The union must be the full area.
            let mut total = 0;
            for m in &maps { total += m.count_ones(); }
            prop_assert_eq!(total, n);
        }
    }
}
