//! Property tests: the word-accelerated bitmap agrees with a naive
//! bit-vector model on every operation the negotiation protocol uses.
//!
//! Randomized via the in-tree `testkit` PRNG (seeded, deterministic)
//! instead of proptest — the sandbox builds offline.

use testkit::{cases, StdRng};

use isoaddr::{Distribution, SlotBitmap, SlotRange};

/// Naive reference: Vec<bool>.
#[derive(Clone, Debug)]
struct Model(Vec<bool>);

impl Model {
    fn new(n: usize) -> Self {
        Model(vec![false; n])
    }

    fn find_first_fit(&self, n: usize, from: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let mut run = 0usize;
        for (i, &b) in self.0.iter().enumerate().skip(from) {
            if b {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            } else {
                run = 0;
            }
        }
        None
    }
}

#[derive(Clone, Debug)]
enum Op {
    Set(usize),
    Clear(usize),
    SetRange(usize, usize),
    ClearRange(usize, usize),
}

fn random_op(rng: &mut StdRng, n_bits: usize) -> Op {
    match rng.random_range(0..4u32) {
        0 => Op::Set(rng.random_range(0..n_bits)),
        1 => Op::Clear(rng.random_range(0..n_bits)),
        2 => {
            let s = rng.random_range(0..n_bits);
            let l = rng.random_range(1..16usize).min(n_bits - s);
            Op::SetRange(s, l)
        }
        _ => {
            let s = rng.random_range(0..n_bits);
            let l = rng.random_range(1..16usize).min(n_bits - s);
            Op::ClearRange(s, l)
        }
    }
}

#[test]
fn bitmap_matches_model() {
    cases(64, |rng| {
        let n_bits = rng.random_range(65..400usize);
        let n_ops = rng.random_range(1..120usize);
        let mut bm = SlotBitmap::new_clear(n_bits);
        let mut model = Model::new(n_bits);
        for _ in 0..n_ops {
            match random_op(rng, n_bits) {
                Op::Set(i) => {
                    bm.set(i);
                    model.0[i] = true;
                }
                Op::Clear(i) => {
                    bm.clear(i);
                    model.0[i] = false;
                }
                Op::SetRange(s, l) if l > 0 => {
                    bm.set_range(SlotRange::new(s, l));
                    for i in s..s + l {
                        model.0[i] = true;
                    }
                }
                Op::ClearRange(s, l) if l > 0 => {
                    bm.clear_range(SlotRange::new(s, l));
                    for i in s..s + l {
                        model.0[i] = false;
                    }
                }
                _ => {}
            }
        }
        // Bit-for-bit agreement.
        for i in 0..n_bits {
            assert_eq!(bm.get(i), model.0[i], "bit {i}");
        }
        assert_eq!(bm.count_ones(), model.0.iter().filter(|&&b| b).count());
        // First-fit agreement for a batch of queries.
        for _ in 0..12 {
            let n = rng.random_range(1..20usize);
            let from = rng.random_range(0..400usize);
            assert_eq!(
                bm.find_first_fit(n, from),
                model.find_first_fit(n, from),
                "find_first_fit({n}, {from})"
            );
        }
        // first_set agreement.
        let naive_first = model.0.iter().position(|&b| b);
        assert_eq!(bm.first_set(0), naive_first);
        // Serialization roundtrip.
        let back = SlotBitmap::from_bytes(&bm.to_bytes()).unwrap();
        assert_eq!(back, bm);
    });
}

#[test]
fn or_is_union() {
    cases(64, |rng| {
        let n = rng.random_range(65..300usize);
        let mut ba = SlotBitmap::new_clear(n);
        let mut bb = SlotBitmap::new_clear(n);
        for _ in 0..rng.random_range(0..40usize) {
            ba.set(rng.random_range(0..n));
        }
        for _ in 0..rng.random_range(0..40usize) {
            bb.set(rng.random_range(0..n));
        }
        let mut un = ba.clone();
        un.or_with(&bb);
        for i in 0..n {
            assert_eq!(un.get(i), ba.get(i) || bb.get(i));
        }
    });
}

/// Every distribution partitions the area: each slot owned exactly once.
#[test]
fn distributions_partition() {
    cases(48, |rng| {
        let p = rng.random_range(1..9usize);
        let n = rng.random_range(1..300usize);
        let k = rng.random_range(1..32usize);
        for d in [
            Distribution::RoundRobin,
            Distribution::BlockCyclic(k),
            Distribution::Partitioned,
        ] {
            let maps: Vec<_> = (0..p).map(|node| d.initial_bitmap(node, p, n)).collect();
            for slot in 0..n {
                let owners = maps.iter().filter(|m| m.get(slot)).count();
                assert_eq!(owners, 1, "{d:?} p={p} n={n} slot={slot}");
            }
            // The union must be the full area.
            let mut total = 0;
            for m in &maps {
                total += m.count_ones();
            }
            assert_eq!(total, n);
        }
    });
}
