//! Fixed-bucket log2 latency histogram.
//!
//! Per-op latencies are recorded concurrently by the op threads themselves
//! (green threads scattered across node drivers), so the buckets are plain
//! relaxed atomics — recording is one `fetch_add`, never a lock.  Buckets
//! are powers of two over microseconds: bucket `i` holds latencies in
//! `[2^i, 2^(i+1))` µs, 0 µs lands in bucket 0.  64 buckets cover any
//! representable latency, and quantiles are interpolated inside the
//! winning bucket so p50 of a tight distribution does not snap to a power
//! of two.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (covers every u64 microsecond value).
pub const N_BUCKETS: usize = 64;

/// Concurrent log2 histogram of microsecond latencies.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    /// Sum of recorded values (µs), for the mean.
    sum_us: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Record one latency.
    pub fn record_us(&self, us: u64) {
        let b = (64 - us.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean of the recorded latencies, µs (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Quantile `q` in `[0, 1]`, µs, linearly interpolated within the
    /// winning bucket (0.0 when empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen as f64 + c as f64 >= rank {
                // Interpolate inside bucket [2^i, 2^(i+1)); bucket 0 is
                // [0, 2).
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 {
                    u64::MAX as f64
                } else {
                    (1u64 << (i + 1)) as f64
                };
                let into = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * into;
            }
            seen += c;
        }
        // rank == total with rounding dust: the top of the last non-empty
        // bucket.
        let last = counts.iter().rposition(|&c| c > 0).unwrap();
        (1u64 << (last + 1).min(63)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.99), 0.0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn bucket_placement() {
        let h = LogHistogram::new();
        h.record_us(0); // bucket 0
        h.record_us(1); // bucket 0
        h.record_us(2); // bucket 1
        h.record_us(3); // bucket 1
        h.record_us(1024); // bucket 10
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_us(), (0.0 + 1.0 + 2.0 + 3.0 + 1024.0) / 5.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bracketing() {
        let h = LogHistogram::new();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            h.record_us(us);
        }
        let p50 = h.quantile_us(0.50);
        let p90 = h.quantile_us(0.90);
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // p50 of this spread lies in the middle decades, p99 near the top
        // bucket [4096, 8192).
        assert!((64.0..512.0).contains(&p50), "p50 = {p50}");
        assert!((4096.0..8192.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn tight_distribution_interpolates() {
        let h = LogHistogram::new();
        for _ in 0..1000 {
            h.record_us(100); // all in bucket [64, 128)
        }
        let p50 = h.quantile_us(0.5);
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn concurrent_recording_counts_everything() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record_us(t * 1000 + i % 500);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
