//! Declarative workload descriptions.
//!
//! A [`WorkloadSpec`] is a *value*: a weighted mix of operation kinds, a
//! payload-size distribution, and a node-targeting policy.  The driver
//! samples concrete operations from it with testkit's seeded SplitMix64,
//! so a given `(spec, round, injector)` triple always produces the same
//! op sequence — deterministic-mode machines replay a workload exactly,
//! and a saturation point found once is found again.

use testkit::StdRng;

/// One operation kind in a mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Spawn a child thread on the target node, join it.
    Spawn,
    /// Typed echo RPC (`Service` round trip) from the issuing node to a
    /// peer, payload drawn from the size distribution.
    Rpc,
    /// The issuing thread migrates to a peer node.
    Migrate,
    /// Spawn `group` yield-loop children and move them to a peer with one
    /// `pm2_group_migrate` command (a migration train).
    GroupMigrate {
        /// Threads per group command.
        group: usize,
    },
    /// `pm2_isomalloc` a payload-sized block, touch it, `pm2_isofree` it.
    Alloc,
    /// Echo-RPC fan-out to every other node (there is no green-side
    /// broadcast primitive; this is the fan-out a broadcast would cost).
    Broadcast,
}

impl OpKind {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Spawn => "spawn",
            OpKind::Rpc => "rpc",
            OpKind::Migrate => "migrate",
            OpKind::GroupMigrate { .. } => "group_migrate",
            OpKind::Alloc => "alloc",
            OpKind::Broadcast => "broadcast",
        }
    }
}

/// Payload-size distribution (bytes).
#[derive(Debug, Clone, Copy)]
pub enum SizeDist {
    /// Every payload exactly `0` bytes… or any fixed size.
    Fixed(usize),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: usize, hi: usize },
    /// `small` bytes usually, `large` bytes with probability `p_large` —
    /// the classic mostly-small-sometimes-bulk traffic shape.
    Bimodal {
        small: usize,
        large: usize,
        p_large: f64,
    },
}

impl SizeDist {
    /// Draw one size.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform { lo, hi } => rng.random_range(lo..=hi),
            SizeDist::Bimodal {
                small,
                large,
                p_large,
            } => {
                if rng.random_bool(p_large) {
                    large
                } else {
                    small
                }
            }
        }
    }
}

/// Which nodes ops are issued on and aimed at.
#[derive(Debug, Clone, Copy)]
pub enum Targeting {
    /// Issue node and peer node both uniform over the machine (peer ≠
    /// issue node when the op needs a distinct peer).
    Uniform,
    /// Every op issues on `node` (peers stay uniform) — a hot-spot shape.
    Hotspot {
        /// The hot node.
        node: usize,
    },
    /// Producer/consumer ring: ops issue uniformly but always aim at the
    /// next node around the ring (`peer = issue + 1 mod nodes`) — the
    /// communication-affinity shape where co-locating neighbours turns
    /// every hop into a wire-free self-send.
    Ring,
    /// All ops aim at one popular `node` hosting a service, issued from
    /// everywhere else — the hot-spot *shuffle* shape (the inverse of
    /// [`Targeting::Hotspot`], which pins the issuing side).
    Service {
        /// The popular node.
        node: usize,
    },
}

/// A declarative workload: what to run, not how fast (the ramp decides
/// that round by round).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Report label, e.g. `"pingpong_rpc"`.
    pub name: String,
    /// Weighted op mix; weights are relative, zero-weight entries never
    /// fire.
    pub mix: Vec<(OpKind, u64)>,
    /// Payload sizes for Rpc/Alloc/Broadcast ops.
    pub payload: SizeDist,
    /// Node-targeting policy.
    pub targeting: Targeting,
    /// Base PRNG seed; the driver folds round and injector indices in.
    pub seed: u64,
}

impl WorkloadSpec {
    /// 100% echo-RPC ping-pong with a fixed small payload — the classic
    /// capacity baseline.
    pub fn pingpong_rpc(payload_bytes: usize) -> Self {
        WorkloadSpec {
            name: "pingpong_rpc".into(),
            mix: vec![(OpKind::Rpc, 1)],
            payload: SizeDist::Fixed(payload_bytes),
            targeting: Targeting::Uniform,
            seed: 0x9E37,
        }
    }

    /// The mixed spawn/RPC/migrate shape, with alloc and train/broadcast
    /// seasoning so every subsystem is on the hot path.
    pub fn mixed() -> Self {
        WorkloadSpec {
            name: "mixed".into(),
            mix: vec![
                (OpKind::Spawn, 25),
                (OpKind::Rpc, 35),
                (OpKind::Migrate, 20),
                (OpKind::Alloc, 10),
                (OpKind::GroupMigrate { group: 4 }, 5),
                (OpKind::Broadcast, 5),
            ],
            payload: SizeDist::Bimodal {
                small: 64,
                large: 8 * 1024,
                p_large: 0.05,
            },
            targeting: Targeting::Uniform,
            seed: 0x7C15,
        }
    }

    /// The `kill_node` chaos mix: [`WorkloadSpec::mixed`] without the
    /// broadcast fan-out.  A green-side broadcast has no membership view
    /// and would dial the corpse by construction; every other op kind is
    /// rerouted around dead nodes by the driver.
    pub fn chaos() -> Self {
        WorkloadSpec {
            name: "chaos_kill_node".into(),
            mix: vec![
                (OpKind::Spawn, 30),
                (OpKind::Rpc, 40),
                (OpKind::Migrate, 15),
                (OpKind::Alloc, 10),
                (OpKind::GroupMigrate { group: 4 }, 5),
            ],
            payload: SizeDist::Bimodal {
                small: 64,
                large: 8 * 1024,
                p_large: 0.05,
            },
            targeting: Targeting::Uniform,
            seed: 0xD0A,
        }
    }

    /// Producer/consumer ring: 100% small echo RPCs around the ring.
    /// Every op on node *i* calls node *i+1*, so the steady-state traffic
    /// matrix is the ring adjacency — the scenario the affinity balancer
    /// wins by co-locating neighbours (seeded, replayable like the other
    /// presets).
    pub fn ring() -> Self {
        WorkloadSpec {
            name: "ring".into(),
            mix: vec![(OpKind::Rpc, 1)],
            payload: SizeDist::Fixed(64),
            targeting: Targeting::Ring,
            seed: 0x21B5,
        }
    }

    /// Hot-spot shuffle: RPC-heavy traffic from everywhere aimed at one
    /// popular node (node 0) hosting a service, with a little spawn/alloc
    /// seasoning so the hot node also does ordinary work.
    pub fn hotspot() -> Self {
        WorkloadSpec {
            name: "hotspot".into(),
            mix: vec![(OpKind::Rpc, 8), (OpKind::Spawn, 1), (OpKind::Alloc, 1)],
            payload: SizeDist::Fixed(64),
            targeting: Targeting::Service { node: 0 },
            seed: 0x40D5,
        }
    }

    /// Builder: replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replace the targeting policy.
    pub fn with_targeting(mut self, t: Targeting) -> Self {
        self.targeting = t;
        self
    }

    /// Sample one concrete op for a machine of `nodes` nodes.
    pub fn sample(&self, rng: &mut StdRng, nodes: usize) -> SampledOp {
        let weights: Vec<u64> = self.mix.iter().map(|(_, w)| *w).collect();
        let kind = self.mix[rng.pick_weighted(&weights)].0;
        let issue_on = match self.targeting {
            Targeting::Uniform | Targeting::Ring => rng.random_range(0..nodes),
            Targeting::Hotspot { node } => node.min(nodes - 1),
            // The popular node serves; everyone *else* issues.
            Targeting::Service { node } => {
                let hot = node.min(nodes - 1);
                if nodes > 1 {
                    let p = rng.random_range(0..nodes - 1);
                    if p >= hot {
                        p + 1
                    } else {
                        p
                    }
                } else {
                    hot
                }
            }
        };
        // A distinct peer for ops that cross the wire (any node on a
        // 1-node machine — the ops degrade to local forms).
        let peer = match self.targeting {
            Targeting::Ring => (issue_on + 1) % nodes,
            Targeting::Service { node } => node.min(nodes - 1),
            _ if nodes > 1 => {
                let p = rng.random_range(0..nodes - 1);
                if p >= issue_on {
                    p + 1
                } else {
                    p
                }
            }
            _ => issue_on,
        };
        let bytes = self.payload.sample(rng);
        SampledOp {
            kind,
            issue_on,
            peer,
            bytes,
        }
    }
}

/// One concrete sampled operation: everything the driver needs to issue
/// it, no RNG required downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledOp {
    /// What to do.
    pub kind: OpKind,
    /// Node the op thread is spawned on.
    pub issue_on: usize,
    /// Peer node (RPC target / migration destination); equals `issue_on`
    /// only on a 1-node machine.
    pub peer: usize,
    /// Payload size drawn from the spec's distribution.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let spec = WorkloadSpec::mixed();
        let mut a = StdRng::seed_from_u64(spec.seed);
        let mut b = StdRng::seed_from_u64(spec.seed);
        for _ in 0..500 {
            assert_eq!(spec.sample(&mut a, 8), spec.sample(&mut b, 8));
        }
    }

    #[test]
    fn peer_is_distinct_on_multi_node_machines() {
        let spec = WorkloadSpec::mixed();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let op = spec.sample(&mut rng, 4);
            assert!(op.issue_on < 4 && op.peer < 4);
            assert_ne!(op.issue_on, op.peer);
        }
    }

    #[test]
    fn hotspot_pins_the_issue_node() {
        let spec = WorkloadSpec::pingpong_rpc(64).with_targeting(Targeting::Hotspot { node: 2 });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            assert_eq!(spec.sample(&mut rng, 4).issue_on, 2);
        }
    }

    #[test]
    fn ring_aims_at_the_next_node() {
        let spec = WorkloadSpec::ring();
        let mut rng = StdRng::seed_from_u64(5);
        let mut issued = [0usize; 4];
        for _ in 0..400 {
            let op = spec.sample(&mut rng, 4);
            assert_eq!(op.peer, (op.issue_on + 1) % 4);
            assert!(matches!(op.kind, OpKind::Rpc));
            issued[op.issue_on] += 1;
        }
        assert!(issued.iter().all(|&n| n > 0), "all ring stations issue");
        // Replayable like every preset: same seed, same sequence.
        let mut a = StdRng::seed_from_u64(spec.seed);
        let mut b = StdRng::seed_from_u64(spec.seed);
        for _ in 0..100 {
            assert_eq!(spec.sample(&mut a, 8), spec.sample(&mut b, 8));
        }
    }

    #[test]
    fn hotspot_preset_aims_everyone_at_the_service_node() {
        let spec = WorkloadSpec::hotspot();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..400 {
            let op = spec.sample(&mut rng, 4);
            assert_eq!(op.peer, 0, "all traffic aims at the popular node");
            assert_ne!(op.issue_on, 0, "the popular node serves, not issues");
        }
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let spec = WorkloadSpec::mixed();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let rpcs = (0..n)
            .filter(|_| matches!(spec.sample(&mut rng, 8).kind, OpKind::Rpc))
            .count();
        // Rpc weight is 35 of 100.
        let frac = rpcs as f64 / n as f64;
        assert!((0.30..0.40).contains(&frac), "rpc fraction {frac}");
    }

    #[test]
    fn size_distributions_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5000 {
            assert_eq!(SizeDist::Fixed(7).sample(&mut rng), 7);
            let u = SizeDist::Uniform { lo: 10, hi: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&u));
            let b = SizeDist::Bimodal {
                small: 1,
                large: 9,
                p_large: 0.5,
            }
            .sample(&mut rng);
            assert!(b == 1 || b == 9);
        }
    }
}
