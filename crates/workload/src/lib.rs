//! # pm2-workload — ramping mixed-workload harness with SLO gates
//!
//! Every bench in `pm2-bench` is a fixed-shape microbench; this crate
//! answers the production question: **what request rate can a p-node
//! machine sustain?**  The design follows the Internet Computer
//! scalability suite's workload experiments: declare a workload, ramp its
//! rate round by round, gate each round on failure-rate and p99-latency
//! SLOs, and report the last passing round as the machine's capacity.
//!
//! The pieces:
//!
//! * [`WorkloadSpec`] — a declarative workload *value*: a weighted mix of
//!   ops (spawn, typed RPC, migrate, group-migrate trains, isomalloc
//!   alloc/free, broadcast fan-out) with a payload-size distribution and
//!   a node-targeting policy, sampled via testkit's seeded SplitMix64 so
//!   a run replays exactly.  Future scenarios (chaos, affinity shapes)
//!   are just new spec values.
//! * [`run_ramp`] — the open-loop driver: injector threads own the
//!   schedule and push sampled ops down a channel; the issuer thread
//!   (which owns the `!Sync` machine handle) spawns each op the moment
//!   it is due; op latency is measured from the *scheduled* time so
//!   queueing counts and saturation is visible (no coordinated
//!   omission).  Latencies land in a concurrent log2 histogram
//!   ([`LogHistogram`]); uncompleted ops become timeouts.
//! * [`RampController`] — the IC-style gate as a pure state machine:
//!   `initial_rps` + `increment_rps` per round, stop at the first round
//!   with `failure_rate > allowable` or `p99 > slo`, hard-stop
//!   thresholds marking the cliff, last passing round = max sustainable
//!   RPS.
//! * [`CapacityReport`] — per-round driver measurements joined with
//!   machine-side counters (scheduler steps, doorbell parks, spawns,
//!   migrations/trains, slot trades/negotiations, payload-pool churn via
//!   [`pm2::Machine::stats_reset`] + snapshots) so each round shows *why*
//!   it saturated, not just that it did.
//!
//! ```no_run
//! use pm2::Machine;
//! use pm2_workload::{register_services, run_ramp, RampConfig, WorkloadSpec};
//!
//! let mut m = Machine::builder(4).launch().unwrap();
//! register_services(&m);
//! let report = run_ramp(&m, &WorkloadSpec::mixed(), RampConfig::default(), 2);
//! println!("{}", report.summary());
//! m.shutdown();
//! ```

mod chaos;
mod driver;
mod hist;
mod ramp;
mod spec;

pub use chaos::{run_kill_node, run_partition, ChaosReport, PartitionReport, CHAOS_RESIDENTS};
pub use driver::{
    register_services, run_gated_round, run_ramp, CapacityReport, Echo, MachineCounters,
    RoundReport,
};
pub use hist::{LogHistogram, N_BUCKETS};
pub use ramp::{RampConfig, RampController, RoundMeasurement, Verdict};
pub use spec::{OpKind, SampledOp, SizeDist, Targeting, WorkloadSpec};
