//! Chaos scenarios judged by the capacity harness's own SLO gates: a
//! node dies under load ([`run_kill_node`]), or the fabric is cut in two
//! for a window and must re-converge after healing ([`run_partition`]).
//!
//! The drill runs three acts on a machine the caller launched with a
//! spill directory:
//!
//! 1. **Baseline** — one fixed-rate [`run_gated_round`] of the
//!    [`WorkloadSpec::chaos`] mix on the healthy machine; it must pass
//!    the failure-rate and p99 gates or the machine was never keeping up.
//!    Four *resident* iso-allocating threads sit on the victim node
//!    throughout, so the kill has state to destroy.
//! 2. **Disruption** — checkpoint the victim, pull its power cord
//!    ([`Machine::kill_node`]), and run [`Machine::recover_node`]: spill
//!    replay, survivor re-adoption, orphan-slot reclamation.  The wall
//!    clock across kill → recovered is the disruption window.
//! 3. **Aftermath** — the same fixed-rate round again.  The driver routes
//!    ops around the corpse (a front-end stops dialing a dead replica),
//!    so the gate asks the real question: do p-1 survivors still clear
//!    the SLOs at the original offered rate?  Finally the residents are
//!    joined and must return their iso-values from a survivor node.
//!
//! [`ChaosReport::slo_ok`] is the single verdict CI gates on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm2::api::pm2_yield;
use pm2::{Machine, RecoveryReport};

use crate::driver::{run_gated_round, RoundReport};
use crate::ramp::RampConfig;
use crate::spec::WorkloadSpec;

/// Resident threads planted on the victim before the baseline round.
pub const CHAOS_RESIDENTS: usize = 4;

/// Everything the `kill_node` drill measured.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Spec name (`chaos_kill_node`).
    pub workload: String,
    /// Node count, including the node that dies.
    pub nodes: usize,
    /// The killed node.
    pub victim: usize,
    /// Fixed offered rate for both gated rounds.
    pub rps: u64,
    /// The healthy-machine round.
    pub baseline: RoundReport,
    /// Threads the pre-kill checkpoint covered (≥ the residents; any
    /// straggler ops from the baseline round ride along).
    pub checkpointed: u32,
    /// What recovery accomplished.
    pub recovery: RecoveryReport,
    /// Wall clock from the kill to recovery's return, ms.
    pub disruption_ms: f64,
    /// The survivors-only round at the same offered rate.
    pub aftermath: RoundReport,
    /// Residents that came back with their iso-values intact.
    pub residents_recovered: usize,
}

impl ChaosReport {
    /// The CI gate: both rounds passed their SLOs and no checkpointed
    /// resident was lost.
    pub fn slo_ok(&self) -> bool {
        self.baseline.verdict.passed()
            && self.aftermath.verdict.passed()
            && self.residents_recovered == CHAOS_RESIDENTS
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} on p={} (victim {}): baseline {} @ {} rps (fail {:.2}, p99 {:.1} ms), \
             disruption {:.1} ms ({} recovered / {} lost / {} slots reclaimed), \
             aftermath {} (fail {:.2}, p99 {:.1} ms), residents {}/{}",
            self.workload,
            self.nodes,
            self.victim,
            self.baseline.verdict.label(),
            self.rps,
            self.baseline.failure_rate,
            self.baseline.p99_ms,
            self.disruption_ms,
            self.recovery.threads_recovered,
            self.recovery.threads_lost,
            self.recovery.slots_reclaimed,
            self.aftermath.verdict.label(),
            self.aftermath.failure_rate,
            self.aftermath.p99_ms,
            self.residents_recovered,
            CHAOS_RESIDENTS,
        )
    }
}

/// Run the `kill_node` drill.  The machine must have been launched with a
/// spill directory (checkpoints have nowhere to go otherwise) and
/// [`crate::register_services`] must have been called.  Any node may be
/// the victim — the §4.4 coordinator is a leased role on the lowest-id
/// live node, so killing the incumbent just elects its successor.
pub fn run_kill_node(
    m: &mut Machine,
    victim: usize,
    cfg: &RampConfig,
    rps: u64,
    injectors: usize,
) -> pm2::Result<ChaosReport> {
    let spec = WorkloadSpec::chaos();

    // Plant the residents: state on the victim that must outlive it.
    let stop = Arc::new(AtomicBool::new(false));
    let mut residents = Vec::with_capacity(CHAOS_RESIDENTS);
    for i in 0..CHAOS_RESIDENTS as u64 {
        let stop = Arc::clone(&stop);
        residents.push(m.spawn_on_ret(victim, move || {
            let cell = pm2::IsoBox::new(0x0DD0_0000 + i).expect("resident isomalloc");
            while !stop.load(Ordering::SeqCst) {
                pm2_yield();
            }
            *cell
        })?);
    }

    let baseline = run_gated_round(m, &spec, cfg, rps, 0, injectors);

    let checkpointed = m.checkpoint_node(victim)?;
    let t0 = Instant::now();
    m.kill_node(victim)?;
    let recovery = m.recover_node(victim)?;
    let disruption_ms = t0.elapsed().as_secs_f64() * 1e3;

    let aftermath = run_gated_round(m, &spec, cfg, rps, 1, injectors);

    stop.store(true, Ordering::SeqCst);
    let mut residents_recovered = 0;
    for (i, h) in residents.into_iter().enumerate() {
        if h.join().is_ok_and(|v| v == 0x0DD0_0000 + i as u64) {
            residents_recovered += 1;
        }
    }

    Ok(ChaosReport {
        workload: spec.name,
        nodes: m.nodes(),
        victim,
        rps,
        baseline,
        checkpointed,
        recovery,
        disruption_ms,
        aftermath,
        residents_recovered,
    })
}

/// Everything the `partition` drill measured.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Spec name (`chaos_partition`).
    pub workload: String,
    /// Node count.
    pub nodes: usize,
    /// Fixed offered rate for both gated rounds.
    pub rps: u64,
    /// The healthy-machine round.
    pub baseline: RoundReport,
    /// How long the cut actually lasted, ms.
    pub partition_ms: f64,
    /// Messages the cut silently ate (fabric `chaos_cut` delta) — proof
    /// the partition severed real traffic.
    pub messages_cut: u64,
    /// Nodes wrongly declared dead by the cut (must be 0: a partition
    /// shorter than `failure_timeout` is not a death).
    pub false_deaths: usize,
    /// Did every node's gossiped wealth table re-converge (a fresh
    /// nonzero hint for every peer) within the quiet timeout after heal?
    pub wealth_converged: bool,
    /// The post-heal round at the same offered rate.
    pub aftermath: RoundReport,
    /// Residents on the far side whose joiners got their values back.
    pub residents_recovered: usize,
}

impl PartitionReport {
    /// The CI gate: both rounds passed, the cut killed nobody, gossip
    /// re-converged, and no joiner is stuck.
    pub fn slo_ok(&self) -> bool {
        self.baseline.verdict.passed()
            && self.aftermath.verdict.passed()
            && self.false_deaths == 0
            && self.wealth_converged
            && self.residents_recovered == CHAOS_RESIDENTS
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} on p={}: baseline {} @ {} rps (fail {:.2}, p99 {:.1} ms), \
             cut {:.1} ms ({} msgs eaten, {} false deaths), wealth converged: {}, \
             aftermath {} (fail {:.2}, p99 {:.1} ms), residents {}/{}",
            self.workload,
            self.nodes,
            self.baseline.verdict.label(),
            self.rps,
            self.baseline.failure_rate,
            self.baseline.p99_ms,
            self.partition_ms,
            self.messages_cut,
            self.false_deaths,
            self.wealth_converged,
            self.aftermath.verdict.label(),
            self.aftermath.failure_rate,
            self.aftermath.p99_ms,
            self.residents_recovered,
            CHAOS_RESIDENTS,
        )
    }
}

/// Run the `partition` drill: a baseline SLO-gated round, then cut the
/// fabric between node sets `a` and `b` for `window`, heal, and demand
/// re-convergence — nobody falsely declared dead, gossiped wealth hints
/// fresh again on every node, the same offered rate sustained post-heal,
/// and the far-side residents joinable with their iso-values intact.
///
/// `window` must be shorter than the machine's `failure_timeout` (if a
/// detector is armed): this drill is about *transient* cuts, where the
/// right behaviour is to ride it out, not to declare deaths.
pub fn run_partition(
    m: &mut Machine,
    a: &[usize],
    b: &[usize],
    window: Duration,
    cfg: &RampConfig,
    rps: u64,
    injectors: usize,
) -> pm2::Result<PartitionReport> {
    assert!(!a.is_empty() && !b.is_empty(), "both sides need nodes");
    let spec = WorkloadSpec {
        name: "chaos_partition".into(),
        ..WorkloadSpec::chaos()
    };

    // Plant residents on the far side: post-heal joiners must get their
    // values back across the formerly-severed links.
    let stop = Arc::new(AtomicBool::new(false));
    let home = b[0];
    let mut residents = Vec::with_capacity(CHAOS_RESIDENTS);
    for i in 0..CHAOS_RESIDENTS as u64 {
        let stop = Arc::clone(&stop);
        residents.push(m.spawn_on_ret(home, move || {
            let cell = pm2::IsoBox::new(0x9A97_0000 + i).expect("resident isomalloc");
            while !stop.load(Ordering::SeqCst) {
                pm2_yield();
            }
            *cell
        })?);
    }

    let baseline = run_gated_round(m, &spec, cfg, rps, 0, injectors);

    let cut_before: u64 = (0..m.nodes())
        .filter_map(|n| m.net_stats(n))
        .map(|s| s.chaos_cut)
        .sum();
    let t0 = Instant::now();
    m.partition_nodes(a, b);
    std::thread::sleep(window);
    m.heal_partition();
    let partition_ms = t0.elapsed().as_secs_f64() * 1e3;
    let messages_cut = (0..m.nodes())
        .filter_map(|n| m.net_stats(n))
        .map(|s| s.chaos_cut)
        .sum::<u64>()
        .saturating_sub(cut_before);
    let false_deaths = (0..m.nodes()).filter(|&n| m.is_node_dead(n)).count();

    // Re-convergence: gossip (one digest per heartbeat period per node)
    // must refresh every node's wealth hint for every peer through the
    // healed links.  Zero is the "never heard from them" sentinel; under
    // the test workloads a node's free-slot count never genuinely sits
    // at zero while idle.
    let deadline = Instant::now() + cfg.quiet_timeout;
    let mut wealth_converged = false;
    let mut buf = Vec::new();
    while Instant::now() < deadline && !wealth_converged {
        wealth_converged = (0..m.nodes()).all(|n| {
            m.peer_wealth_into(n, &mut buf);
            buf.iter().all(|&w| w > 0)
        });
        if !wealth_converged {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let aftermath = run_gated_round(m, &spec, cfg, rps, 1, injectors);

    stop.store(true, Ordering::SeqCst);
    let mut residents_recovered = 0;
    for (i, h) in residents.into_iter().enumerate() {
        if h.join().is_ok_and(|v| v == 0x9A97_0000 + i as u64) {
            residents_recovered += 1;
        }
    }

    Ok(PartitionReport {
        workload: spec.name,
        nodes: m.nodes(),
        rps,
        baseline,
        partition_ms,
        messages_cut,
        false_deaths,
        wealth_converged,
        aftermath,
        residents_recovered,
    })
}
