//! The open-loop driver and the capacity report.
//!
//! ## Issuing without sharing the machine
//!
//! `Machine` is deliberately `!Sync` (its host endpoint owns a receiver
//! and a sequence cell), so "host-side injector threads" cannot call
//! `spawn_on` themselves.  The driver splits the work: **injector
//! threads** own the open-loop *schedule* — op `k` of a round is due at
//! `start + k/rps`, injector `j` handles the ops with `k ≡ j (mod n)`,
//! samples them deterministically from the spec, sleeps until each is due
//! and pushes it down an mpsc channel — while the **issuer** (the calling
//! thread, which owns `&Machine`) turns each request into one
//! `Machine::spawn_on` the moment it arrives.  The op body runs as a green
//! thread, performs the sampled operation through the `pm2::api` surface,
//! and records its own latency.
//!
//! ## Open-loop honesty
//!
//! Latency is measured from the op's *scheduled* time, not from when the
//! issuer got around to it — if the machine (or the issuer) backs up, the
//! queueing delay is charged to the op.  This is the open-loop discipline
//! that makes p99 explode past the saturation point instead of the
//! coordinated-omission artifact where a choked system looks fast because
//! it is asked less often.  Ops that have not completed by the round's
//! drain deadline count as timeouts (failures), exactly like the IC
//! suite's uncompleted requests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use pm2::api::{
    pm2_group_migrate, pm2_isofree, pm2_isomalloc, pm2_join, pm2_migrate, pm2_nodes, pm2_rpc_call,
    pm2_self, pm2_thread_create, pm2_yield,
};
use pm2::{Machine, Service};
use testkit::StdRng;

use crate::hist::LogHistogram;
use crate::ramp::{RampConfig, RampController, RoundMeasurement, Verdict};
use crate::spec::{OpKind, SampledOp, WorkloadSpec};

/// The echo service every RPC-shaped op calls: request bytes come back
/// verbatim (the classic ping-pong payload round trip).
pub struct Echo;

impl Service for Echo {
    const NAME: &'static str = "workload.echo";
    type Req = Vec<u8>;
    type Resp = Vec<u8>;
    fn handle(&self, req: Vec<u8>) -> Vec<u8> {
        req
    }
}

/// Register the services the workload ops call.  Once per machine,
/// before the first round.
pub fn register_services(m: &Machine) {
    m.register(Echo);
}

/// Machine-side counters for one round (summed over nodes, after a
/// [`Machine::stats_reset`] at round start) — the "why did it saturate"
/// half of the report.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineCounters {
    /// Scheduling steps the drivers executed.
    pub steps: u64,
    /// Doorbell parks (an idle machine parks; a saturated one stops
    /// parking entirely).
    pub driver_parks: u64,
    /// Park wake-ups.
    pub driver_wakeups: u64,
    /// Threads spawned (ops, their children, RPC handlers).
    pub spawns: u64,
    /// Threads shipped between nodes.
    pub migrations: u64,
    /// Migration trains (wire messages) sent.
    pub trains: u64,
    /// Demand slot trades.
    pub trades: u64,
    /// Trades that fell back to the global §4.4 protocol.
    pub trade_fallbacks: u64,
    /// Global negotiations (stop-the-world events).
    pub negotiations: u64,
    /// Watermark prefetches.
    pub prefetches: u64,
    /// Payload-pool buffer allocations this round (steady state: ~0,
    /// every message rides a recycled buffer).
    pub pool_allocs: u64,
    /// Payload-pool buffer reuses this round.
    pub pool_reuses: u64,
}

fn machine_counters(m: &Machine, pool_before: (u64, u64)) -> MachineCounters {
    let mut c = MachineCounters::default();
    for n in 0..m.nodes() {
        let s = m.node_stats(n);
        c.steps += s.steps;
        c.driver_parks += s.driver_parks;
        c.driver_wakeups += s.driver_wakeups;
        c.spawns += s.spawns;
        c.migrations += s.migrations_out;
        c.trains += s.trains_out;
        c.trades += s.trades;
        c.trade_fallbacks += s.trade_fallbacks;
        c.negotiations += s.negotiations;
        c.prefetches += s.prefetches;
    }
    let (allocs, reuses) = pool_totals(m);
    c.pool_allocs = allocs - pool_before.0;
    c.pool_reuses = reuses - pool_before.1;
    c
}

fn pool_totals(m: &Machine) -> (u64, u64) {
    let mut allocs = 0;
    let mut reuses = 0;
    for n in 0..m.nodes() {
        let p = m.pool_stats(n);
        allocs += p.allocs;
        reuses += p.reuses;
    }
    (allocs, reuses)
}

/// Everything measured in one ramp round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Target rate.
    pub rps: u64,
    /// Ops handed to `spawn_on` (including spawn failures).
    pub issued: u64,
    /// Ops that completed successfully inside the drain window.
    pub ok: u64,
    /// Ops that completed with an error.
    pub failed: u64,
    /// Ops unaccounted for at the drain deadline.
    pub timed_out: u64,
    /// `(failed + timed_out) / issued`.
    pub failure_rate: f64,
    /// Latency quantiles over successful ops, ms (from the scheduled
    /// issue time — queueing included).
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Mean, ms.
    pub mean_ms: f64,
    /// Did the machine go quiet (every issued op accounted for) within
    /// the quiet timeout after the round?
    pub quiesced: bool,
    /// Machine-side counters for the round.
    pub machine: MachineCounters,
    /// The controller's judgement.
    pub verdict: Verdict,
}

/// The full ramp result for one workload on one machine.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    /// Spec name.
    pub workload: String,
    /// Node count.
    pub nodes: usize,
    /// Net profile name.
    pub net: String,
    /// Per-round measurements, in ramp order.
    pub rounds: Vec<RoundReport>,
    /// Highest rate that passed every SLO.
    pub max_sustainable_rps: Option<u64>,
}

impl CapacityReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        match self.max_sustainable_rps {
            Some(rps) => format!(
                "{} on p={}: max sustainable {} rps over {} rounds",
                self.workload,
                self.nodes,
                rps,
                self.rounds.len()
            ),
            None => format!(
                "{} on p={}: no round passed the SLOs ({} rounds)",
                self.workload,
                self.nodes,
                self.rounds.len()
            ),
        }
    }
}

#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    err: AtomicU64,
}

impl Counters {
    fn finished(&self) -> u64 {
        self.ok.load(Ordering::Relaxed) + self.err.load(Ordering::Relaxed)
    }
}

/// Run one op inside its green thread.
fn perform(op: SampledOp) -> pm2::Result<()> {
    match op.kind {
        OpKind::Spawn => {
            let tid = pm2_thread_create(|| {
                pm2_yield();
            })?;
            pm2_join(tid);
            Ok(())
        }
        OpKind::Rpc => {
            let req = vec![0xA5u8; op.bytes];
            let resp = pm2_rpc_call::<Echo>(op.peer, req)?;
            if resp.len() == op.bytes {
                Ok(())
            } else {
                Err(pm2::Pm2Error::Rpc("echo length mismatch".into()))
            }
        }
        OpKind::Migrate => pm2_migrate(op.peer),
        OpKind::GroupMigrate { group } => {
            let stop = Arc::new(AtomicBool::new(false));
            let mut tids = Vec::with_capacity(group);
            for _ in 0..group {
                let stop = Arc::clone(&stop);
                tids.push(pm2_thread_create(move || {
                    while !stop.load(Ordering::Relaxed) {
                        pm2_yield();
                    }
                })?);
            }
            // Local fast path: the children live here, one command flags
            // them all; they ride one train to the peer at their next
            // scheduling points.
            pm2_group_migrate(pm2_self(), op.peer, &tids)?;
            stop.store(true, Ordering::Relaxed);
            for tid in tids {
                pm2_join(tid);
            }
            Ok(())
        }
        OpKind::Alloc => {
            let size = op.bytes.max(1);
            let p = pm2_isomalloc(size)?;
            // Touch the block so the allocation is real, not just a
            // bitmap mutation.
            unsafe { std::ptr::write_bytes(p, 0x5A, size) };
            pm2_isofree(p)
        }
        OpKind::Broadcast => {
            let me = pm2_self();
            let req = vec![0x42u8; op.bytes];
            for peer in 0..pm2_nodes() {
                if peer != me {
                    pm2_rpc_call::<Echo>(peer, req.clone())?;
                }
            }
            Ok(())
        }
    }
}

struct OpRequest {
    due: Instant,
    op: SampledOp,
}

/// Route an op away from dead nodes, the way a front-end stops routing
/// to a dead replica: the issue node moves to the next survivor, and the
/// peer to the next survivor distinct from the issue node.  No-op on a
/// healthy machine, so plain ramps never pay for it.
fn reroute_dead(m: &Machine, op: &mut SampledOp) {
    let nodes = m.nodes();
    let next_alive = |from: usize, avoid: Option<usize>| {
        (1..=nodes)
            .map(|d| (from + d) % nodes)
            .find(|&n| !m.is_node_dead(n) && Some(n) != avoid)
    };
    if m.is_node_dead(op.issue_on) {
        if let Some(n) = next_alive(op.issue_on, None) {
            op.issue_on = n;
        }
    }
    if (m.is_node_dead(op.peer) || op.peer == op.issue_on) && nodes > 1 {
        if let Some(n) = next_alive(op.peer, Some(op.issue_on)) {
            op.peer = n;
        }
    }
}

/// Raw numbers out of one round, before the controller judges it.
struct RoundStats {
    issued: u64,
    ok: u64,
    failed: u64,
    timed_out: u64,
    quiesced: bool,
    hist: Arc<LogHistogram>,
    machine: MachineCounters,
}

/// Issue `rps` ops/s for the configured round duration, drain, and
/// measure.
fn run_round(
    m: &Machine,
    spec: &WorkloadSpec,
    cfg: &RampConfig,
    rps: u64,
    round_idx: u64,
    injectors: usize,
) -> RoundStats {
    let nodes = m.nodes();
    let injectors = injectors.max(1);
    m.stats_reset();
    let pool_before = pool_totals(m);

    let total_ops = ((rps as f64) * cfg.round_duration.as_secs_f64())
        .round()
        .max(1.0) as u64;
    let interval = Duration::from_secs_f64(1.0 / rps as f64);
    let counters = Arc::new(Counters::default());
    let hist = Arc::new(LogHistogram::new());
    // Small runway so op 0 is not born late.
    let start = Instant::now() + Duration::from_millis(2);

    let (tx, rx) = mpsc::channel::<OpRequest>();
    let mut issued = 0u64;
    std::thread::scope(|s| {
        for j in 0..injectors {
            let tx = tx.clone();
            let spec = spec.clone();
            s.spawn(move || {
                // Fold round and injector indices into the seed so every
                // (spec, round, injector) stream is distinct yet
                // replayable.
                let mut rng = StdRng::seed_from_u64(
                    spec.seed
                        ^ round_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                let mut k = j as u64;
                while k < total_ops {
                    let due = start + interval.mul_f64(k as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let op = spec.sample(&mut rng, nodes);
                    if tx.send(OpRequest { due, op }).is_err() {
                        break;
                    }
                    k += injectors as u64;
                }
            });
        }
        drop(tx); // the issuer loop ends when the last injector finishes
        for req in rx.iter() {
            let body_counters = Arc::clone(&counters);
            let hist = Arc::clone(&hist);
            let OpRequest { due, mut op } = req;
            reroute_dead(m, &mut op);
            let r = m.spawn_on(op.issue_on, move || match perform(op) {
                Ok(()) => {
                    hist.record_us(due.elapsed().as_micros() as u64);
                    body_counters.ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    body_counters.err.fetch_add(1, Ordering::Relaxed);
                }
            });
            issued += 1;
            if r.is_err() {
                counters.err.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    // Drain: in-flight ops get until the grace deadline to land; anything
    // still unaccounted is a timeout.
    let drain_deadline = start + cfg.round_duration + cfg.drain_grace;
    while counters.finished() < issued && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let ok = counters.ok.load(Ordering::Relaxed);
    let failed = counters.err.load(Ordering::Relaxed);
    let timed_out = issued.saturating_sub(ok + failed);
    let machine = machine_counters(m, pool_before);

    // wait_for_quiet: let stragglers finish before the next round starts,
    // so round n+1's counters are not polluted by round n's tail.
    let quiet_deadline = Instant::now() + cfg.quiet_timeout;
    let mut quiesced = counters.finished() >= issued;
    while !quiesced && Instant::now() < quiet_deadline {
        std::thread::sleep(Duration::from_millis(2));
        quiesced = counters.finished() >= issued;
    }

    RoundStats {
        issued,
        ok,
        failed,
        timed_out,
        quiesced,
        hist,
        machine,
    }
}

/// Judge one round's raw stats with the controller and fold everything
/// into a [`RoundReport`].
fn judge_round(ctl: &mut RampController, rps: u64, s: RoundStats) -> RoundReport {
    let failure_rate = if s.issued == 0 {
        0.0
    } else {
        (s.failed + s.timed_out) as f64 / s.issued as f64
    };
    let p50_ms = s.hist.quantile_us(0.50) / 1e3;
    let p90_ms = s.hist.quantile_us(0.90) / 1e3;
    let p99_ms = s.hist.quantile_us(0.99) / 1e3;
    let verdict = ctl.record(RoundMeasurement {
        rps,
        failure_rate,
        p50_ms,
        p99_ms,
    });
    RoundReport {
        rps,
        issued: s.issued,
        ok: s.ok,
        failed: s.failed,
        timed_out: s.timed_out,
        failure_rate,
        p50_ms,
        p90_ms,
        p99_ms,
        mean_ms: s.hist.mean_us() / 1e3,
        quiesced: s.quiesced,
        machine: s.machine,
        verdict,
    }
}

/// Run one fixed-rate round outside a ramp and judge it against the
/// config's SLO gates (a one-shot controller pinned to `rps`).  The chaos
/// scenarios reuse the open-loop driver and the gate without the
/// escalating schedule.  [`register_services`] must have been called on
/// `m` first.
pub fn run_gated_round(
    m: &Machine,
    spec: &WorkloadSpec,
    cfg: &RampConfig,
    rps: u64,
    round_idx: u64,
    injectors: usize,
) -> RoundReport {
    let mut ctl = RampController::new(RampConfig {
        initial_rps: rps,
        increment_rps: 0,
        max_rps: rps,
        ..cfg.clone()
    });
    let s = run_round(m, spec, cfg, rps, round_idx, injectors);
    judge_round(&mut ctl, rps, s)
}

/// Ramp a workload on a running machine until an SLO breaks (or the
/// ceiling is reached) and report every round plus the max sustainable
/// rate.  [`register_services`] must have been called on `m` first.
pub fn run_ramp(
    m: &Machine,
    spec: &WorkloadSpec,
    cfg: RampConfig,
    injectors: usize,
) -> CapacityReport {
    let mut ctl = RampController::new(cfg);
    let mut rounds = Vec::new();
    let mut round_idx = 0u64;
    while let Some(rps) = ctl.next_rps() {
        let s = run_round(m, spec, ctl.config(), rps, round_idx, injectors);
        rounds.push(judge_round(&mut ctl, rps, s));
        round_idx += 1;
    }
    CapacityReport {
        workload: spec.name.clone(),
        nodes: m.nodes(),
        net: m.config().net.name.to_string(),
        rounds,
        max_sustainable_rps: ctl.max_sustainable_rps(),
    }
}
