//! The ramp controller: IC-suite-style SLO gating, as a pure state
//! machine.
//!
//! Modeled on the IC scalability suite's workload experiments: start at
//! `initial_rps`, add `increment_rps` per round, and stop at the first
//! round that breaks an SLO — `failure_rate > allowable_failure_rate` or
//! `p99 > slo_p99_ms`.  Two *hard-stop* thresholds (the suite's
//! `STOP_FAILURE_RATE` / `STOP_T_MEDIAN`) mark a round as catastrophic
//! rather than merely failing, so a report can distinguish "the knee" from
//! "the cliff".  The last passing round is the max sustainable RPS.
//!
//! The controller never touches a machine or a clock: feed it per-round
//! measurements, read verdicts.  That makes the gate logic exhaustively
//! unit-testable with synthetic series (see the tests below), and the
//! driver a thin loop around it.

use std::time::Duration;

/// Ramp schedule and SLO thresholds.
#[derive(Debug, Clone)]
pub struct RampConfig {
    /// First round's target rate.
    pub initial_rps: u64,
    /// Added per round.
    pub increment_rps: u64,
    /// Ramp ceiling: no round is scheduled above this.
    pub max_rps: u64,
    /// How long each round issues ops.
    pub round_duration: Duration,
    /// SLO: a round fails above this failure fraction (IC
    /// `ALLOWABLE_FAILURE_RATE` = 0.2).
    pub allowable_failure_rate: f64,
    /// SLO: a round fails above this p99 latency (IC `ALLOWABLE_LATENCY`
    /// = 5000 ms).
    pub slo_p99_ms: f64,
    /// Hard stop: the machine is past the cliff, not just the knee (IC
    /// `STOP_FAILURE_RATE` = 0.9).
    pub stop_failure_rate: f64,
    /// Hard stop on the *median* (IC `STOP_T_MEDIAN` = 300 s).
    pub stop_p50_ms: f64,
    /// Extra time after a round's last issue for in-flight ops to land
    /// before they are counted as timeouts.
    pub drain_grace: Duration,
    /// Longest wait for the machine to go quiet between rounds.
    pub quiet_timeout: Duration,
}

impl Default for RampConfig {
    /// The IC suite's gate constants with seconds-scale rounds (the suite
    /// runs 300 s rounds; a CI smoke ramp wants the same shape, not the
    /// same wall-clock).
    fn default() -> Self {
        RampConfig {
            initial_rps: 100,
            increment_rps: 100,
            max_rps: 1000,
            round_duration: Duration::from_millis(500),
            allowable_failure_rate: 0.2,
            slo_p99_ms: 5000.0,
            stop_failure_rate: 0.9,
            stop_p50_ms: 300_000.0,
            drain_grace: Duration::from_millis(500),
            quiet_timeout: Duration::from_secs(5),
        }
    }
}

/// What the driver measured in one round.
#[derive(Debug, Clone, Copy)]
pub struct RoundMeasurement {
    /// The round's target rate.
    pub rps: u64,
    /// Failed + timed-out ops over issued ops (0.0 when nothing issued).
    pub failure_rate: f64,
    /// Median op latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile op latency, ms.
    pub p99_ms: f64,
}

/// The controller's judgement of one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within every SLO.
    Pass,
    /// Broke an SLO; the ramp stops here.  The string names the gate.
    Fail(String),
    /// Broke a hard-stop threshold — the cliff, not the knee.
    HardStop(String),
}

impl Verdict {
    /// Did the round pass?
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail(_) => "fail",
            Verdict::HardStop(_) => "hard_stop",
        }
    }
}

/// Pure ramp state: hand it measurements, ask it for the next rate.
#[derive(Debug)]
pub struct RampController {
    cfg: RampConfig,
    round: u64,
    done: bool,
    max_sustainable: Option<u64>,
}

impl RampController {
    /// Fresh ramp at `cfg.initial_rps`.
    pub fn new(cfg: RampConfig) -> Self {
        RampController {
            cfg,
            round: 0,
            done: false,
            max_sustainable: None,
        }
    }

    /// The configuration driving this ramp.
    pub fn config(&self) -> &RampConfig {
        &self.cfg
    }

    /// Target rate for the next round, or `None` when the ramp is over
    /// (an SLO broke, or the next rate would exceed `max_rps`).
    pub fn next_rps(&self) -> Option<u64> {
        if self.done {
            return None;
        }
        let rps = self.cfg.initial_rps + self.round * self.cfg.increment_rps;
        (rps <= self.cfg.max_rps).then_some(rps)
    }

    /// Judge one finished round.  Hard-stop thresholds are checked first
    /// (a 95% failure rate has also broken the 20% allowable gate; the
    /// verdict should name the cliff).
    pub fn record(&mut self, m: RoundMeasurement) -> Verdict {
        self.round += 1;
        let v = if m.failure_rate >= self.cfg.stop_failure_rate {
            Verdict::HardStop(format!(
                "failure rate {:.2} >= stop threshold {:.2}",
                m.failure_rate, self.cfg.stop_failure_rate
            ))
        } else if m.p50_ms >= self.cfg.stop_p50_ms {
            Verdict::HardStop(format!(
                "p50 {:.0} ms >= stop threshold {:.0} ms",
                m.p50_ms, self.cfg.stop_p50_ms
            ))
        } else if m.failure_rate > self.cfg.allowable_failure_rate {
            Verdict::Fail(format!(
                "failure rate {:.2} > allowable {:.2}",
                m.failure_rate, self.cfg.allowable_failure_rate
            ))
        } else if m.p99_ms > self.cfg.slo_p99_ms {
            Verdict::Fail(format!(
                "p99 {:.1} ms > SLO {:.1} ms",
                m.p99_ms, self.cfg.slo_p99_ms
            ))
        } else {
            Verdict::Pass
        };
        if v.passed() {
            self.max_sustainable = Some(m.rps);
        } else {
            self.done = true;
        }
        v
    }

    /// Highest rate that passed every SLO, if any round did.
    pub fn max_sustainable_rps(&self) -> Option<u64> {
        self.max_sustainable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RampConfig {
        RampConfig {
            initial_rps: 100,
            increment_rps: 100,
            max_rps: 500,
            ..RampConfig::default()
        }
    }

    fn m(rps: u64, failure_rate: f64, p50_ms: f64, p99_ms: f64) -> RoundMeasurement {
        RoundMeasurement {
            rps,
            failure_rate,
            p50_ms,
            p99_ms,
        }
    }

    #[test]
    fn all_pass_runs_to_max_rps() {
        let mut c = RampController::new(cfg());
        let mut rounds = Vec::new();
        while let Some(rps) = c.next_rps() {
            rounds.push(rps);
            assert_eq!(c.record(m(rps, 0.01, 1.0, 4.0)), Verdict::Pass);
        }
        assert_eq!(rounds, vec![100, 200, 300, 400, 500]);
        assert_eq!(c.max_sustainable_rps(), Some(500));
    }

    #[test]
    fn failure_rate_gate_stops_on_the_right_round() {
        let mut c = RampController::new(cfg());
        // 100 and 200 pass; 300 breaks the 20% failure SLO.
        let series = [(100, 0.0), (200, 0.1), (300, 0.35), (400, 0.5)];
        let mut judged = Vec::new();
        for (rps, fr) in series {
            let Some(next) = c.next_rps() else { break };
            assert_eq!(next, rps, "ramp schedule drifted");
            judged.push(c.record(m(rps, fr, 1.0, 2.0)));
        }
        assert_eq!(judged.len(), 3, "ramp must stop at the first failing round");
        assert!(judged[0].passed() && judged[1].passed());
        assert!(matches!(judged[2], Verdict::Fail(_)));
        assert_eq!(c.max_sustainable_rps(), Some(200));
        assert_eq!(c.next_rps(), None);
    }

    #[test]
    fn p99_gate_fails_a_round() {
        let mut c = RampController::new(cfg());
        assert!(c.record(m(100, 0.0, 1.0, 10.0)).passed());
        let v = c.record(m(200, 0.0, 1.0, 6000.0));
        match v {
            Verdict::Fail(reason) => assert!(reason.contains("p99"), "{reason}"),
            other => panic!("expected p99 Fail, got {other:?}"),
        }
        assert_eq!(c.max_sustainable_rps(), Some(100));
    }

    #[test]
    fn hard_stop_outranks_the_plain_gate() {
        let mut c = RampController::new(cfg());
        // 0.95 also exceeds allowable 0.2; the verdict must name the cliff.
        let v = c.record(m(100, 0.95, 1.0, 2.0));
        assert!(matches!(v, Verdict::HardStop(_)), "{v:?}");
        assert_eq!(c.max_sustainable_rps(), None);
        assert_eq!(c.next_rps(), None);
    }

    #[test]
    fn median_hard_stop_fires() {
        let mut c = RampController::new(cfg());
        let v = c.record(m(100, 0.0, 400_000.0, 500_000.0));
        match v {
            Verdict::HardStop(reason) => assert!(reason.contains("p50"), "{reason}"),
            other => panic!("expected p50 HardStop, got {other:?}"),
        }
    }

    #[test]
    fn first_round_failure_yields_no_sustainable_rate() {
        let mut c = RampController::new(cfg());
        assert!(!c.record(m(100, 0.5, 1.0, 2.0)).passed());
        assert_eq!(c.max_sustainable_rps(), None);
    }

    #[test]
    fn boundary_is_exclusive_for_allowable_inclusive_for_stop() {
        // failure_rate == allowable passes (gate is strict >);
        // failure_rate == stop threshold hard-stops (gate is >=).
        let mut c = RampController::new(cfg());
        assert!(c.record(m(100, 0.2, 1.0, 2.0)).passed());
        let v = c.record(m(200, 0.9, 1.0, 2.0));
        assert!(matches!(v, Verdict::HardStop(_)), "{v:?}");
    }
}
