//! Global ownership audit.
//!
//! Machine-checks the paper's central invariant: **every slot is owned by
//! exactly one agent** — a node (bit set in exactly one node bitmap) xor a
//! thread (in exactly one resident thread's slot list).  Caches are a
//! subset of node ownership and mapped-ness is cross-checked against the
//! area's process-wide accounting.
//!
//! Call [`crate::Machine::audit`] only at quiescence (no thread running, no
//! migration in flight) — the host drives it over the fabric like any other
//! control operation.

use isoaddr::{SlotBitmap, SlotRange};
use madeleine::message::{PayloadReader, PayloadWriter};

use crate::node::NodeCtx;

/// One node's declared ownership.
#[derive(Debug, Clone)]
pub struct NodeAudit {
    /// Node id.
    pub node: usize,
    /// The node's private bitmap (set = owned-and-free).
    pub bitmap: SlotBitmap,
    /// Slots sitting in the node's mmapped-slot cache.
    pub cached: Vec<usize>,
    /// Resident threads and the slot ranges they own (stack + heap).
    pub threads: Vec<(u64, Vec<SlotRange>)>,
}

/// Whole-machine audit result.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-node reports, in node order.
    pub nodes: Vec<NodeAudit>,
    /// Total number of slots in the area.
    pub n_slots: usize,
}

/// Aggregate ownership counts from a passing audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSummary {
    /// Slots owned (free) by some node.
    pub node_owned: usize,
    /// Slots owned by resident threads.
    pub thread_owned: usize,
    /// Total threads observed.
    pub threads: usize,
}

impl AuditReport {
    /// Verify the exclusive-ownership partition.  Returns counts on success
    /// and a description of every violation on failure.
    pub fn check_partition(&self) -> Result<PartitionSummary, String> {
        let mut owners: Vec<Vec<String>> = vec![Vec::new(); self.n_slots];
        for na in &self.nodes {
            for slot in na.bitmap.iter_ones() {
                owners[slot].push(format!("node{}", na.node));
            }
            for &c in &na.cached {
                if !na.bitmap.get(c) {
                    return Err(format!("node{} caches slot {c} it does not own", na.node));
                }
            }
            for (tid, ranges) in &na.threads {
                for r in ranges {
                    for slot in r.iter() {
                        owners[slot].push(format!("thread{tid:#x}@node{}", na.node));
                    }
                }
            }
        }
        let mut violations = Vec::new();
        let mut node_owned = 0;
        let mut thread_owned = 0;
        for (slot, who) in owners.iter().enumerate() {
            match who.len() {
                1 => {
                    if who[0].starts_with("node") {
                        node_owned += 1;
                    } else {
                        thread_owned += 1;
                    }
                }
                0 => violations.push(format!("slot {slot} has no owner")),
                _ => violations.push(format!("slot {slot} owned by {}", who.join(" + "))),
            }
        }
        if violations.is_empty() {
            Ok(PartitionSummary {
                node_owned,
                thread_owned,
                threads: self.nodes.iter().map(|n| n.threads.len()).sum(),
            })
        } else {
            violations.truncate(20);
            Err(violations.join("; "))
        }
    }
}

/// Build the wire form of a node's audit report (pooled buffer).
pub(crate) fn encode_node_report(ctx: &NodeCtx) -> madeleine::Payload {
    let mut w = PayloadWriter::pooled(&ctx.pool, 1024);
    w.u32(ctx.node as u32);
    w.lp_bytes(&ctx.mgr.bitmap_bytes());
    let cached: Vec<usize> = ctx.mgr.iter_cached().collect();
    w.u32(cached.len() as u32);
    for c in cached {
        w.u64(c as u64);
    }
    w.u32(ctx.threads.len() as u32);
    let slot_size = ctx.mgr.area().slot_size();
    let area_base = ctx.mgr.area().base();
    for (&tid, &d) in &ctx.threads {
        w.u64(tid);
        // SAFETY: resident descriptors; the pump runs with no thread active.
        let ranges = unsafe {
            let desc = &*d;
            let mut rs = vec![SlotRange::new(
                (desc.stack_base - area_base) / slot_size,
                desc.stack_slots,
            )];
            for (base, n) in isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap)) {
                rs.push(SlotRange::new((base - area_base) / slot_size, n));
            }
            rs
        };
        w.u32(ranges.len() as u32);
        for r in &ranges {
            w.u64(r.first as u64).u64(r.count as u64);
        }
    }
    w.finish()
}

/// Parse a node audit report.
pub fn decode_node_report(buf: &[u8]) -> Option<NodeAudit> {
    let mut r = PayloadReader::new(buf);
    let node = r.u32()? as usize;
    let bitmap = SlotBitmap::from_bytes(r.lp_bytes()?)?;
    let n_cached = r.u32()? as usize;
    let mut cached = Vec::with_capacity(n_cached);
    for _ in 0..n_cached {
        cached.push(r.u64()? as usize);
    }
    let n_threads = r.u32()? as usize;
    let mut threads = Vec::with_capacity(n_threads);
    for _ in 0..n_threads {
        let tid = r.u64()?;
        let n_ranges = r.u32()? as usize;
        let mut ranges = Vec::with_capacity(n_ranges);
        for _ in 0..n_ranges {
            let first = r.u64()? as usize;
            let count = r.u64()? as usize;
            ranges.push(SlotRange::new(first, count));
        }
        threads.push((tid, ranges));
    }
    Some(NodeAudit {
        node,
        bitmap,
        cached,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_with(
        bitmaps: Vec<SlotBitmap>,
        threads: Vec<Vec<(u64, Vec<SlotRange>)>>,
    ) -> AuditReport {
        let n_slots = bitmaps[0].len();
        AuditReport {
            nodes: bitmaps
                .into_iter()
                .zip(threads)
                .enumerate()
                .map(|(node, (bitmap, threads))| NodeAudit {
                    node,
                    bitmap,
                    cached: vec![],
                    threads,
                })
                .collect(),
            n_slots,
        }
    }

    #[test]
    fn clean_partition_passes() {
        let mut b0 = SlotBitmap::new_clear(8);
        let mut b1 = SlotBitmap::new_clear(8);
        for i in 0..8 {
            if i % 2 == 0 {
                b0.set(i)
            } else {
                b1.set(i)
            }
        }
        // Move slot 0 from node0 to a thread on node1.
        b0.clear(0);
        let rep = audit_with(
            vec![b0, b1],
            vec![vec![], vec![(0xA, vec![SlotRange::single(0)])]],
        );
        let s = rep.check_partition().unwrap();
        assert_eq!(s.node_owned, 7);
        assert_eq!(s.thread_owned, 1);
        assert_eq!(s.threads, 1);
    }

    #[test]
    fn double_ownership_detected() {
        let mut b0 = SlotBitmap::new_clear(4);
        let mut b1 = SlotBitmap::new_clear(4);
        b0.set(2);
        b1.set(2);
        b0.set(0);
        b1.set(1);
        b0.set(3);
        let rep = audit_with(vec![b0, b1], vec![vec![], vec![]]);
        let err = rep.check_partition().unwrap_err();
        assert!(err.contains("slot 2 owned by node0 + node1"), "{err}");
    }

    #[test]
    fn orphan_slot_detected() {
        let b0 = SlotBitmap::new_clear(2);
        let mut b1 = SlotBitmap::new_clear(2);
        b1.set(0);
        let rep = audit_with(vec![b0, b1], vec![vec![], vec![]]);
        let err = rep.check_partition().unwrap_err();
        assert!(err.contains("slot 1 has no owner"), "{err}");
    }
}
