//! The multiplexed node executor: M node drivers on N worker threads.
//!
//! Thread-per-node stops scaling long before the paper-sized p = 256: the
//! OS pays a stack and a scheduler entity per node, and a mostly-idle
//! machine still wakes hundreds of threads to do nothing.  This executor
//! keeps the *driver loop* of `drive_one` but turns each node into a state
//! machine scheduled onto a fixed worker pool:
//!
//! ```text
//!            ring (doorbell listener)          pop + CAS
//!   Idle ───────────────────────────▶ Queued ───────────▶ Running
//!    ▲                                  ▲                   │ │
//!    │ CAS Running→Idle (nothing to do) │ budget exhausted, │ │
//!    └──────────────────────────────────┴─ or Notified ─────┘ └▶ Done
//! ```
//!
//! * Every endpoint doorbell gets a listener
//!   ([`madeleine::Doorbell::set_listener`]) that moves the node
//!   `Idle → Queued` and pushes it on the shared ready queue.  Because a
//!   sender enqueues its message *before* ringing, a node observed `Idle`
//!   by the listener has the message already visible to its next pump —
//!   the same no-lost-wakeup argument as the parked-thread protocol.
//! * A ring landing while the node runs flips it `Running → Notified`;
//!   the worker's park attempt (`Running → Idle`) then fails and requeues
//!   instead — the wakeup is deferred, never dropped.
//! * **Fairness budget**: a worker steps one node at most [`FAIRNESS`]
//!   times per dispatch, then swaps it to the *tail* of the queue.  One
//!   flooded node therefore costs every quiet node at most one budget's
//!   worth of latency per lap, instead of starving them outright.
//! * **Tick sweep**: protocol timers (failure detector, gossip rounds,
//!   periodic checkpoints, the `idle_park` liveness backstop) must fire on
//!   nodes nobody sends to.  Workers pop with a timeout; on timeout one of
//!   them (rate-limited) requeues every `Idle` node, which is exactly the
//!   park-timeout semantics `drive_one` had — counted as a
//!   `driver_wakeups` tick, like a timed-out park.
//!
//! Deterministic mode is untouched: it still round-robins every node on
//! one OS thread with the machine-wide shared doorbell.
//!
//! `NodeCtx` stays single-driver: the state machine guarantees a node is
//! `Running` on at most one worker, and the per-node mutex (uncontended in
//! steady state) makes that ownership transfer a proper happens-before
//! edge, so green-thread stacks and the scheduler migrate between workers
//! safely — `NodeCtx::activate` rebinds the TLS pointers on every
//! dispatch, and marcel caches nothing across context switches.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::node::{NodeCtx, NodeStats};

/// Node driver states (see the module diagram).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Driver steps one dispatch may spend on a single node before it goes to
/// the back of the ready queue.  Each step already bounds its message work
/// by `pump_budget`, so one dispatch is at most `FAIRNESS × pump_budget`
/// messages plus `FAIRNESS` thread quanta.
const FAIRNESS: usize = 32;

struct Inner {
    /// One slot per node.  The mutex is uncontended by construction (the
    /// state machine admits one runner); it exists to make cross-worker
    /// handoff sound rather than to arbitrate.
    nodes: Vec<Mutex<NodeCtx>>,
    states: Vec<AtomicU8>,
    /// Shared handles on each node's stats, so state transitions can count
    /// parks/wakeups without locking the node.
    stats: Vec<Arc<NodeStats>>,
    ready: Mutex<VecDeque<usize>>,
    cv: Condvar,
    /// Nodes not yet `Done`; at zero the pool drains and exits.
    live: AtomicUsize,
    /// Worker pop timeout and sweep cadence — the executor twin of the
    /// `idle_park` backstop, tightened to the fastest armed protocol timer.
    tick_every: Duration,
    /// Next allowed tick sweep (rate limit: one sweeper per period).
    next_tick: Mutex<Instant>,
}

impl Inner {
    fn push(&self, id: usize) {
        let mut q = self.ready.lock().unwrap();
        q.push_back(id);
        self.cv.notify_one();
    }

    /// Doorbell listener body: route a ring on `id`'s bell into the ready
    /// queue (or defer it if the node is mid-run).
    fn notify(&self, id: usize) {
        loop {
            match self.states[id].load(Ordering::SeqCst) {
                IDLE => {
                    if self.states[id]
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        self.stats[id]
                            .driver_wakeups
                            .fetch_add(1, Ordering::Relaxed);
                        self.push(id);
                        return;
                    }
                }
                RUNNING => {
                    if self.states[id]
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued / already deferred / dead: the pending
                // dispatch will observe the message.
                _ => return,
            }
        }
    }

    /// Timer backstop: requeue every idle node so its protocol timers
    /// (detector scan, gossip round, periodic checkpoint) get a step, just
    /// as a park timeout would have stepped it under thread-per-node.
    /// Rate-limited so a large pool doesn't multiply the sweeps.
    fn tick_sweep(&self) {
        {
            let mut next = self.next_tick.lock().unwrap();
            let now = Instant::now();
            if now < *next {
                return;
            }
            *next = now + self.tick_every;
        }
        for id in 0..self.states.len() {
            if self.states[id]
                .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.stats[id]
                    .driver_wakeups
                    .fetch_add(1, Ordering::Relaxed);
                self.push(id);
            }
        }
    }

    /// One dispatch: run `id` for up to the fairness budget, then park,
    /// requeue, or retire it.
    fn run_node(self: &Arc<Inner>, id: usize) {
        if self.states[id]
            .compare_exchange(QUEUED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // Only Done can be observed here (each queue entry corresponds
            // to exactly one Idle/Running→Queued transition).
            return;
        }
        let mut ctx = self.nodes[id].lock().unwrap();
        ctx.activate();
        let mut worked = false;
        for _ in 0..FAIRNESS {
            worked = ctx.step();
            if !worked {
                break;
            }
        }
        ctx.maybe_ack_shutdown();
        if ctx.finished() {
            self.states[id].store(DONE, Ordering::SeqCst);
            drop(ctx);
            if self.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last node retired: wake every parked worker to exit.
                let _q = self.ready.lock().unwrap();
                self.cv.notify_all();
            }
            return;
        }
        if worked {
            // Budget exhausted with work still pending: back of the line
            // (the fairness edge — a flood waits for everyone else's turn).
            // Overwrites a concurrent Notified, which is then redundant.
            drop(ctx);
            self.states[id].store(QUEUED, Ordering::SeqCst);
            self.push(id);
            return;
        }
        // Nothing to do: try to park.  A ring that landed mid-run left
        // Notified, in which case requeue instead — the deferred wakeup.
        self.stats[id].driver_parks.fetch_add(1, Ordering::Relaxed);
        drop(ctx);
        if self.states[id]
            .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            // Went Notified; the park was momentary.
            self.stats[id]
                .driver_wakeups
                .fetch_add(1, Ordering::Relaxed);
            self.states[id].store(QUEUED, Ordering::SeqCst);
            self.push(id);
        }
    }

    fn worker_loop(self: &Arc<Inner>) {
        loop {
            let popped = {
                let mut q = self.ready.lock().unwrap();
                loop {
                    if self.live.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    if let Some(id) = q.pop_front() {
                        break Some(id);
                    }
                    let (guard, timeout) = self.cv.wait_timeout(q, self.tick_every).unwrap();
                    q = guard;
                    if timeout.timed_out() {
                        break None;
                    }
                }
            };
            match popped {
                Some(id) => self.run_node(id),
                None => self.tick_sweep(),
            }
        }
    }
}

/// Launch the worker pool for a threaded-mode machine.  Installs a
/// doorbell listener per node, seeds the ready queue with every node (so
/// initial timers and any pre-launch traffic get a first step), and spawns
/// `workers` OS threads.  The pool owns the node contexts; joining the
/// returned handles (after the last node retires) drops them.
pub(crate) fn spawn_pool(
    ctxs: Vec<NodeCtx>,
    workers: usize,
    tick_every: Duration,
) -> Vec<std::thread::JoinHandle<()>> {
    let n = ctxs.len();
    let stats = ctxs.iter().map(|c| Arc::clone(&c.stats)).collect();
    let bells: Vec<madeleine::Doorbell> = ctxs.iter().map(|c| c.ep.doorbell().clone()).collect();
    let inner = Arc::new(Inner {
        nodes: ctxs.into_iter().map(Mutex::new).collect(),
        states: (0..n).map(|_| AtomicU8::new(QUEUED)).collect(),
        stats,
        ready: Mutex::new((0..n).collect()),
        cv: Condvar::new(),
        live: AtomicUsize::new(n),
        tick_every,
        next_tick: Mutex::new(Instant::now() + tick_every),
    });
    // Listeners hold a Weak: the bells live inside the fabric the nodes
    // themselves own, so a strong reference would be a cycle that leaks
    // every NodeCtx (and its iso-area mappings) at machine teardown.
    for (id, bell) in bells.iter().enumerate() {
        let w: Weak<Inner> = Arc::downgrade(&inner);
        bell.set_listener(Arc::new(move || {
            if let Some(inner) = w.upgrade() {
                inner.notify(id);
            }
        }));
    }
    (0..workers.max(1))
        .map(|i| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("pm2-worker{i}"))
                .spawn(move || inner.worker_loop())
                .expect("spawning executor worker")
        })
        .collect()
}
