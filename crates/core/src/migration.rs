//! The migration engine (paper §2, three steps):
//!
//! 1. **Freeze & pack** — each thread is stopped at a scheduling point (its
//!    context is saved in its descriptor, which lives in its stack slot);
//!    we serialize its stack slot (metadata + live stack only) and each of
//!    its heap slots (metadata + busy blocks only, the §6 optimization),
//!    then unmap everything on the source node.  No bitmap changes: the
//!    slots still belong to the thread.
//! 2. **Send** — the buffer crosses the Madeleine fabric.
//! 3. **Adopt & unpack** — the destination maps the same slot ranges at the
//!    same virtual addresses, copies the extents back, and enqueues the
//!    thread.  Because every pointer in the thread's universe is an
//!    iso-address, *nothing* is fixed up: "an iso-address copy is enough".
//!
//! ## Migration trains
//!
//! The iso-address property makes a packed thread fully
//! position-independent, so *k* threads bound for the same node can ride
//! **one** wire message — a *train* — paying the per-message latency once
//! instead of k times.  Every `MIGRATION` payload is a train (k = 1 for an
//! ordinary solo migration):
//!
//! ```text
//! u32  count                         number of threads in the train
//! count × {                          per-thread table (fixed size, so it
//!     u64 tid                        is readable even when the records
//!     u32 off                        behind it are garbage)
//!     u32 len
//! }
//! bytes                              concatenated per-thread record groups;
//!                                    entry i's group is payload[off..off+len]
//! ```
//!
//! Fault isolation is **per record group**: a corrupt or truncated group is
//! rolled back (its partially adopted slot ranges surrendered again) and
//! its tid reported for a `MIGRATION_NAK`, while every other thread in the
//! train adopts and runs.  Only an unreadable *table* (a buffer too short
//! for its own header) rejects the train as a whole — there are no tids to
//! name in that case.
//!
//! The gather is **single-pass and allocation-free in steady state**: the
//! buffer is checked out of the sending endpoint's [`BufPool`] and sized
//! up front from each thread's occupancy (live stack extents plus the O(1)
//! per-slot `free_blocks`/`used_bytes` hint), so the pack never regrows
//! the buffer, and the receiver's drop recycles it for the next train.

use std::collections::HashSet;

use isoaddr::{NodeSlotManager, SlotProvider, SlotRange};
use isomalloc::layout::SlotKind;
use isomalloc::pack::{
    full_record_size, heap_pack_hint, pack_full, pack_heap_slot, pack_raw_extents, peek_header,
    record_size, unpack_into_mapped,
};
use madeleine::{BufPool, Payload};
use marcel::{desc_addr, DescPtr};

use crate::error::{Pm2Error, Result};

/// Train header: thread count.
const TRAIN_HDR: usize = 4;
/// Train table entry: tid + record-group offset + length.
const TRAIN_ENTRY: usize = 8 + 4 + 4;

/// What a train unpack produced: the threads that landed and the threads
/// whose record groups were rejected (with the reason, for the NAK).
#[derive(Debug, Default)]
pub(crate) struct TrainOutcome {
    pub adopted: Vec<DescPtr>,
    pub rejected: Vec<(u64, String)>,
}

/// Occupancy hint for one thread's record group (stack + heap slots).
///
/// # Safety
/// `d` must be a frozen thread resident on the packing node.
unsafe fn thread_pack_hint(d: DescPtr, slot_size: usize, pack_full_slots: bool) -> Result<usize> {
    let desc = &*d;
    if pack_full_slots {
        let heap_slots = isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap));
        Ok(full_record_size(desc.stack_slots, slot_size)
            + heap_slots
                .iter()
                .map(|&(_, n)| full_record_size(n, slot_size))
                .sum::<usize>())
    } else {
        Ok(record_size(&desc.stack_extents()) + heap_pack_hint(std::ptr::addr_of!(desc.heap))?)
    }
}

/// Price the migration train a thread would need right now, in bytes —
/// the balancer's cold-heap-first signal (a thread with a slim stack and
/// an empty heap ships orders of magnitude cheaper than a heap hoarder).
///
/// # Safety
/// `d` must be a resident, non-running thread (Ready/Blocked) on the
/// calling node — the driver's pump never overlaps its green threads, so
/// descriptor and heap hints are stable.
pub(crate) unsafe fn pack_cost_hint(
    d: DescPtr,
    slot_size: usize,
    pack_full_slots: bool,
) -> Result<usize> {
    thread_pack_hint(d, slot_size, pack_full_slots)
}

/// Append one thread's slot records to `buf` and unmap its slots on the
/// source node.  Ownership stays with the thread (no bitmap change).
///
/// # Safety
/// As in [`pack_threads`], for the single thread `d`.
unsafe fn pack_thread_records(
    d: DescPtr,
    mgr: &mut NodeSlotManager,
    pack_full_slots: bool,
    buf: &mut Vec<u8>,
) -> Result<()> {
    let desc = &*d;
    let slot_size = mgr.slot_size();
    let area_base = mgr.area_base();
    let stack_extents = desc.stack_extents();
    let heap_slots = isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap));
    // Stack slot first so the receiver can locate the descriptor early.
    if pack_full_slots {
        pack_full(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            slot_size,
            buf,
        );
    } else {
        pack_raw_extents(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            &stack_extents,
            buf,
        );
    }
    for &(base, n) in &heap_slots {
        if pack_full_slots {
            pack_full(base, SlotKind::Heap as u32, n, slot_size, buf);
        } else {
            pack_heap_slot(base, slot_size, buf)?;
        }
    }
    // Unmap everything; ownership stays with the thread (no bitmap change).
    let stack_first = (desc.stack_base - area_base) / slot_size;
    mgr.surrender(SlotRange::new(stack_first, desc.stack_slots))?;
    for &(base, n) in &heap_slots {
        let first = (base - area_base) / slot_size;
        mgr.surrender(SlotRange::new(first, n))?;
    }
    Ok(())
}

/// [`pack_thread_records`] minus the surrenders: serialize the thread's
/// slots *without* unmapping anything.  This is the checkpoint pack — the
/// thread keeps running on this node afterwards, and the bytes are an
/// ordinary train record group (position-independent, replayable through
/// `unpack_threads` on any survivor).
///
/// # Safety
/// `d` must be a frozen (not currently running) thread resident on `mgr`'s
/// node for the duration of the call.
unsafe fn snapshot_thread_records(
    d: DescPtr,
    mgr: &NodeSlotManager,
    pack_full_slots: bool,
    buf: &mut Vec<u8>,
) -> Result<()> {
    let desc = &*d;
    let slot_size = mgr.slot_size();
    let stack_extents = desc.stack_extents();
    let heap_slots = isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap));
    if pack_full_slots {
        pack_full(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            slot_size,
            buf,
        );
    } else {
        pack_raw_extents(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            &stack_extents,
            buf,
        );
    }
    for &(base, n) in &heap_slots {
        if pack_full_slots {
            pack_full(base, SlotKind::Heap as u32, n, slot_size, buf);
        } else {
            pack_heap_slot(base, slot_size, buf)?;
        }
    }
    Ok(())
}

/// Pack a train of threads **without unmapping their slots** — the
/// checkpoint gather.  Wire-identical to [`pack_threads`] output, so a
/// spilled checkpoint replays through the normal `MIGRATION` arrival path;
/// the threads keep running here, and the bytes merely go stale as they do.
///
/// # Safety
/// Every descriptor must be resident on `mgr`'s node and not running for
/// the duration of the call (the checkpoint runs on the driver thread, so
/// no green thread is mid-quantum).
pub(crate) unsafe fn pack_threads_snapshot(
    ds: &[DescPtr],
    mgr: &NodeSlotManager,
    pack_full_slots: bool,
    pool: &BufPool,
) -> Result<Payload> {
    debug_assert!(!ds.is_empty(), "empty checkpoint train");
    let slot_size = mgr.slot_size();
    let header_len = TRAIN_HDR + ds.len() * TRAIN_ENTRY;
    let mut hint = header_len;
    for &d in ds {
        hint += thread_pack_hint(d, slot_size, pack_full_slots)?;
    }
    let mut buf = pool.checkout(hint);
    buf.extend_from_slice(&(ds.len() as u32).to_le_bytes());
    buf.resize(header_len, 0);
    for (i, &d) in ds.iter().enumerate() {
        let tid = (*d).tid;
        let off = buf.len();
        snapshot_thread_records(d, mgr, pack_full_slots, &mut buf)?;
        let len = buf.len() - off;
        let e = TRAIN_HDR + i * TRAIN_ENTRY;
        buf[e..e + 8].copy_from_slice(&tid.to_le_bytes());
        buf[e + 8..e + 12].copy_from_slice(&(off as u32).to_le_bytes());
        buf[e + 12..e + 16].copy_from_slice(&(len as u32).to_le_bytes());
    }
    Ok(buf.freeze())
}

/// Read a train's table without touching the records: `(tid, off, len)`
/// per thread, or `None` if the buffer cannot hold its own header.  The
/// spill-log reader uses this to index checkpointed threads by tid.
pub(crate) fn train_table(buf: &[u8]) -> Option<Vec<(u64, usize, usize)>> {
    let count = buf
        .get(..TRAIN_HDR)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")) as usize)?;
    let header_len = TRAIN_HDR + count.checked_mul(TRAIN_ENTRY)?;
    if count == 0 || buf.len() < header_len {
        return None;
    }
    let mut table = Vec::with_capacity(count);
    for i in 0..count {
        let e = TRAIN_HDR + i * TRAIN_ENTRY;
        let tid = u64::from_le_bytes(buf[e..e + 8].try_into().expect("8-byte slice"));
        let off = u32::from_le_bytes(buf[e + 8..e + 12].try_into().expect("4-byte slice")) as usize;
        let len =
            u32::from_le_bytes(buf[e + 12..e + 16].try_into().expect("4-byte slice")) as usize;
        table.push((tid, off, len));
    }
    Some(table)
}

/// Assemble a fresh train from already-packed record groups (recovery:
/// re-ship checkpointed threads to a survivor).  Record groups are
/// position-independent, so concatenating groups lifted from different
/// checkpoints yields a valid `MIGRATION` payload.
pub(crate) fn build_train(groups: &[(u64, &[u8])]) -> Vec<u8> {
    let header_len = TRAIN_HDR + groups.len() * TRAIN_ENTRY;
    let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
    let mut buf = Vec::with_capacity(header_len + total);
    buf.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    buf.resize(header_len, 0);
    for (i, (tid, group)) in groups.iter().enumerate() {
        let off = buf.len();
        buf.extend_from_slice(group);
        let e = TRAIN_HDR + i * TRAIN_ENTRY;
        buf[e..e + 8].copy_from_slice(&tid.to_le_bytes());
        buf[e + 8..e + 12].copy_from_slice(&(off as u32).to_le_bytes());
        buf[e + 12..e + 16].copy_from_slice(&(group.len() as u32).to_le_bytes());
    }
    buf
}

/// Pack a train of frozen threads into one pooled payload and unmap their
/// slots on the source node.  The buffer is a pool checkout sized from the
/// occupancy hints; the per-thread table is backpatched once each group's
/// length is known.
///
/// `fault_truncate` names tids whose record group is deliberately truncated
/// after packing — the test hook behind the train fault-isolation
/// regression (empty in production; see `Pm2Config::fault_corrupt_pack`).
///
/// # Safety
/// Every descriptor must be a frozen (not running) thread resident on
/// `mgr`'s node; after this call, none of their memory may be touched on
/// this node.
pub(crate) unsafe fn pack_threads(
    ds: &[DescPtr],
    mgr: &mut NodeSlotManager,
    pack_full_slots: bool,
    pool: &BufPool,
    fault_truncate: &HashSet<u64>,
) -> Result<Payload> {
    debug_assert!(!ds.is_empty(), "empty migration train");
    let slot_size = mgr.slot_size();
    let header_len = TRAIN_HDR + ds.len() * TRAIN_ENTRY;
    let mut hint = header_len;
    for &d in ds {
        hint += thread_pack_hint(d, slot_size, pack_full_slots)?;
    }
    let mut buf = pool.checkout(hint);
    buf.extend_from_slice(&(ds.len() as u32).to_le_bytes());
    buf.resize(header_len, 0); // table placeholder, backpatched below
    for (i, &d) in ds.iter().enumerate() {
        let tid = (*d).tid;
        let off = buf.len();
        pack_thread_records(d, mgr, pack_full_slots, &mut buf)?;
        if fault_truncate.contains(&tid) {
            // Test hook: chop the tail off this thread's group so its last
            // record claims more bytes than the group holds.  The slots
            // are already surrendered — the thread is genuinely lost, as
            // in a real corruption.
            let cut = buf.len().saturating_sub(16).max(off);
            buf.truncate(cut);
        }
        let len = buf.len() - off;
        let e = TRAIN_HDR + i * TRAIN_ENTRY;
        buf[e..e + 8].copy_from_slice(&tid.to_le_bytes());
        buf[e + 8..e + 12].copy_from_slice(&(off as u32).to_le_bytes());
        buf[e + 12..e + 16].copy_from_slice(&(len as u32).to_le_bytes());
    }
    debug_assert!(
        buf.len() <= hint || pack_full_slots || !fault_truncate.is_empty(),
        "occupancy hint {hint} under-sized the train ({} bytes)",
        buf.len()
    );
    Ok(buf.freeze())
}

/// Map and unpack an arriving train.  Record-group failures are isolated:
/// each failed thread is rolled back (its partially adopted ranges
/// surrendered again) and reported in `rejected`, while the rest of the
/// train lands in `adopted` (descriptors at the same virtual addresses
/// they had on the source node).
///
/// Returns `Err` only when the train table itself is unreadable — no tids
/// can be named, so the caller NAKs the train anonymously.
///
/// # Safety
/// `buf` must be (possibly corrupt) bytes received as a `MIGRATION`
/// payload; the slot ranges its healthy records name must be unmapped on
/// this node (guaranteed by the iso-address discipline).
pub(crate) unsafe fn unpack_threads(buf: &[u8], mgr: &mut NodeSlotManager) -> Result<TrainOutcome> {
    let count = buf
        .get(..TRAIN_HDR)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")) as usize)
        .ok_or_else(|| Pm2Error::Net("migration train shorter than its header".into()))?;
    let header_len = TRAIN_HDR + count * TRAIN_ENTRY;
    if count == 0 || buf.len() < header_len {
        return Err(Pm2Error::Net(format!(
            "migration train claims {count} threads, buffer has {} bytes",
            buf.len()
        )));
    }
    let mut outcome = TrainOutcome::default();
    for i in 0..count {
        let e = TRAIN_HDR + i * TRAIN_ENTRY;
        let tid = u64::from_le_bytes(buf[e..e + 8].try_into().expect("8-byte slice"));
        let off = u32::from_le_bytes(buf[e + 8..e + 12].try_into().expect("4-byte slice")) as usize;
        let len =
            u32::from_le_bytes(buf[e + 12..e + 16].try_into().expect("4-byte slice")) as usize;
        let Some(group) = (off >= header_len)
            .then(|| buf.get(off..off + len))
            .flatten()
        else {
            outcome.rejected.push((
                tid,
                format!("record group [{off}, {off}+{len}) escapes the train"),
            ));
            continue;
        };
        match unpack_thread(group, tid, mgr) {
            Ok(d) => outcome.adopted.push(d),
            Err(e) => outcome.rejected.push((tid, e.to_string())),
        }
    }
    Ok(outcome)
}

/// Map and unpack one thread's record group; returns its descriptor, which
/// sits at the same virtual address it had on the source node.
///
/// A malformed or truncated group returns `Err` without wedging the node:
/// any slot ranges already adopted for the partial unpack are surrendered
/// again (best effort) so the node's mapping state stays consistent and
/// the caller can NAK just this thread.
unsafe fn unpack_thread(buf: &[u8], expect_tid: u64, mgr: &mut NodeSlotManager) -> Result<DescPtr> {
    let mut adopted: Vec<SlotRange> = Vec::new();
    match unpack_records(buf, expect_tid, mgr, &mut adopted) {
        Ok(desc) => Ok(desc),
        Err(e) => {
            // Roll the partial arrival back: unmap whatever was adopted.
            for r in adopted {
                let _ = mgr.surrender(r);
            }
            Err(e)
        }
    }
}

unsafe fn unpack_records(
    buf: &[u8],
    expect_tid: u64,
    mgr: &mut NodeSlotManager,
    adopted: &mut Vec<SlotRange>,
) -> Result<DescPtr> {
    let slot_size = mgr.slot_size();
    let area_base = mgr.area_base();
    let mut off = 0;
    let mut desc: DescPtr = std::ptr::null_mut();
    while off < buf.len() {
        let info = peek_header(&buf[off..])?;
        // A corrupt record can name any address; reject before the slot
        // arithmetic can underflow.
        if info.base < area_base || !(info.base - area_base).is_multiple_of(slot_size) {
            return Err(Pm2Error::Net(format!(
                "migration record names base {:#x} outside the slot grid",
                info.base
            )));
        }
        let first = (info.base - area_base) / slot_size;
        let range = SlotRange::new(first, info.n_slots);
        if range.end() > mgr.area().n_slots() {
            return Err(Pm2Error::Net(format!(
                "migration record claims slots {range:?} beyond the area"
            )));
        }
        if !mgr.bitmap().all_clear(range) {
            return Err(Pm2Error::Net(format!(
                "migration record claims slots {range:?} this node owns"
            )));
        }
        mgr.adopt(range)?;
        adopted.push(range);
        unpack_into_mapped(&buf[off..], slot_size)?;
        if info.kind == SlotKind::Stack as u32 {
            desc = desc_addr(info.base) as DescPtr;
        }
        off += info.record_len;
    }
    if desc.is_null() {
        return Err(Pm2Error::Net(
            "migration record group contained no stack slot".into(),
        ));
    }
    // The table names the thread; the packed descriptor must agree, or the
    // registry/NAK bookkeeping would track the wrong tid.
    if (*desc).tid != expect_tid {
        return Err(Pm2Error::Net(format!(
            "train table names tid {expect_tid:#x} but the packed descriptor says {:#x}",
            (*desc).tid
        )));
    }
    Ok(desc)
}
