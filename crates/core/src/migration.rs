//! The migration engine (paper §2, three steps):
//!
//! 1. **Freeze & pack** — the thread is stopped at a scheduling point (its
//!    context is saved in its descriptor, which lives in its stack slot);
//!    we serialize its stack slot (metadata + live stack only) and each of
//!    its heap slots (metadata + busy blocks only, the §6 optimization),
//!    then unmap everything on the source node.  No bitmap changes: the
//!    slots still belong to the thread.
//! 2. **Send** — the buffer crosses the Madeleine fabric.
//! 3. **Adopt & unpack** — the destination maps the same slot ranges at the
//!    same virtual addresses, copies the extents back, and enqueues the
//!    thread.  Because every pointer in the thread's universe is an
//!    iso-address, *nothing* is fixed up: "an iso-address copy is enough".

use isoaddr::{NodeSlotManager, SlotProvider, SlotRange};
use isomalloc::layout::SlotKind;
use isomalloc::pack::{
    pack_full, pack_heap_slot, pack_raw_extents, peek_header, unpack_into_mapped,
};
use marcel::{desc_addr, DescPtr};

use crate::error::{Pm2Error, Result};

/// Pack a frozen thread and unmap its slots on the source node.
///
/// # Safety
/// `d` must be a frozen (not running) thread resident on `mgr`'s node; after
/// this call, none of the thread's memory may be touched on this node.
pub(crate) unsafe fn pack_thread(
    d: DescPtr,
    mgr: &mut NodeSlotManager,
    pack_full_slots: bool,
) -> Result<Vec<u8>> {
    let desc = &*d;
    let slot_size = mgr.slot_size();
    let area_base = mgr.area_base();
    let mut buf = Vec::with_capacity(4096);
    // Stack slot first so the receiver can locate the descriptor early.
    if pack_full_slots {
        pack_full(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            slot_size,
            &mut buf,
        );
    } else {
        pack_raw_extents(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            &desc.stack_extents(),
            &mut buf,
        );
    }
    let heap_slots = isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap));
    for &(base, n) in &heap_slots {
        if pack_full_slots {
            pack_full(base, SlotKind::Heap as u32, n, slot_size, &mut buf);
        } else {
            pack_heap_slot(base, slot_size, &mut buf)?;
        }
    }
    // Unmap everything; ownership stays with the thread (no bitmap change).
    let stack_first = (desc.stack_base - area_base) / slot_size;
    mgr.surrender(SlotRange::new(stack_first, desc.stack_slots))?;
    for &(base, n) in &heap_slots {
        let first = (base - area_base) / slot_size;
        mgr.surrender(SlotRange::new(first, n))?;
    }
    Ok(buf)
}

/// Map and unpack an arriving thread; returns its descriptor, which sits at
/// the same virtual address it had on the source node.
///
/// # Safety
/// `buf` must be a buffer produced by [`pack_thread`]; the slot ranges it
/// names must be unmapped on this node (guaranteed by the iso-address
/// discipline).
pub(crate) unsafe fn unpack_thread(buf: &[u8], mgr: &mut NodeSlotManager) -> Result<DescPtr> {
    let slot_size = mgr.slot_size();
    let area_base = mgr.area_base();
    let mut off = 0;
    let mut desc: DescPtr = std::ptr::null_mut();
    while off < buf.len() {
        let info = peek_header(&buf[off..])?;
        let first = (info.base - area_base) / slot_size;
        mgr.adopt(SlotRange::new(first, info.n_slots))?;
        unpack_into_mapped(&buf[off..], slot_size)?;
        if info.kind == SlotKind::Stack as u32 {
            desc = desc_addr(info.base) as DescPtr;
        }
        off += info.record_len;
    }
    if desc.is_null() {
        return Err(Pm2Error::Net(
            "migration buffer contained no stack slot".into(),
        ));
    }
    Ok(desc)
}
