//! The migration engine (paper §2, three steps):
//!
//! 1. **Freeze & pack** — the thread is stopped at a scheduling point (its
//!    context is saved in its descriptor, which lives in its stack slot);
//!    we serialize its stack slot (metadata + live stack only) and each of
//!    its heap slots (metadata + busy blocks only, the §6 optimization),
//!    then unmap everything on the source node.  No bitmap changes: the
//!    slots still belong to the thread.
//! 2. **Send** — the buffer crosses the Madeleine fabric.
//! 3. **Adopt & unpack** — the destination maps the same slot ranges at the
//!    same virtual addresses, copies the extents back, and enqueues the
//!    thread.  Because every pointer in the thread's universe is an
//!    iso-address, *nothing* is fixed up: "an iso-address copy is enough".
//!
//! The gather is **single-pass and allocation-free in steady state**: the
//! buffer is checked out of the sending endpoint's [`BufPool`] and sized
//! up front from the thread's occupancy (live stack extents plus each heap
//! slot's `used_bytes`/free-list hint), so the pack never regrows the
//! buffer, and the receiver's drop recycles it for the next migration.
//!
//! Wire shape: an 8-byte little-endian **tid prefix** (readable even when
//! the rest of the buffer is corrupt, so a rejection NAK can name the lost
//! thread) followed by the self-describing slot records.
//! [`pack_thread`] writes the prefix; the caller strips it before
//! [`unpack_thread`].

use isoaddr::{NodeSlotManager, SlotProvider, SlotRange};
use isomalloc::layout::SlotKind;
use isomalloc::pack::{
    full_record_size, heap_pack_hint, pack_full, pack_heap_slot, pack_raw_extents, peek_header,
    record_size, unpack_into_mapped,
};
use madeleine::{BufPool, Payload};
use marcel::{desc_addr, DescPtr};

use crate::error::{Pm2Error, Result};

/// Pack a frozen thread and unmap its slots on the source node.  The
/// returned payload is a pool checkout sized from the occupancy hint.
///
/// # Safety
/// `d` must be a frozen (not running) thread resident on `mgr`'s node; after
/// this call, none of the thread's memory may be touched on this node.
pub(crate) unsafe fn pack_thread(
    d: DescPtr,
    mgr: &mut NodeSlotManager,
    pack_full_slots: bool,
    pool: &BufPool,
) -> Result<Payload> {
    let desc = &*d;
    let slot_size = mgr.slot_size();
    let area_base = mgr.area_base();
    let stack_extents = desc.stack_extents();
    let heap_slots = isomalloc::heap::heap_slots(std::ptr::addr_of!(desc.heap));
    // Size the gather buffer in one reservation (no mid-pack regrowth).
    let hint = if pack_full_slots {
        full_record_size(desc.stack_slots, slot_size)
            + heap_slots
                .iter()
                .map(|&(_, n)| full_record_size(n, slot_size))
                .sum::<usize>()
    } else {
        record_size(&stack_extents) + heap_pack_hint(std::ptr::addr_of!(desc.heap))?
    };
    let mut buf = pool.checkout(8 + hint);
    buf.extend_from_slice(&desc.tid.to_le_bytes());
    // Stack slot first so the receiver can locate the descriptor early.
    if pack_full_slots {
        pack_full(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            slot_size,
            &mut buf,
        );
    } else {
        pack_raw_extents(
            desc.stack_base,
            SlotKind::Stack as u32,
            desc.stack_slots,
            &stack_extents,
            &mut buf,
        );
    }
    for &(base, n) in &heap_slots {
        if pack_full_slots {
            pack_full(base, SlotKind::Heap as u32, n, slot_size, &mut buf);
        } else {
            pack_heap_slot(base, slot_size, &mut buf)?;
        }
    }
    debug_assert!(
        buf.len() <= 8 + hint || pack_full_slots,
        "occupancy hint {hint} under-sized the pack ({} bytes)",
        buf.len()
    );
    // Unmap everything; ownership stays with the thread (no bitmap change).
    let stack_first = (desc.stack_base - area_base) / slot_size;
    mgr.surrender(SlotRange::new(stack_first, desc.stack_slots))?;
    for &(base, n) in &heap_slots {
        let first = (base - area_base) / slot_size;
        mgr.surrender(SlotRange::new(first, n))?;
    }
    Ok(buf.freeze())
}

/// Map and unpack an arriving thread; returns its descriptor, which sits at
/// the same virtual address it had on the source node.
///
/// A malformed or truncated buffer returns `Err` without wedging the node:
/// any slot ranges already adopted for the partial unpack are surrendered
/// again (best effort) so the node's mapping state stays consistent and
/// the caller can NAK the migration.
///
/// # Safety
/// `buf` must be a buffer produced by [`pack_thread`]; the slot ranges it
/// names must be unmapped on this node (guaranteed by the iso-address
/// discipline).
pub(crate) unsafe fn unpack_thread(buf: &[u8], mgr: &mut NodeSlotManager) -> Result<DescPtr> {
    let mut adopted: Vec<SlotRange> = Vec::new();
    match unpack_records(buf, mgr, &mut adopted) {
        Ok(desc) => Ok(desc),
        Err(e) => {
            // Roll the partial arrival back: unmap whatever was adopted.
            for r in adopted {
                let _ = mgr.surrender(r);
            }
            Err(e)
        }
    }
}

unsafe fn unpack_records(
    buf: &[u8],
    mgr: &mut NodeSlotManager,
    adopted: &mut Vec<SlotRange>,
) -> Result<DescPtr> {
    let slot_size = mgr.slot_size();
    let area_base = mgr.area_base();
    let mut off = 0;
    let mut desc: DescPtr = std::ptr::null_mut();
    while off < buf.len() {
        let info = peek_header(&buf[off..])?;
        // A corrupt record can name any address; reject before the slot
        // arithmetic can underflow.
        if info.base < area_base || !(info.base - area_base).is_multiple_of(slot_size) {
            return Err(Pm2Error::Net(format!(
                "migration record names base {:#x} outside the slot grid",
                info.base
            )));
        }
        let first = (info.base - area_base) / slot_size;
        let range = SlotRange::new(first, info.n_slots);
        if range.end() > mgr.area().n_slots() {
            return Err(Pm2Error::Net(format!(
                "migration record claims slots {range:?} beyond the area"
            )));
        }
        if !mgr.bitmap().all_clear(range) {
            return Err(Pm2Error::Net(format!(
                "migration record claims slots {range:?} this node owns"
            )));
        }
        mgr.adopt(range)?;
        adopted.push(range);
        unpack_into_mapped(&buf[off..], slot_size)?;
        if info.kind == SlotKind::Stack as u32 {
            desc = desc_addr(info.base) as DescPtr;
        }
        off += info.record_len;
    }
    if desc.is_null() {
        return Err(Pm2Error::Net(
            "migration buffer contained no stack slot".into(),
        ));
    }
    Ok(desc)
}
