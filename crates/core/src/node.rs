//! The per-node runtime: an event-driven dispatch core.
//!
//! One `NodeCtx` is the reproduction of the paper's "single (heavy) process
//! running at each node" (§2): it owns the node's slot bitmap, its thread
//! scheduler, its private heap and its network endpoint.  Exactly one OS
//! thread drives it *at a time* — in threaded mode the node is a state
//! machine multiplexed onto the [`crate::executor`] worker pool (a rung
//! doorbell queues the node; a worker locks it, steps it up to a fairness
//! budget, and parks it again), and in deterministic mode one OS thread
//! drives every node round-robin.  Either way Marcel threads and the
//! message pump interleave but never run concurrently, which is exactly
//! the concurrency model of a user-level thread runtime.
//!
//! ## The event-driven core
//!
//! The node is **event-driven, not polled**.  Three pieces cooperate:
//!
//! * **Doorbell** — every [`madeleine::Endpoint::send`] rings the
//!   destination's [`madeleine::Doorbell`]; an idle driver *parks* (the
//!   executor marks the node `Idle` and the worker moves on; the
//!   deterministic driver parks the OS thread) instead of spin- or
//!   sleep-polling, so a quiescent machine burns ~zero CPU and a message
//!   wakes its handler at futex-wake-up latency.  The
//!   [`NodeStats::driver_parks`]/[`NodeStats::driver_wakeups`] counters
//!   make the parking observable in both modes.
//! * **Class-prioritized pump** — [`NodeCtx::pump`] ingests deliverable
//!   messages into three priority lanes (see [`crate::handlers::Class`]:
//!   control > migration > data) and drains them in class order under a
//!   per-pump budget (`pump_budget` knob), so a flood of data messages can
//!   never delay SHUTDOWN or negotiation traffic.  Within a class, per-pair
//!   FIFO order is preserved.
//! * **Handler dispatch table** — the per-tag protocol logic lives in the
//!   [`crate::handlers`] module tree (`spawn`/`rpc`, `migration`,
//!   `negotiation`, `control`), entered through
//!   [`crate::handlers::dispatch`]; `node.rs` itself is only the dispatch
//!   core: scheduler interleaving, thread lifecycle, and the lanes.
//!
//! ## Gossip-scale protocols
//!
//! Per-node protocol cost must stay (amortized) O(1) in the node count or
//! p = 256 machines drown in their own bookkeeping, so everything that was
//! all-pairs is now epidemic or sampled:
//!
//! * **Liveness** is piggybacked: any arriving message refreshes the
//!   sender's `last_heard` stamp, and a strictly-newer gossiped sequence
//!   number counts as (indirect) evidence too — a peer cannot produce a
//!   fresh round number after dying.  HEARTBEATs are no longer beaconed to
//!   all p peers; they are *suspicion probes* sent only to a peer that has
//!   been silent past half the failure timeout (a ping byte requesting a
//!   pong), and death is still declared purely by silence timeout.
//! * **Wealth/load dissemination** is an epidemic digest
//!   ([`crate::proto::encode_gossip`]): once per `heartbeat_every` each
//!   node pushes its own free-slot and resident-thread counts, plus a few
//!   relayed table entries, to `GOSSIP_FANOUT` random live peers — O(1)
//!   messages per node per round, O(log p) rounds to saturate the machine.
//! * **The silence scan** walks a cursor over the peer table, a chunk per
//!   driver step (sized so one lap completes per `heartbeat_every` even on
//!   a sparsely-ticked idle node) instead of scanning all p every tick.
//! * **Sampling**: `richest_peer` and the balancer probe a random sample
//!   above `FULL_PROBE_MAX` nodes (power-of-two-choices style) instead of
//!   scanning/probing everyone.
//!
//! The remaining O(p) structures are deliberate: the `peer_wealth` /
//! `peer_seq` / `last_heard` tables are one word-ish per peer (a few KB at
//! p = 256, refreshed — never scanned — on the hot path), broadcast
//! fan-out is O(p) but only on rare machine-wide events (NODE_DEAD,
//! SHUTDOWN), and the §4.4 all-peer bitmap gather survives as the
//! documented *fallback* path when trading cannot satisfy a request.
//!
//! The migration *departure* side also lives here (`NodeCtx::depart`): a
//! migration outcome sweeps every other ready thread already flagged for
//! preemptive migration out of the scheduler (`Scheduler::take_migrating`)
//! and ships same-destination threads as one train per destination — one
//! wire message for k threads (capped by the `max_train` knob).
//!
//! While a Marcel thread runs, it reaches its node through an OS-thread-
//! local pointer (see [`with_ctx`]); the same aliasing discipline as in
//! `marcel::sched` applies — short raw-pointer accesses, nothing cached
//! across yields.

use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isoaddr::{IsoArea, NodeSlotManager, SlotRange};
use madeleine::{BufPool, Endpoint, Message};
use marcel::{DescPtr, RunOutcome, Scheduler, ThreadState};

use crate::config::{MigrationScheme, Pm2Config};
use crate::handlers::{self, N_CLASSES};
use crate::migration;
use crate::nodeheap::NodeHeap;
use crate::output::OutputSink;
use crate::proto::{self, tag};
use crate::registry::{Registry, ServiceTable, SpawnTable, ThreadExit};
use crate::service::{panic_text, TypedServiceTable};
use crate::spill::SpillLog;

thread_local! {
    static CURRENT_NODE: Cell<*mut NodeCtx> = const { Cell::new(std::ptr::null_mut()) };
}

/// Largest machine the exact all-peer paths still run on: up to this many
/// nodes `richest_peer` scans the whole table and the balancer probes
/// every peer (preserving the small-machine ablation numbers); above it
/// both sample, and gossip dissemination turns on even without a detector.
/// This is the "0 = auto" threshold behind [`crate::loadbal::BalancerConfig`]'s
/// `sample` field (re-exported there as `loadbal::FULL_PROBE_MAX`).
pub const FULL_PROBE_MAX: usize = 16;
/// Peers a gossip round pushes the digest to.
const GOSSIP_FANOUT: usize = 2;
/// Minimum relayed table entries riding along with the self-entry in a
/// digest; the actual budget grows with the machine ([`relay_budget`]) so
/// indirect liveness evidence keeps the whole table fresher than the
/// suspicion-probe threshold even at p = 256.
const GOSSIP_RELAY: usize = 6;
/// Cap on the relay budget: a digest never exceeds `1 + 32` entries
/// (~500 B), whatever the machine size.
const GOSSIP_RELAY_MAX: usize = 32;
/// Minimum silence-scan advance per driver step ("a few peers per step").
const SCAN_CHUNK: usize = 4;
/// Candidates drawn by the sampled `richest_peer` on large machines.
const RICH_SAMPLE: usize = 16;

/// Live runtime counters for one node (shared with the host).
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Threads shipped away.
    pub migrations_out: AtomicU64,
    /// Threads received.
    pub migrations_in: AtomicU64,
    /// Arriving migration record groups rejected as corrupt (NAKed).
    pub migrations_failed: AtomicU64,
    /// Migration trains (wire messages) sent; `migrations_out /
    /// trains_out` is the mean threads-per-message of outgoing traffic.
    pub trains_out: AtomicU64,
    /// Migration trains received (counted when ≥ 1 thread adopted).
    pub trains_in: AtomicU64,
    /// Total bytes of outgoing migration buffers.
    pub migration_bytes_out: AtomicU64,
    /// Nanoseconds spent packing outgoing migrations (freeze & gather).
    pub migration_pack_ns: AtomicU64,
    /// Modelled wire nanoseconds charged for arriving migrations.
    pub migration_wire_ns: AtomicU64,
    /// Nanoseconds spent unpacking arriving migrations (adopt & copy).
    pub migration_unpack_ns: AtomicU64,
    /// Global negotiations initiated by this node (the §4.4 fallback; on
    /// the trade-first hot path this stays 0).
    pub negotiations: AtomicU64,
    /// Total nanoseconds spent in initiated global negotiations.
    pub negotiation_ns: AtomicU64,
    /// Demand slot trades initiated by this node (a green thread needed
    /// slots *now* and asked the richest known peer).
    pub trades: AtomicU64,
    /// Total nanoseconds green threads spent in demand trades.
    pub trade_ns: AtomicU64,
    /// Slots adopted from peers via trades (demand + prefetch).
    pub trade_slots_in: AtomicU64,
    /// Demand trades that could not satisfy the request (refused,
    /// insufficient, or non-contiguous) and fell back to the global §4.4
    /// protocol.
    pub trade_fallbacks: AtomicU64,
    /// Trade requests this node granted as the lender.
    pub trade_grants: AtomicU64,
    /// Trade requests this node refused (frozen, or at its watermark).
    pub trade_refusals: AtomicU64,
    /// Asynchronous watermark prefetches sent (reserve below low water).
    pub prefetches: AtomicU64,
    /// Prefetches that came back with at least one slot.
    pub prefetch_fills: AtomicU64,
    /// Piggybacked wealth hints absorbed (trade/load/ack traffic).
    pub wealth_updates: AtomicU64,
    /// Threads spawned here.
    pub spawns: AtomicU64,
    /// Checkpoints written to the spill log.
    pub checkpoints: AtomicU64,
    /// Thread images written across all checkpoints (supersessions
    /// included — the log replayer keeps only the newest epoch per tid).
    pub checkpoint_threads: AtomicU64,
    /// Scheduling steps the driver executed for this node.
    pub steps: AtomicU64,
    /// Times the driver parked on the doorbell with nothing to do.
    pub driver_parks: AtomicU64,
    /// Times the driver came back from a park (ring or park-timeout).
    /// `driver_parks − driver_wakeups ∈ {0, 1}` at any instant; a
    /// quiescent machine accumulates (almost) none of either beyond the
    /// initial park.
    pub driver_wakeups: AtomicU64,
    /// Messages dropped by the per-(source, class) dedup window — chaos
    /// duplicates (same fabric seq) caught before they reached a handler.
    pub dup_dropped: AtomicU64,
    /// Control-plane retries issued by this node (trade and probe
    /// re-sends after a lost request or reply).
    pub ctrl_retries: AtomicU64,
    /// RPC-shaped messages (calls, spawn requests, replies) this node's
    /// threads exchanged with co-located peers — self-sends that never
    /// touch the modelled wire.
    pub rpc_local: AtomicU64,
    /// RPC-shaped messages exchanged with remote nodes — each one pays
    /// the full modelled hop.  `rpc_remote / (rpc_local + rpc_remote)` is
    /// the remote-message ratio the affinity balancer minimizes.
    pub rpc_remote: AtomicU64,
    /// Affinity decay sweeps applied (one per LOAD_REQ-carried balancer
    /// epoch observed by this node).
    pub aff_decays: AtomicU64,
}

/// Plain snapshot of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    pub migrations_out: u64,
    pub migrations_in: u64,
    pub migrations_failed: u64,
    pub trains_out: u64,
    pub trains_in: u64,
    pub migration_bytes_out: u64,
    /// Per-stage migration cost, summed over this node's participations:
    /// packing is paid by the source…
    pub migration_pack_ns: u64,
    /// …wire time and unpacking by the destination.
    pub migration_wire_ns: u64,
    pub migration_unpack_ns: u64,
    pub negotiations: u64,
    pub negotiation_ns: u64,
    pub trades: u64,
    pub trade_ns: u64,
    pub trade_slots_in: u64,
    pub trade_fallbacks: u64,
    pub trade_grants: u64,
    pub trade_refusals: u64,
    pub prefetches: u64,
    pub prefetch_fills: u64,
    pub wealth_updates: u64,
    pub spawns: u64,
    pub checkpoints: u64,
    pub checkpoint_threads: u64,
    pub steps: u64,
    pub driver_parks: u64,
    pub driver_wakeups: u64,
    /// Chaos duplicates dropped by the dedup window.
    pub dup_dropped: u64,
    /// Control-plane retries issued (trade/probe re-sends).
    pub ctrl_retries: u64,
    /// RPC-shaped messages exchanged with co-located threads (free).
    pub rpc_local: u64,
    /// RPC-shaped messages exchanged with remote nodes (pay the wire).
    pub rpc_remote: u64,
    /// Affinity decay sweeps applied.
    pub aff_decays: u64,
}

impl NodeStatsSnapshot {
    /// Mean threads carried per outgoing migration message (1.0 before any
    /// migration): > 1 proves trains actually formed.
    pub fn threads_per_message(&self) -> f64 {
        if self.trains_out == 0 {
            return 1.0;
        }
        self.migrations_out as f64 / self.trains_out as f64
    }

    /// Fraction of RPC-shaped traffic that paid the wire (0.0 when the
    /// node exchanged no RPC messages at all).
    pub fn remote_ratio(&self) -> f64 {
        let total = self.rpc_local + self.rpc_remote;
        if total == 0 {
            return 0.0;
        }
        self.rpc_remote as f64 / total as f64
    }
}

impl NodeStats {
    /// Zero every counter.  Intended for round-based measurement (the
    /// workload harness resets between ramp rounds so each round reports
    /// its own counters, not cumulative ones); call it near quiescence —
    /// a node mid-increment is harmless (the increment lands in the next
    /// window) but the fields are not reset as one atomic unit.
    pub fn reset(&self) {
        self.migrations_out.store(0, Ordering::Relaxed);
        self.migrations_in.store(0, Ordering::Relaxed);
        self.migrations_failed.store(0, Ordering::Relaxed);
        self.trains_out.store(0, Ordering::Relaxed);
        self.trains_in.store(0, Ordering::Relaxed);
        self.migration_bytes_out.store(0, Ordering::Relaxed);
        self.migration_pack_ns.store(0, Ordering::Relaxed);
        self.migration_wire_ns.store(0, Ordering::Relaxed);
        self.migration_unpack_ns.store(0, Ordering::Relaxed);
        self.negotiations.store(0, Ordering::Relaxed);
        self.negotiation_ns.store(0, Ordering::Relaxed);
        self.trades.store(0, Ordering::Relaxed);
        self.trade_ns.store(0, Ordering::Relaxed);
        self.trade_slots_in.store(0, Ordering::Relaxed);
        self.trade_fallbacks.store(0, Ordering::Relaxed);
        self.trade_grants.store(0, Ordering::Relaxed);
        self.trade_refusals.store(0, Ordering::Relaxed);
        self.prefetches.store(0, Ordering::Relaxed);
        self.prefetch_fills.store(0, Ordering::Relaxed);
        self.wealth_updates.store(0, Ordering::Relaxed);
        self.spawns.store(0, Ordering::Relaxed);
        self.checkpoints.store(0, Ordering::Relaxed);
        self.checkpoint_threads.store(0, Ordering::Relaxed);
        self.steps.store(0, Ordering::Relaxed);
        self.driver_parks.store(0, Ordering::Relaxed);
        self.driver_wakeups.store(0, Ordering::Relaxed);
        self.dup_dropped.store(0, Ordering::Relaxed);
        self.ctrl_retries.store(0, Ordering::Relaxed);
        self.rpc_local.store(0, Ordering::Relaxed);
        self.rpc_remote.store(0, Ordering::Relaxed);
        self.aff_decays.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            migrations_out: self.migrations_out.load(Ordering::Relaxed),
            migrations_in: self.migrations_in.load(Ordering::Relaxed),
            migrations_failed: self.migrations_failed.load(Ordering::Relaxed),
            trains_out: self.trains_out.load(Ordering::Relaxed),
            trains_in: self.trains_in.load(Ordering::Relaxed),
            migration_bytes_out: self.migration_bytes_out.load(Ordering::Relaxed),
            migration_pack_ns: self.migration_pack_ns.load(Ordering::Relaxed),
            migration_wire_ns: self.migration_wire_ns.load(Ordering::Relaxed),
            migration_unpack_ns: self.migration_unpack_ns.load(Ordering::Relaxed),
            negotiations: self.negotiations.load(Ordering::Relaxed),
            negotiation_ns: self.negotiation_ns.load(Ordering::Relaxed),
            trades: self.trades.load(Ordering::Relaxed),
            trade_ns: self.trade_ns.load(Ordering::Relaxed),
            trade_slots_in: self.trade_slots_in.load(Ordering::Relaxed),
            trade_fallbacks: self.trade_fallbacks.load(Ordering::Relaxed),
            trade_grants: self.trade_grants.load(Ordering::Relaxed),
            trade_refusals: self.trade_refusals.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            prefetch_fills: self.prefetch_fills.load(Ordering::Relaxed),
            wealth_updates: self.wealth_updates.load(Ordering::Relaxed),
            spawns: self.spawns.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_threads: self.checkpoint_threads.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            driver_parks: self.driver_parks.load(Ordering::Relaxed),
            driver_wakeups: self.driver_wakeups.load(Ordering::Relaxed),
            dup_dropped: self.dup_dropped.load(Ordering::Relaxed),
            ctrl_retries: self.ctrl_retries.load(Ordering::Relaxed),
            rpc_local: self.rpc_local.load(Ordering::Relaxed),
            rpc_remote: self.rpc_remote.load(Ordering::Relaxed),
            aff_decays: self.aff_decays.load(Ordering::Relaxed),
        }
    }
}

/// Per-thread data recorded between a body finishing and the scheduler
/// reaping it: the panic message and/or the encoded return value.
#[derive(Debug, Default)]
pub(crate) struct ExitNote {
    pub value: Option<Vec<u8>>,
    pub panic_msg: Option<String>,
}

/// The per-node runtime state.
pub(crate) struct NodeCtx {
    pub node: usize,
    pub n_nodes: usize,
    /// Fabric id of the host control endpoint.
    pub host_id: usize,
    pub sched: Scheduler,
    pub mgr: NodeSlotManager,
    pub ep: Endpoint,
    /// This endpoint's payload-buffer pool (cheap-clone handle; protocol
    /// encoders check their buffers out of it).
    pub pool: BufPool,
    pub out: Arc<OutputSink>,
    pub registry: Arc<Registry>,
    pub spawn_table: Arc<SpawnTable>,
    pub services: Arc<ServiceTable>,
    pub typed_services: Arc<TypedServiceTable>,
    pub nodeheap: NodeHeap,
    pub stats: Arc<NodeStats>,
    /// Threads resident on this node, by tid.
    pub threads: HashMap<u64, DescPtr>,
    /// Panic messages / return values of threads mid-exit (see [`ExitNote`]).
    pub exit_notes: HashMap<u64, ExitNote>,
    /// Ingested-but-unhandled messages, one FIFO lane per priority class
    /// ([`handlers::Class`]); the pump drains control before migration
    /// before data.
    pub inbox: [VecDeque<Message>; N_CLASSES],
    /// Replies parked for green threads blocked in a protocol exchange.
    pub replies: VecDeque<Message>,
    /// Spawn-bearing messages (SPAWN_KEY / RPC_SPAWN / RPC_CALL) received
    /// while the bitmap was frozen; replayed after NEG_DONE.  Never
    /// re-sent to self — a self-send is immediately deliverable, so the
    /// pump's drain loop would chase its own re-injection forever.
    pub deferred: VecDeque<Message>,
    /// Bitmap frozen by an in-flight global negotiation (paper §4.4 (a)).
    pub frozen: bool,
    /// The peer whose `NEG_BITMAP_REQ` froze us (None when the freeze is
    /// our own negotiation).  If that initiator dies it can never send
    /// `NEG_DONE`, so its death unfreezes us.
    pub frozen_by: Option<usize>,
    /// A local thread currently runs the remote-acquire protocol (trade
    /// or global negotiation).
    pub negotiating: bool,
    /// Green threads waiting their turn at the remote-acquire protocol,
    /// parked via `marcel::block_current` (no spinning); the finishing
    /// holder unblocks the head.
    pub neg_waiters: VecDeque<DescPtr>,
    /// Last-known free-slot counts per node, refreshed by every
    /// piggybacked wealth hint (shared with the host for observability).
    pub peer_wealth: Arc<Vec<AtomicU64>>,
    /// Cumulative RPC-shaped messages this node's threads exchanged with
    /// each peer node (self included at `[node]`) — the node-level
    /// communication-affinity row, shared with the host for
    /// [`crate::machine::Machine::affinity`].
    pub affinity: Arc<Vec<AtomicU64>>,
    /// When each peer's gossiped load/wealth entry was last refreshed
    /// (None = never heard).  A balancer probe younger than one heartbeat
    /// interval reuses this instead of a LOAD_REQ round trip.
    pub hint_at: Vec<Option<Instant>>,
    /// Trade ids whose responses the pump consumes directly instead of
    /// parking for a green thread: the in-flight watermark prefetch plus
    /// any timed-out demand trades (their late grants must still be
    /// adopted or the lender's cleared slots would be stranded).
    pub prefetch_pending: HashSet<u64>,
    /// Trade id of the one in-flight watermark prefetch, if any; only its
    /// own reply re-arms the prefetcher (a late demand-trade reply must
    /// not).
    pub prefetch_inflight: Option<u64>,
    /// Peer the in-flight prefetch was sent to; its death re-arms the
    /// prefetcher immediately instead of waiting out the lost reply.
    pub prefetch_target: Option<usize>,
    /// Trade grants that arrived while the bitmap was frozen; adopted
    /// after NEG_DONE.
    pub pending_adopts: Vec<SlotRange>,
    /// Lock service state (meaningful on the current coordinator — the
    /// lowest-id live node; see [`NodeCtx::coordinator`]).
    pub lock_holder: Option<usize>,
    pub lock_queue: VecDeque<usize>,
    /// Grant embargo after *inheriting* the coordinator role.  The dead
    /// predecessor may have granted a holder whose NEG_BITMAP_REQ has not
    /// frozen us yet; granting a second holder inside that window would
    /// run two critical sections at once.  Until the instant passes (or
    /// the in-flight holder's gather freezes us, which also defers
    /// grants), the queue waits.
    pub coord_settle_until: Option<Instant>,
    /// Per-(source, class) receive dedup windows, indexed
    /// `src * N_CLASSES + class`.  Chaos duplicates reuse the original's
    /// fabric sequence number, so a replay lands on an already-set bit
    /// and is dropped before any handler runs.
    pub dedup: Vec<crate::handlers::DedupWindow>,
    /// Reclaim ids already adopted (id → slots granted), so a retried
    /// NODE_RECLAIM re-acks the recorded count instead of re-adopting.
    pub done_reclaims: HashMap<u64, u32>,
    /// Threads that exited while the bitmap was frozen; released later.
    pub zombies: Vec<DescPtr>,
    pub shutdown: bool,
    shutdown_acked: bool,
    /// This node was killed (power-cord semantics): the driver stops
    /// stepping it, the fabric refuses its traffic, and nothing it owned
    /// is released locally — recovery happens on the survivors.
    pub killed: bool,
    /// Peers known to be dead.  Their late (zombie) messages are dropped
    /// at dispatch, the trader and prefetcher skip them, and waits
    /// targeting them fail with `NodeFailed` instead of timing out.
    pub dead_nodes: HashSet<usize>,
    /// Monotonic source of node-unique typed-LRPC call ids.
    call_counter: u64,
    /// Typed-LRPC calls issued from this node whose green caller is still
    /// waiting, mapped to the callee node.  A response whose call id is
    /// absent (the caller already timed out) is dropped instead of parked,
    /// so late replies cannot accumulate in `replies` forever; the callee
    /// id lets a death synthesize `NODE_FAILED` replies for every call
    /// aimed at the corpse.
    pub pending_calls: HashMap<u64, usize>,
    /// Spill log this node checkpoints into (None disables checkpointing).
    pub spill: Option<SpillLog>,
    /// Epoch stamped on the next checkpoint record; replay keeps the
    /// newest epoch per tid, so a checkpoint is superseded, never mutated.
    ckpt_epoch: u64,
    /// Periodic checkpoint cadence (None = only explicit `CKPT_REQ`s).
    pub checkpoint_every: Option<Duration>,
    last_checkpoint: Instant,
    /// Epidemic round cadence: gossip digests and (for the detector) the
    /// suspicion-probe rate limit.  Historically the beacon cadence.
    pub heartbeat_every: Duration,
    /// Declare a peer dead after this much silence (None disables the
    /// detector; explicit kills still propagate via `NODE_DEAD`).
    pub failure_timeout: Option<Duration>,
    /// Last time this node pushed a gossip digest.
    last_gossip: Instant,
    /// Last time any message arrived from each peer (direct evidence), or
    /// a strictly-newer gossip entry about it was merged (indirect).
    last_heard: Vec<Instant>,
    /// This node's own gossip round counter (monotonic; stamped on the
    /// self-entry of every digest it originates).
    gossip_seq: u32,
    /// Newest gossip sequence number seen per origin; the merge rule is
    /// strictly-newer-wins, so relays of a corpse's stale rounds can never
    /// refresh its entry.
    peer_seq: Vec<u32>,
    /// Last gossiped resident-thread count per peer (load hint for the
    /// balancer's power-of-two-choices sampling).
    pub peer_load: Vec<u32>,
    /// Silence-scan cursor: the next peer the incremental detector looks
    /// at.  Advanced a chunk per driver step instead of all p per tick.
    scan_cursor: usize,
    last_scan: Instant,
    /// Per-peer suspicion-probe rate limit.
    last_probe: Vec<Instant>,
    /// Protocol sampling RNG (node-seeded, deterministic per node).
    pub(crate) rng: crate::rng::SplitMix64,
    // Config knobs.
    pub fit: isomalloc::FitPolicy,
    pub trim: bool,
    pub pack_full_slots: bool,
    pub scheme: MigrationScheme,
    pub reply_deadline: Duration,
    pub max_rpc_payload: usize,
    /// Most messages one `pump()` call handles before yielding back to the
    /// scheduler (the `pump_budget` knob).
    pub pump_budget: usize,
    /// Longest doorbell park before an idle driver re-checks the world
    /// (the `idle_park` knob — a liveness backstop, not a poll period).
    pub idle_park: Duration,
    /// Upper bound on threads per migration train (the `max_train` knob;
    /// 1 disables departure coalescing entirely).
    pub max_train: usize,
    /// Trade-first remote slot acquisition enabled (the `slot_trade`
    /// knob; false forces every shortfall through the §4.4 protocol).
    pub slot_trade: bool,
    /// Reserve low watermark: dropping below it triggers an asynchronous
    /// prefetch trade, and a lender never grants below it.
    pub low_watermark: usize,
    /// Reserve high watermark: the prefetch target level.
    pub high_watermark: usize,
    /// Most slots asked for in one demand trade beyond the request itself
    /// (the batch that amortizes one round trip over many acquisitions).
    pub trade_batch: usize,
    /// Total attempts for at-least-once control exchanges (the
    /// `control_retries` knob, floored at 1).
    pub control_retries: u32,
    /// Compact the spill log once it holds more than this many records
    /// (the `spill_compact_after` knob; 0 disables compaction).
    pub spill_compact_after: usize,
    /// Fault-injection hook: tids whose packed record group is truncated
    /// on departure (tests only; see `Pm2Config::fault_corrupt_pack`).
    pub fault_corrupt_pack: HashSet<u64>,
}

// SAFETY: a NodeCtx is owned and driven by exactly one OS thread at a time.
unsafe impl Send for NodeCtx {}

/// Wrap a thread body so a panic records its message in the hosting node's
/// exit notes before re-raising (marcel's entry shim then marks the
/// descriptor panicked).  The note is written on whatever node the thread
/// dies on — the same node whose `finish_thread` consumes it.
pub(crate) fn instrument_body(
    tid: u64,
    f: Box<dyn FnOnce() + Send + 'static>,
) -> impl FnOnce() + Send + 'static {
    move || {
        if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
            let msg = panic_text(p.as_ref());
            with_ctx(|c| c.exit_notes.entry(tid).or_default().panic_msg = Some(msg));
            resume_unwind(p);
        }
    }
}

/// Access the node hosting the calling Marcel thread.  Never hold the
/// reference across a yield: re-enter `with_ctx` after every scheduling
/// point (the thread may have migrated to another node meanwhile).
#[inline(never)]
pub(crate) fn with_ctx<R>(f: impl FnOnce(&mut NodeCtx) -> R) -> R {
    let p = CURRENT_NODE.with(|c| c.get());
    assert!(!p.is_null(), "pm2 API called outside a PM2 machine");
    // SAFETY: single OS thread per node; the pump never runs while a Marcel
    // thread runs, so this exclusive access cannot overlap another.
    unsafe { f(&mut *p) }
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)] // one shared table per argument; a struct would just rename them
    pub(crate) fn new(
        cfg: &Pm2Config,
        node: usize,
        area: Arc<IsoArea>,
        ep: Endpoint,
        out: Arc<OutputSink>,
        registry: Arc<Registry>,
        spawn_table: Arc<SpawnTable>,
        services: Arc<ServiceTable>,
        typed_services: Arc<TypedServiceTable>,
    ) -> Self {
        let pool = ep.pool().clone();
        // Wealth prior: an even split — refined by the first piggybacked
        // hint from each peer.
        let prior = (area.n_slots() / cfg.nodes.max(1)) as u64;
        let peer_wealth: Arc<Vec<AtomicU64>> =
            Arc::new((0..cfg.nodes).map(|_| AtomicU64::new(prior)).collect());
        let spill = cfg.spill_dir.as_ref().and_then(|dir| {
            let path = dir.join(format!("node{node}.log"));
            match SpillLog::open(&path) {
                Ok(log) => Some(log),
                Err(e) => {
                    out.printf(node, &format!("spill log disabled: {e}"));
                    None
                }
            }
        });
        let now = Instant::now();
        NodeCtx {
            node,
            n_nodes: cfg.nodes,
            host_id: cfg.nodes,
            sched: Scheduler::new(node),
            mgr: NodeSlotManager::new(node, cfg.nodes, area, cfg.distribution, cfg.slot_cache),
            ep,
            pool,
            out,
            registry,
            spawn_table,
            services,
            typed_services,
            nodeheap: NodeHeap::default(),
            stats: Arc::new(NodeStats::default()),
            threads: HashMap::new(),
            exit_notes: HashMap::new(),
            inbox: Default::default(),
            deferred: VecDeque::new(),
            replies: VecDeque::new(),
            frozen: false,
            frozen_by: None,
            negotiating: false,
            neg_waiters: VecDeque::new(),
            peer_wealth,
            affinity: Arc::new((0..cfg.nodes).map(|_| AtomicU64::new(0)).collect()),
            hint_at: vec![None; cfg.nodes],
            prefetch_pending: HashSet::new(),
            prefetch_inflight: None,
            prefetch_target: None,
            pending_adopts: Vec::new(),
            lock_holder: None,
            lock_queue: VecDeque::new(),
            coord_settle_until: None,
            dedup: vec![
                crate::handlers::DedupWindow::default();
                (cfg.nodes + 1) * crate::handlers::N_CLASSES
            ],
            done_reclaims: HashMap::new(),
            zombies: Vec::new(),
            shutdown: false,
            shutdown_acked: false,
            killed: false,
            dead_nodes: HashSet::new(),
            call_counter: 0,
            pending_calls: HashMap::new(),
            spill,
            ckpt_epoch: 0,
            checkpoint_every: cfg.checkpoint_every,
            last_checkpoint: now,
            heartbeat_every: cfg.heartbeat_every,
            failure_timeout: cfg.failure_timeout,
            last_gossip: now,
            last_heard: vec![now; cfg.nodes],
            gossip_seq: 0,
            peer_seq: vec![0; cfg.nodes],
            peer_load: vec![0; cfg.nodes],
            scan_cursor: (node + 1) % cfg.nodes.max(1),
            last_scan: now,
            last_probe: vec![now; cfg.nodes],
            rng: crate::rng::SplitMix64::new(0xC0FF_EE00 ^ (node as u64) << 17),
            fit: cfg.fit,
            trim: cfg.trim,
            pack_full_slots: cfg.pack_full_slots,
            scheme: cfg.scheme,
            reply_deadline: cfg.reply_deadline,
            max_rpc_payload: cfg.max_rpc_payload,
            pump_budget: cfg.pump_budget.max(1),
            idle_park: cfg.idle_park,
            max_train: cfg.max_train.max(1),
            slot_trade: cfg.slot_trade,
            low_watermark: cfg.slot_low_watermark,
            high_watermark: cfg.slot_high_watermark.max(cfg.slot_low_watermark),
            trade_batch: cfg.trade_batch.max(1),
            control_retries: cfg.control_retries.max(1),
            spill_compact_after: cfg.spill_compact_after,
            fault_corrupt_pack: cfg.fault_corrupt_pack.iter().copied().collect(),
        }
    }

    /// Record a piggybacked free-slot count for `node`.
    pub(crate) fn set_peer_wealth(&mut self, node: usize, wealth: u64) {
        if let Some(w) = self.peer_wealth.get(node) {
            w.store(wealth, Ordering::Relaxed);
            self.stats.wealth_updates.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Account one RPC-shaped message exchanged with `peer` in the
    /// node-level affinity row and the local/remote stats counters.
    pub(crate) fn note_traffic(&mut self, peer: usize) {
        if let Some(a) = self.affinity.get(peer) {
            a.fetch_add(1, Ordering::Relaxed);
        }
        if peer == self.node {
            self.stats.rpc_local.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.rpc_remote.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decay every resident thread's affinity table by `shift` (one
    /// balancer epoch has passed).  `shift == 0` is a no-op.
    pub(crate) fn decay_thread_affinity(&mut self, shift: u32) {
        if shift == 0 {
            return;
        }
        for &d in self.threads.values() {
            // SAFETY: resident descriptors are owned by this node's driver;
            // the pump never runs concurrently with its green threads.
            unsafe { (*d).decay_affinity(shift) };
        }
        self.stats.aff_decays.fetch_add(1, Ordering::Relaxed);
    }

    /// A gossiped load hint for `peer` younger than one heartbeat
    /// interval, if we hold one — fresh enough for a balancer round to
    /// reuse instead of paying a LOAD_REQ round trip.
    pub(crate) fn fresh_load_hint(&self, peer: usize) -> Option<u32> {
        let at = (*self.hint_at.get(peer)?)?;
        if at.elapsed() <= self.heartbeat_every {
            Some(self.peer_load[peer])
        } else {
            None
        }
    }

    /// The peer with the largest known free-slot reserve strictly above
    /// `floor`, if any.  Hints are refreshed by every trade, load reply,
    /// migrate ack and gossip digest, so a drained peer stops being asked
    /// after one refusal.
    ///
    /// Up to [`FULL_PROBE_MAX`] nodes this is the exact O(p) scan the
    /// small-machine ablations were measured with; above it the table is
    /// *sampled* (`RICH_SAMPLE` random candidates, best-of-sample) so the
    /// per-acquisition cost stops growing with the machine.
    pub(crate) fn richest_peer(&self, floor: u64) -> Option<usize> {
        if self.n_nodes <= FULL_PROBE_MAX {
            return (0..self.n_nodes)
                .filter(|&p| p != self.node && !self.dead_nodes.contains(&p))
                .map(|p| (self.peer_wealth[p].load(Ordering::Relaxed), p))
                .filter(|&(w, _)| w > floor)
                .max()
                .map(|(_, p)| p);
        }
        let mut best: Option<(u64, usize)> = None;
        for _ in 0..RICH_SAMPLE {
            let p = self.rng.below(self.n_nodes);
            if p == self.node || self.dead_nodes.contains(&p) {
                continue;
            }
            let w = self.peer_wealth[p].load(Ordering::Relaxed);
            if w > floor && best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, p));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Watermark prefetch: when the reserve drops below the low
    /// watermark, top it back up to the high watermark with one
    /// asynchronous trade to the richest known peer.  Runs on the driver
    /// (never a green thread), costs O(1) per step, and never blocks —
    /// the response is consumed by the pump whenever it arrives.
    fn maybe_prefetch(&mut self) {
        if !self.slot_trade
            || self.n_nodes < 2
            || self.low_watermark == 0
            || self.shutdown
            || self.frozen
            || self.prefetch_inflight.is_some()
        {
            return;
        }
        let free = self.mgr.free_slots();
        if free >= self.low_watermark {
            return;
        }
        // Only ask peers that can plausibly grant (they keep their own
        // low watermark back), so a uniformly poor cluster goes quiet
        // instead of ping-ponging refusals.
        let Some(peer) = self.richest_peer(self.low_watermark as u64) else {
            return;
        };
        let want = (self.high_watermark - free).max(1);
        let id = self.next_call_id();
        self.prefetch_pending.insert(id);
        self.prefetch_inflight = Some(id);
        self.prefetch_target = Some(peer);
        self.stats.prefetches.fetch_add(1, Ordering::Relaxed);
        let req = proto::encode_slot_trade_req(&self.pool, id, want as u32, 1, free as u32);
        let _ = self.ep.send(peer, tag::SLOT_TRADE_REQ, req);
    }

    // -- fault tolerance & epidemic dissemination ---------------------------

    /// Gossip round + incremental silence detector.  Replaces the old
    /// beacon tick that sent HEARTBEATs to all p peers and scanned all p
    /// silence stamps on every tick — O(p) per node per tick, O(p²) per
    /// machine, the cost that made p = 256 infeasible.  Now the per-step
    /// cost is O(fanout + chunk):
    ///
    /// * once per `heartbeat_every`, push an epidemic digest to a few
    ///   random peers ([`NodeCtx::gossip_round`]) — also enabled without a
    ///   detector on machines above [`FULL_PROBE_MAX`] nodes, where the
    ///   balancer and trader live off the gossiped hints;
    /// * when the detector is armed, advance the silence-scan cursor a
    ///   chunk of peers per step ([`NodeCtx::silence_scan`]), probing
    ///   suspects directly and declaring death purely by silence timeout,
    ///   exactly as before.
    fn fault_tick(&mut self) {
        if self.n_nodes < 2 || self.shutdown {
            // Shutdown drains nodes at different speeds; a node that
            // finished early is quiet, not dead.
            return;
        }
        let detector = self.failure_timeout.is_some();
        if !detector && self.n_nodes <= FULL_PROBE_MAX {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_gossip) >= self.heartbeat_every {
            self.last_gossip = now;
            self.gossip_round();
        }
        if detector {
            self.silence_scan(now);
        }
    }

    /// Relayed entries per digest: [`GOSSIP_RELAY`] on small machines,
    /// growing as p/8 up to [`GOSSIP_RELAY_MAX`].  Scaling the *payload*
    /// (cheap bytes) instead of the *fanout* (messages) keeps per-node
    /// message rate O(1) while the per-entry refresh interval stays well
    /// under the suspicion-probe threshold — otherwise a p = 256 machine
    /// ages most of its table past `timeout / 2` between refreshes and
    /// the detector degenerates into an all-pairs probe storm.
    fn relay_budget(&self) -> usize {
        (self.n_nodes / 8).clamp(GOSSIP_RELAY, GOSSIP_RELAY_MAX)
    }

    /// One epidemic round: bump our sequence number and push a digest —
    /// our own wealth/load claim plus up to [`relay_budget`](Self::relay_budget)
    /// relayed table entries — to [`GOSSIP_FANOUT`] random live peers.
    /// O(1) messages per node per round regardless of p; a digest reaches
    /// the whole machine in O(log p) rounds with high probability.
    fn gossip_round(&mut self) {
        self.gossip_seq += 1;
        let relay = self.relay_budget();
        let mut entries = Vec::with_capacity(1 + relay);
        entries.push(proto::GossipEntry {
            node: self.node as u32,
            seq: self.gossip_seq,
            wealth: self.mgr.free_slots() as u32,
            load: self.sched.resident() as u32,
        });
        for _ in 0..(2 * relay) {
            if entries.len() > relay {
                break;
            }
            let p = self.rng.below(self.n_nodes);
            // Relay only what we actually learned (seq 0 = never heard);
            // duplicates across draws are harmless, the merge is idempotent.
            if p == self.node || self.dead_nodes.contains(&p) || self.peer_seq[p] == 0 {
                continue;
            }
            entries.push(proto::GossipEntry {
                node: p as u32,
                seq: self.peer_seq[p],
                wealth: self.peer_wealth[p].load(Ordering::Relaxed) as u32,
                load: self.peer_load[p],
            });
        }
        let buf = proto::encode_gossip(&self.pool, &entries);
        let mut sent = 0usize;
        // The payload is refcounted, so the fanout shares one buffer.  A
        // bounded number of draws, not a scan: on a machine of corpses the
        // loop gives up instead of hunting for a live peer.
        for _ in 0..(GOSSIP_FANOUT * 4) {
            if sent >= GOSSIP_FANOUT {
                break;
            }
            let p = self.rng.below(self.n_nodes);
            if p == self.node || self.dead_nodes.contains(&p) {
                continue;
            }
            let _ = self.ep.send(p, tag::GOSSIP, buf.clone());
            sent += 1;
        }
    }

    /// Merge one epidemic digest entry.  Strictly-newer sequence numbers
    /// win; entries about nodes already declared dead are ignored (no
    /// resurrection by stale relay).  A newer sequence number is indirect
    /// *liveness evidence* — the origin cannot have produced a fresh round
    /// after dying, and a corpse's counter stops advancing, so relays of
    /// its old rounds never refresh it.  Staleness of the indirect path is
    /// bounded by the O(log p) propagation time, far below any configured
    /// `failure_timeout` (timeouts are ≥ 6× the round cadence).
    pub(crate) fn absorb_gossip(&mut self, e: proto::GossipEntry) {
        let n = e.node as usize;
        if n == self.node || n >= self.n_nodes || self.dead_nodes.contains(&n) {
            return;
        }
        if e.seq > self.peer_seq[n] {
            self.peer_seq[n] = e.seq;
            self.peer_load[n] = e.load;
            self.hint_at[n] = Some(Instant::now());
            self.set_peer_wealth(n, e.wealth as u64);
            if self.failure_timeout.is_some() {
                self.last_heard[n] = Instant::now();
            }
        }
    }

    /// Incremental silence scan: advance a cursor over the peer table,
    /// checking a chunk per driver step instead of all p per tick.  The
    /// chunk is sized proportionally to the time since the last scan so a
    /// busy node pays only [`SCAN_CHUNK`] peers per step while a sparsely
    /// ticked idle node still completes a full lap about once per
    /// `heartbeat_every` — detection latency is unchanged from the
    /// all-pairs scan.  A peer silent past *half* the timeout gets a
    /// direct suspicion probe (HEARTBEAT ping byte, answered with a pong);
    /// death is declared purely on the silence timeout, never on a
    /// transport error.  At most [`SCAN_CHUNK`] probes go out per scan —
    /// with normal gossip coverage suspects are rare and the cap is
    /// invisible, but if the whole table somehow goes stale at once (a
    /// long host stall, a just-launched giant machine) it bounds the
    /// probe rate at O(1) per node per tick instead of O(p); the deferred
    /// suspects are reached on the next laps, well inside the timeout.
    fn silence_scan(&mut self, now: Instant) {
        let timeout = self.failure_timeout.expect("detector armed");
        let dt = now.duration_since(self.last_scan);
        self.last_scan = now;
        let per_lap = self.heartbeat_every.as_nanos().max(1);
        let k = ((self.n_nodes as u128 * dt.as_nanos()) / per_lap)
            .max(SCAN_CHUNK as u128)
            .min(self.n_nodes as u128) as usize;
        let mut probes = 0usize;
        for _ in 0..k {
            let p = self.scan_cursor;
            self.scan_cursor = (self.scan_cursor + 1) % self.n_nodes;
            if p == self.node || self.dead_nodes.contains(&p) {
                continue;
            }
            let age = now.duration_since(self.last_heard[p]);
            if age > timeout {
                self.declare_dead(p);
            } else if age >= timeout / 2
                && probes < SCAN_CHUNK
                && now.duration_since(self.last_probe[p]) >= self.heartbeat_every
            {
                self.last_probe[p] = now;
                probes += 1;
                let _ = self.ep.send(p, tag::HEARTBEAT, vec![1u8]);
            }
        }
    }

    /// Silence verdict (or first-hand observation): mark `dead` on the
    /// fabric, announce it to every survivor and the host, and purge it
    /// locally.  Idempotent — duplicate verdicts from concurrent
    /// detectors collapse in `note_node_dead`.
    pub(crate) fn declare_dead(&mut self, dead: usize) {
        if dead == self.node || dead >= self.n_nodes || self.dead_nodes.contains(&dead) {
            return;
        }
        self.ep.mark_dead(dead);
        let buf = proto::encode_node_dead(&self.pool, dead);
        let _ = self.ep.broadcast(tag::NODE_DEAD, buf);
        self.note_node_dead(dead);
    }

    /// Absorb the fact that `dead` is gone: refuse its future traffic,
    /// stop routing anything toward it, and fail every local wait aimed
    /// at it.  Safe to call any number of times.
    pub(crate) fn note_node_dead(&mut self, dead: usize) {
        if dead == self.node || dead >= self.n_nodes || !self.dead_nodes.insert(dead) {
            return;
        }
        self.ep.mark_dead(dead);
        // A corpse has no wealth: the trader and balancer stop asking.
        self.set_peer_wealth(dead, 0);
        // Re-arm the prefetcher if its in-flight trade died with the peer.
        if self.prefetch_target == Some(dead) {
            if let Some(id) = self.prefetch_inflight.take() {
                self.prefetch_pending.remove(&id);
            }
            self.prefetch_target = None;
        }
        // Synthesize NODE_FAILED replies for typed-LRPC calls aimed at the
        // corpse, so green callers resolve immediately instead of eating
        // their full reply deadline.
        let orphaned: Vec<u64> = self
            .pending_calls
            .iter()
            .filter(|&(_, &callee)| callee == dead)
            .map(|(&id, _)| id)
            .collect();
        for id in orphaned {
            let payload = proto::encode_rpc_resp(
                &self.pool,
                id,
                proto::rpc_status::NODE_FAILED,
                &(dead as u64).to_le_bytes(),
            );
            self.replies.push_back(Message {
                src: dead,
                dst: self.node,
                tag: tag::RPC_RESP,
                seq: 0,
                wire_ns: 0,
                payload,
            });
        }
        // Lock service: a corpse can neither hold nor want the
        // global-negotiation lock.
        self.lock_queue.retain(|&w| w != dead);
        if self.lock_holder == Some(dead) {
            self.lock_holder = None;
        }
        // Did this death hand us the coordinator role?  The predecessor
        // may have granted a holder whose gather has not frozen us yet;
        // embargo grants briefly so that holder's critical section can
        // assert itself before we would start a second one.
        if dead < self.node && self.is_coordinator() {
            let settle = Duration::from_millis(50).min(self.reply_deadline / 4);
            self.coord_settle_until = Some(Instant::now() + settle);
        }
        // If the dead node froze our bitmap as a negotiation initiator it
        // can never send NEG_DONE; unfreeze, or this node wedges forever.
        if self.frozen && self.frozen_by == Some(dead) {
            self.frozen = false;
            self.frozen_by = None;
        }
        self.service_lock_queue();
    }

    /// The §4.4 lock-service coordinator: the lowest-id node not known to
    /// be dead.  Resolved from the fabric's death certificates (monotonic
    /// and machine-wide consistent) merged with this node's own
    /// `dead_nodes` set, so every survivor converges on the same answer
    /// without a ballot — the rank is the node id, and the election *is*
    /// the death announcement.
    pub(crate) fn coordinator(&self) -> usize {
        (0..self.n_nodes)
            .find(|&n| !self.dead_nodes.contains(&n) && !self.ep.is_dead(n))
            .unwrap_or(0)
    }

    /// Whether this node currently serves the §4.4 lock.
    pub(crate) fn is_coordinator(&self) -> bool {
        self.coordinator() == self.node
    }

    /// Grant the lock to the queue head if the service is free to do so:
    /// we are the coordinator, no holder is out, no settle embargo is in
    /// force, and no in-flight critical section has our bitmap frozen.
    /// Called from every event that could unblock a grant (request,
    /// release, NEG_DONE, a death, the step loop for embargo expiry).
    pub(crate) fn service_lock_queue(&mut self) {
        if self.lock_holder.is_some()
            || self.lock_queue.is_empty()
            || self.frozen
            || !self.is_coordinator()
        {
            return;
        }
        if let Some(until) = self.coord_settle_until {
            if Instant::now() < until {
                return;
            }
            self.coord_settle_until = None;
        }
        if let Some(next) = self.lock_queue.pop_front() {
            self.lock_holder = Some(next);
            let _ = self.ep.send(next, tag::NEG_LOCK_GRANT, Vec::new());
        }
    }

    /// Admit `seq` from `src` into the per-(source, class) dedup window;
    /// `false` means an already-seen sequence number (a chaos duplicate)
    /// that must not reach a handler.
    pub(crate) fn dedup_admit(
        &mut self,
        src: usize,
        class: crate::handlers::Class,
        seq: u64,
    ) -> bool {
        let idx = src * crate::handlers::N_CLASSES + class as usize;
        match self.dedup.get_mut(idx) {
            Some(w) => w.admit(seq),
            None => true,
        }
    }

    /// Periodic checkpoint tick (the `checkpoint_every` knob).
    fn maybe_checkpoint(&mut self) {
        let Some(every) = self.checkpoint_every else {
            return;
        };
        if self.spill.is_none() || self.shutdown || self.last_checkpoint.elapsed() < every {
            return;
        }
        self.last_checkpoint = Instant::now();
        if let Err(e) = self.checkpoint_now() {
            self.out
                .printf(self.node, &format!("checkpoint failed: {e}"));
        }
    }

    /// Checkpoint every migratable, currently-ready thread to the spill
    /// log under a fresh epoch.  The pack is a *snapshot* — no slots are
    /// surrendered, the threads keep running — so a checkpoint is
    /// superseded, never mutated: the replayer simply keeps the newest
    /// epoch per tid.  Returns the number of thread images written.
    pub(crate) fn checkpoint_now(&mut self) -> crate::error::Result<u32> {
        if self.spill.is_none() || self.frozen {
            return Ok(0);
        }
        let ds: Vec<DescPtr> = self
            .threads
            .values()
            .copied()
            .filter(|&d| unsafe {
                (*d).thread_state() == ThreadState::Ready
                    && (*d).flags & marcel::thread::flags::MIGRATABLE != 0
            })
            .collect();
        if ds.is_empty() {
            return Ok(0);
        }
        self.ckpt_epoch += 1;
        // SAFETY: every snapshot thread is Ready and therefore frozen from
        // the driver's point of view — the pump never runs while a green
        // thread runs.
        let buf = unsafe {
            migration::pack_threads_snapshot(&ds, &self.mgr, self.pack_full_slots, &self.pool)?
        };
        let epoch = self.ckpt_epoch;
        let log = self.spill.as_mut().expect("spill checked above");
        log.append(epoch, &buf)?;
        // Periodic checkpointing grows the log without bound (every epoch
        // re-writes every live thread); compaction rewrites it down to the
        // newest record per tid once it crosses the knob.
        if self.spill_compact_after > 0 && log.records() > self.spill_compact_after {
            if let Err(e) = log.compact() {
                self.out
                    .printf(self.node, &format!("spill compaction failed: {e}"));
            }
        }
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.stats
            .checkpoint_threads
            .fetch_add(ds.len() as u64, Ordering::Relaxed);
        Ok(ds.len() as u32)
    }

    /// Next node-unique typed-LRPC call id (node in the top bits, so ids
    /// never collide across concurrent callers on different nodes).
    pub(crate) fn next_call_id(&mut self) -> u64 {
        self.call_counter += 1;
        ((self.node as u64) << 48) | self.call_counter
    }

    /// Record `tid`'s encoded return value for pickup in `finish_thread`.
    pub(crate) fn note_exit_value(&mut self, tid: u64, bytes: Vec<u8>) {
        self.exit_notes.entry(tid).or_default().value = Some(bytes);
    }

    /// Bind this node to the calling OS thread (marcel + pm2 TLS).
    pub(crate) fn activate(&mut self) {
        self.sched.activate();
        CURRENT_NODE.with(|c| c.set(self as *mut NodeCtx));
    }

    /// Pull every deliverable message off the endpoint into its priority
    /// lane.  Wire time is charged here (receiver-clocked), exactly as the
    /// old drain did.
    fn ingest(&mut self) {
        while let Some(m) = self.ep.try_recv() {
            if self.failure_timeout.is_some() && m.src < self.n_nodes {
                // Any arrival is a liveness proof; the detector only fires
                // on total silence.
                self.last_heard[m.src] = Instant::now();
            }
            let class = handlers::classify(m.tag);
            // Dedup guard: drop chaos duplicates (same fabric seq as a
            // message this window already admitted) before any handler
            // can double-apply them — a replayed SLOT_TRADE_RESP must not
            // adopt its slots twice.  It runs here, once per fabric
            // arrival, because dispatch sees some messages twice (those
            // deferred during a freeze are replayed after NEG_DONE).
            // Self-sends skip the window: the fabric never faults them.
            if m.src != self.node && !self.dedup_admit(m.src, class, m.seq) {
                self.stats.dup_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.inbox[class as usize].push_back(m);
        }
    }

    /// Highest-priority pending message, if any (control > migration >
    /// data; FIFO within a class).
    fn next_message(&mut self) -> Option<Message> {
        self.inbox.iter_mut().find_map(|lane| lane.pop_front())
    }

    /// Any ingested message not yet handled?
    pub(crate) fn inbox_pending(&self) -> bool {
        self.inbox.iter().any(|lane| !lane.is_empty())
    }

    /// Ingest and handle pending messages — control class first, then
    /// migration, then data, at most `pump_budget` of them — and return
    /// whether any were handled.  Budget leftovers stay queued for the
    /// next pump, so one flooded lane cannot monopolize the driver either.
    pub(crate) fn pump(&mut self) -> bool {
        self.ingest();
        let mut handled = 0usize;
        while handled < self.pump_budget {
            let Some(m) = self.next_message() else { break };
            self.handle(m);
            handled += 1;
            if self.killed {
                // The cord was pulled mid-pump: everything still queued
                // dies with the node.
                break;
            }
            // Handling may have produced immediately-deliverable traffic
            // (self-sends are free): pick it up so priority holds across
            // everything currently deliverable.
            self.ingest();
        }
        handled > 0
    }

    /// Dispatch one message through the handler table.
    pub(crate) fn handle(&mut self, m: Message) {
        handlers::dispatch(self, m);
    }

    /// One scheduling step: pump, then run one thread quantum.  Returns true
    /// if any work was done.
    pub(crate) fn step(&mut self) -> bool {
        if self.killed {
            return false;
        }
        self.stats.steps.fetch_add(1, Ordering::Relaxed);
        let pumped = self.pump();
        if self.killed {
            return false;
        }
        self.fault_tick();
        self.maybe_checkpoint();
        if !self.lock_queue.is_empty() {
            // Inherited-coordinator embargo expiry: no message may arrive
            // to trigger the deferred grant, so the step loop must.
            self.service_lock_queue();
        }
        if !self.frozen && !self.zombies.is_empty() {
            self.reap_zombies();
        }
        if !self.frozen && !self.pending_adopts.is_empty() {
            // Trade grants that landed during a critical section: the
            // lender already cleared its bits, so adoption completes the
            // transfer the moment the freeze lifts.
            let ranges = std::mem::take(&mut self.pending_adopts);
            if !self.mgr.adopt_batch(&ranges) {
                // A grant that no longer validates costs the grant, never
                // the node (mirrors the corrupt-migration discipline).
                self.out
                    .printf(self.node, "dropped invalid deferred slot grant");
            }
        }
        if !self.frozen && !self.deferred.is_empty() {
            // Replay spawns parked during the critical section.  Handling
            // them cannot re-freeze the bitmap, so this drains fully.
            let deferred = std::mem::take(&mut self.deferred);
            for m in deferred {
                self.handle(m);
            }
        }
        self.maybe_prefetch();
        self.activate();
        match self.sched.run_one() {
            Some(outcome) => {
                self.handle_outcome(outcome);
                true
            }
            None => pumped,
        }
    }

    /// Ready to stop?  (Also false while any ingested message awaits its
    /// budget slice — an unhandled SPAWN_KEY is still pending work.)
    pub(crate) fn done(&self) -> bool {
        self.shutdown
            && self.sched.resident() == 0
            && self.zombies.is_empty()
            && self.deferred.is_empty()
            && !self.inbox_pending()
    }

    /// Drained *and* acknowledged: the driver may exit.  A killed node is
    /// trivially finished — nothing it could say would be heard.
    pub(crate) fn finished(&self) -> bool {
        self.killed || (self.done() && self.shutdown_acked)
    }

    /// Send the one-time shutdown acknowledgement once drained.
    pub(crate) fn maybe_ack_shutdown(&mut self) {
        if self.killed {
            return;
        }
        if self.done() && !self.shutdown_acked {
            self.shutdown_acked = true;
            let _ = self.ep.send(self.host_id, tag::SHUTDOWN_ACK, Vec::new());
        }
    }

    // -- outcome handling ---------------------------------------------------

    fn handle_outcome(&mut self, outcome: RunOutcome) {
        match outcome {
            // SAFETY: `d` came from this scheduler's run_one.
            RunOutcome::Yielded(d) => unsafe { self.sched.requeue(d) },
            RunOutcome::Exited(d) => self.finish_thread(d),
            RunOutcome::MigrateSelf(d, dest) | RunOutcome::PreemptMigrate(d, dest) => {
                self.depart(d, dest)
            }
            RunOutcome::Blocked(_) => {
                // Waiting threads re-enter via Scheduler::unblock; the PM2
                // layer itself only uses poll+yield waits.
            }
        }
    }

    fn finish_thread(&mut self, d: DescPtr) {
        // SAFETY: the thread has exited; we are the only owner now.
        unsafe {
            let tid = (*d).tid;
            let panicked = (*d).panicked == 1;
            let home = (*d).home_node as usize;
            self.sched.note_gone();
            self.threads.remove(&tid);
            self.nodeheap.release_thread(tid);
            if self.frozen {
                // Slot release would mutate the bitmap inside a system-wide
                // critical section; defer ("no slot management" rule, §4.4).
                self.zombies.push(d);
            } else {
                marcel::release_thread_resources(d, &mut self.mgr)
                    .expect("releasing thread resources");
            }
            let note = self.exit_notes.remove(&tid).unwrap_or_default();
            let exit = ThreadExit {
                tid,
                panicked,
                died_on: self.node,
                panic_msg: note.panic_msg,
                value: note.value,
                failed_node: None,
            };
            if home != self.node {
                let _ = self.ep.send(
                    home,
                    tag::THREAD_EXIT,
                    proto::encode_thread_exit(&self.pool, &exit),
                );
            }
            self.registry.complete(exit);
        }
        self.maybe_ack_shutdown();
    }

    fn reap_zombies(&mut self) {
        for d in std::mem::take(&mut self.zombies) {
            // SAFETY: deferred exited threads; exclusively ours.
            unsafe {
                marcel::release_thread_resources(d, &mut self.mgr)
                    .expect("releasing deferred thread resources");
            }
        }
        self.maybe_ack_shutdown();
    }

    /// Handle a departure outcome: stage the departing thread and — the
    /// group-migration train path — sweep every *other* ready thread
    /// already flagged for preemptive migration out of the scheduler, so
    /// same-destination departures produced by one pump drain (a batched
    /// `MIGRATE_CMD`, say) leave in one wire message each instead of k.
    fn depart(&mut self, d: DescPtr, dest: usize) {
        let mut trains: Vec<(usize, Vec<DescPtr>)> = Vec::new();
        self.stage_departure(d, dest, &mut trains);
        if self.max_train > 1 {
            for (d2, dest2) in self.sched.take_migrating(self.max_train - 1) {
                self.stage_departure(d2, dest2, &mut trains);
            }
        }
        for (dest, ds) in trains {
            self.send_train(dest, &ds);
        }
        self.maybe_ack_shutdown();
    }

    /// Validate one departure and append it to its destination's train.
    fn stage_departure(
        &mut self,
        d: DescPtr,
        dest: usize,
        trains: &mut Vec<(usize, Vec<DescPtr>)>,
    ) {
        if dest == self.node || dest >= self.n_nodes || self.dead_nodes.contains(&dest) {
            // Self-migration is a no-op; bogus or dead destinations are
            // dropped back into the run queue rather than losing the
            // thread (a balancer plan can race a node death).
            unsafe {
                (*d).migrate_dest = -1;
                (*d).state = ThreadState::Ready as u32;
            }
            // SAFETY: `d` is resident here and was just marked Ready.
            unsafe { self.sched.requeue(d) };
            return;
        }
        match trains.iter_mut().find(|(t, _)| *t == dest) {
            Some((_, ds)) => ds.push(d),
            None => trains.push((dest, vec![d])),
        }
    }

    /// Freeze, pack, and ship one train of threads to `dest`.
    fn send_train(&mut self, dest: usize, ds: &[DescPtr]) {
        // SAFETY: every thread is frozen (Migrating or tagged-Ready) and
        // was removed from the scheduler's queues.
        unsafe {
            let mut tids = Vec::with_capacity(ds.len());
            for &d in ds {
                let tid = (*d).tid;
                tids.push(tid);
                (*d).state = ThreadState::Migrating as u32;
                self.sched.note_gone();
                self.threads.remove(&tid);
                // Fig. 4/9: node-local malloc data does NOT follow the thread.
                self.nodeheap.poison_departed(tid);
            }
            let t0 = Instant::now();
            let buf = migration::pack_threads(
                ds,
                &mut self.mgr,
                self.pack_full_slots,
                &self.pool,
                &self.fault_corrupt_pack,
            )
            .expect("packing migration train");
            self.stats
                .migration_pack_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.stats
                .migrations_out
                .fetch_add(ds.len() as u64, Ordering::Relaxed);
            self.stats.trains_out.fetch_add(1, Ordering::Relaxed);
            self.stats
                .migration_bytes_out
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            if let Err(e) = self.ep.send_batched(dest, tag::MIGRATION, buf, ds.len()) {
                // An endpoint died between staging and shipping.  The
                // pack already surrendered the slots with the image, so
                // the threads are gone with the train; complete them as
                // failed-on-`dest` (first-write-wins — a join never
                // hangs) instead of panicking the survivor.
                self.stats
                    .migrations_failed
                    .fetch_add(tids.len() as u64, Ordering::Relaxed);
                for tid in tids {
                    self.registry
                        .complete_if_absent(ThreadExit::node_failed(tid, dest));
                }
                if matches!(e, madeleine::NetError::NodeDead(n) if n == dest) {
                    self.note_node_dead(dest);
                }
            }
        }
    }

    // -- spawn plumbing (shared by the spawn/rpc handlers and spawn_local) --

    pub(crate) fn spawn_boxed(&mut self, tid: u64, f: Box<dyn FnOnce() + Send + 'static>) {
        self.try_spawn_boxed(tid, 0, f).expect("spawning thread");
    }

    /// Spawn with extra marcel descriptor flags (`flags::CONTROL` puts a
    /// protocol handler into the scheduler's control lane from birth).
    pub(crate) fn try_spawn_boxed(
        &mut self,
        tid: u64,
        extra_flags: u32,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Result<(), marcel::SpawnError> {
        let d = self.sched.spawn_with_tid_flags(
            &mut self.mgr,
            tid,
            extra_flags,
            instrument_body(tid, f),
        )?;
        self.finish_spawn(tid, d);
        Ok(())
    }

    /// Spawn from a green thread already running on this node.
    pub(crate) fn spawn_local<F>(&mut self, f: F) -> Result<u64, marcel::SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = self.sched.next_tid();
        let d = self
            .sched
            .spawn_with_tid(&mut self.mgr, tid, instrument_body(tid, Box::new(f)))?;
        self.finish_spawn(tid, d);
        Ok(tid)
    }

    fn finish_spawn(&mut self, tid: u64, d: DescPtr) {
        // Apply the machine's heap policy (the substrate defaults to
        // first-fit + trim; the heap is still empty here).
        // SAFETY: freshly spawned descriptor, not yet run.
        unsafe {
            isomalloc::heap::heap_init(std::ptr::addr_of_mut!((*d).heap), self.fit, self.trim);
        }
        self.threads.insert(tid, d);
        self.registry.set_location(tid, self.node);
        self.stats.spawns.fetch_add(1, Ordering::Relaxed);
    }
}
