//! The per-node runtime: scheduler + message pump + protocol handlers.
//!
//! One `NodeCtx` is the reproduction of the paper's "single (heavy) process
//! running at each node" (§2): it owns the node's slot bitmap, its thread
//! scheduler, its private heap and its network endpoint.  One OS thread
//! drives it (or, in deterministic mode, one OS thread drives all nodes
//! round-robin); Marcel threads and the message pump therefore interleave
//! but never run concurrently, which is exactly the concurrency model of a
//! user-level thread runtime.
//!
//! While a Marcel thread runs, it reaches its node through an OS-thread-
//! local pointer (see [`current`] / [`with_ctx`]); the same aliasing
//! discipline as in `marcel::sched` applies — short raw-pointer accesses,
//! nothing cached across yields.

use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isoaddr::{IsoArea, NodeSlotManager};
use madeleine::{BufPool, Endpoint, Message};
use marcel::{DescPtr, RunOutcome, Scheduler, ThreadState};

use crate::config::{MigrationScheme, Pm2Config};
use crate::migration;
use crate::nodeheap::NodeHeap;
use crate::output::OutputSink;
use crate::proto::{self, rpc_status, tag};
use crate::registry::{Registry, ServiceTable, SpawnTable, ThreadExit};
use crate::service::{panic_text, TypedServiceTable};

thread_local! {
    static CURRENT_NODE: Cell<*mut NodeCtx> = const { Cell::new(std::ptr::null_mut()) };
}

/// Live runtime counters for one node (shared with the host).
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Threads shipped away.
    pub migrations_out: AtomicU64,
    /// Threads received.
    pub migrations_in: AtomicU64,
    /// Arriving migration buffers rejected as corrupt (NAKed).
    pub migrations_failed: AtomicU64,
    /// Total bytes of outgoing migration buffers.
    pub migration_bytes_out: AtomicU64,
    /// Nanoseconds spent packing outgoing migrations (freeze & gather).
    pub migration_pack_ns: AtomicU64,
    /// Modelled wire nanoseconds charged for arriving migrations.
    pub migration_wire_ns: AtomicU64,
    /// Nanoseconds spent unpacking arriving migrations (adopt & copy).
    pub migration_unpack_ns: AtomicU64,
    /// Global negotiations initiated by this node.
    pub negotiations: AtomicU64,
    /// Total nanoseconds spent in initiated negotiations.
    pub negotiation_ns: AtomicU64,
    /// Threads spawned here.
    pub spawns: AtomicU64,
}

/// Plain snapshot of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    pub migrations_out: u64,
    pub migrations_in: u64,
    pub migrations_failed: u64,
    pub migration_bytes_out: u64,
    /// Per-stage migration cost, summed over this node's participations:
    /// packing is paid by the source…
    pub migration_pack_ns: u64,
    /// …wire time and unpacking by the destination.
    pub migration_wire_ns: u64,
    pub migration_unpack_ns: u64,
    pub negotiations: u64,
    pub negotiation_ns: u64,
    pub spawns: u64,
}

impl NodeStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            migrations_out: self.migrations_out.load(Ordering::Relaxed),
            migrations_in: self.migrations_in.load(Ordering::Relaxed),
            migrations_failed: self.migrations_failed.load(Ordering::Relaxed),
            migration_bytes_out: self.migration_bytes_out.load(Ordering::Relaxed),
            migration_pack_ns: self.migration_pack_ns.load(Ordering::Relaxed),
            migration_wire_ns: self.migration_wire_ns.load(Ordering::Relaxed),
            migration_unpack_ns: self.migration_unpack_ns.load(Ordering::Relaxed),
            negotiations: self.negotiations.load(Ordering::Relaxed),
            negotiation_ns: self.negotiation_ns.load(Ordering::Relaxed),
            spawns: self.spawns.load(Ordering::Relaxed),
        }
    }
}

/// Per-thread data recorded between a body finishing and the scheduler
/// reaping it: the panic message and/or the encoded return value.
#[derive(Debug, Default)]
pub(crate) struct ExitNote {
    pub value: Option<Vec<u8>>,
    pub panic_msg: Option<String>,
}

/// The per-node runtime state.
pub(crate) struct NodeCtx {
    pub node: usize,
    pub n_nodes: usize,
    /// Fabric id of the host control endpoint.
    pub host_id: usize,
    pub sched: Scheduler,
    pub mgr: NodeSlotManager,
    pub ep: Endpoint,
    /// This endpoint's payload-buffer pool (cheap-clone handle; protocol
    /// encoders check their buffers out of it).
    pub pool: BufPool,
    pub out: Arc<OutputSink>,
    pub registry: Arc<Registry>,
    pub spawn_table: Arc<SpawnTable>,
    pub services: Arc<ServiceTable>,
    pub typed_services: Arc<TypedServiceTable>,
    pub nodeheap: NodeHeap,
    pub stats: Arc<NodeStats>,
    /// Threads resident on this node, by tid.
    pub threads: HashMap<u64, DescPtr>,
    /// Panic messages / return values of threads mid-exit (see [`ExitNote`]).
    pub exit_notes: HashMap<u64, ExitNote>,
    /// Replies parked for green threads blocked in a protocol exchange.
    pub replies: VecDeque<Message>,
    /// Spawn-bearing messages (SPAWN_KEY / RPC_SPAWN / RPC_CALL) received
    /// while the bitmap was frozen; replayed after NEG_DONE.  Never
    /// re-sent to self — a self-send is immediately deliverable, so the
    /// pump's drain loop would chase its own re-injection forever.
    pub deferred: VecDeque<Message>,
    /// Bitmap frozen by an in-flight global negotiation (paper §4.4 (a)).
    pub frozen: bool,
    /// A local thread currently runs the negotiation protocol.
    pub negotiating: bool,
    /// Lock service state (meaningful on node 0 only).
    pub lock_holder: Option<usize>,
    pub lock_queue: VecDeque<usize>,
    /// Threads that exited while the bitmap was frozen; released later.
    pub zombies: Vec<DescPtr>,
    pub shutdown: bool,
    shutdown_acked: bool,
    /// Monotonic source of node-unique typed-LRPC call ids.
    call_counter: u64,
    /// Typed-LRPC calls issued from this node whose green caller is still
    /// waiting.  A response whose call id is absent (the caller already
    /// timed out) is dropped instead of parked, so late replies cannot
    /// accumulate in `replies` forever.
    pub pending_calls: HashSet<u64>,
    // Config knobs.
    pub fit: isomalloc::FitPolicy,
    pub trim: bool,
    pub pack_full_slots: bool,
    pub scheme: MigrationScheme,
    pub reply_deadline: Duration,
    pub max_rpc_payload: usize,
}

// SAFETY: a NodeCtx is owned and driven by exactly one OS thread at a time.
unsafe impl Send for NodeCtx {}

/// Wrap a thread body so a panic records its message in the hosting node's
/// exit notes before re-raising (marcel's entry shim then marks the
/// descriptor panicked).  The note is written on whatever node the thread
/// dies on — the same node whose `finish_thread` consumes it.
fn instrument_body(
    tid: u64,
    f: Box<dyn FnOnce() + Send + 'static>,
) -> impl FnOnce() + Send + 'static {
    move || {
        if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
            let msg = panic_text(p.as_ref());
            with_ctx(|c| c.exit_notes.entry(tid).or_default().panic_msg = Some(msg));
            resume_unwind(p);
        }
    }
}

/// Access the node hosting the calling Marcel thread.  Never hold the
/// reference across a yield: re-enter `with_ctx` after every scheduling
/// point (the thread may have migrated to another node meanwhile).
#[inline(never)]
pub(crate) fn with_ctx<R>(f: impl FnOnce(&mut NodeCtx) -> R) -> R {
    let p = CURRENT_NODE.with(|c| c.get());
    assert!(!p.is_null(), "pm2 API called outside a PM2 machine");
    // SAFETY: single OS thread per node; the pump never runs while a Marcel
    // thread runs, so this exclusive access cannot overlap another.
    unsafe { f(&mut *p) }
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)] // one shared table per argument; a struct would just rename them
    pub(crate) fn new(
        cfg: &Pm2Config,
        node: usize,
        area: Arc<IsoArea>,
        ep: Endpoint,
        out: Arc<OutputSink>,
        registry: Arc<Registry>,
        spawn_table: Arc<SpawnTable>,
        services: Arc<ServiceTable>,
        typed_services: Arc<TypedServiceTable>,
    ) -> Self {
        let pool = ep.pool().clone();
        NodeCtx {
            node,
            n_nodes: cfg.nodes,
            host_id: cfg.nodes,
            sched: Scheduler::new(node),
            mgr: NodeSlotManager::new(node, cfg.nodes, area, cfg.distribution, cfg.slot_cache),
            ep,
            pool,
            out,
            registry,
            spawn_table,
            services,
            typed_services,
            nodeheap: NodeHeap::default(),
            stats: Arc::new(NodeStats::default()),
            threads: HashMap::new(),
            exit_notes: HashMap::new(),
            deferred: VecDeque::new(),
            replies: VecDeque::new(),
            frozen: false,
            negotiating: false,
            lock_holder: None,
            lock_queue: VecDeque::new(),
            zombies: Vec::new(),
            shutdown: false,
            shutdown_acked: false,
            call_counter: 0,
            pending_calls: HashSet::new(),
            fit: cfg.fit,
            trim: cfg.trim,
            pack_full_slots: cfg.pack_full_slots,
            scheme: cfg.scheme,
            reply_deadline: cfg.reply_deadline,
            max_rpc_payload: cfg.max_rpc_payload,
        }
    }

    /// Next node-unique typed-LRPC call id (node in the top bits, so ids
    /// never collide across concurrent callers on different nodes).
    pub(crate) fn next_call_id(&mut self) -> u64 {
        self.call_counter += 1;
        ((self.node as u64) << 48) | self.call_counter
    }

    /// Record `tid`'s encoded return value for pickup in `finish_thread`.
    pub(crate) fn note_exit_value(&mut self, tid: u64, bytes: Vec<u8>) {
        self.exit_notes.entry(tid).or_default().value = Some(bytes);
    }

    /// Bind this node to the calling OS thread (marcel + pm2 TLS).
    pub(crate) fn activate(&mut self) {
        self.sched.activate();
        CURRENT_NODE.with(|c| c.set(self as *mut NodeCtx));
    }

    /// Drain and handle all deliverable messages.  Returns true if any were
    /// handled.
    pub(crate) fn pump(&mut self) -> bool {
        let mut did = false;
        while let Some(m) = self.ep.try_recv() {
            self.handle(m);
            did = true;
        }
        did
    }

    /// One scheduling step: pump, then run one thread quantum.  Returns true
    /// if any work was done.
    pub(crate) fn step(&mut self) -> bool {
        let pumped = self.pump();
        if !self.frozen && !self.zombies.is_empty() {
            self.reap_zombies();
        }
        if !self.frozen && !self.deferred.is_empty() {
            // Replay spawns parked during the critical section.  Handling
            // them cannot re-freeze the bitmap, so this drains fully.
            let deferred = std::mem::take(&mut self.deferred);
            for m in deferred {
                self.handle(m);
            }
        }
        self.activate();
        match self.sched.run_one() {
            Some(outcome) => {
                self.handle_outcome(outcome);
                true
            }
            None => pumped,
        }
    }

    /// Ready to stop?
    pub(crate) fn done(&self) -> bool {
        self.shutdown
            && self.sched.resident() == 0
            && self.zombies.is_empty()
            && self.deferred.is_empty()
    }

    /// Drained *and* acknowledged: the driver may exit.
    pub(crate) fn finished(&self) -> bool {
        self.done() && self.shutdown_acked
    }

    /// Send the one-time shutdown acknowledgement once drained.
    pub(crate) fn maybe_ack_shutdown(&mut self) {
        if self.done() && !self.shutdown_acked {
            self.shutdown_acked = true;
            let _ = self.ep.send(self.host_id, tag::SHUTDOWN_ACK, Vec::new());
        }
    }

    /// Wait for work when idle (threaded mode only): spin briefly — message
    /// round trips in the negotiation and migration protocols arrive within
    /// tens of µs, and a parked OS thread's futex wake-up costs more than
    /// the whole exchange — then park on the endpoint.
    pub(crate) fn idle_wait(&mut self) {
        for _ in 0..40_000 {
            if let Some(m) = self.ep.try_recv() {
                self.handle(m);
                return;
            }
            std::hint::spin_loop();
        }
        if let Some(m) = self.ep.recv_timeout(Duration::from_micros(200)) {
            self.handle(m);
        }
    }

    // -- outcome handling ---------------------------------------------------

    fn handle_outcome(&mut self, outcome: RunOutcome) {
        match outcome {
            // SAFETY: `d` came from this scheduler's run_one.
            RunOutcome::Yielded(d) => unsafe { self.sched.requeue(d) },
            RunOutcome::Exited(d) => self.finish_thread(d),
            RunOutcome::MigrateSelf(d, dest) | RunOutcome::PreemptMigrate(d, dest) => {
                self.send_thread(d, dest)
            }
            RunOutcome::Blocked(_) => {
                // Waiting threads re-enter via Scheduler::unblock; the PM2
                // layer itself only uses poll+yield waits.
            }
        }
    }

    fn finish_thread(&mut self, d: DescPtr) {
        // SAFETY: the thread has exited; we are the only owner now.
        unsafe {
            let tid = (*d).tid;
            let panicked = (*d).panicked == 1;
            let home = (*d).home_node as usize;
            self.sched.note_gone();
            self.threads.remove(&tid);
            self.nodeheap.release_thread(tid);
            if self.frozen {
                // Slot release would mutate the bitmap inside a system-wide
                // critical section; defer ("no slot management" rule, §4.4).
                self.zombies.push(d);
            } else {
                marcel::release_thread_resources(d, &mut self.mgr)
                    .expect("releasing thread resources");
            }
            let note = self.exit_notes.remove(&tid).unwrap_or_default();
            let exit = ThreadExit {
                tid,
                panicked,
                died_on: self.node,
                panic_msg: note.panic_msg,
                value: note.value,
            };
            if home != self.node {
                let _ = self.ep.send(
                    home,
                    tag::THREAD_EXIT,
                    proto::encode_thread_exit(&self.pool, &exit),
                );
            }
            self.registry.complete(exit);
        }
        self.maybe_ack_shutdown();
    }

    fn reap_zombies(&mut self) {
        for d in std::mem::take(&mut self.zombies) {
            // SAFETY: deferred exited threads; exclusively ours.
            unsafe {
                marcel::release_thread_resources(d, &mut self.mgr)
                    .expect("releasing deferred thread resources");
            }
        }
        self.maybe_ack_shutdown();
    }

    fn send_thread(&mut self, d: DescPtr, dest: usize) {
        if dest == self.node || dest >= self.n_nodes {
            // Self-migration is a no-op; bogus destinations are dropped
            // back into the run queue rather than losing the thread.
            unsafe {
                (*d).migrate_dest = -1;
                (*d).state = ThreadState::Ready as u32;
            }
            // SAFETY: `d` is resident here and was just marked Ready.
            unsafe { self.sched.requeue(d) };
            return;
        }
        // SAFETY: the thread is frozen (Migrating or tagged-Ready).
        unsafe {
            let tid = (*d).tid;
            (*d).state = ThreadState::Migrating as u32;
            self.sched.note_gone();
            self.threads.remove(&tid);
            // Fig. 4/9: node-local malloc data does NOT follow the thread.
            self.nodeheap.poison_departed(tid);
            let t0 = Instant::now();
            let buf = migration::pack_thread(d, &mut self.mgr, self.pack_full_slots, &self.pool)
                .expect("packing migrating thread");
            self.stats
                .migration_pack_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.stats.migrations_out.fetch_add(1, Ordering::Relaxed);
            self.stats
                .migration_bytes_out
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
            self.ep
                .send(dest, tag::MIGRATION, buf)
                .expect("sending migration");
        }
        self.maybe_ack_shutdown();
    }

    // -- message handling ---------------------------------------------------

    fn handle(&mut self, m: Message) {
        match m.tag {
            tag::SPAWN_KEY => self.on_spawn_key(m),
            tag::RPC_SPAWN => self.on_rpc_spawn(m),
            tag::MIGRATION => self.on_migration(m),
            tag::MIGRATION_NAK => self.on_migration_nak(m),
            tag::NEG_LOCK_REQ => self.on_lock_req(m.src),
            tag::NEG_LOCK_RELEASE => self.on_lock_release(),
            tag::NEG_BITMAP_REQ => self.on_bitmap_req(m.src),
            tag::NEG_BUY => self.on_buy(m),
            tag::NEG_DONE => {
                self.frozen = false;
            }
            tag::NEG_LOCK_GRANT
            | tag::NEG_BITMAP_RESP
            | tag::NEG_BUY_ACK
            | tag::MIGRATE_CMD_ACK
            | tag::LOAD_RESP => {
                // Replies for a green thread blocked in a protocol exchange.
                self.replies.push_back(m);
            }
            tag::RPC_RESP => {
                // Park only if a caller is still waiting; a reply landing
                // after its caller's deadline would otherwise sit in the
                // queue forever.
                let waiting = proto::peek_rpc_call_id(&m.payload)
                    .is_some_and(|id| self.pending_calls.contains(&id));
                if waiting {
                    self.replies.push_back(m);
                }
            }
            tag::SHUTDOWN => {
                self.shutdown = true;
                self.maybe_ack_shutdown();
            }
            tag::AUDIT_REQ => self.on_audit_req(m.src),
            tag::LOAD_REQ => self.on_load_req(m.src),
            tag::MIGRATE_CMD => self.on_migrate_cmd(m),
            tag::RPC_CALL => self.on_rpc_call(m),
            tag::THREAD_EXIT => {
                if let Some(exit) = proto::decode_thread_exit(&m.payload) {
                    // First write wins: the dying node already completed
                    // the shared registry directly, and a typed join may
                    // have consumed the value since — overwriting would
                    // resurrect it.
                    self.registry.complete_if_absent(exit);
                }
            }
            t => panic!("node {}: unknown message tag {t}", self.node),
        }
    }

    fn on_spawn_key(&mut self, m: Message) {
        if self.frozen {
            // Spawning needs a stack slot (bitmap mutation): park until
            // the negotiation ends.
            self.deferred.push_back(m);
            return;
        }
        let mut r = madeleine::message::PayloadReader::new(&m.payload);
        let key = r.u64().expect("spawn payload");
        let tid = r.u64().expect("spawn payload tid");
        let f = self.spawn_table.take(key).expect("spawn key not found");
        self.spawn_boxed(tid, f);
    }

    fn on_rpc_spawn(&mut self, m: Message) {
        if self.frozen {
            self.deferred.push_back(m);
            return;
        }
        let (service, args) = proto::decode_rpc_spawn(&m.payload).expect("rpc payload");
        let f = self
            .services
            .get(service)
            .unwrap_or_else(|| panic!("service {service} not registered"));
        let tid = self.sched.next_tid();
        self.spawn_boxed(tid, Box::new(move || f(args)));
    }

    fn spawn_boxed(&mut self, tid: u64, f: Box<dyn FnOnce() + Send + 'static>) {
        self.try_spawn_boxed(tid, f).expect("spawning thread");
    }

    fn try_spawn_boxed(
        &mut self,
        tid: u64,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Result<(), marcel::SpawnError> {
        let d = self
            .sched
            .spawn_with_tid(&mut self.mgr, tid, instrument_body(tid, f))?;
        self.finish_spawn(tid, d);
        Ok(())
    }

    /// Spawn from a green thread already running on this node.
    pub(crate) fn spawn_local<F>(&mut self, f: F) -> Result<u64, marcel::SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = self.sched.next_tid();
        let d = self
            .sched
            .spawn_with_tid(&mut self.mgr, tid, instrument_body(tid, Box::new(f)))?;
        self.finish_spawn(tid, d);
        Ok(tid)
    }

    fn finish_spawn(&mut self, tid: u64, d: DescPtr) {
        // Apply the machine's heap policy (the substrate defaults to
        // first-fit + trim; the heap is still empty here).
        // SAFETY: freshly spawned descriptor, not yet run.
        unsafe {
            isomalloc::heap::heap_init(std::ptr::addr_of_mut!((*d).heap), self.fit, self.trim);
        }
        self.threads.insert(tid, d);
        self.stats.spawns.fetch_add(1, Ordering::Relaxed);
    }

    fn on_migration(&mut self, m: Message) {
        // Adopting slots does not touch the bitmap, so arrivals are legal
        // even inside a negotiation ("the bitmaps do not undergo any change
        // on thread migration", §4.2).
        self.stats
            .migration_wire_ns
            .fetch_add(m.wire_ns, Ordering::Relaxed);
        // The 8-byte tid prefix is readable even when the records behind
        // it are garbage — it is what lets the NAK name the lost thread.
        let tid = m
            .payload
            .get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")));
        let t0 = Instant::now();
        // SAFETY: buffer from a peer's pack_thread (or, under fault
        // injection, arbitrary bytes — unpack_thread validates and rolls
        // back rather than trusting them).
        let unpacked = match tid {
            Some(_) => unsafe { migration::unpack_thread(&m.payload[8..], &mut self.mgr) },
            None => Err(crate::error::Pm2Error::Net(
                "migration message shorter than its tid prefix".into(),
            )),
        };
        self.stats
            .migration_unpack_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let d = match unpacked {
            Ok(d) => d,
            Err(e) => {
                // A corrupt buffer costs one thread, never the node: log,
                // count, and NAK the sender instead of crashing the driver.
                self.stats.migrations_failed.fetch_add(1, Ordering::Relaxed);
                let text = format!("rejected corrupt migration from node {}: {e}", m.src);
                self.out.printf(self.node, &text);
                let mut w = madeleine::message::PayloadWriter::pooled(&self.pool, 16 + text.len());
                match tid {
                    Some(t) => w.u8(1).u64(t),
                    None => w.u8(0).u64(0),
                };
                w.bytes(text.as_bytes());
                let _ = self.ep.send(m.src, tag::MIGRATION_NAK, w.finish());
                return;
            }
        };
        // SAFETY: unpack succeeded; `d` is a live resident descriptor.
        unsafe {
            if self.scheme == MigrationScheme::RegisteredPointers {
                // Ablation baseline: charge the early-PM2 post-migration
                // fix-up walk (registered pointers + frame chain).
                crate::legacy::charge_arrival_fixup(d);
            }
            self.sched.adopt_arrival(d);
            self.threads.insert((*d).tid, d);
        }
        self.stats.migrations_in.fetch_add(1, Ordering::Relaxed);
    }

    /// The peer could not unpack a thread we shipped.  Its slots were
    /// unmapped at pack time and the tid left our tables, so the thread is
    /// unrecoverable — but joiners must not hang: complete it in the
    /// registry as a panic carrying the rejection text.
    fn on_migration_nak(&mut self, m: Message) {
        let mut r = madeleine::message::PayloadReader::new(&m.payload);
        let has_tid = r.u8().unwrap_or(0) == 1;
        let tid = r.u64().unwrap_or(0);
        let text = String::from_utf8_lossy(r.rest()).into_owned();
        self.out.printf(
            self.node,
            &format!("peer node {} NAKed a migration: {text}", m.src),
        );
        if has_tid && tid != 0 {
            // First-write-wins, like THREAD_EXIT: never resurrect a
            // completion a joiner already consumed.
            self.registry.complete_if_absent(ThreadExit {
                tid,
                panicked: true,
                died_on: self.node,
                panic_msg: Some(format!("thread lost in migration: {text}")),
                value: None,
            });
        }
    }

    // -- negotiation: server side --------------------------------------------

    fn on_lock_req(&mut self, from: usize) {
        assert_eq!(self.node, 0, "lock service lives on node 0");
        if self.lock_holder.is_none() {
            self.lock_holder = Some(from);
            let _ = self.ep.send(from, tag::NEG_LOCK_GRANT, Vec::new());
        } else {
            self.lock_queue.push_back(from);
        }
    }

    fn on_lock_release(&mut self) {
        assert_eq!(self.node, 0, "lock service lives on node 0");
        self.lock_holder = None;
        if let Some(next) = self.lock_queue.pop_front() {
            self.lock_holder = Some(next);
            let _ = self.ep.send(next, tag::NEG_LOCK_GRANT, Vec::new());
        }
    }

    fn on_bitmap_req(&mut self, from: usize) {
        // Entering the system-wide critical section as a participant: the
        // bitmap freezes until NEG_DONE (step (a) of §4.4).
        self.frozen = true;
        // The gather reply rides a pooled buffer: the initiator collects
        // p − 1 of these per negotiation, so recycling matters.
        let mut buf = self.pool.checkout(self.mgr.bitmap_wire_len());
        self.mgr.bitmap_bytes_into(&mut buf);
        let _ = self.ep.send(from, tag::NEG_BITMAP_RESP, buf);
    }

    fn on_buy(&mut self, m: Message) {
        let ranges = proto::decode_ranges(&m.payload).expect("buy payload");
        for r in ranges {
            self.mgr.sell(r).expect("selling slots");
        }
        let _ = self.ep.send(m.src, tag::NEG_BUY_ACK, Vec::new());
    }

    // -- audit / load / remote-migration services ----------------------------

    fn on_audit_req(&mut self, from: usize) {
        let report = crate::audit::encode_node_report(self);
        let _ = self.ep.send(from, tag::AUDIT_RESP, report);
    }

    fn on_load_req(&mut self, from: usize) {
        let mut w = madeleine::message::PayloadWriter::pooled(&self.pool, 64);
        w.u32(self.sched.resident() as u32);
        // Migratable, currently-ready threads.
        let migratable: Vec<u64> = self
            .threads
            .iter()
            .filter(|(_, &d)| unsafe {
                (*d).thread_state() == ThreadState::Ready
                    && (*d).flags & marcel::thread::flags::MIGRATABLE != 0
            })
            .map(|(&tid, _)| tid)
            .collect();
        w.u32(migratable.len() as u32);
        for t in &migratable {
            w.u64(*t);
        }
        let _ = self.ep.send(from, tag::LOAD_RESP, w.finish());
    }

    fn on_rpc_call(&mut self, m: Message) {
        if self.frozen {
            // The handler thread needs a stack slot (bitmap mutation):
            // park until the negotiation ends.
            self.deferred.push_back(m);
            return;
        }
        // The reply destination travels in the payload, NOT in `m.src`,
        // so it survives the deferred replay above and any handler
        // migration before the response is sent.
        let Some((call_id, reply_to, service, req)) = proto::decode_rpc_call(&m.payload) else {
            return; // Malformed request: nothing to reply to.
        };
        if req.len() > self.max_rpc_payload {
            let msg = format!("request of {} bytes exceeds ceiling", req.len());
            let _ = self.ep.send(
                reply_to,
                tag::RPC_RESP,
                proto::encode_rpc_resp(
                    &self.pool,
                    call_id,
                    rpc_status::REMOTE_ERROR,
                    msg.as_bytes(),
                ),
            );
            return;
        }
        let Some(handler) = self.typed_services.get(service) else {
            let _ = self.ep.send(
                reply_to,
                tag::RPC_RESP,
                proto::encode_rpc_resp(&self.pool, call_id, rpc_status::NO_SUCH_SERVICE, &[]),
            );
            return;
        };
        // LRPC semantics: the handler runs as a fresh Marcel thread, so it
        // may allocate, spawn, even migrate; the reply is sent from
        // whatever node it ends up on, matched by call id at the caller.
        let max = self.max_rpc_payload;
        let tid = self.sched.next_tid();
        let spawned = self.try_spawn_boxed(
            tid,
            Box::new(move || {
                let (status, bytes) = match handler(&req) {
                    Ok(resp) if resp.len() <= max => (rpc_status::OK, resp),
                    Ok(resp) => (
                        rpc_status::REMOTE_ERROR,
                        format!("response of {} bytes exceeds ceiling", resp.len()).into_bytes(),
                    ),
                    Err(e) => (rpc_status::REMOTE_ERROR, e.into_bytes()),
                };
                let pool = crate::api::local_pool();
                let _ = crate::api::send_to(
                    reply_to,
                    tag::RPC_RESP,
                    proto::encode_rpc_resp(&pool, call_id, status, &bytes),
                );
            }),
        );
        if let Err(e) = spawned {
            // Out of stack slots: the caller gets a typed remote error
            // instead of a wedged machine and an opaque timeout.
            let msg = format!("serving node could not spawn handler: {e}");
            let _ = self.ep.send(
                reply_to,
                tag::RPC_RESP,
                proto::encode_rpc_resp(
                    &self.pool,
                    call_id,
                    rpc_status::REMOTE_ERROR,
                    msg.as_bytes(),
                ),
            );
        }
    }

    fn on_migrate_cmd(&mut self, m: Message) {
        let (tid, dest) = proto::decode_migrate_cmd(&m.payload).expect("migrate cmd");
        let ok = match self.threads.get(&tid) {
            // SAFETY: resident descriptor.
            Some(&d) => unsafe { self.sched.request_migration(d, dest) },
            None => false,
        };
        let mut w = madeleine::message::PayloadWriter::pooled(&self.pool, 12);
        w.u64(tid).u32(ok as u32);
        let _ = self.ep.send(m.src, tag::MIGRATE_CMD_ACK, w.finish());
    }
}
