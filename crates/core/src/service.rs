//! Typed request/reply LRPC — the v1 face of PM2's "light-weight remote
//! procedure call".
//!
//! The paper's LRPC is spawn-only: `pm2_rpc_spawn(service_id, byte_args)`
//! starts a handler thread on a remote node and forgets it.  That layer
//! stays (see [`crate::registry::ServiceTable`]); this module adds the
//! request/reply form applications actually want: a [`Service`] is a type
//! with [`Wire`]-encodable request and response types, registered *by
//! type*, and [`crate::api::pm2_rpc_call`] /
//! [`crate::machine::Machine::rpc_call`] perform a typed round trip built
//! on the same parked-reply pump mechanics as the negotiation gather.
//!
//! Handlers still run as freshly spawned Marcel threads on the serving
//! node — PM2's LRPC model — so a handler may itself allocate iso-address
//! memory, spawn, or even migrate before replying.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use madeleine::Wire;

/// A typed LRPC service.
///
/// `NAME` is the stable wire identity: both sides hash it to the u32
/// service id, so registration and call sites agree by construction.
///
/// ```no_run
/// use pm2::{Service, Machine};
///
/// struct Square;
/// impl Service for Square {
///     const NAME: &'static str = "demo.square";
///     type Req = u64;
///     type Resp = u64;
///     fn handle(&self, req: u64) -> u64 { req * req }
/// }
///
/// let mut machine = Machine::builder(2).launch().unwrap();
/// machine.register::<Square>(Square);
/// assert_eq!(machine.rpc_call::<Square>(1, 12).unwrap(), 144);
/// ```
pub trait Service: Send + Sync + 'static {
    /// Stable service name; hashed into the wire id.
    const NAME: &'static str;
    /// Request type shipped to the serving node.
    type Req: Wire;
    /// Response type shipped back.
    type Resp: Wire;
    /// Handle one request.  Runs in a spawned Marcel thread on the serving
    /// node; a panic here becomes an [`crate::Pm2Error::Rpc`] at the caller.
    fn handle(&self, req: Self::Req) -> Self::Resp;
}

/// The wire id of service `S` (FNV-1a of [`Service::NAME`]).
pub fn service_id<S: Service>() -> u32 {
    name_id(S::NAME)
}

/// FNV-1a over a service name.
pub(crate) fn name_id(name: &str) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Outcome of one erased handler invocation: response bytes, or a message
/// describing the remote failure (decode error or handler panic).
pub(crate) type ErasedOutcome = std::result::Result<Vec<u8>, String>;

/// Byte-level handler stored per service id.
pub(crate) type ErasedHandler = Arc<dyn Fn(&[u8]) -> ErasedOutcome + Send + Sync + 'static>;

/// Typed services, erased to byte handlers and keyed by wire id.
/// Conceptually replicated on every node (SPMD), like [`ServiceTable`]
/// (`crate::registry::ServiceTable`).
#[derive(Default)]
pub(crate) struct TypedServiceTable {
    table: Mutex<HashMap<u32, (&'static str, ErasedHandler)>>,
}

impl TypedServiceTable {
    pub(crate) fn new_shared() -> Arc<Self> {
        Arc::new(TypedServiceTable::default())
    }

    /// Register `svc` under its type's wire id.  Panics on duplicate
    /// registration and on (astronomically unlikely) name-hash collisions,
    /// both of which are configuration bugs.
    pub(crate) fn register<S: Service>(&self, svc: S) {
        let id = service_id::<S>();
        let svc = Arc::new(svc);
        let handler: ErasedHandler = Arc::new(move |req_bytes: &[u8]| {
            let req = S::Req::decode_vec(req_bytes)
                .ok_or_else(|| format!("request for {} failed to decode", S::NAME))?;
            match catch_unwind(AssertUnwindSafe(|| svc.handle(req))) {
                Ok(resp) => Ok(resp.encode_vec()),
                Err(p) => Err(format!(
                    "handler for {} panicked: {}",
                    S::NAME,
                    panic_text(p.as_ref())
                )),
            }
        });
        let mut table = self.table.lock().unwrap();
        if let Some((prev_name, _)) = table.get(&id) {
            if *prev_name == S::NAME {
                panic!("service {} registered twice", S::NAME);
            }
            panic!("service id collision: {} vs {}", prev_name, S::NAME);
        }
        table.insert(id, (S::NAME, handler));
    }

    /// Look up the handler for wire id `id`.
    pub(crate) fn get(&self, id: u32) -> Option<ErasedHandler> {
        self.table
            .lock()
            .unwrap()
            .get(&id)
            .map(|(_, h)| Arc::clone(h))
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads).
pub(crate) fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Service for Echo {
        const NAME: &'static str = "test.echo";
        type Req = String;
        type Resp = String;
        fn handle(&self, req: String) -> String {
            req
        }
    }

    struct Bomb;
    impl Service for Bomb {
        const NAME: &'static str = "test.bomb";
        type Req = ();
        type Resp = ();
        fn handle(&self, _req: ()) {
            panic!("boom");
        }
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        assert_eq!(service_id::<Echo>(), name_id("test.echo"));
        assert_ne!(service_id::<Echo>(), service_id::<Bomb>());
    }

    #[test]
    fn erased_roundtrip() {
        let t = TypedServiceTable::default();
        t.register(Echo);
        let h = t.get(service_id::<Echo>()).unwrap();
        let resp = h(&String::from("hi").encode_vec()).unwrap();
        assert_eq!(String::decode_vec(&resp), Some("hi".into()));
        assert!(t.get(0xDEAD_BEEF).is_none());
    }

    #[test]
    fn bad_request_bytes_become_error() {
        let t = TypedServiceTable::default();
        t.register(Echo);
        let h = t.get(service_id::<Echo>()).unwrap();
        let err = h(&[0xFF]).unwrap_err();
        assert!(err.contains("failed to decode"), "{err}");
    }

    #[test]
    fn handler_panic_becomes_error() {
        let t = TypedServiceTable::default();
        t.register(Bomb);
        let h = t.get(service_id::<Bomb>()).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = h(&().encode_vec()).unwrap_err();
        std::panic::set_hook(prev);
        assert!(err.contains("boom"), "{err}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let t = TypedServiceTable::default();
        t.register(Echo);
        t.register(Echo);
    }
}
