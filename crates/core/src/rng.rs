//! Tiny deterministic PRNG for protocol sampling (SplitMix64).
//!
//! The epidemic protocols (gossip fanout, power-of-two-choices probing,
//! sampled wealth lookup) need cheap, seedable randomness on the driver's
//! hot path.  SplitMix64 is two multiplies and three xors per draw, has no
//! state beyond one word, and — seeded per node — keeps runs reproducible
//! enough to debug.  Interior mutability (`Cell`) lets `&self` methods on
//! the node context draw without threading `&mut` through every sampler;
//! `NodeCtx` is single-driver by construction, so there is no contention.

use std::cell::Cell;

#[derive(Debug)]
pub(crate) struct SplitMix64 {
    state: Cell<u64>,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: Cell::new(seed),
        }
    }

    pub fn next_u64(&self) -> u64 {
        let mut z = self.state.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.state.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.  The modulo bias is
    /// immaterial at protocol scale (n ≤ a few thousand nodes).
    pub fn below(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = SplitMix64::new(7);
        let b = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = a.below(17);
            assert_eq!(x, b.below(17));
            assert!(x < 17);
        }
        // Different seeds diverge immediately.
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn covers_the_range() {
        let r = SplitMix64::new(42);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[r.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
