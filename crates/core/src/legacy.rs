//! The early-PM2 migration baseline: stack relocation with pointer fix-up.
//!
//! Before isomalloc, PM2 relocated a migrated stack "at a usually different
//! address on the destination node" and then repaired two classes of
//! pointers (§2): the *implicit* frame-chain pointers the compiler
//! generates, and the *explicit* user pointers declared through
//! `pm2_register_pointer`.  The paper's argument is that this approach
//! "does not extend to complex applications" — it misses unregistered
//! pointers (Fig. 2 crashes) and breaks under compiler optimization.
//!
//! We implement the complete fix-up math and test it on **synthetic frozen
//! stacks**; live threads are only ever resumed under the iso-address
//! scheme, because resuming a relocated Rust stack would rely on
//! frame-pointer discipline Rust does not promise — precisely the fragility
//! the paper eliminated.  For the ablation benchmark (A5), arriving threads
//! under [`crate::config::MigrationScheme::RegisteredPointers`] are charged
//! the same traversal work with `delta = 0`.

use marcel::DescPtr;

/// A frozen stack image as the early scheme would ship it.
#[derive(Debug, Clone)]
pub struct FrozenStack {
    /// Raw bytes of the stack region `[old_base, old_base + bytes.len())`.
    pub bytes: Vec<u8>,
    /// Base address the image occupied on the source node.
    pub old_base: usize,
    /// Saved stack pointer (absolute, inside the old range).
    pub rsp: usize,
    /// Saved frame pointer (absolute, inside the old range; head of the
    /// frame chain).
    pub rbp: usize,
    /// Offsets (within the image) of registered pointer variables.
    pub registered: Vec<usize>,
}

/// What a relocation pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixupReport {
    /// Frame-chain cells adjusted.
    pub frames_fixed: usize,
    /// Registered user pointers adjusted.
    pub registered_fixed: usize,
    /// Registered pointers left alone (they pointed outside the stack).
    pub registered_skipped: usize,
}

impl FrozenStack {
    /// End of the old address range.
    pub fn old_end(&self) -> usize {
        self.old_base + self.bytes.len()
    }

    fn in_old_range(&self, addr: usize) -> bool {
        addr >= self.old_base && addr < self.old_end()
    }

    /// Read the `usize` at absolute old-range address `addr`.
    fn read(&self, addr: usize) -> usize {
        let off = addr - self.old_base;
        usize::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Write the `usize` at absolute old-range address `addr`.
    fn write(&mut self, addr: usize, v: usize) {
        let off = addr - self.old_base;
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Relocate the image to `new_base`: rebase `rsp`/`rbp`, walk the frame
    /// chain adjusting every saved frame pointer that points into the old
    /// range, and adjust every registered pointer that points into the old
    /// range.  This is the whole post-migration pass the iso-address design
    /// makes unnecessary.
    pub fn relocate(&mut self, new_base: usize) -> FixupReport {
        let delta = new_base.wrapping_sub(self.old_base);
        let mut report = FixupReport {
            frames_fixed: 0,
            registered_fixed: 0,
            registered_skipped: 0,
        };

        // 1. Frame chain: each frame's saved rbp cell holds the address of
        //    the caller's frame; terminate on 0 or an out-of-range value.
        let mut fp = self.rbp;
        while self.in_old_range(fp) {
            let saved = self.read(fp);
            if self.in_old_range(saved) {
                self.write(fp, saved.wrapping_add(delta));
                report.frames_fixed += 1;
            }
            if saved <= fp {
                break; // chains grow towards higher addresses; stop on junk
            }
            fp = saved;
        }

        // 2. Registered user pointers.
        for i in 0..self.registered.len() {
            let cell = self.old_base + self.registered[i];
            let value = self.read(cell);
            if self.in_old_range(value) {
                self.write(cell, value.wrapping_add(delta));
                report.registered_fixed += 1;
            } else {
                report.registered_skipped += 1;
            }
        }

        // 3. Rebase the machine context.
        self.rsp = self.rsp.wrapping_add(delta);
        self.rbp = self.rbp.wrapping_add(delta);
        self.old_base = new_base;
        report
    }
}

/// Charge an arriving thread the legacy fix-up traversal (delta = 0): walk
/// the registered-pointer table and the frame chain with volatile accesses,
/// performing the same memory work the early scheme performed, without
/// changing anything.  Used by the `RegisteredPointers` ablation scheme.
///
/// # Safety(internal): `d` must be a freshly unpacked resident descriptor.
pub(crate) fn charge_arrival_fixup(d: DescPtr) {
    // SAFETY: descriptor and stack slot are mapped (just unpacked).
    unsafe {
        let desc = &*d;
        let lo = desc.canary_addr + 8;
        let hi = desc.stack_top;
        // Registered pointers.
        for i in 0..desc.n_registered as usize {
            let cell = desc.registered[i];
            if cell >= lo && cell + 8 <= hi {
                let p = cell as *mut usize;
                let v = p.read_volatile();
                p.write_volatile(v.wrapping_add(0));
            }
        }
        // Frame chain from the saved rbp.
        let mut fp = desc.ctx.rbp as usize;
        let mut guard = 0;
        while fp >= lo && fp + 8 <= hi && guard < 10_000 {
            let p = fp as *mut usize;
            let saved = p.read_volatile();
            p.write_volatile(saved.wrapping_add(0));
            if saved <= fp {
                break;
            }
            fp = saved;
            guard += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic frozen stack with a 3-frame chain and two
    /// registered pointers (one into the stack, one to "heap").
    fn synthetic() -> FrozenStack {
        let old_base = 0x7000_0000usize;
        let len = 4096;
        let mut s = FrozenStack {
            bytes: vec![0; len],
            old_base,
            rsp: old_base + 0x100,
            rbp: old_base + 0x120,
            registered: vec![0x400, 0x500],
        };
        // Frame chain: 0x120 -> 0x200 -> 0x300 -> 0 (outermost).
        s.write(old_base + 0x120, old_base + 0x200);
        s.write(old_base + 0x200, old_base + 0x300);
        s.write(old_base + 0x300, 0);
        // Registered pointer #1 points at a local at 0x128.
        s.write(old_base + 0x400, old_base + 0x128);
        // Registered pointer #2 points outside the stack (heap): untouched.
        s.write(old_base + 0x500, 0x1234_5678);
        // A local "x" the pointer refers to.
        s.write(old_base + 0x128, 42);
        s
    }

    #[test]
    fn relocation_fixes_chain_and_registered() {
        let mut s = synthetic();
        let new_base = 0x9000_0000usize;
        let rep = s.relocate(new_base);
        assert_eq!(rep.frames_fixed, 2, "two in-range chain cells");
        assert_eq!(rep.registered_fixed, 1);
        assert_eq!(rep.registered_skipped, 1);
        assert_eq!(s.rsp, new_base + 0x100);
        assert_eq!(s.rbp, new_base + 0x120);
        // Chain re-targets the new range.
        assert_eq!(s.read(new_base + 0x120), new_base + 0x200);
        assert_eq!(s.read(new_base + 0x200), new_base + 0x300);
        assert_eq!(s.read(new_base + 0x300), 0);
        // Registered stack pointer re-targets; heap pointer untouched.
        assert_eq!(s.read(new_base + 0x400), new_base + 0x128);
        assert_eq!(s.read(new_base + 0x500), 0x1234_5678);
        // The pointee value is still reachable through the fixed pointer.
        let ptr = s.read(new_base + 0x400);
        assert_eq!(s.read(ptr), 42);
    }

    #[test]
    fn unregistered_pointer_breaks_exactly_like_fig2() {
        // The paper's Fig. 2: a pointer NOT registered keeps its old-range
        // value after relocation — dereferencing it on the destination is
        // the bug the iso-address scheme eliminates.
        let mut s = synthetic();
        let secret_cell = 0x600usize;
        let old_target = s.old_base + 0x128;
        s.write(s.old_base + secret_cell, old_target); // never registered
        let new_base = 0x9000_0000usize;
        s.relocate(new_base);
        let dangling = s.read(new_base + secret_cell);
        assert_eq!(dangling, old_target, "still points at the OLD range");
        assert!(
            dangling < new_base,
            "a dereference would fault on a real node"
        );
    }

    #[test]
    fn identity_relocation_is_a_noop() {
        let mut s = synthetic();
        let before = s.bytes.clone();
        let rep = s.relocate(s.old_base);
        assert_eq!(s.bytes, before, "delta 0 changes nothing");
        assert_eq!(
            rep.frames_fixed, 2,
            "but the walk still happened (the cost)"
        );
    }

    #[test]
    fn relocation_cost_scales_with_registered_count() {
        // The fix-up work is O(frames + registered) — the scaling the A5
        // ablation measures.
        let mut s = synthetic();
        s.registered = (0..64).map(|i| 0x800 + i * 8).collect();
        for i in 0..64 {
            let tgt = s.old_base + 0x100 + i;
            s.write(s.old_base + 0x800 + i * 8, tgt);
        }
        let rep = s.relocate(0xA000_0000);
        assert_eq!(rep.registered_fixed, 64);
    }
}
