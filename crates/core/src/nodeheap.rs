//! Per-node private heap — the `malloc` of the paper's Fig. 4/9.
//!
//! On a real cluster each node's C heap is private: data a thread `malloc`s
//! does **not** follow it, so reading the same virtual address on another
//! node yields garbage or a segfault (the paper prints `-1797270816` and
//! then dies).  In a single-process simulation the memory would accidentally
//! still be there, hiding the bug the paper demonstrates — so this arena
//! makes the failure observable: when a thread migrates away, every block it
//! `node_malloc`ed is **poisoned** (filled with `0xDE`) and marked lost.
//! Reading it yields exactly the paper's garbage values; `is_valid` lets
//! examples and tests detect the "would have segfaulted" condition safely.

use std::collections::HashMap;

/// Poison byte written over departed threads' node-local data.
pub const POISON: u8 = 0xDE;

/// The garbage value a reader of poisoned memory observes per `i32`
/// (0xDEDEDEDE as a signed int — compare the paper's Fig. 9 trace).
pub const POISON_I32: i32 = i32::from_le_bytes([POISON; 4]);

struct Block {
    ptr: *mut u8,
    len: usize,
    layout: std::alloc::Layout,
    owner_tid: u64,
    lost: bool,
}

/// A node's private heap.
#[derive(Default)]
pub struct NodeHeap {
    blocks: HashMap<usize, Block>,
    live_bytes: usize,
    lost_blocks: usize,
}

// SAFETY: the heap is only touched by its node's driving OS thread.
unsafe impl Send for NodeHeap {}

impl NodeHeap {
    /// Allocate `size` bytes owned by thread `tid`.
    pub fn alloc(&mut self, size: usize, tid: u64) -> *mut u8 {
        let size = size.max(1);
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("layout");
        // SAFETY: non-zero size, valid alignment.
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "node heap exhausted");
        self.blocks.insert(
            ptr as usize,
            Block {
                ptr,
                len: size,
                layout,
                owner_tid: tid,
                lost: false,
            },
        );
        self.live_bytes += size;
        ptr
    }

    /// Free a block (only the owning node can).
    pub fn free(&mut self, ptr: *mut u8) -> bool {
        match self.blocks.remove(&(ptr as usize)) {
            Some(b) => {
                self.live_bytes -= b.len;
                if b.lost {
                    self.lost_blocks -= 1;
                }
                // SAFETY: allocated by us with this layout.
                unsafe { std::alloc::dealloc(b.ptr, b.layout) };
                true
            }
            None => false,
        }
    }

    /// A thread migrated away: poison everything it owns here.  Returns the
    /// number of poisoned blocks.
    pub fn poison_departed(&mut self, tid: u64) -> usize {
        let mut n = 0;
        for b in self.blocks.values_mut() {
            if b.owner_tid == tid && !b.lost {
                // SAFETY: the block is live and owned by this heap.
                unsafe { std::ptr::write_bytes(b.ptr, POISON, b.len) };
                b.lost = true;
                self.lost_blocks += 1;
                n += 1;
            }
        }
        n
    }

    /// Free everything a (dead) thread owns here.
    pub fn release_thread(&mut self, tid: u64) -> usize {
        let victims: Vec<usize> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.owner_tid == tid)
            .map(|(&k, _)| k)
            .collect();
        let n = victims.len();
        for k in victims {
            self.free(k as *mut u8);
        }
        n
    }

    /// Is `ptr` a live, non-poisoned block on this node?  `false` means a
    /// real cluster would have faulted (or read garbage) at this address.
    pub fn is_valid(&self, ptr: *const u8) -> bool {
        self.blocks.get(&(ptr as usize)).is_some_and(|b| !b.lost)
    }

    /// Live (allocated, possibly lost) byte count.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Number of blocks poisoned by departures and not yet reclaimed.
    pub fn lost_blocks(&self) -> usize {
        self.lost_blocks
    }
}

impl Drop for NodeHeap {
    fn drop(&mut self) {
        for (_, b) in self.blocks.drain() {
            // SAFETY: allocated by us with this layout.
            unsafe { std::alloc::dealloc(b.ptr, b.layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut h = NodeHeap::default();
        let p = h.alloc(100, 1);
        assert!(h.is_valid(p));
        assert_eq!(h.live_bytes(), 100);
        assert!(h.free(p));
        assert!(!h.free(p), "double free rejected");
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn poison_reproduces_fig9_garbage() {
        let mut h = NodeHeap::default();
        let p = h.alloc(64, 7) as *mut i32;
        unsafe { p.write(201) }; // element 100 of the paper's list: value 201
        assert_eq!(h.poison_departed(7), 1);
        // The thread migrated; reading its malloc'd data now yields garbage,
        // exactly like "[node1] Element 100 = -1797270816".
        let garbage = unsafe { p.read() };
        assert_eq!(garbage, POISON_I32);
        assert_ne!(garbage, 201);
        assert!(!h.is_valid(p as *const u8));
        assert_eq!(h.lost_blocks(), 1);
    }

    #[test]
    fn poison_only_hits_the_departed_thread() {
        let mut h = NodeHeap::default();
        let a = h.alloc(16, 1);
        let b = h.alloc(16, 2);
        unsafe {
            (a as *mut u64).write(11);
            (b as *mut u64).write(22);
        }
        h.poison_departed(1);
        assert!(!h.is_valid(a));
        assert!(h.is_valid(b));
        assert_eq!(unsafe { (b as *const u64).read() }, 22);
    }

    #[test]
    fn release_thread_reclaims() {
        let mut h = NodeHeap::default();
        h.alloc(16, 5);
        h.alloc(16, 5);
        h.alloc(16, 6);
        assert_eq!(h.release_thread(5), 2);
        assert_eq!(h.live_bytes(), 16);
    }
}
