//! Generic load balancing via transparent preemptive migration — now
//! **communication-affinity aware**: rounds minimize remote-message
//! volume first and thread-count skew second.
//!
//! The paper's motivation for preemptive migration (§2): "a generic module
//! implemented outside the running application could balance the load by
//! migrating the application threads.  The threads are unaware of their
//! being migrated and keep on running irrespective of their location."
//!
//! [`start_balancer`] spawns exactly such a module: a daemon thread (on
//! node 0, excluded from migration itself) that periodically polls every
//! node's load over the fabric and ships ready threads around.
//! Application threads contain no migration code whatsoever.
//!
//! ## The affinity scoring model
//!
//! A thread-count-balanced placement can still be terrible: two threads
//! that RPC each other every quantum pay the full modelled wire for every
//! exchange when separated, and nothing when co-located (a self-send
//! skips the wire entirely).  So every thread carries a bounded top-k
//! `(peer node → msgs)` table in its descriptor (`marcel::AFF_TOP_K`
//! entries, updated on every RPC call/reply, migrating with the thread),
//! and each `LOAD_RESP` piggybacks the reporting node's hottest
//! thread→node edges.  The planner scores moving thread *t* from *src*
//! to *dest* as
//!
//! ```text
//!                 net(t, dest)         net = msgs(t → dest)        (saved)
//!   score(t) = ────────────────             − msgs(t → src)        (broken)
//!              pack_cost(t) bytes
//! ```
//!
//! — remote messages saved minus local messages broken, per byte of
//! stack + heap the migration train would have to carry
//! (`pack_cost` comes from the same occupancy hints that size real
//! trains, so **cold-heap threads move first**).  Candidates are applied
//! greedily best-score-first while a load guard keeps the move from
//! *creating* skew beyond `threshold`; whatever move budget remains goes
//! to the classic most-loaded → least-loaded walk, so pure idle-skew
//! still equalizes and plain load balancing is the tie-breaker.
//!
//! Two hysteresis brakes stop chatty threads from ping-ponging between
//! partners on both sides:
//!
//! * **decay** — each balancer probe of a node ages its threads' tables
//!   (`msgs >>= aff_decay_shift`), so affinity reflects *recent* traffic;
//! * **cooldown + floor** — a thread is not re-planned until
//!   `aff_cooldown` epochs after its last migration, and never for a net
//!   score below `aff_min_score` (a thread equally chatty toward two
//!   nodes nets ≈ 0 and stays put).
//!
//! ## The plan/ack round protocol
//!
//! A round is **pipelined, not serialized** — its latency is proportional
//! to the number of (source → destination) *pairs* that trade, never to
//! the number of threads moved:
//!
//! 1. **Gather** — `LOAD_REQ` (carrying this epoch's decay shift) to
//!    every node; replies collected until all answer or the round
//!    deadline passes (a frozen node sits the round out; < 2 responders
//!    skips the round).  A peer whose *gossiped* load hint is younger
//!    than one heartbeat interval and marks it a non-source is not
//!    probed at all — its hint stands in as a destination-only entry
//!    (counted in [`BalancerHandle::probes_saved`]).
//! 2. **Plan** — affinity pass then load pass, executed against the
//!    snapshot: a move plan keyed by (src, dest) pair, each entry
//!    carrying the full tid list.
//! 3. **Command** — exactly one `MIGRATE_CMD` per planned pair, all
//!    issued back-to-back with a fresh cmd id each, no ack waits between
//!    them.  The source flags every named thread and the departure side
//!    coalesces them into one migration *train* per destination.
//! 4. **Collect** — batched `MIGRATE_CMD_ACK`s (cmd id, accepted, total)
//!    are matched by cmd id until every pending command answers or the
//!    deadline passes.  A straggler ack from an abandoned round has a
//!    stale cmd id and is ignored, never credited to a later round.
//!
//! ## Sampled probing at scale
//!
//! Probing all p nodes per round is the balancer's own O(p) tax, and at
//! p = 256 it dominates the round.  Above [`FULL_PROBE_MAX`] nodes the
//! gather switches to a **gossip-informed sample**: draw a seeded
//! handful of candidate peers, rank them by the epidemic load hints
//! every node already maintains, and probe only the most- and
//! least-loaded halves — the power-of-two-choices insight that comparing
//! a few sampled extremes balances almost as well as comparing everyone.
//! Rounds are O(k) on the wire regardless of p; successive rounds draw
//! fresh samples, so every imbalance is eventually visible.  Machines at
//! or below `FULL_PROBE_MAX` keep the exact full-probe behaviour.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::{self, send_to, wait_reply_until};
use crate::error::Result;
use crate::machine::Machine;
use crate::proto::{self, encode_migrate_cmd, tag, AffinityEdge};

/// Re-export of the "0 = auto" full-probe threshold so callers tuning
/// [`BalancerConfig::sample`] can name it instead of hard-coding 16.
pub use crate::node::FULL_PROBE_MAX;

/// Balancer tuning.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Poll period.
    pub period: Duration,
    /// A node is overloaded when its load exceeds the mean by more than
    /// this many threads; the affinity pass reuses it as the skew a
    /// co-location move is allowed to create.
    pub threshold: usize,
    /// Maximum migrations ordered per round (affinity + load combined).
    pub max_moves_per_round: usize,
    /// Hard time budget for one round (load gather + migrate commands).
    /// A node that stops answering — frozen in a long negotiation,
    /// mid-shutdown, wedged — *degrades* the round to the nodes that did
    /// answer instead of wedging the daemon until the machine-wide reply
    /// deadline.
    pub round_deadline: Duration,
    /// Peers probed per round.  `0` = auto: every node on machines up to
    /// [`FULL_PROBE_MAX`] nodes, a gossip-informed sample of
    /// [`AUTO_SAMPLE`] beyond that.  An explicit value forces that sample
    /// size (clamped to p); see the module notes on sampled probing.
    pub sample: usize,
    /// Run the affinity pass (false = the pre-affinity pure-load
    /// balancer, the ablation baseline of `--bin affinity`).
    pub affinity: bool,
    /// Per-epoch decay shift applied to every thread's affinity counts
    /// (`msgs >>= shift`) by each probed node; 0 disables decay.
    pub aff_decay_shift: u32,
    /// Epochs a freshly migrated thread sits out before the affinity
    /// pass may plan it again (hysteresis; never-migrated threads are
    /// exempt).
    pub aff_cooldown: u32,
    /// Minimum `remote_msgs_saved − local_msgs_broken` for an affinity
    /// move — the other hysteresis brake.  A thread equally chatty toward
    /// both sides nets ≈ 0, but strict alternation still leaves a ±2
    /// transient in any snapshot (two legs per in-flight call), so the
    /// default sits above that jitter band.
    pub aff_min_score: i64,
}

/// Default probe-sample size above [`FULL_PROBE_MAX`] nodes.
pub const AUTO_SAMPLE: usize = 8;

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            period: Duration::from_millis(2),
            threshold: 1,
            max_moves_per_round: 8,
            round_deadline: Duration::from_millis(250),
            sample: 0,
            affinity: true,
            aff_decay_shift: 1,
            aff_cooldown: 2,
            aff_min_score: 4,
        }
    }
}

impl BalancerConfig {
    /// Set the poll period.
    pub fn with_period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Set the overload threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// Set the per-round move budget.
    pub fn with_max_moves(mut self, max_moves_per_round: usize) -> Self {
        self.max_moves_per_round = max_moves_per_round;
        self
    }

    /// Set the per-round time budget.
    pub fn with_round_deadline(mut self, round_deadline: Duration) -> Self {
        self.round_deadline = round_deadline;
        self
    }

    /// Set the probe-sample size (0 = auto, see [`BalancerConfig::sample`]).
    pub fn with_sample(mut self, sample: usize) -> Self {
        self.sample = sample;
        self
    }

    /// Enable or disable the affinity pass.
    pub fn with_affinity(mut self, affinity: bool) -> Self {
        self.affinity = affinity;
        self
    }

    /// Set the per-epoch affinity decay shift.
    pub fn with_aff_decay_shift(mut self, shift: u32) -> Self {
        self.aff_decay_shift = shift;
        self
    }

    /// Set the post-migration cooldown, in epochs.
    pub fn with_aff_cooldown(mut self, epochs: u32) -> Self {
        self.aff_cooldown = epochs;
        self
    }

    /// Set the minimum net score for an affinity move.
    pub fn with_aff_min_score(mut self, score: i64) -> Self {
        self.aff_min_score = score;
        self
    }
}

/// Handle to stop the balancer daemon.
pub struct BalancerHandle {
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    thread: crate::machine::Pm2Thread,
}

/// Daemon observability: proof that rounds batch instead of serializing,
/// that the affinity pass actually plans, and that gossip hints save
/// probe round trips.
#[derive(Debug, Default)]
struct Counters {
    moves: AtomicU64,
    rounds: AtomicU64,
    cmds: AtomicU64,
    aff_moves: AtomicU64,
    probes_saved: AtomicU64,
}

impl BalancerHandle {
    /// Ask the daemon to exit and wait for it.
    pub fn stop(self, machine: &Machine) {
        self.stop.store(true, Ordering::SeqCst);
        machine.join(self.thread);
    }

    /// Total migrations the balancer has ordered (and had accepted) so far.
    pub fn moves(&self) -> u64 {
        self.counters.moves.load(Ordering::SeqCst)
    }

    /// Completed balance rounds.
    pub fn rounds(&self) -> u64 {
        self.counters.rounds.load(Ordering::SeqCst)
    }

    /// `MIGRATE_CMD` messages sent — at most one per (src, dest) pair per
    /// round, so under imbalance `cmds() < moves()` proves batching.
    pub fn cmds(&self) -> u64 {
        self.counters.cmds.load(Ordering::SeqCst)
    }

    /// Migrations planned by the *affinity* pass (subset of the commands
    /// sent; the pure-load walk accounts for the rest).
    pub fn affinity_moves(&self) -> u64 {
        self.counters.aff_moves.load(Ordering::SeqCst)
    }

    /// `LOAD_REQ` round trips skipped because a gossiped load hint
    /// younger than one heartbeat interval stood in for the probe.
    pub fn probes_saved(&self) -> u64 {
        self.counters.probes_saved.load(Ordering::SeqCst)
    }
}

/// Start the balancer daemon on node 0.
pub fn start_balancer(machine: &Machine, cfg: BalancerConfig) -> Result<BalancerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let stop2 = Arc::clone(&stop);
    let counters2 = Arc::clone(&counters);
    let thread = machine.spawn_on(0, move || daemon(cfg, stop2, counters2))?;
    Ok(BalancerHandle {
        stop,
        counters,
        thread,
    })
}

fn daemon(cfg: BalancerConfig, stop: Arc<AtomicBool>, counters: Arc<Counters>) {
    // The balancer itself must not be bounced around by… itself.
    api::pm2_set_migratable(false);
    // …and its probe/command exchanges must not queue behind the very
    // compute backlog it exists to spread out: run in the control lane.
    api::pm2_set_control_priority(true);
    let p = api::pm2_nodes();
    while !stop.load(Ordering::SeqCst) {
        let round_started = Instant::now();
        if let Err(e) = balance_round(p, &cfg, &counters) {
            // A node dying mid-round degrades that round, not the daemon:
            // the next round simply plans around the corpse.  Anything
            // else (a shutting-down machine dropping replies, say) exits
            // quietly.
            if !matches!(e, crate::error::Pm2Error::NodeFailed(_)) {
                break;
            }
        }
        counters.rounds.fetch_add(1, Ordering::SeqCst);
        // Sleep cooperatively until the next round.
        while round_started.elapsed() < cfg.period {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            marcel::yield_now();
        }
    }
}

/// One load snapshot of a node.
struct Load {
    node: usize,
    resident: usize,
    migratable: Vec<u64>,
    /// Hottest thread→node affinity edges the node reported.
    edges: Vec<AffinityEdge>,
    /// True when this entry came from a gossip hint instead of a probe:
    /// usable as a destination, never as a source (no tids, no edges).
    hinted: bool,
}

/// Choose this round's probe targets from a seeded candidate draw ranked
/// by the gossiped load hints: the `k/2` least-loaded (destination
/// candidates) plus the `k/2` most-loaded (source candidates), self
/// always included.  Pure so the bias is unit-testable; the draw budget
/// is bounded, never a scan, so a machine of corpses costs O(k) too.
/// With an all-zero hint table (gossip not yet converged) the bias
/// degenerates to a uniform random sample, which still converges —
/// successive rounds draw fresh candidates.
fn pick_sample(
    p: usize,
    k: usize,
    me: usize,
    hints: &[u32],
    dead: &std::collections::HashSet<usize>,
    rng: &crate::rng::SplitMix64,
) -> Vec<usize> {
    let mut cand: Vec<usize> = Vec::with_capacity(2 * k);
    for _ in 0..(4 * k) {
        if cand.len() >= 2 * k {
            break;
        }
        let n = rng.below(p);
        if n == me || dead.contains(&n) || cand.contains(&n) {
            continue;
        }
        cand.push(n);
    }
    cand.sort_by_key(|&n| hints.get(n).copied().unwrap_or(0));
    let lo = k / 2;
    let hi = k - lo;
    let mut targets: Vec<usize> = cand.iter().take(lo).copied().collect();
    targets.extend(cand.iter().rev().take(hi));
    targets.push(me);
    targets.sort_unstable();
    targets.dedup();
    targets
}

/// Fixed-point scale for the msgs-per-byte score (score arithmetic stays
/// integral and deterministic; 2^16 per byte resolves ties well below one
/// message per 64 KiB slot).
const SCORE_SCALE: i64 = 1 << 16;

/// One applicable affinity move, scored.
struct AffCandidate {
    src_i: usize,
    dest_i: usize,
    tid: u64,
    /// `net * SCORE_SCALE / pack_cost` — msgs saved per byte shipped.
    score: i64,
}

/// Plan one round's moves against the gathered snapshot (pure; no wire
/// traffic).  Returns the (src, dest) → tids plan plus how many of those
/// tids the affinity pass planned.
fn plan_moves(
    loads: &mut [Load],
    cfg: &BalancerConfig,
) -> (HashMap<(usize, usize), Vec<u64>>, usize) {
    let mut budget = cfg.max_moves_per_round;
    let mut plan: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    let mut aff_moves = 0usize;

    // -- Affinity pass: co-locate chatty threads, cheapest trains first.
    if cfg.affinity {
        let mut cands: Vec<AffCandidate> = Vec::new();
        for src_i in 0..loads.len() {
            for e in &loads[src_i].edges {
                // Hysteresis: freshly moved threads sit out the cooldown.
                if e.epochs_since_move != u32::MAX && e.epochs_since_move < cfg.aff_cooldown {
                    continue;
                }
                if !loads[src_i].migratable.contains(&e.tid) {
                    continue;
                }
                let local: i64 = e
                    .peers
                    .iter()
                    .filter(|&&(n, _)| n as usize == loads[src_i].node)
                    .map(|&(_, m)| m as i64)
                    .sum();
                // Best destination among the nodes visible this round.
                let best = loads
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != src_i)
                    .filter_map(|(i, l)| {
                        let msgs: i64 = e
                            .peers
                            .iter()
                            .filter(|&&(n, _)| n as usize == l.node)
                            .map(|&(_, m)| m as i64)
                            .sum();
                        (msgs > 0).then_some((i, msgs))
                    })
                    .max_by_key(|&(_, msgs)| msgs);
                let Some((dest_i, remote)) = best else {
                    continue;
                };
                let net = remote - local;
                // Hysteresis floor: an ≈ 0 net (equally chatty toward
                // both sides) never justifies a train.
                if net < cfg.aff_min_score {
                    continue;
                }
                let cost = (e.pack_cost as i64).max(1);
                cands.push(AffCandidate {
                    src_i,
                    dest_i,
                    tid: e.tid,
                    score: net * SCORE_SCALE / cost,
                });
            }
        }
        // Best msgs-saved-per-byte first; tid tie-break keeps the plan
        // deterministic for a given snapshot.
        cands.sort_by_key(|c| (std::cmp::Reverse(c.score), c.tid));
        // Anti-swap rule: within one round, never drain a node others are
        // being packed into, and never pack into a node that is draining.
        // Without it two mutually-chatty threads swap homes in the same
        // round and stay remote forever; with it the higher-scoring move
        // wins and the loser re-plans next round against the new layout.
        let mut packing_into: HashSet<usize> = HashSet::new();
        let mut draining: HashSet<usize> = HashSet::new();
        for c in cands {
            if budget == 0 {
                break;
            }
            // The snapshot moved under earlier candidates: re-check.
            if !loads[c.src_i].migratable.contains(&c.tid) {
                continue;
            }
            let (src, dest) = (loads[c.src_i].node, loads[c.dest_i].node);
            if packing_into.contains(&src) || draining.contains(&dest) {
                continue;
            }
            // Load guard: co-location may *tolerate* skew up to the
            // threshold but must not create more — that is the load
            // pass's undo condition, and planning both directions in one
            // round would thrash.
            if loads[c.dest_i].resident + 1 > loads[c.src_i].resident + cfg.threshold {
                continue;
            }
            loads[c.src_i].migratable.retain(|&t| t != c.tid);
            plan.entry((src, dest)).or_default().push(c.tid);
            loads[c.src_i].resident -= 1;
            loads[c.dest_i].resident += 1;
            packing_into.insert(dest);
            draining.insert(src);
            budget -= 1;
            aff_moves += 1;
        }
    }

    // -- Load pass: the classic greedy most-loaded → least-loaded walk
    // on whatever budget remains, so pure idle-skew still equalizes.
    let total: usize = loads.iter().map(|l| l.resident).sum();
    let mean = total / loads.len();
    let mut order: Vec<usize> = (0..loads.len()).collect();
    loop {
        if budget == 0 {
            break;
        }
        order.sort_by_key(|&i| loads[i].resident);
        let (min_i, max_i) = (order[0], order[order.len() - 1]);
        let gap_over = loads[max_i].resident.saturating_sub(mean);
        let gap = loads[max_i].resident.saturating_sub(loads[min_i].resident);
        if gap_over <= cfg.threshold || gap < 2 {
            break;
        }
        let dest = loads[min_i].node;
        let Some(tid) = loads[max_i].migratable.pop() else {
            break;
        };
        let src_node = loads[max_i].node;
        plan.entry((src_node, dest)).or_default().push(tid);
        loads[max_i].resident -= 1;
        loads[min_i].resident += 1;
        budget -= 1;
    }
    (plan, aff_moves)
}

fn balance_round(p: usize, cfg: &BalancerConfig, counters: &Counters) -> Result<()> {
    let pool = api::local_pool();
    let deadline = Instant::now() + cfg.round_deadline;
    // Gather loads (the daemon itself counts towards node 0's load; the
    // threshold absorbs it).  A probe refused with a death certificate
    // drops that node from the round — corpses have no load to balance.
    // Above FULL_PROBE_MAX nodes (or with an explicit `sample` knob) the
    // gather probes a gossip-informed sample instead of all p.
    let k = match cfg.sample {
        0 if p <= FULL_PROBE_MAX => p,
        0 => AUTO_SAMPLE,
        k => k,
    };
    let targets: Vec<usize> = if k >= p {
        (0..p).collect()
    } else {
        crate::node::with_ctx(|c| pick_sample(p, k, c.node, &c.peer_load, &c.dead_nodes, &c.rng))
    };
    // Probe-saving: a peer whose gossiped load entry is younger than one
    // heartbeat interval and marks it a non-source (at or below the mean
    // of the fresh hints plus the threshold) contributes its hint as a
    // destination-only snapshot entry instead of paying a round trip.
    // Self is always probed — the reply is a local self-send anyway.
    let me = crate::node::with_ctx(|c| c.node);
    let fresh: Vec<(usize, Option<u32>)> = crate::node::with_ctx(|c| {
        targets
            .iter()
            .map(|&peer| {
                let h = (peer != me).then(|| c.fresh_load_hint(peer)).flatten();
                (peer, h)
            })
            .collect()
    });
    let known: Vec<u32> = fresh.iter().filter_map(|&(_, h)| h).collect();
    let hint_mean = if known.is_empty() {
        0
    } else {
        known.iter().map(|&h| h as usize).sum::<usize>() / known.len()
    };
    let mut loads: Vec<Load> = Vec::with_capacity(targets.len());
    let mut probed = 0usize;
    let decay = proto::encode_load_req(&pool, if cfg.affinity { cfg.aff_decay_shift } else { 0 });
    for &(peer, hint) in &fresh {
        if let Some(h) = hint {
            if (h as usize) <= hint_mean + cfg.threshold {
                loads.push(Load {
                    node: peer,
                    resident: h as usize,
                    migratable: Vec::new(),
                    edges: Vec::new(),
                    hinted: true,
                });
                counters.probes_saved.fetch_add(1, Ordering::SeqCst);
                continue;
            }
        }
        if send_to(peer, tag::LOAD_REQ, decay.clone()).is_ok() {
            probed += 1;
        }
    }
    // Collect until every probed node answered or the round deadline
    // passes; a node that answers late (or never) simply sits this round
    // out.  Responses are keyed by node so a straggler reply from a
    // *previous* degraded round only refreshes that node's entry.
    let mut answered = 0usize;
    while answered < probed {
        let Ok(m) = wait_reply_until(tag::LOAD_RESP, None, deadline, |_| true) else {
            break; // Deadline: balance whoever answered.
        };
        // (The reply also piggybacked the node's free-slot wealth, which
        // the dispatch layer absorbed into the trader's hint table before
        // parking it — the balancer's probes double as the slot economy's
        // freshness source.)
        let Some((resident, _, migratable, edges)) = proto::decode_load_resp_aff(&m.payload) else {
            continue;
        };
        answered += 1;
        let resident = resident as usize;
        if let Some(l) = loads.iter_mut().find(|l| l.node == m.src) {
            l.resident = resident;
            l.migratable = migratable;
            l.edges = edges;
            l.hinted = false;
        } else {
            loads.push(Load {
                node: m.src,
                resident,
                migratable,
                edges,
                hinted: false,
            });
        }
    }
    if loads.len() < 2 {
        return Ok(()); // Nobody to trade with this round.
    }

    // Plan against the snapshot only — no wire traffic yet.  The plan is
    // keyed by (src, dest) pair; moving k threads between a pair costs
    // one entry.
    let (plan, aff_moves) = plan_moves(&mut loads, cfg);
    if plan.is_empty() {
        return Ok(());
    }
    counters
        .aff_moves
        .fetch_add(aff_moves as u64, Ordering::SeqCst);

    // Command: every source concurrently, one MIGRATE_CMD per pair with
    // the full tid list — no per-thread (or even per-pair) RTT gaps.
    let mut pending: HashMap<u64, usize> = HashMap::new(); // cmd id → tids sent
    for ((src, dest), tids) in &plan {
        let cmd_id = crate::node::with_ctx(|c| c.next_call_id());
        // A source that died between gather and command fails its *pair*,
        // never the round (a dead *destination* is the source's problem:
        // its departure handler refuses the move and acks zero).
        if send_to(
            *src,
            tag::MIGRATE_CMD,
            encode_migrate_cmd(&pool, cmd_id, *dest, tids),
        )
        .is_err()
        {
            continue;
        }
        counters.cmds.fetch_add(1, Ordering::SeqCst);
        pending.insert(cmd_id, tids.len());
    }

    // Collect: batched acks matched by cmd id until the deadline.  Ids
    // are node-unique and never reused, so an ack parked by an abandoned
    // round can never be credited to this one.
    while !pending.is_empty() {
        let Ok(ack) = wait_reply_until(tag::MIGRATE_CMD_ACK, None, deadline, |m| {
            proto::peek_cmd_id(&m.payload).is_some_and(|id| pending.contains_key(&id))
        }) else {
            break; // Deadline: the unanswered sources degrade the round.
        };
        let Some((cmd_id, accepted, _total, _wealth)) = proto::decode_migrate_ack(&ack.payload)
        else {
            continue;
        };
        pending.remove(&cmd_id);
        counters.moves.fetch_add(accepted as u64, Ordering::SeqCst);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sample_is_bounded_deduped_and_skips_self_and_dead() {
        let rng = crate::rng::SplitMix64::new(7);
        let hints = vec![0u32; 256];
        let dead: HashSet<usize> = [3, 4, 5].into_iter().collect();
        let t = pick_sample(256, 8, 0, &hints, &dead, &rng);
        assert!(t.len() <= 9, "k targets plus self at most, got {t:?}");
        assert!(t.contains(&0), "self is always probed");
        assert!(t.iter().all(|n| !dead.contains(n)), "corpses are skipped");
        let mut u = t.clone();
        u.dedup();
        assert_eq!(u, t, "targets are deduped");
    }

    #[test]
    fn sample_prefers_the_hinted_extremes() {
        let rng = crate::rng::SplitMix64::new(42);
        // One wildly overloaded peer and one empty peer among a uniform
        // middle: whenever the draw sees them, both ends must survive the
        // cut.  Run a few rounds so the draw does see them.
        let mut hints = vec![50u32; 64];
        hints[17] = 500;
        hints[23] = 0;
        let dead = HashSet::new();
        let mut hit_hi = false;
        let mut hit_lo = false;
        for _ in 0..32 {
            let t = pick_sample(64, 4, 0, &hints, &dead, &rng);
            hit_hi |= t.contains(&17);
            hit_lo |= t.contains(&23);
        }
        assert!(hit_hi, "the most-loaded peer is sampled as a source");
        assert!(hit_lo, "the least-loaded peer is sampled as a destination");
    }

    // -- white-box planner tests ----------------------------------------

    fn load(node: usize, resident: usize, migratable: Vec<u64>, edges: Vec<AffinityEdge>) -> Load {
        Load {
            node,
            resident,
            migratable,
            edges,
            hinted: false,
        }
    }

    fn edge(tid: u64, pack_cost: u32, epochs: u32, peers: Vec<(u32, u32)>) -> AffinityEdge {
        AffinityEdge {
            tid,
            pack_cost,
            epochs_since_move: epochs,
            peers,
        }
    }

    #[test]
    fn planner_colocates_a_chatty_thread() {
        // Thread 7 on node 0 talks to node 1 (40 msgs) and barely locally
        // (2): the affinity pass ships it even though loads are equal.
        let mut loads = vec![
            load(
                0,
                3,
                vec![7],
                vec![edge(7, 4096, u32::MAX, vec![(1, 40), (0, 2)])],
            ),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert_eq!(plan.get(&(0, 1)), Some(&vec![7]));
        assert_eq!(aff, 1);
    }

    #[test]
    fn planner_cold_heap_beats_hot_heap_when_equally_chatty() {
        // Two equally chatty threads, one with a 100× cheaper train; a
        // budget of 1 must pick the cold-heap one.
        let cfg = BalancerConfig::default().with_max_moves(1);
        let mut loads = vec![
            load(
                0,
                4,
                vec![7, 8],
                vec![
                    edge(7, 200_000, u32::MAX, vec![(1, 40)]), // hot heap
                    edge(8, 2_000, u32::MAX, vec![(1, 40)]),   // cold heap
                ],
            ),
            load(1, 4, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &cfg);
        assert_eq!(plan.get(&(0, 1)), Some(&vec![8]), "cold heap ships first");
        assert_eq!(aff, 1);
    }

    #[test]
    fn planner_cooldown_blocks_fresh_movers() {
        // Thread 7 migrated last epoch: under the default 2-epoch
        // cooldown it must sit this round out, however chatty.
        let mut loads = vec![
            load(0, 3, vec![7], vec![edge(7, 4096, 1, vec![(1, 40)])]),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert!(plan.is_empty(), "{plan:?}");
        assert_eq!(aff, 0);
        // Once the cooldown has elapsed the same edge plans.
        let mut loads = vec![
            load(0, 3, vec![7], vec![edge(7, 4096, 2, vec![(1, 40)])]),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert_eq!(plan.get(&(0, 1)), Some(&vec![7]));
        assert_eq!(aff, 1);
    }

    #[test]
    fn planner_min_score_keeps_symmetric_threads_put() {
        // Equally chatty toward home and the remote side: net = 0 < the
        // min score, so no move — the anti-ping-pong floor.
        let mut loads = vec![
            load(
                0,
                3,
                vec![7],
                vec![edge(7, 4096, u32::MAX, vec![(1, 25), (0, 25)])],
            ),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert!(plan.is_empty(), "{plan:?}");
        assert_eq!(aff, 0);
        // The floor also absorbs the ±2 snapshot jitter a strictly
        // alternating caller leaves (two legs per in-flight call).
        let mut loads = vec![
            load(
                0,
                3,
                vec![7],
                vec![edge(7, 4096, u32::MAX, vec![(1, 27), (0, 25)])],
            ),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert!(plan.is_empty(), "{plan:?}");
        assert_eq!(aff, 0);
    }

    #[test]
    fn planner_anti_swap_defers_the_weaker_of_a_mutual_pair() {
        // Thread 7 on node 0 and thread 9 on node 1, each chatty toward
        // the other's home: applying both would swap them past each other
        // and leave every hop remote.  One round moves only the stronger
        // candidate; the loser re-plans next round against the new layout.
        let mut loads = vec![
            load(0, 3, vec![7], vec![edge(7, 4096, u32::MAX, vec![(1, 40)])]),
            load(1, 3, vec![9], vec![edge(9, 4096, u32::MAX, vec![(0, 30)])]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert_eq!(aff, 1, "only one side of the pair may move: {plan:?}");
        assert_eq!(plan.get(&(0, 1)), Some(&vec![7]), "the stronger edge wins");
        assert_eq!(plan.get(&(1, 0)), None);
    }

    #[test]
    fn planner_load_guard_caps_colocation_skew() {
        // Destination already over the source by the threshold: the
        // affinity move must yield to the load balance.
        let mut loads = vec![
            load(0, 2, vec![7], vec![edge(7, 4096, u32::MAX, vec![(1, 40)])]),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert!(plan.is_empty(), "{plan:?}");
        assert_eq!(aff, 0);
    }

    #[test]
    fn planner_pure_load_walk_still_equalizes() {
        // No edges at all (idle-skew workload): the classic walk moves
        // threads from the loaded node to the idle one.
        let mut loads = vec![
            load(0, 8, vec![1, 2, 3, 4, 5, 6], vec![]),
            load(1, 0, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &BalancerConfig::default());
        assert_eq!(aff, 0);
        let moved = plan.get(&(0, 1)).map(|v| v.len()).unwrap_or(0);
        assert!(moved >= 3, "load walk equalizes: {plan:?}");
    }

    #[test]
    fn planner_affinity_off_is_the_pure_load_baseline() {
        let cfg = BalancerConfig::default().with_affinity(false);
        let mut loads = vec![
            load(0, 3, vec![7], vec![edge(7, 4096, u32::MAX, vec![(1, 40)])]),
            load(1, 3, vec![], vec![]),
        ];
        let (plan, aff) = plan_moves(&mut loads, &cfg);
        assert!(plan.is_empty(), "no affinity pass, no skew: {plan:?}");
        assert_eq!(aff, 0);
    }
}
