//! Generic load balancing via transparent preemptive migration.
//!
//! The paper's motivation for preemptive migration (§2): "a generic module
//! implemented outside the running application could balance the load by
//! migrating the application threads.  The threads are unaware of their
//! being migrated and keep on running irrespective of their location."
//!
//! [`start_balancer`] spawns exactly such a module: a daemon thread (on
//! node 0, excluded from migration itself) that periodically polls every
//! node's load over the fabric and ships ready threads from overloaded
//! nodes to underloaded ones with `MIGRATE_CMD`.  Application threads
//! contain no migration code whatsoever.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use madeleine::message::PayloadReader;

use crate::api::{self, send_to, wait_reply_until};
use crate::error::Result;
use crate::machine::Machine;
use crate::proto::{encode_migrate_cmd, tag};

/// Balancer tuning.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Poll period.
    pub period: Duration,
    /// A node is overloaded when its load exceeds the mean by more than
    /// this many threads.
    pub threshold: usize,
    /// Maximum migrations ordered per round.
    pub max_moves_per_round: usize,
    /// Hard time budget for one round (load gather + migrate commands).
    /// A node that stops answering — frozen in a long negotiation,
    /// mid-shutdown, wedged — *degrades* the round to the nodes that did
    /// answer instead of wedging the daemon until the machine-wide reply
    /// deadline.
    pub round_deadline: Duration,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            period: Duration::from_millis(2),
            threshold: 1,
            max_moves_per_round: 8,
            round_deadline: Duration::from_millis(250),
        }
    }
}

/// Handle to stop the balancer daemon.
pub struct BalancerHandle {
    stop: Arc<AtomicBool>,
    moves: Arc<AtomicU64>,
    thread: crate::machine::Pm2Thread,
}

impl BalancerHandle {
    /// Ask the daemon to exit and wait for it.
    pub fn stop(self, machine: &Machine) {
        self.stop.store(true, Ordering::SeqCst);
        machine.join(self.thread);
    }

    /// Total migrations the balancer has ordered so far.
    pub fn moves(&self) -> u64 {
        self.moves.load(Ordering::SeqCst)
    }
}

/// Start the balancer daemon on node 0.
pub fn start_balancer(machine: &Machine, cfg: BalancerConfig) -> Result<BalancerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let moves = Arc::new(AtomicU64::new(0));
    let stop2 = Arc::clone(&stop);
    let moves2 = Arc::clone(&moves);
    let thread = machine.spawn_on(0, move || daemon(cfg, stop2, moves2))?;
    Ok(BalancerHandle {
        stop,
        moves,
        thread,
    })
}

fn daemon(cfg: BalancerConfig, stop: Arc<AtomicBool>, moves: Arc<AtomicU64>) {
    // The balancer itself must not be bounced around by… itself.
    api::pm2_set_migratable(false);
    // …and its probe/command exchanges must not queue behind the very
    // compute backlog it exists to spread out: run in the control lane.
    api::pm2_set_control_priority(true);
    let p = api::pm2_nodes();
    while !stop.load(Ordering::SeqCst) {
        let round_started = Instant::now();
        if let Err(e) = balance_round(p, &cfg, &moves) {
            // A shutting-down machine can drop replies; bail out quietly.
            let _ = e;
            break;
        }
        // Sleep cooperatively until the next round.
        while round_started.elapsed() < cfg.period {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            marcel::yield_now();
        }
    }
}

/// One load snapshot of a node.
struct Load {
    node: usize,
    resident: usize,
    migratable: Vec<u64>,
}

fn balance_round(p: usize, cfg: &BalancerConfig, moves: &AtomicU64) -> Result<()> {
    let pool = api::local_pool();
    let deadline = Instant::now() + cfg.round_deadline;
    // Gather loads (the daemon itself counts towards node 0's load; the
    // threshold absorbs it).
    for peer in 0..p {
        send_to(peer, tag::LOAD_REQ, Vec::new())?;
    }
    // Collect until every node answered or the round deadline passes; a
    // node that answers late (or never) simply sits this round out.
    // Responses are keyed by node so a straggler reply from a *previous*
    // degraded round only refreshes that node's entry.
    let mut loads: Vec<Load> = Vec::with_capacity(p);
    while loads.len() < p {
        let Ok(m) = wait_reply_until(tag::LOAD_RESP, None, deadline, |_| true) else {
            break; // Deadline: balance whoever answered.
        };
        let mut r = PayloadReader::new(&m.payload);
        let resident = r.u32().unwrap_or(0) as usize;
        let n = r.u32().unwrap_or(0) as usize;
        let migratable: Vec<u64> = (0..n).filter_map(|_| r.u64()).collect();
        if let Some(l) = loads.iter_mut().find(|l| l.node == m.src) {
            l.resident = resident;
            l.migratable = migratable;
        } else {
            loads.push(Load {
                node: m.src,
                resident,
                migratable,
            });
        }
    }
    if loads.len() < 2 {
        return Ok(()); // Nobody to trade with this round.
    }
    let total: usize = loads.iter().map(|l| l.resident).sum();
    let mean = total / loads.len();

    // Ship from the most loaded to the least loaded until balanced.
    let mut budget = cfg.max_moves_per_round;
    loop {
        if budget == 0 {
            break;
        }
        loads.sort_by_key(|l| l.resident);
        let (min_idx, max_idx) = (0, loads.len() - 1);
        let gap_over = loads[max_idx].resident.saturating_sub(mean);
        let gap = loads[max_idx]
            .resident
            .saturating_sub(loads[min_idx].resident);
        if gap_over <= cfg.threshold || gap < 2 {
            break;
        }
        let dest = loads[min_idx].node;
        let Some(tid) = loads[max_idx].migratable.pop() else {
            break;
        };
        let src_node = loads[max_idx].node;
        send_to(
            src_node,
            tag::MIGRATE_CMD,
            encode_migrate_cmd(&pool, tid, dest),
        )?;
        // Match the ack by tid, not just tag+src: a deadline-abandoned
        // round can leave its ack parked, and without the tid check the
        // stale ack would be credited to the *next* round's command.
        let Ok(ack) = wait_reply_until(tag::MIGRATE_CMD_ACK, Some(src_node), deadline, |m| {
            PayloadReader::new(&m.payload).u64() == Some(tid)
        }) else {
            break; // Round budget exhausted: abandon remaining moves.
        };
        let mut r = PayloadReader::new(&ack.payload);
        let _tid = r.u64();
        if r.u32() == Some(1) {
            moves.fetch_add(1, Ordering::SeqCst);
            loads[max_idx].resident -= 1;
            loads[min_idx].resident += 1;
        }
        budget -= 1;
    }
    Ok(())
}
