//! Generic load balancing via transparent preemptive migration.
//!
//! The paper's motivation for preemptive migration (§2): "a generic module
//! implemented outside the running application could balance the load by
//! migrating the application threads.  The threads are unaware of their
//! being migrated and keep on running irrespective of their location."
//!
//! [`start_balancer`] spawns exactly such a module: a daemon thread (on
//! node 0, excluded from migration itself) that periodically polls every
//! node's load over the fabric and ships ready threads from overloaded
//! nodes to underloaded ones.  Application threads contain no migration
//! code whatsoever.
//!
//! ## The plan/ack round protocol
//!
//! A round is **pipelined, not serialized** — its latency is proportional
//! to the number of (source → destination) *pairs* that trade, never to
//! the number of threads moved:
//!
//! 1. **Gather** — `LOAD_REQ` to every node; replies collected until all
//!    answer or the round deadline passes (a frozen node sits the round
//!    out; < 2 responders skips the round).
//! 2. **Plan** — the same greedy most-loaded → least-loaded walk as ever,
//!    but executed against the *snapshot*: it produces a move plan keyed
//!    by (src, dest) pair, each entry carrying the full tid list.
//! 3. **Command** — exactly one `MIGRATE_CMD` per planned pair, all
//!    issued back-to-back with a fresh cmd id each, no ack waits between
//!    them.  The source flags every named thread and the departure side
//!    coalesces them into one migration *train* per destination.
//! 4. **Collect** — batched `MIGRATE_CMD_ACK`s (cmd id, accepted, total)
//!    are matched by cmd id until every pending command answers or the
//!    deadline passes.  A straggler ack from an abandoned round has a
//!    stale cmd id and is ignored, never credited to a later round.
//!
//! The old protocol shipped one tid per `MIGRATE_CMD` and blocked on each
//! ack before sending the next, so evacuating 64 threads cost 64
//! serialized RTTs; now it costs one RTT per destination pair plus one
//! train per destination.
//!
//! ## Sampled probing at scale
//!
//! Probing all p nodes per round is the balancer's own O(p) tax, and at
//! p = 256 it dominates the round.  Above [`crate::node::FULL_PROBE_MAX`]
//! nodes the gather switches to a **gossip-informed sample**: draw a
//! seeded handful of candidate peers, rank them by the epidemic load
//! hints every node already maintains, and probe only the most- and
//! least-loaded halves — the power-of-two-choices insight that comparing
//! a few sampled extremes balances almost as well as comparing everyone.
//! Rounds are O(k) on the wire regardless of p; successive rounds draw
//! fresh samples, so every imbalance is eventually visible.  Machines at
//! or below `FULL_PROBE_MAX` keep the exact full-probe behaviour.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::{self, send_to, wait_reply_until};
use crate::error::Result;
use crate::machine::Machine;
use crate::proto::{self, encode_migrate_cmd, tag};

/// Balancer tuning.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Poll period.
    pub period: Duration,
    /// A node is overloaded when its load exceeds the mean by more than
    /// this many threads.
    pub threshold: usize,
    /// Maximum migrations ordered per round.
    pub max_moves_per_round: usize,
    /// Hard time budget for one round (load gather + migrate commands).
    /// A node that stops answering — frozen in a long negotiation,
    /// mid-shutdown, wedged — *degrades* the round to the nodes that did
    /// answer instead of wedging the daemon until the machine-wide reply
    /// deadline.
    pub round_deadline: Duration,
    /// Peers probed per round.  `0` = auto: every node on machines up to
    /// [`crate::node::FULL_PROBE_MAX`] nodes, a gossip-informed sample of
    /// [`AUTO_SAMPLE`] beyond that.  An explicit value forces that sample
    /// size (clamped to p); see the module notes on sampled probing.
    pub sample: usize,
}

/// Default probe-sample size above [`crate::node::FULL_PROBE_MAX`] nodes.
pub const AUTO_SAMPLE: usize = 8;

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            period: Duration::from_millis(2),
            threshold: 1,
            max_moves_per_round: 8,
            round_deadline: Duration::from_millis(250),
            sample: 0,
        }
    }
}

/// Handle to stop the balancer daemon.
pub struct BalancerHandle {
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    thread: crate::machine::Pm2Thread,
}

/// Daemon observability: proof that rounds batch instead of serializing.
#[derive(Debug, Default)]
struct Counters {
    moves: AtomicU64,
    rounds: AtomicU64,
    cmds: AtomicU64,
}

impl BalancerHandle {
    /// Ask the daemon to exit and wait for it.
    pub fn stop(self, machine: &Machine) {
        self.stop.store(true, Ordering::SeqCst);
        machine.join(self.thread);
    }

    /// Total migrations the balancer has ordered (and had accepted) so far.
    pub fn moves(&self) -> u64 {
        self.counters.moves.load(Ordering::SeqCst)
    }

    /// Completed balance rounds.
    pub fn rounds(&self) -> u64 {
        self.counters.rounds.load(Ordering::SeqCst)
    }

    /// `MIGRATE_CMD` messages sent — at most one per (src, dest) pair per
    /// round, so under imbalance `cmds() < moves()` proves batching.
    pub fn cmds(&self) -> u64 {
        self.counters.cmds.load(Ordering::SeqCst)
    }
}

/// Start the balancer daemon on node 0.
pub fn start_balancer(machine: &Machine, cfg: BalancerConfig) -> Result<BalancerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let stop2 = Arc::clone(&stop);
    let counters2 = Arc::clone(&counters);
    let thread = machine.spawn_on(0, move || daemon(cfg, stop2, counters2))?;
    Ok(BalancerHandle {
        stop,
        counters,
        thread,
    })
}

fn daemon(cfg: BalancerConfig, stop: Arc<AtomicBool>, counters: Arc<Counters>) {
    // The balancer itself must not be bounced around by… itself.
    api::pm2_set_migratable(false);
    // …and its probe/command exchanges must not queue behind the very
    // compute backlog it exists to spread out: run in the control lane.
    api::pm2_set_control_priority(true);
    let p = api::pm2_nodes();
    while !stop.load(Ordering::SeqCst) {
        let round_started = Instant::now();
        if let Err(e) = balance_round(p, &cfg, &counters) {
            // A node dying mid-round degrades that round, not the daemon:
            // the next round simply plans around the corpse.  Anything
            // else (a shutting-down machine dropping replies, say) exits
            // quietly.
            if !matches!(e, crate::error::Pm2Error::NodeFailed(_)) {
                break;
            }
        }
        counters.rounds.fetch_add(1, Ordering::SeqCst);
        // Sleep cooperatively until the next round.
        while round_started.elapsed() < cfg.period {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            marcel::yield_now();
        }
    }
}

/// One load snapshot of a node.
struct Load {
    node: usize,
    resident: usize,
    migratable: Vec<u64>,
}

/// Choose this round's probe targets from a seeded candidate draw ranked
/// by the gossiped load hints: the `k/2` least-loaded (destination
/// candidates) plus the `k/2` most-loaded (source candidates), self
/// always included.  Pure so the bias is unit-testable; the draw budget
/// is bounded, never a scan, so a machine of corpses costs O(k) too.
/// With an all-zero hint table (gossip not yet converged) the bias
/// degenerates to a uniform random sample, which still converges —
/// successive rounds draw fresh candidates.
fn pick_sample(
    p: usize,
    k: usize,
    me: usize,
    hints: &[u32],
    dead: &std::collections::HashSet<usize>,
    rng: &crate::rng::SplitMix64,
) -> Vec<usize> {
    let mut cand: Vec<usize> = Vec::with_capacity(2 * k);
    for _ in 0..(4 * k) {
        if cand.len() >= 2 * k {
            break;
        }
        let n = rng.below(p);
        if n == me || dead.contains(&n) || cand.contains(&n) {
            continue;
        }
        cand.push(n);
    }
    cand.sort_by_key(|&n| hints.get(n).copied().unwrap_or(0));
    let lo = k / 2;
    let hi = k - lo;
    let mut targets: Vec<usize> = cand.iter().take(lo).copied().collect();
    targets.extend(cand.iter().rev().take(hi));
    targets.push(me);
    targets.sort_unstable();
    targets.dedup();
    targets
}

fn balance_round(p: usize, cfg: &BalancerConfig, counters: &Counters) -> Result<()> {
    let pool = api::local_pool();
    let deadline = Instant::now() + cfg.round_deadline;
    // Gather loads (the daemon itself counts towards node 0's load; the
    // threshold absorbs it).  A probe refused with a death certificate
    // drops that node from the round — corpses have no load to balance.
    // Above FULL_PROBE_MAX nodes (or with an explicit `sample` knob) the
    // gather probes a gossip-informed sample instead of all p.
    let k = match cfg.sample {
        0 if p <= crate::node::FULL_PROBE_MAX => p,
        0 => AUTO_SAMPLE,
        k => k,
    };
    let targets: Vec<usize> = if k >= p {
        (0..p).collect()
    } else {
        crate::node::with_ctx(|c| pick_sample(p, k, c.node, &c.peer_load, &c.dead_nodes, &c.rng))
    };
    let mut probed = 0usize;
    for &peer in &targets {
        if send_to(peer, tag::LOAD_REQ, Vec::new()).is_ok() {
            probed += 1;
        }
    }
    // Collect until every probed node answered or the round deadline
    // passes; a node that answers late (or never) simply sits this round
    // out.  Responses are keyed by node so a straggler reply from a
    // *previous* degraded round only refreshes that node's entry.
    let mut loads: Vec<Load> = Vec::with_capacity(probed);
    while loads.len() < probed {
        let Ok(m) = wait_reply_until(tag::LOAD_RESP, None, deadline, |_| true) else {
            break; // Deadline: balance whoever answered.
        };
        // (The reply also piggybacked the node's free-slot wealth, which
        // the dispatch layer absorbed into the trader's hint table before
        // parking it — the balancer's probes double as the slot economy's
        // freshness source.)
        let Some((resident, _, migratable)) = proto::decode_load_resp(&m.payload) else {
            continue;
        };
        let resident = resident as usize;
        if let Some(l) = loads.iter_mut().find(|l| l.node == m.src) {
            l.resident = resident;
            l.migratable = migratable;
        } else {
            loads.push(Load {
                node: m.src,
                resident,
                migratable,
            });
        }
    }
    if loads.len() < 2 {
        return Ok(()); // Nobody to trade with this round.
    }
    let total: usize = loads.iter().map(|l| l.resident).sum();
    let mean = total / loads.len();

    // Plan: the greedy most-loaded → least-loaded walk, against the
    // snapshot only — no wire traffic yet.  The plan is keyed by
    // (src, dest) pair; moving k threads between a pair costs one entry.
    let mut budget = cfg.max_moves_per_round;
    let mut plan: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    loop {
        if budget == 0 {
            break;
        }
        loads.sort_by_key(|l| l.resident);
        let (min_idx, max_idx) = (0, loads.len() - 1);
        let gap_over = loads[max_idx].resident.saturating_sub(mean);
        let gap = loads[max_idx]
            .resident
            .saturating_sub(loads[min_idx].resident);
        if gap_over <= cfg.threshold || gap < 2 {
            break;
        }
        let dest = loads[min_idx].node;
        let Some(tid) = loads[max_idx].migratable.pop() else {
            break;
        };
        let src_node = loads[max_idx].node;
        plan.entry((src_node, dest)).or_default().push(tid);
        loads[max_idx].resident -= 1;
        loads[min_idx].resident += 1;
        budget -= 1;
    }
    if plan.is_empty() {
        return Ok(());
    }

    // Command: every source concurrently, one MIGRATE_CMD per pair with
    // the full tid list — no per-thread (or even per-pair) RTT gaps.
    let mut pending: HashMap<u64, usize> = HashMap::new(); // cmd id → tids sent
    for ((src, dest), tids) in &plan {
        let cmd_id = crate::node::with_ctx(|c| c.next_call_id());
        // A source that died between gather and command fails its *pair*,
        // never the round (a dead *destination* is the source's problem:
        // its departure handler refuses the move and acks zero).
        if send_to(
            *src,
            tag::MIGRATE_CMD,
            encode_migrate_cmd(&pool, cmd_id, *dest, tids),
        )
        .is_err()
        {
            continue;
        }
        counters.cmds.fetch_add(1, Ordering::SeqCst);
        pending.insert(cmd_id, tids.len());
    }

    // Collect: batched acks matched by cmd id until the deadline.  Ids
    // are node-unique and never reused, so an ack parked by an abandoned
    // round can never be credited to this one.
    while !pending.is_empty() {
        let Ok(ack) = wait_reply_until(tag::MIGRATE_CMD_ACK, None, deadline, |m| {
            proto::peek_cmd_id(&m.payload).is_some_and(|id| pending.contains_key(&id))
        }) else {
            break; // Deadline: the unanswered sources degrade the round.
        };
        let Some((cmd_id, accepted, _total, _wealth)) = proto::decode_migrate_ack(&ack.payload)
        else {
            continue;
        };
        pending.remove(&cmd_id);
        counters.moves.fetch_add(accepted as u64, Ordering::SeqCst);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::pick_sample;
    use std::collections::HashSet;

    #[test]
    fn sample_is_bounded_deduped_and_skips_self_and_dead() {
        let rng = crate::rng::SplitMix64::new(7);
        let hints = vec![0u32; 256];
        let dead: HashSet<usize> = [3, 4, 5].into_iter().collect();
        let t = pick_sample(256, 8, 0, &hints, &dead, &rng);
        assert!(t.len() <= 9, "k targets plus self at most, got {t:?}");
        assert!(t.contains(&0), "self is always probed");
        assert!(t.iter().all(|n| !dead.contains(n)), "corpses are skipped");
        let mut u = t.clone();
        u.dedup();
        assert_eq!(u, t, "targets are deduped");
    }

    #[test]
    fn sample_prefers_the_hinted_extremes() {
        let rng = crate::rng::SplitMix64::new(42);
        // One wildly overloaded peer and one empty peer among a uniform
        // middle: whenever the draw sees them, both ends must survive the
        // cut.  Run a few rounds so the draw does see them.
        let mut hints = vec![50u32; 64];
        hints[17] = 500;
        hints[23] = 0;
        let dead = HashSet::new();
        let mut hit_hi = false;
        let mut hit_lo = false;
        for _ in 0..32 {
            let t = pick_sample(64, 4, 0, &hints, &dead, &rng);
            hit_hi |= t.contains(&17);
            hit_lo |= t.contains(&23);
        }
        assert!(hit_hi, "the most-loaded peer is sampled as a source");
        assert!(hit_lo, "the least-loaded peer is sampled as a destination");
    }
}
