//! Generic load balancing via transparent preemptive migration.
//!
//! The paper's motivation for preemptive migration (§2): "a generic module
//! implemented outside the running application could balance the load by
//! migrating the application threads.  The threads are unaware of their
//! being migrated and keep on running irrespective of their location."
//!
//! [`start_balancer`] spawns exactly such a module: a daemon thread (on
//! node 0, excluded from migration itself) that periodically polls every
//! node's load over the fabric and ships ready threads from overloaded
//! nodes to underloaded ones.  Application threads contain no migration
//! code whatsoever.
//!
//! ## The plan/ack round protocol
//!
//! A round is **pipelined, not serialized** — its latency is proportional
//! to the number of (source → destination) *pairs* that trade, never to
//! the number of threads moved:
//!
//! 1. **Gather** — `LOAD_REQ` to every node; replies collected until all
//!    answer or the round deadline passes (a frozen node sits the round
//!    out; < 2 responders skips the round).
//! 2. **Plan** — the same greedy most-loaded → least-loaded walk as ever,
//!    but executed against the *snapshot*: it produces a move plan keyed
//!    by (src, dest) pair, each entry carrying the full tid list.
//! 3. **Command** — exactly one `MIGRATE_CMD` per planned pair, all
//!    issued back-to-back with a fresh cmd id each, no ack waits between
//!    them.  The source flags every named thread and the departure side
//!    coalesces them into one migration *train* per destination.
//! 4. **Collect** — batched `MIGRATE_CMD_ACK`s (cmd id, accepted, total)
//!    are matched by cmd id until every pending command answers or the
//!    deadline passes.  A straggler ack from an abandoned round has a
//!    stale cmd id and is ignored, never credited to a later round.
//!
//! The old protocol shipped one tid per `MIGRATE_CMD` and blocked on each
//! ack before sending the next, so evacuating 64 threads cost 64
//! serialized RTTs; now it costs one RTT per destination pair plus one
//! train per destination.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::api::{self, send_to, wait_reply_until};
use crate::error::Result;
use crate::machine::Machine;
use crate::proto::{self, encode_migrate_cmd, tag};

/// Balancer tuning.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Poll period.
    pub period: Duration,
    /// A node is overloaded when its load exceeds the mean by more than
    /// this many threads.
    pub threshold: usize,
    /// Maximum migrations ordered per round.
    pub max_moves_per_round: usize,
    /// Hard time budget for one round (load gather + migrate commands).
    /// A node that stops answering — frozen in a long negotiation,
    /// mid-shutdown, wedged — *degrades* the round to the nodes that did
    /// answer instead of wedging the daemon until the machine-wide reply
    /// deadline.
    pub round_deadline: Duration,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            period: Duration::from_millis(2),
            threshold: 1,
            max_moves_per_round: 8,
            round_deadline: Duration::from_millis(250),
        }
    }
}

/// Handle to stop the balancer daemon.
pub struct BalancerHandle {
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    thread: crate::machine::Pm2Thread,
}

/// Daemon observability: proof that rounds batch instead of serializing.
#[derive(Debug, Default)]
struct Counters {
    moves: AtomicU64,
    rounds: AtomicU64,
    cmds: AtomicU64,
}

impl BalancerHandle {
    /// Ask the daemon to exit and wait for it.
    pub fn stop(self, machine: &Machine) {
        self.stop.store(true, Ordering::SeqCst);
        machine.join(self.thread);
    }

    /// Total migrations the balancer has ordered (and had accepted) so far.
    pub fn moves(&self) -> u64 {
        self.counters.moves.load(Ordering::SeqCst)
    }

    /// Completed balance rounds.
    pub fn rounds(&self) -> u64 {
        self.counters.rounds.load(Ordering::SeqCst)
    }

    /// `MIGRATE_CMD` messages sent — at most one per (src, dest) pair per
    /// round, so under imbalance `cmds() < moves()` proves batching.
    pub fn cmds(&self) -> u64 {
        self.counters.cmds.load(Ordering::SeqCst)
    }
}

/// Start the balancer daemon on node 0.
pub fn start_balancer(machine: &Machine, cfg: BalancerConfig) -> Result<BalancerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let stop2 = Arc::clone(&stop);
    let counters2 = Arc::clone(&counters);
    let thread = machine.spawn_on(0, move || daemon(cfg, stop2, counters2))?;
    Ok(BalancerHandle {
        stop,
        counters,
        thread,
    })
}

fn daemon(cfg: BalancerConfig, stop: Arc<AtomicBool>, counters: Arc<Counters>) {
    // The balancer itself must not be bounced around by… itself.
    api::pm2_set_migratable(false);
    // …and its probe/command exchanges must not queue behind the very
    // compute backlog it exists to spread out: run in the control lane.
    api::pm2_set_control_priority(true);
    let p = api::pm2_nodes();
    while !stop.load(Ordering::SeqCst) {
        let round_started = Instant::now();
        if let Err(e) = balance_round(p, &cfg, &counters) {
            // A node dying mid-round degrades that round, not the daemon:
            // the next round simply plans around the corpse.  Anything
            // else (a shutting-down machine dropping replies, say) exits
            // quietly.
            if !matches!(e, crate::error::Pm2Error::NodeFailed(_)) {
                break;
            }
        }
        counters.rounds.fetch_add(1, Ordering::SeqCst);
        // Sleep cooperatively until the next round.
        while round_started.elapsed() < cfg.period {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            marcel::yield_now();
        }
    }
}

/// One load snapshot of a node.
struct Load {
    node: usize,
    resident: usize,
    migratable: Vec<u64>,
}

fn balance_round(p: usize, cfg: &BalancerConfig, counters: &Counters) -> Result<()> {
    let pool = api::local_pool();
    let deadline = Instant::now() + cfg.round_deadline;
    // Gather loads (the daemon itself counts towards node 0's load; the
    // threshold absorbs it).  A probe refused with a death certificate
    // drops that node from the round — corpses have no load to balance.
    let mut probed = 0usize;
    for peer in 0..p {
        if send_to(peer, tag::LOAD_REQ, Vec::new()).is_ok() {
            probed += 1;
        }
    }
    // Collect until every probed node answered or the round deadline
    // passes; a node that answers late (or never) simply sits this round
    // out.  Responses are keyed by node so a straggler reply from a
    // *previous* degraded round only refreshes that node's entry.
    let mut loads: Vec<Load> = Vec::with_capacity(probed);
    while loads.len() < probed {
        let Ok(m) = wait_reply_until(tag::LOAD_RESP, None, deadline, |_| true) else {
            break; // Deadline: balance whoever answered.
        };
        // (The reply also piggybacked the node's free-slot wealth, which
        // the dispatch layer absorbed into the trader's hint table before
        // parking it — the balancer's probes double as the slot economy's
        // freshness source.)
        let Some((resident, _, migratable)) = proto::decode_load_resp(&m.payload) else {
            continue;
        };
        let resident = resident as usize;
        if let Some(l) = loads.iter_mut().find(|l| l.node == m.src) {
            l.resident = resident;
            l.migratable = migratable;
        } else {
            loads.push(Load {
                node: m.src,
                resident,
                migratable,
            });
        }
    }
    if loads.len() < 2 {
        return Ok(()); // Nobody to trade with this round.
    }
    let total: usize = loads.iter().map(|l| l.resident).sum();
    let mean = total / loads.len();

    // Plan: the greedy most-loaded → least-loaded walk, against the
    // snapshot only — no wire traffic yet.  The plan is keyed by
    // (src, dest) pair; moving k threads between a pair costs one entry.
    let mut budget = cfg.max_moves_per_round;
    let mut plan: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    loop {
        if budget == 0 {
            break;
        }
        loads.sort_by_key(|l| l.resident);
        let (min_idx, max_idx) = (0, loads.len() - 1);
        let gap_over = loads[max_idx].resident.saturating_sub(mean);
        let gap = loads[max_idx]
            .resident
            .saturating_sub(loads[min_idx].resident);
        if gap_over <= cfg.threshold || gap < 2 {
            break;
        }
        let dest = loads[min_idx].node;
        let Some(tid) = loads[max_idx].migratable.pop() else {
            break;
        };
        let src_node = loads[max_idx].node;
        plan.entry((src_node, dest)).or_default().push(tid);
        loads[max_idx].resident -= 1;
        loads[min_idx].resident += 1;
        budget -= 1;
    }
    if plan.is_empty() {
        return Ok(());
    }

    // Command: every source concurrently, one MIGRATE_CMD per pair with
    // the full tid list — no per-thread (or even per-pair) RTT gaps.
    let mut pending: HashMap<u64, usize> = HashMap::new(); // cmd id → tids sent
    for ((src, dest), tids) in &plan {
        let cmd_id = crate::node::with_ctx(|c| c.next_call_id());
        // A source that died between gather and command fails its *pair*,
        // never the round (a dead *destination* is the source's problem:
        // its departure handler refuses the move and acks zero).
        if send_to(
            *src,
            tag::MIGRATE_CMD,
            encode_migrate_cmd(&pool, cmd_id, *dest, tids),
        )
        .is_err()
        {
            continue;
        }
        counters.cmds.fetch_add(1, Ordering::SeqCst);
        pending.insert(cmd_id, tids.len());
    }

    // Collect: batched acks matched by cmd id until the deadline.  Ids
    // are node-unique and never reused, so an ack parked by an abandoned
    // round can never be credited to this one.
    while !pending.is_empty() {
        let Ok(ack) = wait_reply_until(tag::MIGRATE_CMD_ACK, None, deadline, |m| {
            proto::peek_cmd_id(&m.payload).is_some_and(|id| pending.contains_key(&id))
        }) else {
            break; // Deadline: the unanswered sources degrade the round.
        };
        let Some((cmd_id, accepted, _total, _wealth)) = proto::decode_migrate_ack(&ack.payload)
        else {
            continue;
        };
        pending.remove(&cmd_id);
        counters.moves.fetch_add(accepted as u64, Ordering::SeqCst);
    }
    Ok(())
}
