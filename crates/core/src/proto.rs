//! Wire protocol: message tags and payload codecs.
//!
//! Tag space of the PM2 runtime over the Madeleine fabric.  Payloads are
//! little-endian framed through the [`Wire`] trait — each protocol message
//! body is a tuple of typed fields, so the encode and decode sides cannot
//! drift apart.  (`SlotBitmap` ships its own serialized form and stays
//! byte-level.)
//!
//! Every encoder writes into a buffer checked out of the caller's
//! [`BufPool`] (each endpoint owns one) and returns a sealed [`Payload`],
//! so protocol traffic allocates nothing in steady state: the receiver's
//! drop recycles the buffer into the sender's free list.

use isoaddr::SlotRange;
use madeleine::message::PayloadWriter;
use madeleine::{BufPool, Payload, Wire};

use crate::registry::ThreadExit;

/// Message tags.
pub mod tag {
    /// Host → node: spawn the closure stored under a spawn-table key.
    pub const SPAWN_KEY: u16 = 1;
    /// Any → node: spawn a registered service (LRPC-style remote spawn).
    pub const RPC_SPAWN: u16 = 2;
    /// Node → node: a packed migration *train* — one message carrying k ≥ 1
    /// threads bound for this node (count + tid/offset table + records; see
    /// `crate::migration` for the wire shape).
    pub const MIGRATION: u16 = 3;
    /// Receiver → sender: one or more record groups of a migration train
    /// failed to unpack (corrupt or truncated); carries the lost tids and
    /// a UTF-8 description.  Those threads are lost but both nodes stay
    /// up, and the rest of the train landed normally.
    pub const MIGRATION_NAK: u16 = 4;
    /// Any → node 0: request the system-wide negotiation lock.
    pub const NEG_LOCK_REQ: u16 = 10;
    /// Node 0 → requester: lock granted.
    pub const NEG_LOCK_GRANT: u16 = 11;
    /// Holder → node 0: lock released.
    pub const NEG_LOCK_RELEASE: u16 = 12;
    /// Initiator → all: send me your bitmap (freezes the replier's bitmap).
    pub const NEG_BITMAP_REQ: u16 = 13;
    /// Replier → initiator: my bitmap.
    pub const NEG_BITMAP_RESP: u16 = 14;
    /// Initiator → seller: transfer these slot ranges to me.
    pub const NEG_BUY: u16 = 15;
    /// Seller → initiator: done.
    pub const NEG_BUY_ACK: u16 = 16;
    /// Initiator → all: negotiation over; unfreeze your bitmap.
    pub const NEG_DONE: u16 = 17;
    /// Host → node: finish resident threads, then stop.
    pub const SHUTDOWN: u16 = 20;
    /// Node → host: stopped.
    pub const SHUTDOWN_ACK: u16 = 21;
    /// Host → node: report ownership for the global audit.
    pub const AUDIT_REQ: u16 = 22;
    /// Node → host: audit report.
    pub const AUDIT_RESP: u16 = 23;
    /// Any → node: report your load (resident thread count).
    pub const LOAD_REQ: u16 = 24;
    /// Node → requester: load report.
    pub const LOAD_RESP: u16 = 25;
    /// Any → node: preemptively migrate a *list* of threads to node `dest`
    /// (cmd id, dest, tids) — one command per (source, destination) pair,
    /// however many threads move.
    pub const MIGRATE_CMD: u16 = 26;
    /// Node → requester: migrate command outcome (cmd id, accepted count,
    /// total count).  The echoed cmd id is what lets a deadline-bounded
    /// balancer round match acks without serializing on them.
    pub const MIGRATE_CMD_ACK: u16 = 27;
    /// Node → home node: thread exited (for cross-node joins; carries the
    /// panic message and the Wire-encoded return value when present).
    pub const THREAD_EXIT: u16 = 28;
    /// Any → node: typed LRPC request (call id, service id, request bytes).
    pub const RPC_CALL: u16 = 30;
    /// Serving node → caller: typed LRPC response (call id, status, bytes).
    pub const RPC_RESP: u16 = 31;
    /// Node → node: point-to-point slot trade request (trade id, slots
    /// wanted, minimum contiguous run, requester's free-slot wealth).  The
    /// hot-path replacement for the §4.4 global negotiation: no lock, no
    /// freeze, no bitmap gather — one request to the richest known peer.
    pub const SLOT_TRADE_REQ: u16 = 32;
    /// Node → requester: trade reply (trade id, responder's post-trade
    /// wealth, granted slot ranges — empty = refused).  The responder
    /// cleared its bits before this message left, so adopting the ranges
    /// completes the ownership transfer with exactly one bitmap owner per
    /// slot at every instant.
    pub const SLOT_TRADE_RESP: u16 = 33;
    /// Host → node: die immediately (chaos kill switch).  The driver stops
    /// without finishing resident threads, without acking, without
    /// releasing anything — as close to pulling the power cord as an
    /// in-process fabric gets.
    pub const KILL: u16 = 40;
    /// Any → all: the named node is dead.  Survivors purge it from wealth
    /// hints, load snapshots and lock queues, drop its late (zombie)
    /// messages, and fail any wait targeting it with `NodeFailed`.
    pub const NODE_DEAD: u16 = 41;
    /// Host → node: checkpoint your migratable threads to the spill log
    /// now (carries a request id).
    pub const CKPT_REQ: u16 = 42;
    /// Node → host: checkpoint done (echoed id + threads written).
    pub const CKPT_ACK: u16 = 43;
    /// Host → node: adopt these orphaned slot ranges (a dead node's
    /// reclaimed estate).  Carries a reclaim id so a retried request is
    /// idempotent: the heir re-acks a duplicate id without re-adopting.
    pub const NODE_RECLAIM: u16 = 44;
    /// Node → host: reclamation done (echoed id + adopted slot count).
    pub const RECLAIM_ACK: u16 = 45;
    /// Node → node: liveness probe for the failure detector.  Arrival (of
    /// *any* message) refreshes the sender's last-heard stamp; since the
    /// gossip rework HEARTBEATs flow only toward *suspected* peers — a
    /// payload byte of 1 is a ping that requests an answering pong (empty
    /// payload), clearing the suspicion with one message.
    pub const HEARTBEAT: u16 = 46;
    /// Node → node: epidemic digest (see [`encode_gossip`]).  Carries the
    /// sender's own wealth/load under a fresh sequence number plus a few
    /// relayed table entries, so wealth hints, load snapshots and liveness
    /// evidence spread in O(fanout) messages per node per round instead of
    /// the balancer probing — or the detector beaconing — all p peers.
    pub const GOSSIP: u16 = 47;
}

/// Status byte of an [`tag::RPC_RESP`] payload.
pub mod rpc_status {
    /// Success; the bytes are the `Wire`-encoded response.
    pub const OK: u8 = 0;
    /// No service registered under the requested id; bytes empty.
    pub const NO_SUCH_SERVICE: u8 = 1;
    /// The serving side failed (decode error, handler panic, oversized
    /// response); the bytes are a UTF-8 message.
    pub const REMOTE_ERROR: u8 = 2;
    /// The serving node died before replying; callers map this to
    /// `Pm2Error::NodeFailed`.  Synthesized locally when a `NODE_DEAD`
    /// lands while calls to the corpse are pending.
    pub const NODE_FAILED: u8 = 3;
}

/// Encode a list of slot ranges (NEG_BUY payload).
pub fn encode_ranges(pool: &BufPool, ranges: &[SlotRange]) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 8 + ranges.len() * 16);
    w.u32(ranges.len() as u32);
    for r in ranges {
        w.u64(r.first as u64).u64(r.count as u64);
    }
    w.finish()
}

/// Decode a list of slot ranges.
pub fn decode_ranges(buf: &[u8]) -> Option<Vec<SlotRange>> {
    let pairs = Vec::<(u64, u64)>::decode_vec(buf)?;
    Some(
        pairs
            .into_iter()
            .map(|(f, c)| SlotRange::new(f as usize, c as usize))
            .collect(),
    )
}

/// Encode a `SLOT_TRADE_REQ` payload: (trade id, slots wanted, minimum
/// contiguous run that would satisfy the requester outright, requester's
/// own free-slot count — the piggybacked wealth hint).
pub fn encode_slot_trade_req(
    pool: &BufPool,
    trade_id: u64,
    want: u32,
    min_contig: u32,
    wealth: u32,
) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 24);
    w.u64(trade_id).u32(want).u32(min_contig).u32(wealth);
    w.finish()
}

/// Decode a `SLOT_TRADE_REQ` payload into (trade id, want, min contiguous,
/// wealth).
pub fn decode_slot_trade_req(buf: &[u8]) -> Option<(u64, u32, u32, u32)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    Some((r.u64()?, r.u32()?, r.u32()?, r.u32()?))
}

/// Encode a `SLOT_TRADE_RESP` payload: (echoed trade id, responder's
/// post-trade wealth, granted ranges).  An empty range list is a refusal.
pub fn encode_slot_trade_resp(
    pool: &BufPool,
    trade_id: u64,
    wealth: u32,
    ranges: &[SlotRange],
) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 16 + ranges.len() * 16);
    w.u64(trade_id).u32(wealth).u32(ranges.len() as u32);
    for r in ranges {
        w.u64(r.first as u64).u64(r.count as u64);
    }
    w.finish()
}

/// Decode a `SLOT_TRADE_RESP` payload into (trade id, wealth, ranges).
pub fn decode_slot_trade_resp(buf: &[u8]) -> Option<(u64, u32, Vec<SlotRange>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let trade_id = r.u64()?;
    let wealth = r.u32()?;
    let n = r.u32()? as usize;
    let mut ranges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let first = r.u64()? as usize;
        let count = r.u64()? as usize;
        if count == 0 {
            return None;
        }
        ranges.push(SlotRange::new(first, count));
    }
    Some((trade_id, wealth, ranges))
}

/// Read just the leading trade id off a `SLOT_TRADE_RESP` (reply matching).
pub fn peek_trade_id(buf: &[u8]) -> Option<u64> {
    madeleine::message::PayloadReader::new(buf).u64()
}

/// One thread's communication-affinity record, piggybacked on `LOAD_RESP`
/// so the balancer's planner sees who talks to whom and what a move costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffinityEdge {
    /// The migratable thread this record describes.
    pub tid: u64,
    /// Estimated bytes a migration train would carry for this thread
    /// (stack + heap pack hint) — the denominator of the planner's
    /// msgs-saved-per-byte score.
    pub pack_cost: u32,
    /// Balancer epochs since the thread last migrated (`u32::MAX` =
    /// never); the planner's hysteresis cooldown input.
    pub epochs_since_move: u32,
    /// `(peer_node, msgs)` entries from the thread's top-k table.
    pub peers: Vec<(u32, u32)>,
}

/// Encode a `LOAD_REQ` payload: the balancer's affinity decay shift for
/// this epoch.  An *empty* payload stays valid (legacy `pm2_probe_load`
/// sends one) and means "no decay".
pub fn encode_load_req(pool: &BufPool, decay_shift: u32) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 4);
    w.u32(decay_shift);
    w.finish()
}

/// Decode a `LOAD_REQ` payload's decay shift (empty payload = 0).
pub fn decode_load_req(buf: &[u8]) -> u32 {
    madeleine::message::PayloadReader::new(buf)
        .u32()
        .unwrap_or(0)
}

/// Encode a `LOAD_RESP` payload: (resident thread count, free-slot wealth,
/// migratable tids, hottest affinity edges).  The wealth field is the
/// piggyback that lets the load balancer's probes and the slot trader share
/// one freshness source; the affinity section is appended *after* the tid
/// vector so pre-affinity decoders (and `peek_load_hints`) still parse the
/// prefix unchanged.
pub fn encode_load_resp(
    pool: &BufPool,
    resident: u32,
    wealth: u32,
    tids: &[u64],
    aff: &[AffinityEdge],
) -> Payload {
    let aff_bytes: usize = aff.iter().map(|e| 20 + e.peers.len() * 8).sum();
    let mut w = PayloadWriter::pooled(pool, 20 + tids.len() * 8 + aff_bytes);
    w.u32(resident).u32(wealth).u32(tids.len() as u32);
    for t in tids {
        w.u64(*t);
    }
    w.u32(aff.len() as u32);
    for e in aff {
        w.u64(e.tid)
            .u32(e.pack_cost)
            .u32(e.epochs_since_move)
            .u32(e.peers.len() as u32);
        for &(node, msgs) in &e.peers {
            w.u32(node).u32(msgs);
        }
    }
    w.finish()
}

/// Decode a `LOAD_RESP` payload into (resident, wealth, migratable tids).
/// Ignores the trailing affinity section — the hot dispatch path and the
/// legacy `pm2_probe_load` only need the prefix.
pub fn decode_load_resp(buf: &[u8]) -> Option<(u32, u32, Vec<u64>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let resident = r.u32()?;
    let wealth = r.u32()?;
    let n = r.u32()? as usize;
    let mut tids = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        tids.push(r.u64()?);
    }
    Some((resident, wealth, tids))
}

/// Full `LOAD_RESP` decode: (resident, wealth, migratable tids, affinity
/// edges).  A payload without the affinity section (pre-affinity encoder)
/// yields an empty edge vector rather than an error.
pub fn decode_load_resp_aff(buf: &[u8]) -> Option<(u32, u32, Vec<u64>, Vec<AffinityEdge>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let resident = r.u32()?;
    let wealth = r.u32()?;
    let n = r.u32()? as usize;
    let mut tids = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        tids.push(r.u64()?);
    }
    let mut aff = Vec::new();
    if let Some(n_aff) = r.u32() {
        for _ in 0..n_aff {
            let tid = r.u64()?;
            let pack_cost = r.u32()?;
            let epochs_since_move = r.u32()?;
            let k = r.u32()? as usize;
            let mut peers = Vec::with_capacity(k.min(64));
            for _ in 0..k {
                peers.push((r.u32()?, r.u32()?));
            }
            aff.push(AffinityEdge {
                tid,
                pack_cost,
                epochs_since_move,
                peers,
            });
        }
    }
    Some((resident, wealth, tids, aff))
}

/// Read just the (resident, wealth) header off a `LOAD_RESP` payload
/// (dispatch-time sniffing — no tid-vector allocation; the full decode
/// happens at the waiting green thread).
pub fn peek_load_hints(buf: &[u8]) -> Option<(u32, u32)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    Some((r.u32()?, r.u32()?))
}

/// Encode a `MIGRATE_CMD` payload: one command ordering every thread in
/// `tids` (resident on the receiving node) to move to `dest`.
pub fn encode_migrate_cmd(pool: &BufPool, cmd_id: u64, dest: usize, tids: &[u64]) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 24 + tids.len() * 8);
    w.u64(cmd_id).u32(dest as u32).u32(tids.len() as u32);
    for t in tids {
        w.u64(*t);
    }
    w.finish()
}

/// Decode a `MIGRATE_CMD` payload into (cmd id, dest, tids).
pub fn decode_migrate_cmd(buf: &[u8]) -> Option<(u64, usize, Vec<u64>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let cmd_id = r.u64()?;
    let dest = r.u32()? as usize;
    let n = r.u32()? as usize;
    let mut tids = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        tids.push(r.u64()?);
    }
    Some((cmd_id, dest, tids))
}

/// Encode a `MIGRATE_CMD_ACK` payload: the echoed cmd id, how many of the
/// commanded threads were accepted for migration, and the acking node's
/// free-slot wealth (piggybacked for the slot trader).
pub fn encode_migrate_ack(
    pool: &BufPool,
    cmd_id: u64,
    accepted: u32,
    total: u32,
    wealth: u32,
) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 24);
    w.u64(cmd_id).u32(accepted).u32(total).u32(wealth);
    w.finish()
}

/// Decode a `MIGRATE_CMD_ACK` payload into (cmd id, accepted, total,
/// wealth).
pub fn decode_migrate_ack(buf: &[u8]) -> Option<(u64, u32, u32, u32)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    Some((r.u64()?, r.u32()?, r.u32()?, r.u32()?))
}

/// Read just the leading cmd id off a `MIGRATE_CMD_ACK` (reply matching).
pub fn peek_cmd_id(buf: &[u8]) -> Option<u64> {
    madeleine::message::PayloadReader::new(buf).u64()
}

/// Encode a `MIGRATION_NAK` payload: the tids lost from a train plus a
/// UTF-8 description.  An empty tid list means the train's table itself
/// was unreadable (nothing to name).
pub fn encode_migration_nak(pool: &BufPool, tids: &[u64], text: &str) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 8 + tids.len() * 8 + text.len());
    w.u32(tids.len() as u32);
    for t in tids {
        w.u64(*t);
    }
    w.bytes(text.as_bytes());
    w.finish()
}

/// Decode a `MIGRATION_NAK` payload into (lost tids, description).
pub fn decode_migration_nak(buf: &[u8]) -> Option<(Vec<u64>, String)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let n = r.u32()? as usize;
    let mut tids = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        tids.push(r.u64()?);
    }
    Some((tids, String::from_utf8_lossy(r.rest()).into_owned()))
}

// Codecs whose payloads carry uncapped byte strings (RPC args, encoded
// return values) frame them with `lp_bytes` directly — one memcpy — rather
// than through `Vec<u8>`'s element-wise `Wire` impl, which would copy the
// buffer twice with a bounds-checked push per byte.  The framing is
// identical to the `Wire` form (u32 length prefix + bytes; Option as one
// presence byte), so `Wire`-framed peers decode it unchanged.

/// Encode an `RPC_SPAWN` payload.
pub fn encode_rpc_spawn(pool: &BufPool, service: u32, args: &[u8]) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 8 + args.len());
    w.u32(service).lp_bytes(args);
    w.finish()
}

/// Decode an `RPC_SPAWN` payload.
pub fn decode_rpc_spawn(buf: &[u8]) -> Option<(u32, Vec<u8>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let service = r.u32()?;
    let args = r.lp_bytes()?.to_vec();
    Some((service, args))
}

/// Encode a `THREAD_EXIT` payload from a completion record.
pub fn encode_thread_exit(pool: &BufPool, exit: &ThreadExit) -> Payload {
    let value_len = exit.value.as_ref().map_or(0, Vec::len);
    let mut w = PayloadWriter::pooled(pool, 80 + value_len);
    w.u64(exit.tid)
        .u8(exit.panicked as u8)
        .u64(exit.died_on as u64);
    match &exit.panic_msg {
        None => w.u8(0),
        Some(msg) => w.u8(1).lp_bytes(msg.as_bytes()),
    };
    match &exit.value {
        None => w.u8(0),
        Some(value) => w.u8(1).lp_bytes(value),
    };
    match exit.failed_node {
        None => w.u8(0),
        Some(n) => w.u8(1).u64(n as u64),
    };
    w.finish()
}

/// Decode a `THREAD_EXIT` payload.
pub fn decode_thread_exit(buf: &[u8]) -> Option<ThreadExit> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let tid = r.u64()?;
    let panicked = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let died_on = r.u64()? as usize;
    let panic_msg = match r.u8()? {
        0 => None,
        1 => Some(String::from_utf8(r.lp_bytes()?.to_vec()).ok()?),
        _ => return None,
    };
    let value = match r.u8()? {
        0 => None,
        1 => Some(r.lp_bytes()?.to_vec()),
        _ => return None,
    };
    let failed_node = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        _ => return None,
    };
    Some(ThreadExit {
        tid,
        panicked,
        died_on,
        panic_msg,
        value,
        failed_node,
    })
}

/// Encode a `NODE_DEAD` payload: the dead node's id.
pub fn encode_node_dead(pool: &BufPool, node: usize) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 4);
    w.u32(node as u32);
    w.finish()
}

/// Decode a `NODE_DEAD` payload.
pub fn decode_node_dead(buf: &[u8]) -> Option<usize> {
    madeleine::message::PayloadReader::new(buf)
        .u32()
        .map(|n| n as usize)
}

/// Encode a `CKPT_REQ` payload: the request id echoed by the ack.
pub fn encode_ckpt_req(pool: &BufPool, req_id: u64) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 8);
    w.u64(req_id);
    w.finish()
}

/// Decode a `CKPT_REQ` payload.
pub fn decode_ckpt_req(buf: &[u8]) -> Option<u64> {
    madeleine::message::PayloadReader::new(buf).u64()
}

/// Encode a `CKPT_ACK` payload: (echoed request id, threads written).
pub fn encode_ckpt_ack(pool: &BufPool, req_id: u64, threads: u32) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 12);
    w.u64(req_id).u32(threads);
    w.finish()
}

/// Decode a `CKPT_ACK` payload into (request id, threads written).
pub fn decode_ckpt_ack(buf: &[u8]) -> Option<(u64, u32)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    Some((r.u64()?, r.u32()?))
}

/// Read just the leading request id off a `CKPT_ACK` (reply matching).
pub fn peek_ckpt_id(buf: &[u8]) -> Option<u64> {
    madeleine::message::PayloadReader::new(buf).u64()
}

/// Encode a `NODE_RECLAIM` payload: (reclaim id, orphaned ranges).  The
/// id makes the request idempotent under retries — an heir that already
/// adopted under this id re-acks the recorded count without re-adopting.
pub fn encode_node_reclaim(pool: &BufPool, reclaim_id: u64, ranges: &[SlotRange]) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 16 + ranges.len() * 16);
    w.u64(reclaim_id).u32(ranges.len() as u32);
    for r in ranges {
        w.u64(r.first as u64).u64(r.count as u64);
    }
    w.finish()
}

/// Decode a `NODE_RECLAIM` payload into (reclaim id, ranges).
pub fn decode_node_reclaim(buf: &[u8]) -> Option<(u64, Vec<SlotRange>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let reclaim_id = r.u64()?;
    let count = r.u32()? as usize;
    let mut ranges = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let first = r.u64()? as usize;
        let n = r.u64()? as usize;
        ranges.push(SlotRange::new(first, n));
    }
    Some((reclaim_id, ranges))
}

/// Encode a `RECLAIM_ACK` payload: (echoed reclaim id, slots adopted).
pub fn encode_reclaim_ack(pool: &BufPool, reclaim_id: u64, slots: u32) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 12);
    w.u64(reclaim_id).u32(slots);
    w.finish()
}

/// Decode a `RECLAIM_ACK` payload into (reclaim id, slots adopted).
pub fn decode_reclaim_ack(buf: &[u8]) -> Option<(u64, u32)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    Some((r.u64()?, r.u32()?))
}

/// Read just the leading reclaim id off a `RECLAIM_ACK` (reply matching).
pub fn peek_reclaim_id(buf: &[u8]) -> Option<u64> {
    madeleine::message::PayloadReader::new(buf).u64()
}

/// Encode an `RPC_CALL` payload.  `reply_to` is the fabric id the response
/// must be sent to, carried explicitly rather than recovered from
/// `Message::src`: the request may be parked and replayed by a frozen node
/// and the handler may migrate before replying, so the response must not
/// depend on any fabric metadata of the original delivery.
pub fn encode_rpc_call(
    pool: &BufPool,
    call_id: u64,
    reply_to: usize,
    service: u32,
    req: &[u8],
) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 20 + req.len());
    w.u64(call_id)
        .u32(reply_to as u32)
        .u32(service)
        .lp_bytes(req);
    w.finish()
}

/// Decode an `RPC_CALL` payload into (call id, reply-to, service, request).
pub fn decode_rpc_call(buf: &[u8]) -> Option<(u64, usize, u32, Vec<u8>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let call_id = r.u64()?;
    let reply_to = r.u32()? as usize;
    let service = r.u32()?;
    let req = r.lp_bytes()?.to_vec();
    Some((call_id, reply_to, service, req))
}

/// Encode an `RPC_RESP` payload.
pub fn encode_rpc_resp(pool: &BufPool, call_id: u64, status: u8, bytes: &[u8]) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 16 + bytes.len());
    w.u64(call_id).u8(status).lp_bytes(bytes);
    w.finish()
}

/// Decode an `RPC_RESP` payload.
pub fn decode_rpc_resp(buf: &[u8]) -> Option<(u64, u8, Vec<u8>)> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let call_id = r.u64()?;
    let status = r.u8()?;
    let bytes = r.lp_bytes()?.to_vec();
    Some((call_id, status, bytes))
}

/// Read just the call id off an `RPC_RESP` payload (reply matching).
pub fn peek_rpc_call_id(buf: &[u8]) -> Option<u64> {
    madeleine::message::PayloadReader::new(buf).u64()
}

/// One entry of an epidemic digest: what some node claimed about itself
/// under its `seq`-th gossip round.  Entries are relayed verbatim, so a
/// receiver orders claims about the same origin by sequence number and a
/// dead origin's entries go stale instead of being refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipEntry {
    /// The node this entry describes (the gossip *origin*, not the sender).
    pub node: u32,
    /// The origin's round counter when it produced this claim.
    pub seq: u32,
    /// The origin's free-slot count (wealth hint).
    pub wealth: u32,
    /// The origin's resident-thread count (load hint).
    pub load: u32,
}

/// Encode a `GOSSIP` digest.
pub fn encode_gossip(pool: &BufPool, entries: &[GossipEntry]) -> Payload {
    let mut w = PayloadWriter::pooled(pool, 4 + entries.len() * 16);
    w.u32(entries.len() as u32);
    for e in entries {
        w.u32(e.node).u32(e.seq).u32(e.wealth).u32(e.load);
    }
    w.finish()
}

/// Decode a `GOSSIP` digest.
pub fn decode_gossip(buf: &[u8]) -> Option<Vec<GossipEntry>> {
    let mut r = madeleine::message::PayloadReader::new(buf);
    let n = r.u32()? as usize;
    // A digest is a handful of entries; refuse absurd counts outright so a
    // corrupt length cannot trigger a huge allocation.
    if n > 1024 {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(GossipEntry {
            node: r.u32()?,
            seq: r.u32()?,
            wealth: r.u32()?,
            load: r.u32()?,
        });
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_roundtrip() {
        let pool = BufPool::new();
        let entries = vec![
            GossipEntry {
                node: 3,
                seq: 17,
                wealth: 250,
                load: 4,
            },
            GossipEntry {
                node: 250,
                seq: 1,
                wealth: 0,
                load: 0,
            },
        ];
        let buf = encode_gossip(&pool, &entries);
        assert_eq!(decode_gossip(&buf).unwrap(), entries);
        assert_eq!(decode_gossip(&encode_gossip(&pool, &[])).unwrap(), vec![]);
        // Truncated and length-lying payloads are rejected, not panicked on.
        assert!(decode_gossip(&buf[..buf.len() - 1]).is_none());
        assert!(decode_gossip(&u32::MAX.to_le_bytes()).is_none());
    }

    #[test]
    fn ranges_roundtrip() {
        let pool = BufPool::new();
        let rs = vec![SlotRange::new(3, 4), SlotRange::new(100, 1)];
        assert_eq!(decode_ranges(&encode_ranges(&pool, &rs)).unwrap(), rs);
        assert_eq!(decode_ranges(&encode_ranges(&pool, &[])).unwrap(), vec![]);
        assert!(decode_ranges(&[1, 0, 0]).is_none());
    }

    #[test]
    fn migrate_cmd_roundtrip() {
        let pool = BufPool::new();
        let buf = encode_migrate_cmd(&pool, 9, 3, &[0xAB, 0xCD]);
        assert_eq!(decode_migrate_cmd(&buf), Some((9, 3, vec![0xAB, 0xCD])));
        let empty = encode_migrate_cmd(&pool, 1, 0, &[]);
        assert_eq!(decode_migrate_cmd(&empty), Some((1, 0, vec![])));
        assert_eq!(decode_migrate_cmd(&buf[..7]), None, "truncation rejected");
    }

    #[test]
    fn migrate_ack_roundtrip() {
        let pool = BufPool::new();
        let buf = encode_migrate_ack(&pool, 42, 3, 5, 17);
        assert_eq!(decode_migrate_ack(&buf), Some((42, 3, 5, 17)));
        assert_eq!(peek_cmd_id(&buf), Some(42));
    }

    #[test]
    fn slot_trade_roundtrip() {
        let pool = BufPool::new();
        let req = encode_slot_trade_req(&pool, 0xBEEF, 16, 2, 120);
        assert_eq!(decode_slot_trade_req(&req), Some((0xBEEF, 16, 2, 120)));
        assert_eq!(decode_slot_trade_req(&req[..11]), None, "truncation");

        let ranges = vec![SlotRange::new(8, 2), SlotRange::new(60, 4)];
        let resp = encode_slot_trade_resp(&pool, 0xBEEF, 90, &ranges);
        assert_eq!(decode_slot_trade_resp(&resp), Some((0xBEEF, 90, ranges)));
        assert_eq!(peek_trade_id(&resp), Some(0xBEEF));
        let refusal = encode_slot_trade_resp(&pool, 7, 3, &[]);
        assert_eq!(decode_slot_trade_resp(&refusal), Some((7, 3, vec![])));
        assert_eq!(decode_slot_trade_resp(&resp[..17]), None, "truncation");
    }

    #[test]
    fn load_resp_roundtrip() {
        let pool = BufPool::new();
        let buf = encode_load_resp(&pool, 5, 33, &[9, 10], &[]);
        assert_eq!(decode_load_resp(&buf), Some((5, 33, vec![9, 10])));
        assert_eq!(peek_load_hints(&buf), Some((5, 33)));
        let empty = encode_load_resp(&pool, 0, 0, &[], &[]);
        assert_eq!(decode_load_resp(&empty), Some((0, 0, vec![])));
    }

    #[test]
    fn load_resp_affinity_roundtrip() {
        let pool = BufPool::new();
        let edges = vec![
            AffinityEdge {
                tid: 9,
                pack_cost: 4096,
                epochs_since_move: u32::MAX,
                peers: vec![(1, 40), (2, 3)],
            },
            AffinityEdge {
                tid: 10,
                pack_cost: 128,
                epochs_since_move: 0,
                peers: vec![],
            },
        ];
        let buf = encode_load_resp(&pool, 5, 33, &[9, 10], &edges);
        // Prefix decoders ignore the affinity tail.
        assert_eq!(decode_load_resp(&buf), Some((5, 33, vec![9, 10])));
        assert_eq!(peek_load_hints(&buf), Some((5, 33)));
        let (resident, wealth, tids, aff) = decode_load_resp_aff(&buf).unwrap();
        assert_eq!((resident, wealth, tids), (5, 33, vec![9, 10]));
        assert_eq!(aff, edges);
        // A pre-affinity payload decodes with an empty edge vector.
        let legacy = encode_load_resp(&pool, 2, 7, &[1], &[]);
        let (_, _, _, aff) = decode_load_resp_aff(&legacy[..20.min(legacy.len())]).unwrap();
        assert!(aff.is_empty());
    }

    #[test]
    fn load_req_roundtrip() {
        let pool = BufPool::new();
        let buf = encode_load_req(&pool, 3);
        assert_eq!(decode_load_req(&buf), 3);
        assert_eq!(decode_load_req(&[]), 0, "legacy empty probe = no decay");
    }

    #[test]
    fn migration_nak_roundtrip() {
        let pool = BufPool::new();
        let buf = encode_migration_nak(&pool, &[7, 8], "bad record");
        assert_eq!(
            decode_migration_nak(&buf),
            Some((vec![7, 8], "bad record".into()))
        );
        let anon = encode_migration_nak(&pool, &[], "unreadable table");
        assert_eq!(
            decode_migration_nak(&anon),
            Some((vec![], "unreadable table".into()))
        );
    }

    #[test]
    fn rpc_spawn_roundtrip() {
        let pool = BufPool::new();
        let buf = encode_rpc_spawn(&pool, 7, b"payload");
        assert_eq!(decode_rpc_spawn(&buf), Some((7, b"payload".to_vec())));
    }

    #[test]
    fn thread_exit_roundtrip() {
        let pool = BufPool::new();
        let exit = ThreadExit {
            tid: 42,
            panicked: true,
            died_on: 2,
            panic_msg: Some("assertion failed".into()),
            value: Some(vec![1, 2, 3]),
            failed_node: None,
        };
        assert_eq!(
            decode_thread_exit(&encode_thread_exit(&pool, &exit)),
            Some(exit)
        );
        let plain = ThreadExit::plain(7, false, 0);
        assert_eq!(
            decode_thread_exit(&encode_thread_exit(&pool, &plain)),
            Some(plain)
        );
        let failed = ThreadExit::node_failed(9, 3);
        assert_eq!(
            decode_thread_exit(&encode_thread_exit(&pool, &failed)),
            Some(failed)
        );
    }

    #[test]
    fn fault_tolerance_codecs_roundtrip() {
        let pool = BufPool::new();
        let nd = encode_node_dead(&pool, 3);
        assert_eq!(decode_node_dead(&nd), Some(3));
        assert_eq!(decode_node_dead(&nd[..2]), None);

        let req = encode_ckpt_req(&pool, 0xC0FFEE);
        assert_eq!(decode_ckpt_req(&req), Some(0xC0FFEE));
        let ack = encode_ckpt_ack(&pool, 0xC0FFEE, 12);
        assert_eq!(decode_ckpt_ack(&ack), Some((0xC0FFEE, 12)));
        assert_eq!(peek_ckpt_id(&ack), Some(0xC0FFEE));

        let ranges = vec![SlotRange::new(10, 4), SlotRange::new(100, 1)];
        let nr = encode_node_reclaim(&pool, 0xBEEF, &ranges);
        assert_eq!(decode_node_reclaim(&nr), Some((0xBEEF, ranges)));

        let rack = encode_reclaim_ack(&pool, 0xBEEF, 200);
        assert_eq!(decode_reclaim_ack(&rack), Some((0xBEEF, 200)));
        assert_eq!(peek_reclaim_id(&rack), Some(0xBEEF));
    }

    #[test]
    fn rpc_call_resp_roundtrip() {
        let pool = BufPool::new();
        let call = encode_rpc_call(&pool, 99, 3, 0xFEED, b"req");
        assert_eq!(
            decode_rpc_call(&call),
            Some((99, 3, 0xFEED, b"req".to_vec()))
        );
        let resp = encode_rpc_resp(&pool, 99, rpc_status::OK, b"resp");
        assert_eq!(
            decode_rpc_resp(&resp),
            Some((99, rpc_status::OK, b"resp".to_vec()))
        );
        assert_eq!(peek_rpc_call_id(&resp), Some(99));
        assert_eq!(decode_rpc_call(&call[..5]), None, "truncation rejected");
    }

    /// Protocol encoders stop allocating once the pool is warm.
    #[test]
    fn encoders_recycle_pool_buffers() {
        let pool = BufPool::new();
        let mut ptr = None;
        for i in 0..10u64 {
            let p = encode_rpc_resp(&pool, i, rpc_status::OK, &[0u8; 100]);
            match ptr {
                None => ptr = Some(p.as_ptr()),
                Some(q) => assert_eq!(p.as_ptr(), q),
            }
        }
        assert_eq!(pool.stats().allocs, 1);
    }
}
