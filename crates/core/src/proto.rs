//! Wire protocol: message tags and payload codecs.
//!
//! Tag space of the PM2 runtime over the Madeleine fabric.  Payloads are
//! little-endian framed with [`madeleine::message::PayloadWriter`].

use isoaddr::SlotRange;
use madeleine::message::{PayloadReader, PayloadWriter};

/// Message tags.
pub mod tag {
    /// Host → node: spawn the closure stored under a spawn-table key.
    pub const SPAWN_KEY: u16 = 1;
    /// Any → node: spawn a registered service (LRPC-style remote spawn).
    pub const RPC_SPAWN: u16 = 2;
    /// Node → node: a packed migrating thread.
    pub const MIGRATION: u16 = 3;
    /// Any → node 0: request the system-wide negotiation lock.
    pub const NEG_LOCK_REQ: u16 = 10;
    /// Node 0 → requester: lock granted.
    pub const NEG_LOCK_GRANT: u16 = 11;
    /// Holder → node 0: lock released.
    pub const NEG_LOCK_RELEASE: u16 = 12;
    /// Initiator → all: send me your bitmap (freezes the replier's bitmap).
    pub const NEG_BITMAP_REQ: u16 = 13;
    /// Replier → initiator: my bitmap.
    pub const NEG_BITMAP_RESP: u16 = 14;
    /// Initiator → seller: transfer these slot ranges to me.
    pub const NEG_BUY: u16 = 15;
    /// Seller → initiator: done.
    pub const NEG_BUY_ACK: u16 = 16;
    /// Initiator → all: negotiation over; unfreeze your bitmap.
    pub const NEG_DONE: u16 = 17;
    /// Host → node: finish resident threads, then stop.
    pub const SHUTDOWN: u16 = 20;
    /// Node → host: stopped.
    pub const SHUTDOWN_ACK: u16 = 21;
    /// Host → node: report ownership for the global audit.
    pub const AUDIT_REQ: u16 = 22;
    /// Node → host: audit report.
    pub const AUDIT_RESP: u16 = 23;
    /// Any → node: report your load (resident thread count).
    pub const LOAD_REQ: u16 = 24;
    /// Node → requester: load report.
    pub const LOAD_RESP: u16 = 25;
    /// Any → node: preemptively migrate thread `tid` to node `dest`.
    pub const MIGRATE_CMD: u16 = 26;
    /// Node → requester: migrate command outcome (1 = accepted).
    pub const MIGRATE_CMD_ACK: u16 = 27;
    /// Node → home node: thread exited (for cross-node joins).
    pub const THREAD_EXIT: u16 = 28;
}

/// Encode a list of slot ranges (NEG_BUY payload).
pub fn encode_ranges(ranges: &[SlotRange]) -> Vec<u8> {
    let mut w = PayloadWriter::with_capacity(4 + ranges.len() * 16);
    w.u32(ranges.len() as u32);
    for r in ranges {
        w.u64(r.first as u64).u64(r.count as u64);
    }
    w.finish()
}

/// Decode a list of slot ranges.
pub fn decode_ranges(buf: &[u8]) -> Option<Vec<SlotRange>> {
    let mut r = PayloadReader::new(buf);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let first = r.u64()? as usize;
        let count = r.u64()? as usize;
        out.push(SlotRange::new(first, count));
    }
    Some(out)
}

/// Encode a `MIGRATE_CMD` payload.
pub fn encode_migrate_cmd(tid: u64, dest: usize) -> Vec<u8> {
    let mut w = PayloadWriter::with_capacity(16);
    w.u64(tid).u64(dest as u64);
    w.finish()
}

/// Decode a `MIGRATE_CMD` payload.
pub fn decode_migrate_cmd(buf: &[u8]) -> Option<(u64, usize)> {
    let mut r = PayloadReader::new(buf);
    Some((r.u64()?, r.u64()? as usize))
}

/// Encode an `RPC_SPAWN` payload.
pub fn encode_rpc_spawn(service: u32, args: &[u8]) -> Vec<u8> {
    let mut w = PayloadWriter::with_capacity(8 + args.len());
    w.u32(service).lp_bytes(args);
    w.finish()
}

/// Decode an `RPC_SPAWN` payload.
pub fn decode_rpc_spawn(buf: &[u8]) -> Option<(u32, Vec<u8>)> {
    let mut r = PayloadReader::new(buf);
    let service = r.u32()?;
    let args = r.lp_bytes()?.to_vec();
    Some((service, args))
}

/// Encode a `THREAD_EXIT` payload.
pub fn encode_thread_exit(tid: u64, panicked: bool, node: usize) -> Vec<u8> {
    let mut w = PayloadWriter::with_capacity(24);
    w.u64(tid).u32(panicked as u32).u32(node as u32);
    w.finish()
}

/// Decode a `THREAD_EXIT` payload.
pub fn decode_thread_exit(buf: &[u8]) -> Option<(u64, bool, usize)> {
    let mut r = PayloadReader::new(buf);
    Some((r.u64()?, r.u32()? != 0, r.u32()? as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_roundtrip() {
        let rs = vec![SlotRange::new(3, 4), SlotRange::new(100, 1)];
        assert_eq!(decode_ranges(&encode_ranges(&rs)).unwrap(), rs);
        assert_eq!(decode_ranges(&encode_ranges(&[])).unwrap(), vec![]);
        assert!(decode_ranges(&[1, 0, 0]).is_none());
    }

    #[test]
    fn migrate_cmd_roundtrip() {
        let buf = encode_migrate_cmd(0xAB, 3);
        assert_eq!(decode_migrate_cmd(&buf), Some((0xAB, 3)));
    }

    #[test]
    fn rpc_spawn_roundtrip() {
        let buf = encode_rpc_spawn(7, b"payload");
        assert_eq!(decode_rpc_spawn(&buf), Some((7, b"payload".to_vec())));
    }

    #[test]
    fn thread_exit_roundtrip() {
        let buf = encode_thread_exit(42, true, 2);
        assert_eq!(decode_thread_exit(&buf), Some((42, true, 2)));
    }
}
