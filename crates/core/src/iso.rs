//! Typed, migration-safe containers over `pm2_isomalloc`.
//!
//! The paper's interface is C (`void *pm2_isomalloc(size_t)`); these
//! wrappers give the same storage a Rust face: values placed in them live
//! in the iso-address area, follow their owning thread on migration, and
//! every internal pointer stays valid — [`IsoList`] is literally the linked
//! list of the paper's Fig. 7, with the traversal-across-migration test to
//! match.
//!
//! All types are `!Send` by construction (raw pointers): they belong to the
//! Marcel thread that created them, which is exactly the paper's ownership
//! model ("data are not shared: they belong to some unique thread and thus
//! have to follow it on migration").  Drop returns memory via
//! `pm2_isofree`, so values must be dropped by their owning thread.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut, Index, IndexMut};

use crate::api::{pm2_isofree, pm2_isomalloc};
use crate::error::Result;

/// A `Box` in the iso-address area.
pub struct IsoBox<T> {
    ptr: *mut T,
    _not_send: PhantomData<*mut T>,
}

impl<T> IsoBox<T> {
    /// Move `value` into iso-address memory.
    pub fn new(value: T) -> Result<IsoBox<T>> {
        assert!(
            std::mem::align_of::<T>() <= 16,
            "IsoBox alignment limit is 16"
        );
        let ptr = pm2_isomalloc(std::mem::size_of::<T>().max(1))? as *mut T;
        // SAFETY: fresh, exclusive, suitably aligned allocation.
        unsafe { ptr.write(value) };
        Ok(IsoBox {
            ptr,
            _not_send: PhantomData,
        })
    }

    /// The raw iso-address (stable across migrations).
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Move the value out, freeing the allocation.
    pub fn into_inner(self) -> T {
        // SAFETY: we own the allocation; forget(self) skips the Drop free.
        let value = unsafe { self.ptr.read() };
        let ptr = self.ptr as *mut u8;
        std::mem::forget(self);
        let _ = pm2_isofree(ptr);
        value
    }
}

impl<T> Deref for IsoBox<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive owner; allocation lives until drop.
        unsafe { &*self.ptr }
    }
}

impl<T> DerefMut for IsoBox<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.ptr }
    }
}

impl<T> Drop for IsoBox<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive owner.
        unsafe { self.ptr.drop_in_place() };
        let _ = pm2_isofree(self.ptr as *mut u8);
    }
}

/// A growable vector in the iso-address area.
pub struct IsoVec<T> {
    ptr: *mut T,
    len: usize,
    cap: usize,
    _not_send: PhantomData<*mut T>,
}

impl<T> IsoVec<T> {
    /// New empty vector (no allocation until the first push).
    pub fn new() -> IsoVec<T> {
        assert!(
            std::mem::align_of::<T>() <= 16,
            "IsoVec alignment limit is 16"
        );
        IsoVec {
            ptr: std::ptr::null_mut(),
            len: 0,
            cap: 0,
            _not_send: PhantomData,
        }
    }

    /// New vector with reserved capacity.
    pub fn with_capacity(cap: usize) -> Result<IsoVec<T>> {
        let mut v = IsoVec::new();
        if cap > 0 {
            v.grow_to(cap)?;
        }
        Ok(v)
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn grow_to(&mut self, new_cap: usize) -> Result<()> {
        let bytes = new_cap * std::mem::size_of::<T>().max(1);
        let new_ptr = pm2_isomalloc(bytes)? as *mut T;
        if self.len > 0 {
            // SAFETY: disjoint allocations; len ≤ old cap ≤ new cap.
            unsafe { std::ptr::copy_nonoverlapping(self.ptr, new_ptr, self.len) };
        }
        if !self.ptr.is_null() {
            let _ = pm2_isofree(self.ptr as *mut u8);
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
        Ok(())
    }

    /// Append an element.
    pub fn push(&mut self, value: T) -> Result<()> {
        if self.len == self.cap {
            let new_cap = if self.cap == 0 { 8 } else { self.cap * 2 };
            self.grow_to(new_cap)?;
        }
        // SAFETY: len < cap after growth.
        unsafe { self.ptr.add(self.len).write(value) };
        self.len += 1;
        Ok(())
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: slot `len` was initialized.
        Some(unsafe { self.ptr.add(self.len).read() })
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `len` initialized elements.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: as above.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Iterate over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T> Default for IsoVec<T> {
    fn default() -> Self {
        IsoVec::new()
    }
}

impl<T> Index<usize> for IsoVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T> IndexMut<usize> for IsoVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

impl<T> Drop for IsoVec<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
        if !self.ptr.is_null() {
            let _ = pm2_isofree(self.ptr as *mut u8);
        }
    }
}

/// The linked list of the paper's Fig. 7: nodes allocated one by one with
/// `pm2_isomalloc`, chained by raw iso-address pointers.
pub struct IsoList<T> {
    head: *mut ListNode<T>,
    len: usize,
    _not_send: PhantomData<*mut T>,
}

#[repr(C)]
struct ListNode<T> {
    value: T,
    next: *mut ListNode<T>,
}

impl<T> IsoList<T> {
    /// New empty list.
    pub fn new() -> IsoList<T> {
        assert!(
            std::mem::align_of::<T>() <= 16,
            "IsoList alignment limit is 16"
        );
        IsoList {
            head: std::ptr::null_mut(),
            len: 0,
            _not_send: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Prepend an element (the paper's construction order).
    pub fn push_front(&mut self, value: T) -> Result<()> {
        let node = pm2_isomalloc(std::mem::size_of::<ListNode<T>>())? as *mut ListNode<T>;
        // SAFETY: fresh allocation.
        unsafe {
            node.write(ListNode {
                value,
                next: self.head,
            })
        };
        self.head = node;
        self.len += 1;
        Ok(())
    }

    /// Remove and return the first element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.head.is_null() {
            return None;
        }
        // SAFETY: head is a live node we own.
        unsafe {
            let node = self.head;
            self.head = (*node).next;
            self.len -= 1;
            let value = std::ptr::read(std::ptr::addr_of!((*node).value));
            let _ = pm2_isofree(node as *mut u8);
            Some(value)
        }
    }

    /// Iterate over the elements front to back.
    pub fn iter(&self) -> IsoListIter<'_, T> {
        IsoListIter {
            cur: self.head,
            _marker: PhantomData,
        }
    }
}

impl<T> Default for IsoList<T> {
    fn default() -> Self {
        IsoList::new()
    }
}

impl<T> Drop for IsoList<T> {
    fn drop(&mut self) {
        while self.pop_front().is_some() {}
    }
}

/// Iterator over an [`IsoList`].
pub struct IsoListIter<'a, T> {
    cur: *const ListNode<T>,
    _marker: PhantomData<&'a T>,
}

impl<'a, T> Iterator for IsoListIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: nodes are live while the list is borrowed.
        unsafe {
            let node = &*self.cur;
            self.cur = node.next;
            Some(&node.value)
        }
    }
}
