//! The machine: a simulated PM2 cluster inside one process.
//!
//! [`Machine::launch`] reserves the iso-address area, wires the Madeleine
//! fabric (one endpoint per node plus a host control endpoint), and starts
//! the node drivers — a worker pool multiplexing every node driver in
//! threaded mode (see [`crate::executor`]), or a single OS thread driving
//! every node round-robin in deterministic mode.  The host talks to nodes
//! exclusively through control messages, like any other fabric participant.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isoaddr::{IsoArea, SlotRange, SlotStatsSnapshot};
use madeleine::message::PayloadWriter;
use madeleine::{Endpoint, Fabric, Wire};

use crate::audit::{decode_node_report, AuditReport};
use crate::config::{MachineBuilder, MachineMode, Pm2Config};
use crate::error::{Pm2Error, Result};
use crate::node::{NodeCtx, NodeStats, NodeStatsSnapshot};
use crate::output::OutputSink;
use crate::proto::{self, tag};
use crate::registry::{Registry, ServiceTable, SpawnTable, ThreadExit};
use crate::service::{service_id, Service, TypedServiceTable};

/// Host-assigned thread ids live in a separate namespace from node-assigned
/// ones (`node << 40 | counter`).
const HOST_TID_BASE: u64 = 1 << 63;

/// Handle on a spawned thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pm2Thread {
    /// Machine-wide unique thread id.
    pub tid: u64,
}

/// What [`Machine::recover_node`] accomplished, with the two phases timed
/// separately (thread re-adoption vs. slot reclamation).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The node recovered from.
    pub dead_node: usize,
    /// Threads re-adopted onto survivors from the spill log.
    pub threads_recovered: usize,
    /// Resident threads with no covering checkpoint (completed as failed).
    pub threads_lost: usize,
    /// Orphaned slots granted to a survivor's free pool.
    pub slots_reclaimed: usize,
    /// Spill-log frames skipped for checksum mismatch.
    pub corrupt_records_skipped: usize,
    /// Whether the spill log ended in a torn (truncated) frame.
    pub torn_tail_truncated: bool,
    /// Wall time of replay + re-adoption (detection not included).
    pub recovery: Duration,
    /// Wall time of the audit + slot reclamation pass.
    pub reclaim: Duration,
}

/// Typed handle on a value-returning thread spawned with
/// [`Machine::spawn_on_ret`].
///
/// The handle is independent of the [`Machine`] borrow (it holds the
/// shared completion registry), so it can be joined after further machine
/// calls, stored, or joined out of spawn order.
pub struct JoinHandle<R> {
    tid: u64,
    registry: Arc<Registry>,
    /// View of the fabric's death certificates, so a join can resolve a
    /// dead owner instead of hanging.
    watch: madeleine::DeathWatch,
    /// Grace given to recovery before a dead owner fails the join.
    grace: Duration,
    _result: PhantomData<fn() -> R>,
}

impl<R: Wire> JoinHandle<R> {
    /// Machine-wide thread id (usable with the untyped join APIs).
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The untyped handle for this thread.
    pub fn thread(&self) -> Pm2Thread {
        Pm2Thread { tid: self.tid }
    }

    /// Block the host until the thread completes and decode its return
    /// value.  The value travels through the thread-exit protocol, so it
    /// arrives no matter how many times the thread migrated.  Errors:
    /// [`Pm2Error::Panicked`] (with the panic message) if the body
    /// panicked, [`Pm2Error::NodeFailed`] if the hosting node died with no
    /// checkpoint covering the thread.  Panics after five minutes — a
    /// wedged machine in a test/bench should fail loudly, like
    /// [`Machine::join`].
    pub fn join(self) -> Result<R> {
        wait_exit_host(&self.registry, &self.watch, self.grace, self.tid);
        self.registry
            .take_typed_exit(self.tid)
            .expect("completion just observed")
            .typed_value()
    }

    /// Non-blocking: the decoded value if the thread already completed.
    /// Consumes the stored value — a second successful `try_join` of the
    /// same handle reports "thread returned no value".
    pub fn try_join(&self) -> Option<Result<R>> {
        Some(self.registry.take_typed_exit(self.tid)?.typed_value())
    }
}

/// A running PM2 machine.
pub struct Machine {
    cfg: Pm2Config,
    area: Arc<IsoArea>,
    host_ep: Endpoint,
    out: Arc<OutputSink>,
    registry: Arc<Registry>,
    spawn_table: Arc<SpawnTable>,
    services: Arc<ServiceTable>,
    typed_services: Arc<TypedServiceTable>,
    slot_stats: Vec<Arc<isoaddr::SlotStats>>,
    node_stats: Vec<Arc<NodeStats>>,
    /// Per-node wealth hint tables (last-known free-slot count per peer).
    wealth: Vec<Arc<Vec<AtomicU64>>>,
    /// Per-node communication-affinity rows (cumulative RPC-shaped
    /// messages exchanged with each peer, self included).
    affinity: Vec<Arc<Vec<AtomicU64>>>,
    /// Cheap-clone handles on each node's payload pool (observability).
    pools: Vec<madeleine::BufPool>,
    drivers: Vec<std::thread::JoinHandle<()>>,
    /// OS threads actually driving nodes (executor workers in threaded
    /// mode, 1 in deterministic mode).
    n_workers: usize,
    next_tid: AtomicU64,
    stopped: bool,
    /// Control messages received while waiting for something else.
    stash: Vec<madeleine::Message>,
}

/// Tags a fault plan must never drop, duplicate or reorder: the
/// exactly-once state-transfer messages (migration trains, spawn keys,
/// exit records, kill/death certificates), application LRPC — whose
/// handlers are arbitrary user code, so a blind sender retry could
/// re-execute a non-idempotent call — and the §4.4 negotiation protocol,
/// whose lock/bitmap/buy exchange assumes a reliable wire.  Everything
/// else — trades, probes, checkpoints, reclaims, migrate commands,
/// gossip, heartbeats — is at-least-once: retried by the sender (or
/// superseded by the next periodic round) and deduplicated by the
/// receiver's per-(source, class) window.
const EXACTLY_ONCE_TAGS: &[u16] = &[
    tag::SPAWN_KEY,
    tag::RPC_SPAWN,
    tag::RPC_CALL,
    tag::RPC_RESP,
    tag::MIGRATION,
    tag::MIGRATION_NAK,
    tag::THREAD_EXIT,
    tag::NEG_LOCK_REQ,
    tag::NEG_LOCK_GRANT,
    tag::NEG_LOCK_RELEASE,
    tag::NEG_BITMAP_REQ,
    tag::NEG_BITMAP_RESP,
    tag::NEG_BUY,
    tag::NEG_BUY_ACK,
    tag::NEG_DONE,
    tag::SHUTDOWN,
    tag::SHUTDOWN_ACK,
    tag::AUDIT_REQ,
    tag::AUDIT_RESP,
    tag::KILL,
    tag::NODE_DEAD,
];

impl Machine {
    /// Start configuring a machine with `nodes` nodes — the v1 facade's
    /// front door (see [`MachineBuilder`]).
    pub fn builder(nodes: usize) -> MachineBuilder {
        MachineBuilder::new(nodes)
    }

    /// Launch a machine from an explicit configuration (the paper-faithful
    /// layer; [`Machine::builder`] is the fluent equivalent).
    pub fn launch(cfg: Pm2Config) -> Result<Machine> {
        assert!(cfg.nodes >= 1, "a machine needs at least one node");
        let area = Arc::new(IsoArea::with_strategy(cfg.area, cfg.map_strategy)?);
        // Threaded mode: one doorbell per endpoint, each driver parks on
        // its own.  Deterministic mode: one shared doorbell, so the single
        // round-robin driver parks once for the whole fabric and any send
        // (including the host's) wakes it.
        //
        // A configured fault plan gets the exactly-once state-transfer
        // tags stamped protected before it reaches the fabric: trains,
        // spawns, exits and the §4.4 lock/bitmap/buy messages move state
        // that is never retried, so losing or duplicating them would be a
        // different (unrecoverable) fault model than the at-least-once
        // request/reply traffic this PR hardens.
        let plan = cfg
            .fault_plan
            .clone()
            .map(|p| p.protect_tags(EXACTLY_ONCE_TAGS));
        let mut eps = match (cfg.mode, plan) {
            (MachineMode::Threaded, None) => Fabric::new(cfg.nodes + 1, cfg.net),
            (MachineMode::Threaded, Some(p)) => Fabric::new_chaotic(cfg.nodes + 1, cfg.net, p),
            (MachineMode::Deterministic, None) => {
                Fabric::new_shared_doorbell(cfg.nodes + 1, cfg.net)
            }
            (MachineMode::Deterministic, Some(p)) => {
                Fabric::new_shared_doorbell_chaotic(cfg.nodes + 1, cfg.net, p)
            }
        };
        let host_ep = eps.pop().expect("host endpoint");
        let out = OutputSink::new(cfg.echo_output);
        let registry = Registry::new_shared();
        let spawn_table = SpawnTable::new_shared();
        let services = ServiceTable::new_shared();
        let typed_services = TypedServiceTable::new_shared();

        let mut ctxs: Vec<NodeCtx> = eps
            .into_iter()
            .map(|ep| {
                NodeCtx::new(
                    &cfg,
                    ep.node(),
                    Arc::clone(&area),
                    ep,
                    Arc::clone(&out),
                    Arc::clone(&registry),
                    Arc::clone(&spawn_table),
                    Arc::clone(&services),
                    Arc::clone(&typed_services),
                )
            })
            .collect();
        let slot_stats = ctxs.iter().map(|c| c.mgr.stats()).collect();
        let node_stats = ctxs.iter().map(|c| Arc::clone(&c.stats)).collect();
        let wealth = ctxs.iter().map(|c| Arc::clone(&c.peer_wealth)).collect();
        let affinity = ctxs.iter().map(|c| Arc::clone(&c.affinity)).collect();
        let pools = ctxs.iter().map(|c| c.pool.clone()).collect();

        let (drivers, n_workers) = match cfg.mode {
            MachineMode::Threaded => {
                let workers = effective_workers(&cfg);
                let tick = executor_tick(&cfg);
                (crate::executor::spawn_pool(ctxs, workers, tick), workers)
            }
            MachineMode::Deterministic => (
                vec![std::thread::Builder::new()
                    .name("pm2-nodes".into())
                    .spawn(move || drive_all(&mut ctxs))
                    .expect("spawning driver thread")],
                1,
            ),
        };

        Ok(Machine {
            cfg,
            area,
            host_ep,
            out,
            registry,
            spawn_table,
            services,
            typed_services,
            slot_stats,
            node_stats,
            wealth,
            affinity,
            pools,
            drivers,
            n_workers,
            next_tid: AtomicU64::new(1),
            stopped: false,
            stash: Vec::new(),
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &Pm2Config {
        &self.cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// OS threads driving the node state machines: the executor pool size
    /// in threaded mode (the `workers` knob, auto-sized at 0), or 1 in
    /// deterministic mode.  On any realistic host this is ≪ nodes — the
    /// point of the multiplexed executor.
    pub fn worker_threads(&self) -> usize {
        self.n_workers
    }

    /// The iso-address area (shared by all nodes).
    pub fn area(&self) -> &Arc<IsoArea> {
        &self.area
    }

    /// Register a raw byte-level LRPC service (the paper-faithful layer;
    /// do this before any `rpc_spawn` names it).
    pub fn register_service<F>(&self, id: u32, f: F)
    where
        F: Fn(Vec<u8>) + Send + Sync + 'static,
    {
        self.services.register(id, Arc::new(f));
    }

    /// Register a typed request/reply [`Service`] by type.  Callable from
    /// any node afterwards via [`crate::api::pm2_rpc_call`], or from the
    /// host via [`Machine::rpc_call`].
    pub fn register<S: Service>(&self, svc: S) {
        self.typed_services.register(svc);
    }

    /// Spawn `f` as a Marcel thread on `node`.
    pub fn spawn_on<F>(&self, node: usize, f: F) -> Result<Pm2Thread>
    where
        F: FnOnce() + Send + 'static,
    {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        let tid = HOST_TID_BASE | self.next_tid.fetch_add(1, Ordering::Relaxed);
        let key = self.spawn_table.park(Box::new(f));
        // Optimistic location: if `node` dies before the spawn lands, the
        // dead-owner join logic still has a node to blame — no hang.
        self.registry.set_location(tid, node);
        let mut w = PayloadWriter::pooled(self.host_ep.pool(), 16);
        w.u64(key).u64(tid);
        if let Err(e) = self.host_ep.send(node, tag::SPAWN_KEY, w.finish()) {
            self.registry.clear_location(tid);
            self.spawn_table.take(key);
            return Err(e.into());
        }
        Ok(Pm2Thread { tid })
    }

    /// Spawn a value-returning thread on `node`; the typed [`JoinHandle`]
    /// decodes the body's return value on join.
    ///
    /// Unlike the old host-only mpsc plumbing, the value is shipped
    /// through the completion registry and the thread-exit protocol, so it
    /// arrives even if the thread migrates and dies on another node — and
    /// green threads can observe it too, via
    /// [`crate::api::pm2_join_value`] on [`JoinHandle::tid`].
    pub fn spawn_on_ret<R, F>(&self, node: usize, f: F) -> Result<JoinHandle<R>>
    where
        R: Wire + Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let t = self.spawn_on(node, move || {
            let value = f();
            crate::api::set_exit_value(value.encode_vec());
        })?;
        Ok(JoinHandle {
            tid: t.tid,
            registry: Arc::clone(&self.registry),
            watch: self.host_ep.death_watch(),
            grace: self.cfg.reply_deadline,
            _result: PhantomData,
        })
    }

    /// Spawn a registered byte-level service on `node` from the host
    /// (fire and forget — PM2's original LRPC).
    pub fn rpc_spawn(&self, node: usize, service: u32, args: &[u8]) -> Result<()> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        self.host_ep.send(
            node,
            tag::RPC_SPAWN,
            proto::encode_rpc_spawn(self.host_ep.pool(), service, args),
        )?;
        Ok(())
    }

    /// Fault-injection hook: deliver a raw fabric message to `node` as if a
    /// peer had sent it.  Exists so tests can exercise the corrupt-input
    /// paths (e.g. a truncated migration record); not part of the public
    /// API contract.
    #[doc(hidden)]
    pub fn inject_raw(&self, node: usize, tag: u16, payload: Vec<u8>) -> Result<()> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        self.host_ep.send(node, tag, payload)?;
        Ok(())
    }

    /// Typed request/reply LRPC from the host: call service `S` on `node`
    /// and block until its response arrives (deadline: the configured
    /// `reply_deadline`).  The green-thread equivalent is
    /// [`crate::api::pm2_rpc_call`].
    pub fn rpc_call<S: Service>(&mut self, node: usize, req: S::Req) -> Result<S::Resp> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        let req_bytes = req.encode_vec();
        if req_bytes.len() > self.cfg.max_rpc_payload {
            return Err(Pm2Error::PayloadTooLarge {
                len: req_bytes.len(),
                max: self.cfg.max_rpc_payload,
            });
        }
        // Host rpc_calls are serialized (&mut self), so any RPC_RESP still
        // stashed from an earlier, timed-out call is dead — drop it rather
        // than accumulate it.
        self.stash.retain(|m| m.tag != tag::RPC_RESP);
        // Host call ids use the host's fabric id in the top bits, keeping
        // them disjoint from every node's (node ids < nodes = host id).
        let call_id =
            ((self.cfg.nodes as u64) << 48) | self.next_tid.fetch_add(1, Ordering::Relaxed);
        self.host_ep.send(
            node,
            tag::RPC_CALL,
            proto::encode_rpc_call(
                self.host_ep.pool(),
                call_id,
                self.cfg.nodes,
                service_id::<S>(),
                &req_bytes,
            ),
        )?;
        let deadline = Instant::now() + self.cfg.reply_deadline;
        loop {
            // Short recv slices so a mid-call death of the callee fails
            // this call promptly (typed), not at the deadline (opaque).
            let slice = deadline.min(Instant::now() + Duration::from_millis(20));
            if let Some(m) = self.recv_control_matching(tag::RPC_RESP, slice, |m| {
                proto::peek_rpc_call_id(&m.payload) == Some(call_id)
            }) {
                return crate::api::decode_rpc_outcome::<S>(&m.payload);
            }
            if self.host_ep.is_dead(node) {
                return Err(Pm2Error::NodeFailed(node));
            }
            if Instant::now() >= deadline {
                return Err(Pm2Error::Net("timed out waiting for rpc response".into()));
            }
        }
    }

    /// Block the host until a thread completes.  A thread stranded on a
    /// dead node resolves as a failed exit (`failed_node` set) after
    /// recovery's grace window instead of hanging.  Panics after five
    /// minutes (a wedged machine in a test/bench should fail loudly).
    pub fn join(&self, t: Pm2Thread) -> ThreadExit {
        wait_exit_host(
            &self.registry,
            &self.host_ep.death_watch(),
            self.cfg.reply_deadline,
            t.tid,
        )
    }

    /// Run `f` on `node` and return its value to the host.
    ///
    /// `R` is any `Send` type, so the value rides the registry's host-side
    /// mailbox (an in-process shortcut, like the spawn table); a
    /// panicking body surfaces as [`Pm2Error::Panicked`] with the panic
    /// message.  Use [`Machine::spawn_on_ret`] when the value should
    /// travel the wire protocol instead.
    pub fn run_on<R, F>(&self, node: usize, f: F) -> Result<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let registry = Arc::clone(&self.registry);
        let t = self.spawn_on(node, move || {
            let value = f();
            registry.put_value(marcel::current_tid(), Box::new(value));
        })?;
        let exit = self.join(t);
        if exit.panicked {
            return Err(Pm2Error::Panicked(exit.panic_message().to_string()));
        }
        self.registry
            .take_value(t.tid)
            .and_then(|b| b.downcast::<R>().ok())
            .map(|b| *b)
            .ok_or_else(|| Pm2Error::Spawn("thread produced no value".into()))
    }

    /// Captured `pm2_printf` lines, in order.
    pub fn output_lines(&self) -> Vec<String> {
        self.out.lines()
    }

    /// Clear captured output.
    pub fn clear_output(&self) {
        self.out.clear()
    }

    /// Completion registry (for custom host-side waiting).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Slot-layer statistics of `node`.
    pub fn slot_stats(&self, node: usize) -> SlotStatsSnapshot {
        self.slot_stats[node].snapshot()
    }

    /// Runtime statistics of `node`.
    pub fn node_stats(&self, node: usize) -> NodeStatsSnapshot {
        self.node_stats[node].snapshot()
    }

    /// Zero every node's runtime counters ([`NodeStats::reset`]) so the
    /// next [`Machine::node_stats`] snapshots are per-window, not
    /// cumulative — what a round-based harness wants between ramp rounds.
    /// Call near quiescence: a concurrent increment simply lands in the
    /// new window.  Slot-layer and pool stats are untouched (measure those
    /// as before/after deltas).
    pub fn stats_reset(&self) {
        for s in &self.node_stats {
            s.reset();
        }
        for row in &self.affinity {
            for a in row.iter() {
                a.store(0, Ordering::Relaxed);
            }
        }
    }

    /// `node`'s communication-affinity row: cumulative RPC-shaped
    /// messages its threads exchanged with every node (index `node`
    /// itself counts co-located, wire-free traffic).  This is the raw
    /// material the affinity balancer works from, aggregated per node;
    /// [`Machine::stats_reset`] zeroes it with the other counters.
    pub fn affinity(&self, node: usize) -> Vec<u64> {
        self.affinity[node]
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// `node`'s wealth hint table: its last-known free-slot count for
    /// every node, refreshed by each piggybacked hint on trade, load,
    /// migrate-ack and gossip traffic.  This is what the node's slot
    /// trader picks lenders from.  Allocates a fresh Vec per call; hot
    /// callers (the balancer daemon, benches sampling every round) should
    /// reuse a buffer via [`Machine::peer_wealth_into`].
    pub fn peer_wealth(&self, node: usize) -> Vec<u64> {
        let mut buf = Vec::new();
        self.peer_wealth_into(node, &mut buf);
        buf
    }

    /// [`Machine::peer_wealth`] without the per-call allocation: clears
    /// and refills `buf` (capacity is retained across calls).
    pub fn peer_wealth_into(&self, node: usize, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.wealth[node].iter().map(|w| w.load(Ordering::Relaxed)));
    }

    /// Wire statistics of `node`'s endpoint (messages/bytes in and out) —
    /// what the scale bench divides by completed ops to get the
    /// messages-per-op cost curve.
    pub fn net_stats(&self, node: usize) -> Option<madeleine::EndpointStatsSnapshot> {
        self.host_ep.stats_of(node)
    }

    /// Payload-pool statistics of `node`'s endpoint.  In steady state the
    /// `allocs` counter stops moving: every message rides a recycled
    /// buffer.
    pub fn pool_stats(&self, node: usize) -> madeleine::BufPoolStats {
        self.pools[node].stats()
    }

    fn recv_control(&mut self, want: u16, deadline: Instant) -> Option<madeleine::Message> {
        self.recv_control_matching(want, deadline, |_| true)
    }

    /// Wait for a matching control message.  The wait is event-driven: the
    /// host parks inside [`madeleine::Endpoint::recv_until`] (a condvar
    /// wait under the hood) and is woken per arriving message — there is
    /// no poll slicing, so an arriving reply costs a wake-up, not a poll
    /// interval.
    fn recv_control_matching(
        &mut self,
        want: u16,
        deadline: Instant,
        pred: impl Fn(&madeleine::Message) -> bool,
    ) -> Option<madeleine::Message> {
        if let Some(i) = self.stash.iter().position(|m| m.tag == want && pred(m)) {
            return Some(self.stash.remove(i));
        }
        loop {
            match self.host_ep.recv_until(deadline) {
                Some(m) if m.tag == want && pred(&m) => return Some(m),
                Some(m) => self.stash.push(m),
                None => return None,
            }
        }
    }

    /// Run the global ownership audit (call at quiescence only).  Dead
    /// nodes are skipped: after a kill (and before recovery) the corpse's
    /// slots legitimately have no owner, so `check_partition` on a
    /// machine with unrecovered deaths reports them as orphans.
    pub fn audit(&mut self) -> Result<AuditReport> {
        let survivors = self.alive_nodes();
        for &node in &survivors {
            self.host_ep.send(node, tag::AUDIT_REQ, Vec::new())?;
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut nodes = Vec::with_capacity(survivors.len());
        for _ in 0..survivors.len() {
            let m = self
                .recv_control(tag::AUDIT_RESP, deadline)
                .ok_or_else(|| Pm2Error::Net("audit timed out".into()))?;
            nodes.push(
                decode_node_report(&m.payload)
                    .ok_or_else(|| Pm2Error::Net("malformed audit response".into()))?,
            );
        }
        nodes.sort_by_key(|n| n.node);
        Ok(AuditReport {
            nodes,
            n_slots: self.area.n_slots(),
        })
    }

    // ------------------------------------------------------------------
    // fault tolerance: kill switch, checkpoints, recovery
    // ------------------------------------------------------------------

    /// Node ids whose endpoints are not marked dead, in order.
    fn alive_nodes(&self) -> Vec<usize> {
        (0..self.cfg.nodes)
            .filter(|&n| !self.host_ep.is_dead(n))
            .collect()
    }

    /// Count of live nodes without materializing the id list (the
    /// shutdown ack loop re-evaluates this every 50 ms slice — at p = 256
    /// the Vec-per-slice added up).
    fn alive_count(&self) -> usize {
        (0..self.cfg.nodes)
            .filter(|&n| !self.host_ep.is_dead(n))
            .count()
    }

    /// Whether `node` has been declared dead (by [`Machine::kill_node`] or
    /// the failure detector).
    pub fn is_node_dead(&self, node: usize) -> bool {
        self.host_ep.is_dead(node)
    }

    /// Chaos switch: pull `node`'s power cord and announce the death.
    ///
    /// The victim stops dispatching and stepping immediately (mid-pump if
    /// it was pumping) and performs **no** cleanup — exactly what a crashed
    /// machine looks like to the rest of the cluster.  The fabric refuses
    /// sends to and from the corpse from this call on, and a `NODE_DEAD`
    /// broadcast tells every survivor at once (use
    /// [`Machine::kill_node_silent`] to leave discovery to the heartbeat
    /// detector instead).  Threads resident on the victim are *not*
    /// completed here — that is [`Machine::recover_node`]'s job, or the
    /// dead-owner grace logic in the join paths.
    pub fn kill_node(&mut self, node: usize) -> Result<()> {
        self.kill_inner(node, true)
    }

    /// [`Machine::kill_node`] without the `NODE_DEAD` announcement: the
    /// survivors must notice the silence themselves via the heartbeat
    /// failure detector (`failure_timeout` must be configured for that).
    pub fn kill_node_silent(&mut self, node: usize) -> Result<()> {
        self.kill_inner(node, false)
    }

    fn kill_inner(&mut self, node: usize, announce: bool) -> Result<()> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        // KILL first, while the fabric still accepts sends to the victim —
        // it makes the corpse's driver exit instead of parking forever.
        let _ = self.host_ep.send(node, tag::KILL, Vec::new());
        self.host_ep.mark_dead(node);
        if announce {
            let _ = self.host_ep.broadcast(
                tag::NODE_DEAD,
                proto::encode_node_dead(self.host_ep.pool(), node),
            );
        }
        Ok(())
    }

    /// Block until some survivor (or the host) has declared `node` dead —
    /// the `NODE_DEAD` broadcast reaches the host endpoint like any other
    /// control message.  Returns `false` on timeout.  This is how tests
    /// observe the heartbeat detector after [`Machine::kill_node_silent`].
    pub fn wait_node_dead(&mut self, node: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.recv_control_matching(tag::NODE_DEAD, deadline, |m| {
            proto::decode_node_dead(&m.payload) == Some(node)
        })
        .is_some()
    }

    /// Ask `node` to checkpoint its migratable threads to its spill log
    /// right now; returns how many threads the checkpoint covered.  Errors
    /// if the machine was launched without a `spill_dir` (the node acks
    /// zero threads in that case, which is reported as `Ok(0)` — a
    /// no-spill machine simply has nothing to recover from).
    pub fn checkpoint_node(&mut self, node: usize) -> Result<u32> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        if self.host_ep.is_dead(node) {
            return Err(Pm2Error::NodeFailed(node));
        }
        // A retried CKPT_ACK from an earlier, abandoned request would sit
        // in the stash forever; clear stale ones before issuing a new id.
        self.stash.retain(|m| m.tag != tag::CKPT_ACK);
        let req_id =
            ((self.cfg.nodes as u64) << 48) | self.next_tid.fetch_add(1, Ordering::Relaxed);
        // CKPT_REQ/ACK is at-least-once under a fault plan: re-send with
        // the same id on loss.  A duplicate request just snapshots again
        // (the newest epoch supersedes), so retrying is always safe.
        let attempts = self.cfg.control_retries.max(1);
        for attempt in 0..attempts {
            self.host_ep.send(
                node,
                tag::CKPT_REQ,
                proto::encode_ckpt_req(self.host_ep.pool(), req_id),
            )?;
            let deadline = Instant::now()
                + crate::api::retry_slice(self.cfg.reply_deadline, attempts, attempt);
            loop {
                let slice = deadline.min(Instant::now() + Duration::from_millis(20));
                if let Some(m) = self.recv_control_matching(tag::CKPT_ACK, slice, |m| {
                    proto::peek_ckpt_id(&m.payload) == Some(req_id)
                }) {
                    let (_, threads) = proto::decode_ckpt_ack(&m.payload)
                        .ok_or_else(|| Pm2Error::Net("malformed checkpoint ack".into()))?;
                    return Ok(threads);
                }
                if self.host_ep.is_dead(node) {
                    return Err(Pm2Error::NodeFailed(node));
                }
                if Instant::now() >= deadline {
                    break;
                }
            }
        }
        Err(Pm2Error::RetriesExhausted {
            op: "checkpoint",
            attempts,
        })
    }

    /// Checkpoint every live node; returns the total threads covered.
    pub fn checkpoint_all(&mut self) -> Result<u32> {
        let mut total = 0;
        for node in self.alive_nodes() {
            total += self.checkpoint_node(node)?;
        }
        Ok(total)
    }

    /// Chaos switch: cut the fabric between node sets `a` and `b` — every
    /// message (any tag, both directions) between the two sets is silently
    /// eaten until [`Machine::heal_partition`].  Nodes in neither set, and
    /// the host, keep full connectivity; nodes never observe the cut as a
    /// death unless it outlives `failure_timeout`.
    pub fn partition_nodes(&self, a: &[usize], b: &[usize]) {
        let mut groups = vec![madeleine::WILD_GROUP; self.cfg.nodes + 1];
        for &n in a {
            assert!(n < self.cfg.nodes, "no such node: {n}");
            groups[n] = 0;
        }
        for &n in b {
            assert!(n < self.cfg.nodes, "no such node: {n}");
            assert!(groups[n] != 0, "node {n} is on both sides of the cut");
            groups[n] = 1;
        }
        self.host_ep.set_partition(groups);
    }

    /// Heal a [`Machine::partition_nodes`] cut; in-flight messages already
    /// enqueued before the cut still deliver, eaten ones stay eaten.
    pub fn heal_partition(&self) {
        self.host_ep.clear_partition();
    }

    /// Recover from `dead`'s death: replay its spill log, re-adopt every
    /// checkpointed thread onto a survivor (round-robin) as an ordinary
    /// `MIGRATION` train — a recovered thread is just a migration whose
    /// source no longer exists — complete every *uncheckpointed* resident
    /// thread as failed (typed, so joiners get [`Pm2Error::NodeFailed`]
    /// instead of a hang), and finally reclaim the corpse's orphaned slots
    /// into a survivor's free pool so the ownership partition closes
    /// again.  Call at quiescence, after the death has been observed.
    pub fn recover_node(&mut self, dead: usize) -> Result<RecoveryReport> {
        if dead >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(dead));
        }
        if !self.host_ep.is_dead(dead) {
            return Err(Pm2Error::Net(format!(
                "node {dead} is alive; recovery is for dead nodes"
            )));
        }
        let survivors = self.alive_nodes();
        if survivors.is_empty() {
            return Err(Pm2Error::Net(
                "no surviving node to adopt recovered threads".into(),
            ));
        }

        let t0 = Instant::now();
        // 1. Replay the corpse's spill log (tolerates a missing file — a
        //    machine without spill_dir just recovers zero threads).
        let replay = match &self.cfg.spill_dir {
            Some(dir) => crate::spill::replay(&dir.join(format!("node{dead}.log")))?,
            None => crate::spill::SpillReplay::default(),
        };
        let newest = replay.latest_by_tid();

        // 2. The corpse's address space is gone.  On real hardware that is
        //    the crash itself; in this one-process simulation its slot
        //    mappings are still registered in the area's process-wide
        //    accounting, so recovery drops them explicitly: every committed
        //    slot no survivor accounts for (cache or resident thread)
        //    belonged to the corpse.  Checkpointed bytes live in the spill
        //    log; uncheckpointed state is lost — that is what node death
        //    means.  Without this, re-adoption (and any later allocation
        //    from reclaimed slots) would trip the double-commit invariant.
        let pre = self.audit()?;
        let mut survivor_committed = vec![false; pre.n_slots];
        for na in &pre.nodes {
            for &c in &na.cached {
                survivor_committed[c] = true;
            }
            for (_tid, ranges) in &na.threads {
                for r in ranges {
                    for slot in r.iter() {
                        survivor_committed[slot] = true;
                    }
                }
            }
        }
        let corpse_mapped = collect_ranges(pre.n_slots, |s| {
            self.area.is_committed(s) && !survivor_committed[s]
        });
        for range in &corpse_mapped {
            self.area.decommit_slots(*range)?;
        }

        // 3. Re-adopt checkpointed victims; fail the rest promptly.
        let victims = self.registry.located_on(dead);
        let mut shipped = Vec::new();
        let mut threads_lost = 0usize;
        for (i, &tid) in victims.iter().enumerate() {
            match newest.get(&tid) {
                Some(&(_epoch, group)) => {
                    let heir = survivors[i % survivors.len()];
                    let train = crate::migration::build_train(&[(tid, group)]);
                    self.host_ep.send(heir, tag::MIGRATION, train)?;
                    shipped.push(tid);
                }
                None => {
                    self.registry
                        .complete_if_absent(ThreadExit::node_failed(tid, dead));
                    threads_lost += 1;
                }
            }
        }

        // 4. Wait for each shipped thread to leave the corpse: adoption
        //    flips its location to the survivor (completion clears it).
        let deadline = Instant::now() + self.cfg.reply_deadline;
        let mut threads_recovered = 0usize;
        for tid in shipped {
            let mut moved = false;
            loop {
                if self.registry.location(tid) != Some(dead)
                    || self.registry.poll_meta(tid).is_some()
                {
                    moved = true;
                    break;
                }
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            if moved {
                threads_recovered += 1;
            } else {
                // The survivor NAKed or never adopted it: fail it so
                // joiners do not hang on a thread nobody hosts.
                self.registry
                    .complete_if_absent(ThreadExit::node_failed(tid, dead));
                threads_lost += 1;
            }
        }
        let recovery = t0.elapsed();

        // 5. Slot reclamation: audit the survivors, find every slot with
        //    no owner among them (the corpse's free slots plus whatever
        //    its lost threads held), and grant the orphan ranges to the
        //    first survivor via the bitmap-only NODE_RECLAIM adoption.
        let t1 = Instant::now();
        let report = self.audit()?;
        let mut owned = vec![false; report.n_slots];
        for na in &report.nodes {
            for slot in na.bitmap.iter_ones() {
                owned[slot] = true;
            }
            for (_tid, ranges) in &na.threads {
                for r in ranges {
                    for slot in r.iter() {
                        owned[slot] = true;
                    }
                }
            }
        }
        let orphans = collect_ranges(report.n_slots, |s| !owned[s]);
        let mut slots_reclaimed = 0usize;
        if !orphans.is_empty() {
            // At-least-once with a sticky heir: always the same survivor,
            // always the same reclaim id, so a lost ack just provokes a
            // re-ack of the recorded adoption instead of a double grant.
            self.stash.retain(|m| m.tag != tag::RECLAIM_ACK);
            let reclaim_id =
                ((self.cfg.nodes as u64) << 48) | self.next_tid.fetch_add(1, Ordering::Relaxed);
            let heir = survivors[0];
            let attempts = self.cfg.control_retries.max(1);
            let mut acked = None;
            for attempt in 0..attempts {
                self.host_ep.send(
                    heir,
                    tag::NODE_RECLAIM,
                    proto::encode_node_reclaim(self.host_ep.pool(), reclaim_id, &orphans),
                )?;
                let deadline = Instant::now()
                    + crate::api::retry_slice(self.cfg.reply_deadline, attempts, attempt);
                if let Some(m) = self.recv_control_matching(tag::RECLAIM_ACK, deadline, |m| {
                    proto::peek_reclaim_id(&m.payload) == Some(reclaim_id)
                }) {
                    acked = proto::decode_reclaim_ack(&m.payload).map(|(_, slots)| slots);
                    break;
                }
            }
            slots_reclaimed = acked.ok_or(Pm2Error::RetriesExhausted {
                op: "reclaim",
                attempts,
            })? as usize;
        }
        let reclaim = t1.elapsed();

        Ok(RecoveryReport {
            dead_node: dead,
            threads_recovered,
            threads_lost,
            slots_reclaimed,
            corrupt_records_skipped: replay.corrupt_skipped,
            torn_tail_truncated: replay.torn_tail,
            recovery,
            reclaim,
        })
    }

    /// Stop the machine: ask every node to drain and stop, await the acks,
    /// and join the driver threads.  Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for node in self.alive_nodes() {
            let _ = self.host_ep.send(node, tag::SHUTDOWN, Vec::new());
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut acked = 0usize;
        loop {
            // Only survivors can ack — and a node may die mid-shutdown,
            // so the expectation is re-evaluated every slice.
            let expected = self.alive_count();
            if acked >= expected {
                break;
            }
            let slice = deadline.min(Instant::now() + Duration::from_millis(50));
            match self.recv_control(tag::SHUTDOWN_ACK, slice) {
                Some(_) => acked += 1,
                None if Instant::now() >= deadline => {
                    eprintln!("pm2: warning: node shutdown ack missing");
                    break;
                }
                None => {}
            }
        }
        for h in self.drivers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Compress the slots where `pred` holds into maximal contiguous ranges.
fn collect_ranges(n_slots: usize, pred: impl Fn(usize) -> bool) -> Vec<SlotRange> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < n_slots {
        if !pred(i) {
            i += 1;
            continue;
        }
        let first = i;
        while i < n_slots && pred(i) {
            i += 1;
        }
        ranges.push(SlotRange::new(first, i - first));
    }
    ranges
}

/// Host-side dead-owner-aware completion wait (the host twin of the green
/// `wait_exit`): poll the registry in short slices; when the node last
/// known to host `tid` is dead, give recovery one `grace` window to
/// re-adopt it (the location moves to a survivor), then complete the
/// thread as failed-on-that-node.  Recovered value or typed error — never
/// a hang.  Panics after five minutes like the pre-fault-tolerance waits.
fn wait_exit_host(
    registry: &Registry,
    watch: &madeleine::DeathWatch,
    grace_window: Duration,
    tid: u64,
) -> ThreadExit {
    let overall = Instant::now() + Duration::from_secs(300);
    let mut grace: Option<(usize, Instant)> = None;
    loop {
        if let Some(e) = registry.wait(tid, Duration::from_millis(10)) {
            return e;
        }
        match registry.location(tid).filter(|&n| watch.is_dead(n)) {
            Some(n) => {
                let (owner, until) = grace.get_or_insert((n, Instant::now() + grace_window));
                if *owner != n {
                    // Re-adopted by a survivor that then also died: re-arm.
                    *owner = n;
                    *until = Instant::now() + grace_window;
                } else if Instant::now() > *until {
                    registry.complete_if_absent(ThreadExit::node_failed(tid, n));
                }
            }
            None => grace = None,
        }
        assert!(Instant::now() < overall, "thread {tid:#x} never completed");
    }
}

/// Effective executor pool size: the `workers` knob, or — at the default
/// 0 — the host's available parallelism; never more threads than nodes.
/// The auto floor is 2 so one handler blocking in native code (a sleep, a
/// syscall) cannot stall every other node on a single-core host — the
/// responsiveness thread-per-node gave for free.
fn effective_workers(cfg: &Pm2Config) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let w = if cfg.workers == 0 { auto } else { cfg.workers };
    w.clamp(1, cfg.nodes.max(1))
}

/// Executor tick (worker pop timeout / idle-node sweep cadence): the
/// `idle_park` backstop, tightened to the fastest armed protocol timer so
/// a quiet node's failure detector, gossip rounds and periodic
/// checkpoints still fire on schedule — the multiplexed twin of
/// `drive_one`'s park timeout.
fn executor_tick(cfg: &Pm2Config) -> Duration {
    let mut tick = cfg.idle_park;
    if cfg.failure_timeout.is_some() || cfg.nodes > crate::node::FULL_PROBE_MAX {
        tick = tick.min(cfg.heartbeat_every);
    }
    if cfg.spill_dir.is_some() {
        if let Some(every) = cfg.checkpoint_every {
            tick = tick.min(every);
        }
    }
    tick.max(Duration::from_millis(1))
}

/// Deterministic-mode driver: all nodes round-robin on one OS thread,
/// parking on the machine's **shared** doorbell when no node has work.
/// The ring-counter snapshot is taken *before* the sweep, so any send that
/// lands mid-sweep (from the host or a node) makes the park return
/// immediately — and the final SHUTDOWN_ACK needs no park at all: the
/// sweep that handles SHUTDOWN also observes `finished()` and exits
/// without another wait.
fn drive_all(ctxs: &mut [NodeCtx]) {
    let bell = ctxs[0].ep.doorbell().clone();
    let idle_park = ctxs[0].idle_park;
    loop {
        let seen = bell.rings();
        let mut any = false;
        for ctx in ctxs.iter_mut() {
            any |= ctx.step();
            ctx.maybe_ack_shutdown();
        }
        if ctxs.iter().all(|c| c.finished()) {
            break;
        }
        if !any {
            for ctx in ctxs.iter_mut() {
                ctx.stats
                    .driver_parks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            bell.wait_past(seen, idle_park);
            for ctx in ctxs.iter_mut() {
                ctx.stats
                    .driver_wakeups
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}
