//! The machine: a simulated PM2 cluster inside one process.
//!
//! [`Machine::launch`] reserves the iso-address area, wires the Madeleine
//! fabric (one endpoint per node plus a host control endpoint), and starts
//! the node drivers — one OS thread per node, or a single OS thread driving
//! every node round-robin in deterministic mode.  The host talks to nodes
//! exclusively through control messages, like any other fabric participant.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use isoaddr::{IsoArea, SlotStatsSnapshot};
use madeleine::message::PayloadWriter;
use madeleine::{Endpoint, Fabric, Wire};

use crate::audit::{decode_node_report, AuditReport};
use crate::config::{MachineBuilder, MachineMode, Pm2Config};
use crate::error::{Pm2Error, Result};
use crate::node::{NodeCtx, NodeStats, NodeStatsSnapshot};
use crate::output::OutputSink;
use crate::proto::{self, tag};
use crate::registry::{Registry, ServiceTable, SpawnTable, ThreadExit};
use crate::service::{service_id, Service, TypedServiceTable};

/// Host-assigned thread ids live in a separate namespace from node-assigned
/// ones (`node << 40 | counter`).
const HOST_TID_BASE: u64 = 1 << 63;

/// Handle on a spawned thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pm2Thread {
    /// Machine-wide unique thread id.
    pub tid: u64,
}

/// Typed handle on a value-returning thread spawned with
/// [`Machine::spawn_on_ret`].
///
/// The handle is independent of the [`Machine`] borrow (it holds the
/// shared completion registry), so it can be joined after further machine
/// calls, stored, or joined out of spawn order.
pub struct JoinHandle<R> {
    tid: u64,
    registry: Arc<Registry>,
    _result: PhantomData<fn() -> R>,
}

impl<R: Wire> JoinHandle<R> {
    /// Machine-wide thread id (usable with the untyped join APIs).
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The untyped handle for this thread.
    pub fn thread(&self) -> Pm2Thread {
        Pm2Thread { tid: self.tid }
    }

    /// Block the host until the thread completes and decode its return
    /// value.  The value travels through the thread-exit protocol, so it
    /// arrives no matter how many times the thread migrated.  Errors:
    /// [`Pm2Error::Panicked`] (with the panic message) if the body
    /// panicked.  Panics after five minutes — a wedged machine in a
    /// test/bench should fail loudly, like [`Machine::join`].
    pub fn join(self) -> Result<R> {
        if !self
            .registry
            .wait_completed(self.tid, Duration::from_secs(300))
        {
            panic!("thread {:#x} never completed", self.tid);
        }
        self.registry
            .take_typed_exit(self.tid)
            .expect("completion just observed")
            .typed_value()
    }

    /// Non-blocking: the decoded value if the thread already completed.
    /// Consumes the stored value — a second successful `try_join` of the
    /// same handle reports "thread returned no value".
    pub fn try_join(&self) -> Option<Result<R>> {
        Some(self.registry.take_typed_exit(self.tid)?.typed_value())
    }
}

/// A running PM2 machine.
pub struct Machine {
    cfg: Pm2Config,
    area: Arc<IsoArea>,
    host_ep: Endpoint,
    out: Arc<OutputSink>,
    registry: Arc<Registry>,
    spawn_table: Arc<SpawnTable>,
    services: Arc<ServiceTable>,
    typed_services: Arc<TypedServiceTable>,
    slot_stats: Vec<Arc<isoaddr::SlotStats>>,
    node_stats: Vec<Arc<NodeStats>>,
    /// Per-node wealth hint tables (last-known free-slot count per peer).
    wealth: Vec<Arc<Vec<AtomicU64>>>,
    /// Cheap-clone handles on each node's payload pool (observability).
    pools: Vec<madeleine::BufPool>,
    drivers: Vec<std::thread::JoinHandle<()>>,
    next_tid: AtomicU64,
    stopped: bool,
    /// Control messages received while waiting for something else.
    stash: Vec<madeleine::Message>,
}

impl Machine {
    /// Start configuring a machine with `nodes` nodes — the v1 facade's
    /// front door (see [`MachineBuilder`]).
    pub fn builder(nodes: usize) -> MachineBuilder {
        MachineBuilder::new(nodes)
    }

    /// Launch a machine from an explicit configuration (the paper-faithful
    /// layer; [`Machine::builder`] is the fluent equivalent).
    pub fn launch(cfg: Pm2Config) -> Result<Machine> {
        assert!(cfg.nodes >= 1, "a machine needs at least one node");
        let area = Arc::new(IsoArea::with_strategy(cfg.area, cfg.map_strategy)?);
        // Threaded mode: one doorbell per endpoint, each driver parks on
        // its own.  Deterministic mode: one shared doorbell, so the single
        // round-robin driver parks once for the whole fabric and any send
        // (including the host's) wakes it.
        let mut eps = match cfg.mode {
            MachineMode::Threaded => Fabric::new(cfg.nodes + 1, cfg.net),
            MachineMode::Deterministic => Fabric::new_shared_doorbell(cfg.nodes + 1, cfg.net),
        };
        let host_ep = eps.pop().expect("host endpoint");
        let out = OutputSink::new(cfg.echo_output);
        let registry = Registry::new_shared();
        let spawn_table = SpawnTable::new_shared();
        let services = ServiceTable::new_shared();
        let typed_services = TypedServiceTable::new_shared();

        let mut ctxs: Vec<NodeCtx> = eps
            .into_iter()
            .map(|ep| {
                NodeCtx::new(
                    &cfg,
                    ep.node(),
                    Arc::clone(&area),
                    ep,
                    Arc::clone(&out),
                    Arc::clone(&registry),
                    Arc::clone(&spawn_table),
                    Arc::clone(&services),
                    Arc::clone(&typed_services),
                )
            })
            .collect();
        let slot_stats = ctxs.iter().map(|c| c.mgr.stats()).collect();
        let node_stats = ctxs.iter().map(|c| Arc::clone(&c.stats)).collect();
        let wealth = ctxs.iter().map(|c| Arc::clone(&c.peer_wealth)).collect();
        let pools = ctxs.iter().map(|c| c.pool.clone()).collect();

        let drivers = match cfg.mode {
            MachineMode::Threaded => ctxs
                .into_iter()
                .map(|mut ctx| {
                    std::thread::Builder::new()
                        .name(format!("pm2-node{}", ctx.node))
                        .spawn(move || drive_one(&mut ctx))
                        .expect("spawning node thread")
                })
                .collect(),
            MachineMode::Deterministic => vec![std::thread::Builder::new()
                .name("pm2-nodes".into())
                .spawn(move || drive_all(&mut ctxs))
                .expect("spawning driver thread")],
        };

        Ok(Machine {
            cfg,
            area,
            host_ep,
            out,
            registry,
            spawn_table,
            services,
            typed_services,
            slot_stats,
            node_stats,
            wealth,
            pools,
            drivers,
            next_tid: AtomicU64::new(1),
            stopped: false,
            stash: Vec::new(),
        })
    }

    /// The machine's configuration.
    pub fn config(&self) -> &Pm2Config {
        &self.cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// The iso-address area (shared by all nodes).
    pub fn area(&self) -> &Arc<IsoArea> {
        &self.area
    }

    /// Register a raw byte-level LRPC service (the paper-faithful layer;
    /// do this before any `rpc_spawn` names it).
    pub fn register_service<F>(&self, id: u32, f: F)
    where
        F: Fn(Vec<u8>) + Send + Sync + 'static,
    {
        self.services.register(id, Arc::new(f));
    }

    /// Register a typed request/reply [`Service`] by type.  Callable from
    /// any node afterwards via [`crate::api::pm2_rpc_call`], or from the
    /// host via [`Machine::rpc_call`].
    pub fn register<S: Service>(&self, svc: S) {
        self.typed_services.register(svc);
    }

    /// Spawn `f` as a Marcel thread on `node`.
    pub fn spawn_on<F>(&self, node: usize, f: F) -> Result<Pm2Thread>
    where
        F: FnOnce() + Send + 'static,
    {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        let tid = HOST_TID_BASE | self.next_tid.fetch_add(1, Ordering::Relaxed);
        let key = self.spawn_table.park(Box::new(f));
        let mut w = PayloadWriter::pooled(self.host_ep.pool(), 16);
        w.u64(key).u64(tid);
        self.host_ep.send(node, tag::SPAWN_KEY, w.finish())?;
        Ok(Pm2Thread { tid })
    }

    /// Spawn a value-returning thread on `node`; the typed [`JoinHandle`]
    /// decodes the body's return value on join.
    ///
    /// Unlike the old host-only mpsc plumbing, the value is shipped
    /// through the completion registry and the thread-exit protocol, so it
    /// arrives even if the thread migrates and dies on another node — and
    /// green threads can observe it too, via
    /// [`crate::api::pm2_join_value`] on [`JoinHandle::tid`].
    pub fn spawn_on_ret<R, F>(&self, node: usize, f: F) -> Result<JoinHandle<R>>
    where
        R: Wire + Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let t = self.spawn_on(node, move || {
            let value = f();
            crate::api::set_exit_value(value.encode_vec());
        })?;
        Ok(JoinHandle {
            tid: t.tid,
            registry: Arc::clone(&self.registry),
            _result: PhantomData,
        })
    }

    /// Spawn a registered byte-level service on `node` from the host
    /// (fire and forget — PM2's original LRPC).
    pub fn rpc_spawn(&self, node: usize, service: u32, args: &[u8]) -> Result<()> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        self.host_ep.send(
            node,
            tag::RPC_SPAWN,
            proto::encode_rpc_spawn(self.host_ep.pool(), service, args),
        )?;
        Ok(())
    }

    /// Fault-injection hook: deliver a raw fabric message to `node` as if a
    /// peer had sent it.  Exists so tests can exercise the corrupt-input
    /// paths (e.g. a truncated migration record); not part of the public
    /// API contract.
    #[doc(hidden)]
    pub fn inject_raw(&self, node: usize, tag: u16, payload: Vec<u8>) -> Result<()> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        self.host_ep.send(node, tag, payload)?;
        Ok(())
    }

    /// Typed request/reply LRPC from the host: call service `S` on `node`
    /// and block until its response arrives (deadline: the configured
    /// `reply_deadline`).  The green-thread equivalent is
    /// [`crate::api::pm2_rpc_call`].
    pub fn rpc_call<S: Service>(&mut self, node: usize, req: S::Req) -> Result<S::Resp> {
        if node >= self.cfg.nodes {
            return Err(Pm2Error::NoSuchNode(node));
        }
        let req_bytes = req.encode_vec();
        if req_bytes.len() > self.cfg.max_rpc_payload {
            return Err(Pm2Error::PayloadTooLarge {
                len: req_bytes.len(),
                max: self.cfg.max_rpc_payload,
            });
        }
        // Host rpc_calls are serialized (&mut self), so any RPC_RESP still
        // stashed from an earlier, timed-out call is dead — drop it rather
        // than accumulate it.
        self.stash.retain(|m| m.tag != tag::RPC_RESP);
        // Host call ids use the host's fabric id in the top bits, keeping
        // them disjoint from every node's (node ids < nodes = host id).
        let call_id =
            ((self.cfg.nodes as u64) << 48) | self.next_tid.fetch_add(1, Ordering::Relaxed);
        self.host_ep.send(
            node,
            tag::RPC_CALL,
            proto::encode_rpc_call(
                self.host_ep.pool(),
                call_id,
                self.cfg.nodes,
                service_id::<S>(),
                &req_bytes,
            ),
        )?;
        let deadline = Instant::now() + self.cfg.reply_deadline;
        let m = self
            .recv_control_matching(tag::RPC_RESP, deadline, |m| {
                proto::peek_rpc_call_id(&m.payload) == Some(call_id)
            })
            .ok_or_else(|| Pm2Error::Net("timed out waiting for rpc response".into()))?;
        crate::api::decode_rpc_outcome::<S>(&m.payload)
    }

    /// Block the host until a thread completes.  Panics after five minutes
    /// (a wedged machine in a test/bench should fail loudly).
    pub fn join(&self, t: Pm2Thread) -> ThreadExit {
        self.registry
            .wait(t.tid, Duration::from_secs(300))
            .unwrap_or_else(|| panic!("thread {:#x} never completed", t.tid))
    }

    /// Run `f` on `node` and return its value to the host.
    ///
    /// `R` is any `Send` type, so the value rides the registry's host-side
    /// mailbox (an in-process shortcut, like the spawn table); a
    /// panicking body surfaces as [`Pm2Error::Panicked`] with the panic
    /// message.  Use [`Machine::spawn_on_ret`] when the value should
    /// travel the wire protocol instead.
    pub fn run_on<R, F>(&self, node: usize, f: F) -> Result<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let registry = Arc::clone(&self.registry);
        let t = self.spawn_on(node, move || {
            let value = f();
            registry.put_value(marcel::current_tid(), Box::new(value));
        })?;
        let exit = self.join(t);
        if exit.panicked {
            return Err(Pm2Error::Panicked(exit.panic_message().to_string()));
        }
        self.registry
            .take_value(t.tid)
            .and_then(|b| b.downcast::<R>().ok())
            .map(|b| *b)
            .ok_or_else(|| Pm2Error::Spawn("thread produced no value".into()))
    }

    /// Captured `pm2_printf` lines, in order.
    pub fn output_lines(&self) -> Vec<String> {
        self.out.lines()
    }

    /// Clear captured output.
    pub fn clear_output(&self) {
        self.out.clear()
    }

    /// Completion registry (for custom host-side waiting).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Slot-layer statistics of `node`.
    pub fn slot_stats(&self, node: usize) -> SlotStatsSnapshot {
        self.slot_stats[node].snapshot()
    }

    /// Runtime statistics of `node`.
    pub fn node_stats(&self, node: usize) -> NodeStatsSnapshot {
        self.node_stats[node].snapshot()
    }

    /// Zero every node's runtime counters ([`NodeStats::reset`]) so the
    /// next [`Machine::node_stats`] snapshots are per-window, not
    /// cumulative — what a round-based harness wants between ramp rounds.
    /// Call near quiescence: a concurrent increment simply lands in the
    /// new window.  Slot-layer and pool stats are untouched (measure those
    /// as before/after deltas).
    pub fn stats_reset(&self) {
        for s in &self.node_stats {
            s.reset();
        }
    }

    /// `node`'s wealth hint table: its last-known free-slot count for
    /// every node, refreshed by each piggybacked hint on trade, load and
    /// migrate-ack traffic.  This is what the node's slot trader picks
    /// lenders from.
    pub fn peer_wealth(&self, node: usize) -> Vec<u64> {
        self.wealth[node]
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Payload-pool statistics of `node`'s endpoint.  In steady state the
    /// `allocs` counter stops moving: every message rides a recycled
    /// buffer.
    pub fn pool_stats(&self, node: usize) -> madeleine::BufPoolStats {
        self.pools[node].stats()
    }

    fn recv_control(&mut self, want: u16, deadline: Instant) -> Option<madeleine::Message> {
        self.recv_control_matching(want, deadline, |_| true)
    }

    /// Wait for a matching control message.  The wait is event-driven: the
    /// host parks inside [`madeleine::Endpoint::recv_until`] (a condvar
    /// wait under the hood) and is woken per arriving message — there is
    /// no poll slicing, so an arriving reply costs a wake-up, not a poll
    /// interval.
    fn recv_control_matching(
        &mut self,
        want: u16,
        deadline: Instant,
        pred: impl Fn(&madeleine::Message) -> bool,
    ) -> Option<madeleine::Message> {
        if let Some(i) = self.stash.iter().position(|m| m.tag == want && pred(m)) {
            return Some(self.stash.remove(i));
        }
        loop {
            match self.host_ep.recv_until(deadline) {
                Some(m) if m.tag == want && pred(&m) => return Some(m),
                Some(m) => self.stash.push(m),
                None => return None,
            }
        }
    }

    /// Run the global ownership audit (call at quiescence only).
    pub fn audit(&mut self) -> Result<AuditReport> {
        for node in 0..self.cfg.nodes {
            self.host_ep.send(node, tag::AUDIT_REQ, Vec::new())?;
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut nodes = Vec::with_capacity(self.cfg.nodes);
        for _ in 0..self.cfg.nodes {
            let m = self
                .recv_control(tag::AUDIT_RESP, deadline)
                .ok_or_else(|| Pm2Error::Net("audit timed out".into()))?;
            nodes.push(
                decode_node_report(&m.payload)
                    .ok_or_else(|| Pm2Error::Net("malformed audit response".into()))?,
            );
        }
        nodes.sort_by_key(|n| n.node);
        Ok(AuditReport {
            nodes,
            n_slots: self.area.n_slots(),
        })
    }

    /// Stop the machine: ask every node to drain and stop, await the acks,
    /// and join the driver threads.  Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for node in 0..self.cfg.nodes {
            let _ = self.host_ep.send(node, tag::SHUTDOWN, Vec::new());
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        for _ in 0..self.cfg.nodes {
            if self.recv_control(tag::SHUTDOWN_ACK, deadline).is_none() {
                eprintln!("pm2: warning: node shutdown ack missing");
                break;
            }
        }
        for h in self.drivers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Threaded-mode driver: one OS thread per node.  Event-driven — when a
/// step finds neither a message nor a runnable thread, the driver parks on
/// the endpoint's doorbell and is woken by the next send addressed to it
/// (or by the `idle_park` liveness backstop).  An idle node costs ~zero
/// CPU and, crucially on a busy host, never burns an OS timeslice
/// spinning: the sender's ring makes the destination runnable immediately,
/// which is what turns a ~1 ms polled migration hop into a µs-scale one.
fn drive_one(ctx: &mut NodeCtx) {
    ctx.activate();
    loop {
        if ctx.step() {
            continue;
        }
        ctx.maybe_ack_shutdown();
        if ctx.finished() {
            break;
        }
        ctx.idle_park();
    }
}

/// Deterministic-mode driver: all nodes round-robin on one OS thread,
/// parking on the machine's **shared** doorbell when no node has work.
/// The ring-counter snapshot is taken *before* the sweep, so any send that
/// lands mid-sweep (from the host or a node) makes the park return
/// immediately — and the final SHUTDOWN_ACK needs no park at all: the
/// sweep that handles SHUTDOWN also observes `finished()` and exits
/// without another wait.
fn drive_all(ctxs: &mut [NodeCtx]) {
    let bell = ctxs[0].ep.doorbell().clone();
    let idle_park = ctxs[0].idle_park;
    loop {
        let seen = bell.rings();
        let mut any = false;
        for ctx in ctxs.iter_mut() {
            any |= ctx.step();
            ctx.maybe_ack_shutdown();
        }
        if ctxs.iter().all(|c| c.finished()) {
            break;
        }
        if !any {
            for ctx in ctxs.iter_mut() {
                ctx.stats
                    .driver_parks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            bell.wait_past(seen, idle_park);
            for ctx in ctxs.iter_mut() {
                ctx.stats
                    .driver_wakeups
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}
