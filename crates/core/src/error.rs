//! Runtime errors.

use std::fmt;

/// Errors surfaced by the PM2 runtime API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pm2Error {
    /// The block layer failed (bad free, corruption, …).
    Alloc(isomalloc::AllocError),
    /// The slot layer failed.
    Slots(isoaddr::IsoAddrError),
    /// The global negotiation could not find the requested contiguous run
    /// anywhere in the system.
    OutOfSlots { requested: usize },
    /// A thread operation referenced an unknown or non-resident thread.
    NoSuchThread(u64),
    /// The target thread is not migratable (flagged, blocked, or running).
    NotMigratable(u64),
    /// Destination node id out of range.
    NoSuchNode(usize),
    /// The fabric failed.
    Net(String),
    /// Spawning failed.
    Spawn(String),
    /// A joined thread panicked; carries the panic message when one was
    /// captured.
    Panicked(String),
    /// A typed LRPC named a service id no node has registered.
    NoSuchService(u32),
    /// A typed LRPC payload exceeded the configured ceiling.
    PayloadTooLarge {
        /// Encoded payload size.
        len: usize,
        /// The `max_rpc_payload` in force.
        max: usize,
    },
    /// The remote side of a typed LRPC failed (handler panic, decode
    /// failure, oversized response).
    Rpc(String),
    /// A wire payload failed to decode as the expected type.
    Decode(&'static str),
    /// The node owning the awaited thread (or serving the call) died and no
    /// checkpoint covered it.  Joiners and RPC callers get this instead of
    /// a hang; carries the dead node's id.
    NodeFailed(usize),
    /// The spill log (checkpoint persistence) failed at the I/O layer.
    Spill(String),
    /// An at-least-once control exchange (trade, probe, checkpoint,
    /// reclaim) burned through its whole retry budget without ever seeing
    /// the reply.  Distinct from [`Pm2Error::NodeFailed`]: the peer is not
    /// known dead — the messages just kept vanishing.
    RetriesExhausted {
        /// The operation that gave up.
        op: &'static str,
        /// Total attempts made (the `control_retries` knob).
        attempts: u32,
    },
}

impl From<isomalloc::AllocError> for Pm2Error {
    fn from(e: isomalloc::AllocError) -> Self {
        Pm2Error::Alloc(e)
    }
}

impl From<isoaddr::IsoAddrError> for Pm2Error {
    fn from(e: isoaddr::IsoAddrError) -> Self {
        Pm2Error::Slots(e)
    }
}

impl From<madeleine::NetError> for Pm2Error {
    fn from(e: madeleine::NetError) -> Self {
        match e {
            madeleine::NetError::NodeDead(n) => Pm2Error::NodeFailed(n),
            other => Pm2Error::Net(other.to_string()),
        }
    }
}

impl fmt::Display for Pm2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pm2Error::Alloc(e) => write!(f, "allocation error: {e}"),
            Pm2Error::Slots(e) => write!(f, "slot layer error: {e}"),
            Pm2Error::OutOfSlots { requested } => {
                write!(f, "no {requested} contiguous slots exist system-wide")
            }
            Pm2Error::NoSuchThread(t) => write!(f, "no such thread: {t:#x}"),
            Pm2Error::NotMigratable(t) => write!(f, "thread {t:#x} cannot be migrated now"),
            Pm2Error::NoSuchNode(n) => write!(f, "no such node: {n}"),
            Pm2Error::Net(e) => write!(f, "network error: {e}"),
            Pm2Error::Spawn(e) => write!(f, "spawn error: {e}"),
            Pm2Error::Panicked(msg) => write!(f, "thread panicked: {msg}"),
            Pm2Error::NoSuchService(id) => write!(f, "no service registered under id {id:#x}"),
            Pm2Error::PayloadTooLarge { len, max } => {
                write!(
                    f,
                    "rpc payload of {len} bytes exceeds the {max}-byte ceiling"
                )
            }
            Pm2Error::Rpc(e) => write!(f, "rpc failed remotely: {e}"),
            Pm2Error::Decode(what) => write!(f, "malformed wire payload: {what}"),
            Pm2Error::NodeFailed(n) => write!(f, "node {n} failed"),
            Pm2Error::Spill(e) => write!(f, "spill log error: {e}"),
            Pm2Error::RetriesExhausted { op, attempts } => {
                write!(f, "{op} got no reply in {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for Pm2Error {}

/// Result alias for the runtime.
pub type Result<T> = std::result::Result<T, Pm2Error>;
