//! Machine-wide registries: thread completions, host spawn payloads, and
//! the LRPC service table.
//!
//! The completion registry is the simulation stand-in for PM2's thread-exit
//! notification: on a real cluster, node-local exits are signalled to
//! waiters via Madeleine messages (which we also send, for cross-node
//! joins); the process-global table lets the *host* (the test or bench
//! driver, which is not a node) block on a condition variable.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Completion record of a finished thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadExit {
    /// Thread id.
    pub tid: u64,
    /// Did the thread body panic?
    pub panicked: bool,
    /// Node the thread died on (≠ home node after migrations).
    pub died_on: usize,
}

/// Machine-wide completion registry.
#[derive(Default)]
pub struct Registry {
    done: Mutex<HashMap<u64, ThreadExit>>,
    cv: Condvar,
}

impl Registry {
    /// Fresh shared registry.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    /// Record a completion and wake waiters.
    pub fn complete(&self, exit: ThreadExit) {
        self.done.lock().insert(exit.tid, exit);
        self.cv.notify_all();
    }

    /// Non-blocking completion query.
    pub fn poll(&self, tid: u64) -> Option<ThreadExit> {
        self.done.lock().get(&tid).copied()
    }

    /// Block the calling *host* thread until `tid` completes (never call
    /// from a Marcel thread — those must poll + yield).
    pub fn wait(&self, tid: u64, timeout: Duration) -> Option<ThreadExit> {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock();
        loop {
            if let Some(e) = done.get(&tid) {
                return Some(*e);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut done, deadline - now);
        }
    }

    /// Number of recorded completions.
    pub fn completed_count(&self) -> usize {
        self.done.lock().len()
    }
}

/// Host → node spawn payloads (closures cannot travel through byte
/// messages; the host parks them here and ships the key).
///
/// This is an explicitly documented in-process shortcut: on a real cluster
/// the equivalent facility is the LRPC [`ServiceTable`] below, whose service
/// code is replicated on every node by the SPMD model.
#[derive(Default)]
pub struct SpawnTable {
    next: Mutex<u64>,
    table: Mutex<HashMap<u64, Box<dyn FnOnce() + Send + 'static>>>,
}

impl SpawnTable {
    /// Fresh shared table.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(SpawnTable::default())
    }

    /// Park a closure, returning its key.
    pub fn park(&self, f: Box<dyn FnOnce() + Send + 'static>) -> u64 {
        let mut next = self.next.lock();
        *next += 1;
        let key = *next;
        self.table.lock().insert(key, f);
        key
    }

    /// Take a parked closure.
    pub fn take(&self, key: u64) -> Option<Box<dyn FnOnce() + Send + 'static>> {
        self.table.lock().remove(&key)
    }
}

/// LRPC service table: named thread bodies, registered before launch and
/// conceptually replicated on every node (SPMD).  A remote spawn ships only
/// the service id and an argument byte string — exactly how PM2's LRPC
/// starts handler threads on remote nodes.
#[derive(Default)]
pub struct ServiceTable {
    table: Mutex<HashMap<u32, Arc<dyn Fn(Vec<u8>) + Send + Sync + 'static>>>,
}

impl ServiceTable {
    /// Fresh shared table.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(ServiceTable::default())
    }

    /// Register service `id`.  Panics on duplicate registration.
    pub fn register(&self, id: u32, f: Arc<dyn Fn(Vec<u8>) + Send + Sync + 'static>) {
        let prev = self.table.lock().insert(id, f);
        assert!(prev.is_none(), "service {id} registered twice");
    }

    /// Look up service `id`.
    pub fn get(&self, id: u32) -> Option<Arc<dyn Fn(Vec<u8>) + Send + Sync + 'static>> {
        self.table.lock().get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_wait_and_poll() {
        let r = Registry::new_shared();
        assert!(r.poll(5).is_none());
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r2.complete(ThreadExit { tid: 5, panicked: false, died_on: 1 });
        });
        let e = r.wait(5, Duration::from_secs(5)).unwrap();
        assert_eq!(e.died_on, 1);
        assert!(!e.panicked);
        h.join().unwrap();
        assert_eq!(r.completed_count(), 1);
    }

    #[test]
    fn registry_wait_times_out() {
        let r = Registry::default();
        assert!(r.wait(99, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn spawn_table_take_once() {
        let t = SpawnTable::default();
        let k = t.park(Box::new(|| {}));
        assert!(t.take(k).is_some());
        assert!(t.take(k).is_none());
    }

    #[test]
    fn service_table_lookup() {
        let t = ServiceTable::default();
        t.register(3, Arc::new(|args| assert_eq!(args, b"x")));
        let f = t.get(3).unwrap();
        f(b"x".to_vec());
        assert!(t.get(4).is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn service_double_registration_panics() {
        let t = ServiceTable::default();
        t.register(1, Arc::new(|_| {}));
        t.register(1, Arc::new(|_| {}));
    }
}
