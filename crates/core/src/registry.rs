//! Machine-wide registries: thread completions, host spawn payloads, and
//! the LRPC service table.
//!
//! The completion registry is the simulation stand-in for PM2's thread-exit
//! notification: on a real cluster, node-local exits are signalled to
//! waiters via Madeleine messages (which we also send, for cross-node
//! joins); the process-global table lets the *host* (the test or bench
//! driver, which is not a node) block on a condition variable.
//!
//! Since the v1 typed facade, a completion carries more than a panicked
//! bit: the panic *message* (so a failing test names its assertion, not
//! just "thread panicked") and, for value-returning threads, the
//! [`Wire`](madeleine::wire::Wire)-encoded return value.  Both travel in
//! the `THREAD_EXIT` protocol message for cross-node joins, so a typed
//! join observes the same bytes whether the thread died at home or three
//! migrations away.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Completion record of a finished thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadExit {
    /// Thread id.
    pub tid: u64,
    /// Did the thread body panic?
    pub panicked: bool,
    /// Node the thread died on (≠ home node after migrations).
    pub died_on: usize,
    /// Panic payload text, when the body panicked with a string message.
    pub panic_msg: Option<String>,
    /// Wire-encoded return value, for threads spawned through a
    /// value-returning entry point (`spawn_on_ret`, `pm2_thread_create_ret`).
    pub value: Option<Vec<u8>>,
    /// Set when the thread did not exit at all: its node died and no
    /// checkpoint covered it.  Typed joins surface this as
    /// [`Pm2Error::NodeFailed`](crate::error::Pm2Error::NodeFailed) before
    /// any other interpretation.
    pub failed_node: Option<usize>,
}

impl ThreadExit {
    /// A plain (valueless, message-less) completion.
    pub fn plain(tid: u64, panicked: bool, died_on: usize) -> Self {
        ThreadExit {
            tid,
            panicked,
            died_on,
            panic_msg: None,
            value: None,
            failed_node: None,
        }
    }

    /// The completion of a thread that never exited: its node died
    /// uncheckpointed.  `panicked` is set too so untyped joins (`pm2_join`)
    /// also report failure rather than success.
    pub fn node_failed(tid: u64, node: usize) -> Self {
        ThreadExit {
            tid,
            panicked: true,
            died_on: node,
            panic_msg: Some(format!("node {node} failed before the thread exited")),
            value: None,
            failed_node: Some(node),
        }
    }

    /// The panic message, or a placeholder when none was captured.
    pub fn panic_message(&self) -> &str {
        self.panic_msg.as_deref().unwrap_or("thread panicked")
    }

    /// Interpret this completion as a typed join result: the panic (with
    /// its message) if the body panicked, otherwise the `Wire`-decoded
    /// return value.  Shared by every typed join surface
    /// (`JoinHandle::join`/`try_join`, `pm2_join_value`).
    pub fn typed_value<R: madeleine::Wire>(self) -> crate::error::Result<R> {
        use crate::error::Pm2Error;
        if let Some(n) = self.failed_node {
            return Err(Pm2Error::NodeFailed(n));
        }
        if self.panicked {
            return Err(Pm2Error::Panicked(self.panic_message().to_string()));
        }
        match self.value {
            Some(bytes) => R::decode_vec(&bytes).ok_or(Pm2Error::Decode("joined value")),
            None => Err(Pm2Error::Decode("thread returned no value")),
        }
    }
}

/// Machine-wide completion registry.
#[derive(Default)]
pub struct Registry {
    done: Mutex<HashMap<u64, ThreadExit>>,
    cv: Condvar,
    /// Host-side value mailbox for [`Machine::run_on`]: arbitrary (non-
    /// `Wire`) values cannot travel through byte messages, so `run_on`
    /// threads park them here under their tid — the documented in-process
    /// shortcut, exactly like [`SpawnTable`] for closures.
    values: Mutex<HashMap<u64, Box<dyn Any + Send>>>,
    /// Thread location table: tid → node currently (believed to be)
    /// hosting it.  Written at spawn-send time (optimistically, so a spawn
    /// in flight toward a dying node is still accounted for), updated on
    /// train adoption, cleared on completion.  Recovery reads it to learn
    /// which tids the dead node owned; on a real cluster this would be the
    /// home-node forwarding table the paper assumes.
    locations: Mutex<HashMap<u64, usize>>,
}

impl Registry {
    /// Fresh shared registry.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    /// Record a completion and wake waiters.
    pub fn complete(&self, exit: ThreadExit) {
        self.clear_location(exit.tid);
        self.done.lock().unwrap().insert(exit.tid, exit);
        self.cv.notify_all();
    }

    /// Record a completion only if none exists — the cross-node
    /// `THREAD_EXIT` path, which in this in-process simulation always
    /// trails the dying node's direct [`Registry::complete`].  Overwriting
    /// would resurrect a return value a typed join already consumed.
    pub fn complete_if_absent(&self, exit: ThreadExit) {
        self.clear_location(exit.tid);
        self.done.lock().unwrap().entry(exit.tid).or_insert(exit);
        self.cv.notify_all();
    }

    /// Non-blocking completion query.
    pub fn poll(&self, tid: u64) -> Option<ThreadExit> {
        self.done.lock().unwrap().get(&tid).cloned()
    }

    /// Non-blocking completion query without the return-value bytes —
    /// what wait loops should use, so polling never copies an
    /// arbitrarily large encoded value just to look at the flags.
    pub fn poll_meta(&self, tid: u64) -> Option<ThreadExit> {
        self.done.lock().unwrap().get(&tid).map(|e| ThreadExit {
            tid: e.tid,
            panicked: e.panicked,
            died_on: e.died_on,
            panic_msg: e.panic_msg.clone(),
            value: None,
            failed_node: e.failed_node,
        })
    }

    /// Non-blocking completion query that *moves* the stored return-value
    /// bytes out of the record (they can be arbitrarily large; retaining
    /// them after the one typed join that wants them would grow the
    /// registry without bound).  The completion record itself stays, so
    /// repeated `pm2_join`/`poll` keep working; a second *typed* join of
    /// the same tid reports "thread returned no value".
    pub fn take_typed_exit(&self, tid: u64) -> Option<ThreadExit> {
        let mut done = self.done.lock().unwrap();
        let entry = done.get_mut(&tid)?;
        let value = entry.value.take();
        let mut exit = entry.clone();
        exit.value = value;
        Some(exit)
    }

    /// Block the calling *host* thread until `tid` completes (never call
    /// from a Marcel thread — those must poll + yield).
    pub fn wait(&self, tid: u64, timeout: Duration) -> Option<ThreadExit> {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock().unwrap();
        loop {
            if let Some(e) = done.get(&tid) {
                return Some(e.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            done = self.cv.wait_timeout(done, deadline - now).unwrap().0;
        }
    }

    /// Block the calling *host* thread until `tid` completes, copying
    /// nothing; `true` on completion, `false` on timeout.  Pair with
    /// [`Registry::take_typed_exit`] for the record.
    pub fn wait_completed(&self, tid: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock().unwrap();
        loop {
            if done.contains_key(&tid) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            done = self.cv.wait_timeout(done, deadline - now).unwrap().0;
        }
    }

    /// Number of recorded completions.
    pub fn completed_count(&self) -> usize {
        self.done.lock().unwrap().len()
    }

    /// Park an arbitrary host-bound value under `tid` (see `values`).
    pub fn put_value(&self, tid: u64, v: Box<dyn Any + Send>) {
        self.values.lock().unwrap().insert(tid, v);
    }

    /// Take the host-bound value parked under `tid`, if any.
    pub fn take_value(&self, tid: u64) -> Option<Box<dyn Any + Send>> {
        self.values.lock().unwrap().remove(&tid)
    }

    /// Record (or move) a live thread's location.
    pub fn set_location(&self, tid: u64, node: usize) {
        self.locations.lock().unwrap().insert(tid, node);
    }

    /// Forget a completed thread's location.
    pub fn clear_location(&self, tid: u64) {
        self.locations.lock().unwrap().remove(&tid);
    }

    /// Where a live thread currently is, if known.
    pub fn location(&self, tid: u64) -> Option<usize> {
        self.locations.lock().unwrap().get(&tid).copied()
    }

    /// Every live tid believed to be on `node` — the dead node's victim
    /// list at recovery time.
    pub fn located_on(&self, node: usize) -> Vec<u64> {
        self.locations
            .lock()
            .unwrap()
            .iter()
            .filter(|&(_, &n)| n == node)
            .map(|(&t, _)| t)
            .collect()
    }
}

/// Host → node spawn payloads (closures cannot travel through byte
/// messages; the host parks them here and ships the key).
///
/// This is an explicitly documented in-process shortcut: on a real cluster
/// the equivalent facility is the LRPC [`ServiceTable`] below, whose service
/// code is replicated on every node by the SPMD model.
#[derive(Default)]
pub struct SpawnTable {
    /// Key counter — a plain atomic, not a mutex: `park` is called from
    /// arbitrarily many host threads at once and only needs uniqueness.
    next: AtomicU64,
    table: Mutex<HashMap<u64, Box<dyn FnOnce() + Send + 'static>>>,
}

impl SpawnTable {
    /// Fresh shared table.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(SpawnTable::default())
    }

    /// Park a closure, returning its key.
    pub fn park(&self, f: Box<dyn FnOnce() + Send + 'static>) -> u64 {
        let key = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.table.lock().unwrap().insert(key, f);
        key
    }

    /// Take a parked closure.
    pub fn take(&self, key: u64) -> Option<Box<dyn FnOnce() + Send + 'static>> {
        self.table.lock().unwrap().remove(&key)
    }
}

/// LRPC service table: named thread bodies, registered before launch and
/// conceptually replicated on every node (SPMD).  A remote spawn ships only
/// the service id and an argument byte string — exactly how PM2's LRPC
/// starts handler threads on remote nodes.
///
/// This is the fire-and-forget, paper-faithful layer.  The typed
/// request/reply facade lives in [`crate::service`].
#[derive(Default)]
pub struct ServiceTable {
    table: Mutex<HashMap<u32, RawService>>,
}

/// A byte-level fire-and-forget service body.
pub type RawService = Arc<dyn Fn(Vec<u8>) + Send + Sync + 'static>;

impl ServiceTable {
    /// Fresh shared table.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(ServiceTable::default())
    }

    /// Register service `id`.  Panics on duplicate registration.
    pub fn register(&self, id: u32, f: Arc<dyn Fn(Vec<u8>) + Send + Sync + 'static>) {
        let prev = self.table.lock().unwrap().insert(id, f);
        assert!(prev.is_none(), "service {id} registered twice");
    }

    /// Look up service `id`.
    pub fn get(&self, id: u32) -> Option<Arc<dyn Fn(Vec<u8>) + Send + Sync + 'static>> {
        self.table.lock().unwrap().get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_wait_and_poll() {
        let r = Registry::new_shared();
        assert!(r.poll(5).is_none());
        let r2 = Arc::clone(&r);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            r2.complete(ThreadExit::plain(5, false, 1));
        });
        let e = r.wait(5, Duration::from_secs(5)).unwrap();
        assert_eq!(e.died_on, 1);
        assert!(!e.panicked);
        h.join().unwrap();
        assert_eq!(r.completed_count(), 1);
    }

    #[test]
    fn registry_wait_times_out() {
        let r = Registry::default();
        assert!(r.wait(99, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn registry_value_mailbox() {
        let r = Registry::default();
        r.put_value(7, Box::new(123_i32));
        let v = r.take_value(7).unwrap().downcast::<i32>().unwrap();
        assert_eq!(*v, 123);
        assert!(r.take_value(7).is_none());
    }

    #[test]
    fn exit_panic_message_fallback() {
        let mut e = ThreadExit::plain(1, true, 0);
        assert_eq!(e.panic_message(), "thread panicked");
        e.panic_msg = Some("assertion failed: x == y".into());
        assert_eq!(e.panic_message(), "assertion failed: x == y");
    }

    #[test]
    fn spawn_table_take_once() {
        let t = SpawnTable::default();
        let k = t.park(Box::new(|| {}));
        assert!(t.take(k).is_some());
        assert!(t.take(k).is_none());
    }

    #[test]
    fn service_table_lookup() {
        let t = ServiceTable::default();
        t.register(3, Arc::new(|args| assert_eq!(args, b"x")));
        let f = t.get(3).unwrap();
        f(b"x".to_vec());
        assert!(t.get(4).is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn service_double_registration_panics() {
        let t = ServiceTable::default();
        t.register(1, Arc::new(|_| {}));
        t.register(1, Arc::new(|_| {}));
    }
}
