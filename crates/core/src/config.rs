//! Machine configuration.

use isoaddr::{AreaConfig, Distribution, MapStrategy};
use isomalloc::FitPolicy;
use madeleine::NetProfile;

/// How node schedulers are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineMode {
    /// One OS thread per node (the default; nodes run in parallel like the
    /// paper's cluster).
    Threaded,
    /// A single OS thread drives all nodes round-robin.  Fully deterministic
    /// interleaving; used by tests.
    Deterministic,
}

/// How threads are migrated (ablation A5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationScheme {
    /// The paper's contribution: iso-address migration, no post-processing.
    IsoAddress,
    /// Early-PM2 baseline: measure the additional relocation + registered
    /// pointer fix-up work on top of every migration (see `legacy`).
    /// Threads are still *resumed* iso-address (resuming a relocated Rust
    /// stack requires compiler guarantees Rust does not give — the very
    /// fragility §2 argues against); the fix-up cost is real and measured.
    RegisteredPointers,
}

/// Top-level configuration of a PM2 machine (a simulated cluster).
#[derive(Debug, Clone)]
pub struct Pm2Config {
    /// Number of nodes.
    pub nodes: usize,
    /// Geometry of the iso-address area.
    pub area: AreaConfig,
    /// How slot commit/decommit maps onto the host kernel (see
    /// [`MapStrategy`]; `Resident` keeps host-kernel page-table costs out
    /// of measurements, `Syscall` is the faithful mmap path).
    pub map_strategy: MapStrategy,
    /// Initial slot distribution (§4.1; the paper uses round-robin).
    pub distribution: Distribution,
    /// Capacity of each node's mmapped-slot cache (§6); 0 disables it.
    pub slot_cache: usize,
    /// Wire model for the Madeleine fabric.
    pub net: NetProfile,
    /// Block-placement policy for thread heaps (§4.3; paper: first-fit).
    pub fit: FitPolicy,
    /// Release fully-free heap slots to the hosting node eagerly.
    pub trim: bool,
    /// Scheduler driving mode.
    pub mode: MachineMode,
    /// Migration scheme (ablation).
    pub scheme: MigrationScheme,
    /// Ship whole slots instead of busy blocks only (ablation A6).
    pub pack_full_slots: bool,
    /// Echo `pm2_printf` lines to the process stdout as well as capturing
    /// them.
    pub echo_output: bool,
}

impl Pm2Config {
    /// A machine with `nodes` nodes and paper-faithful defaults: 64 KiB
    /// slots, round-robin distribution, first-fit blocks, slot cache on,
    /// BIP/Myrinet wire model, threaded scheduling.
    pub fn new(nodes: usize) -> Self {
        Pm2Config {
            nodes,
            area: AreaConfig::default(),
            map_strategy: MapStrategy::Resident,
            distribution: Distribution::RoundRobin,
            slot_cache: 32,
            net: NetProfile::myrinet_bip(),
            fit: FitPolicy::FirstFit,
            trim: true,
            mode: MachineMode::Threaded,
            scheme: MigrationScheme::IsoAddress,
            pack_full_slots: false,
            echo_output: false,
        }
    }

    /// Small, instant-network, deterministic machine for tests.
    pub fn test(nodes: usize) -> Self {
        Pm2Config {
            area: AreaConfig { slot_size: 64 * 1024, n_slots: 256 },
            net: NetProfile::instant(),
            mode: MachineMode::Deterministic,
            slot_cache: 0,
            ..Pm2Config::new(nodes)
        }
    }

    /// Builder: set the area geometry.
    pub fn with_area(mut self, area: AreaConfig) -> Self {
        self.area = area;
        self
    }

    /// Builder: set the slot map strategy.
    pub fn with_map_strategy(mut self, s: MapStrategy) -> Self {
        self.map_strategy = s;
        self
    }

    /// Builder: set the slot distribution.
    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Builder: set the wire model.
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }

    /// Builder: set the fit policy.
    pub fn with_fit(mut self, fit: FitPolicy) -> Self {
        self.fit = fit;
        self
    }

    /// Builder: set the scheduling mode.
    pub fn with_mode(mut self, mode: MachineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: set the slot cache capacity.
    pub fn with_slot_cache(mut self, cap: usize) -> Self {
        self.slot_cache = cap;
        self
    }

    /// Builder: echo output lines to stdout.
    pub fn with_echo(mut self, echo: bool) -> Self {
        self.echo_output = echo;
        self
    }

    /// Builder: pack whole slots on migration (ablation A6).
    pub fn with_pack_full(mut self, full: bool) -> Self {
        self.pack_full_slots = full;
        self
    }

    /// Builder: migration scheme (ablation A5).
    pub fn with_scheme(mut self, scheme: MigrationScheme) -> Self {
        self.scheme = scheme;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Pm2Config::new(4);
        assert_eq!(c.area.slot_size, 64 * 1024);
        assert_eq!(c.distribution, Distribution::RoundRobin);
        assert_eq!(c.fit, FitPolicy::FirstFit);
        assert_eq!(c.net.name, "myrinet-bip");
    }

    #[test]
    fn builders_compose() {
        let c = Pm2Config::test(2)
            .with_distribution(Distribution::BlockCyclic(8))
            .with_slot_cache(4)
            .with_fit(FitPolicy::BestFit);
        assert_eq!(c.distribution, Distribution::BlockCyclic(8));
        assert_eq!(c.slot_cache, 4);
        assert_eq!(c.fit, FitPolicy::BestFit);
        assert_eq!(c.mode, MachineMode::Deterministic);
    }
}
