//! Machine configuration: the raw [`Pm2Config`] record and the fluent
//! [`MachineBuilder`] over it.
//!
//! New code should start at [`crate::Machine::builder`]; `Pm2Config` stays
//! public as the paper-faithful, field-poking layer and for embedders that
//! persist configurations.

use std::time::Duration;

use isoaddr::{AreaConfig, Distribution, MapStrategy};
use isomalloc::FitPolicy;
use madeleine::NetProfile;

use crate::error::Result;
use crate::machine::Machine;

/// How node schedulers are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineMode {
    /// One OS thread per node (the default; nodes run in parallel like the
    /// paper's cluster).
    Threaded,
    /// A single OS thread drives all nodes round-robin.  Fully deterministic
    /// interleaving; used by tests.
    Deterministic,
}

/// How threads are migrated (ablation A5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationScheme {
    /// The paper's contribution: iso-address migration, no post-processing.
    IsoAddress,
    /// Early-PM2 baseline: measure the additional relocation + registered
    /// pointer fix-up work on top of every migration (see `legacy`).
    /// Threads are still *resumed* iso-address (resuming a relocated Rust
    /// stack requires compiler guarantees Rust does not give — the very
    /// fragility §2 argues against); the fix-up cost is real and measured.
    RegisteredPointers,
}

/// Top-level configuration of a PM2 machine (a simulated cluster).
#[derive(Debug, Clone)]
pub struct Pm2Config {
    /// Number of nodes.
    pub nodes: usize,
    /// Geometry of the iso-address area.
    pub area: AreaConfig,
    /// How slot commit/decommit maps onto the host kernel (see
    /// [`MapStrategy`]; `Resident` keeps host-kernel page-table costs out
    /// of measurements, `Syscall` is the faithful mmap path).
    pub map_strategy: MapStrategy,
    /// Initial slot distribution (§4.1; the paper uses round-robin).
    pub distribution: Distribution,
    /// Capacity of each node's mmapped-slot cache (§6); 0 disables it.
    pub slot_cache: usize,
    /// Wire model for the Madeleine fabric.
    pub net: NetProfile,
    /// Block-placement policy for thread heaps (§4.3; paper: first-fit).
    pub fit: FitPolicy,
    /// Release fully-free heap slots to the hosting node eagerly.
    pub trim: bool,
    /// Scheduler driving mode.
    pub mode: MachineMode,
    /// Migration scheme (ablation).
    pub scheme: MigrationScheme,
    /// Ship whole slots instead of busy blocks only (ablation A6).
    pub pack_full_slots: bool,
    /// Echo `pm2_printf` lines to the process stdout as well as capturing
    /// them.
    pub echo_output: bool,
    /// How long a green thread waits for a protocol reply (negotiation,
    /// load probes, typed LRPC) before declaring the machine wedged.
    /// Tests want it short so a deadlock fails fast; stress runs want it
    /// long so a loaded machine is not misdiagnosed.
    pub reply_deadline: Duration,
    /// Largest request/response payload the typed LRPC layer accepts,
    /// in bytes.  Oversized requests fail locally at the caller;
    /// oversized responses fail at the serving node with an RPC error.
    pub max_rpc_payload: usize,
    /// Most messages one driver pump handles before running a thread
    /// quantum.  The pump drains priority classes in order (control >
    /// migration > data), so the budget bounds how long a flooded lane
    /// can hold the scheduler off without ever letting data traffic
    /// delay control traffic.  Values < 1 are treated as 1.
    pub pump_budget: usize,
    /// Longest time an idle driver parks on its endpoint doorbell before
    /// re-checking the world.  This is a liveness backstop, **not** a poll
    /// period: every send rings the destination's doorbell, so real
    /// traffic wakes a parked driver immediately and a quiescent machine
    /// wakes only once per `idle_park`.
    pub idle_park: Duration,
    /// Worker threads the threaded-mode executor multiplexes the node
    /// drivers onto.  `0` (the default) sizes the pool automatically:
    /// `min(available cores, nodes)`.  Deterministic mode ignores it (one
    /// driver thread by definition).  A p = 256 machine on a laptop runs
    /// on a handful of workers; nodes are state machines woken by their
    /// doorbells, not threads.
    pub workers: usize,
    /// Upper bound on threads coalesced into one migration *train* (one
    /// `MIGRATION` wire message).  When a departure is packed, every other
    /// ready thread already flagged for migration is swept along and
    /// same-destination threads ride the same message, so a k-thread
    /// evacuation pays one message latency per destination instead of k.
    /// `1` disables coalescing (the per-thread-message baseline measured
    /// by the evacuation benchmark); values < 1 are treated as 1.
    pub max_train: usize,
    /// Trade-first remote slot acquisition (the decentralized slot
    /// economy).  When a node lacks contiguous slots it asks the richest
    /// known peer for a batch with one point-to-point `SLOT_TRADE`
    /// exchange — no lock, no freeze, no bitmap gather — and only falls
    /// back to the paper's §4.4 global negotiation when the trade cannot
    /// help.  `false` forces every shortfall through the global protocol
    /// (the measured baseline, and what the paper-faithful tests use).
    pub slot_trade: bool,
    /// Free-slot reserve low watermark: when a node's reserve drops below
    /// it, the driver sends one asynchronous prefetch trade to top the
    /// reserve back up, and a *lender* never grants slots that would take
    /// itself below it (the global protocol ignores watermarks — it is
    /// the authority of last resort).  0 disables prefetching.
    pub slot_low_watermark: usize,
    /// Prefetch target level: an async prefetch asks for
    /// `high − reserve` slots.  Clamped up to at least the low watermark.
    pub slot_high_watermark: usize,
    /// Extra slots a *demand* trade requests beyond the shortfall itself —
    /// the batch that amortizes one trade round trip over many later
    /// acquisitions.  Values < 1 are treated as 1.
    pub trade_batch: usize,
    /// Directory for per-node spill logs (`node<k>.log`), the persistence
    /// behind checkpoints and recovery.  `None` (the default) disables
    /// checkpointing entirely — `checkpoint_every` and `CKPT_REQ` are
    /// inert without a place to spill to.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Periodic checkpoint interval: each node driver spills a snapshot
    /// train of its migratable threads at most this often.  `None` (the
    /// default) means checkpoints happen only on demand
    /// ([`crate::Machine::checkpoint_node`]).  Requires `spill_dir`.
    pub checkpoint_every: Option<Duration>,
    /// Silence threshold of the failure detector: a node that has heard
    /// nothing from a peer for longer than this declares it dead (marks
    /// the fabric and broadcasts `NODE_DEAD`).  `None` (the default)
    /// disables detection — deaths are then only declared explicitly via
    /// [`crate::Machine::kill_node`].
    pub failure_timeout: Option<Duration>,
    /// How often a node beacons `HEARTBEAT` to its peers while the
    /// detector is armed.  Must be well under `failure_timeout`; ignored
    /// when detection is off.
    pub heartbeat_every: Duration,
    /// Total attempts (first try + retries) for the at-least-once
    /// request/reply control operations: slot trades, load probes,
    /// checkpoint requests, and recovery's slot reclaim.  Each attempt
    /// gets an exponentially growing slice of `reply_deadline` (backoff
    /// by deadline splitting, so the overall budget never exceeds one
    /// deadline); exhaustion surfaces a typed
    /// [`crate::Pm2Error::RetriesExhausted`].  Values < 1 are treated
    /// as 1 — a single attempt, the pre-chaos behavior.
    pub control_retries: u32,
    /// Spill-log compaction threshold: once a node's log has accumulated
    /// more than this many appended records, the next checkpoint first
    /// rewrites the log keeping only the newest record per thread.  `0`
    /// (the default) disables compaction — the log grows without bound,
    /// as before.
    pub spill_compact_after: usize,
    /// Seeded message-level fault plan for the fabric (chaos testing).
    /// `None` (the default) keeps every link a perfect wire.  When set,
    /// the machine exempts the exactly-once state-transfer tags
    /// (migration trains, spawns, thread exits, kill/shutdown, death
    /// certificates, and the §4.4 negotiation itself) and lets chaos
    /// loose on the at-least-once control plane — which retries above
    /// and deduplicates at the receiver.  Same seed ⇒ byte-identical
    /// fault schedule in deterministic mode.
    pub fault_plan: Option<madeleine::FaultPlan>,
    /// Fault-injection hook for tests: tids whose packed record group is
    /// deliberately truncated on departure, exercising the per-record
    /// train fault isolation end to end.  Leave empty in production.
    #[doc(hidden)]
    pub fault_corrupt_pack: Vec<u64>,
}

impl Pm2Config {
    /// A machine with `nodes` nodes and paper-faithful defaults: 64 KiB
    /// slots, round-robin distribution, first-fit blocks, slot cache on,
    /// BIP/Myrinet wire model, threaded scheduling.
    pub fn new(nodes: usize) -> Self {
        Pm2Config {
            nodes,
            area: AreaConfig::default(),
            map_strategy: MapStrategy::Resident,
            distribution: Distribution::RoundRobin,
            slot_cache: 32,
            net: NetProfile::myrinet_bip(),
            fit: FitPolicy::FirstFit,
            trim: true,
            mode: MachineMode::Threaded,
            scheme: MigrationScheme::IsoAddress,
            pack_full_slots: false,
            echo_output: false,
            reply_deadline: Duration::from_secs(30),
            max_rpc_payload: 1 << 20,
            pump_budget: 64,
            idle_park: Duration::from_millis(500),
            workers: 0,
            max_train: 64,
            slot_trade: true,
            slot_low_watermark: 4,
            slot_high_watermark: 16,
            trade_batch: 16,
            spill_dir: None,
            checkpoint_every: None,
            failure_timeout: None,
            heartbeat_every: Duration::from_millis(50),
            control_retries: 3,
            spill_compact_after: 0,
            fault_plan: None,
            fault_corrupt_pack: Vec::new(),
        }
    }

    /// Small, instant-network, deterministic machine for tests.
    pub fn test(nodes: usize) -> Self {
        Pm2Config {
            area: AreaConfig {
                slot_size: 64 * 1024,
                n_slots: 256,
            },
            net: NetProfile::instant(),
            mode: MachineMode::Deterministic,
            slot_cache: 0,
            reply_deadline: Duration::from_secs(10),
            ..Pm2Config::new(nodes)
        }
    }

    /// Builder: set the area geometry.
    pub fn with_area(mut self, area: AreaConfig) -> Self {
        self.area = area;
        self
    }

    /// Builder: set the slot map strategy.
    pub fn with_map_strategy(mut self, s: MapStrategy) -> Self {
        self.map_strategy = s;
        self
    }

    /// Builder: set the slot distribution.
    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Builder: set the wire model.
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }

    /// Builder: set the fit policy.
    pub fn with_fit(mut self, fit: FitPolicy) -> Self {
        self.fit = fit;
        self
    }

    /// Builder: set the scheduling mode.
    pub fn with_mode(mut self, mode: MachineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: set the slot cache capacity.
    pub fn with_slot_cache(mut self, cap: usize) -> Self {
        self.slot_cache = cap;
        self
    }

    /// Builder: echo output lines to stdout.
    pub fn with_echo(mut self, echo: bool) -> Self {
        self.echo_output = echo;
        self
    }

    /// Builder: pack whole slots on migration (ablation A6).
    pub fn with_pack_full(mut self, full: bool) -> Self {
        self.pack_full_slots = full;
        self
    }

    /// Builder: migration scheme (ablation A5).
    pub fn with_scheme(mut self, scheme: MigrationScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Builder: protocol reply deadline.
    pub fn with_reply_deadline(mut self, deadline: Duration) -> Self {
        self.reply_deadline = deadline;
        self
    }

    /// Builder: typed-LRPC payload ceiling.
    pub fn with_max_rpc_payload(mut self, bytes: usize) -> Self {
        self.max_rpc_payload = bytes;
        self
    }

    /// Builder: per-pump message budget.
    pub fn with_pump_budget(mut self, budget: usize) -> Self {
        self.pump_budget = budget;
        self
    }

    /// Builder: idle-park backstop duration.
    pub fn with_idle_park(mut self, park: Duration) -> Self {
        self.idle_park = park;
        self
    }

    /// Builder: executor worker-pool size (0 = auto-size to the host).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder: migration-train size cap (1 disables coalescing).
    pub fn with_max_train(mut self, max: usize) -> Self {
        self.max_train = max;
        self
    }

    /// Builder: trade-first remote slot acquisition on/off (`false`
    /// forces the §4.4 global negotiation on every shortfall).
    pub fn with_slot_trade(mut self, on: bool) -> Self {
        self.slot_trade = on;
        self
    }

    /// Builder: reserve low/high watermarks (prefetch trigger and target).
    pub fn with_slot_watermarks(mut self, low: usize, high: usize) -> Self {
        self.slot_low_watermark = low;
        self.slot_high_watermark = high;
        self
    }

    /// Builder: demand-trade batch size.
    pub fn with_trade_batch(mut self, batch: usize) -> Self {
        self.trade_batch = batch;
        self
    }

    /// Builder: spill-log directory (enables checkpointing).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Builder: periodic checkpoint interval.
    pub fn with_checkpoint_every(mut self, every: Duration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Builder: arm the failure detector with a silence threshold.
    pub fn with_failure_timeout(mut self, timeout: Duration) -> Self {
        self.failure_timeout = Some(timeout);
        self
    }

    /// Builder: heartbeat beacon period (detector armed only).
    pub fn with_heartbeat_every(mut self, every: Duration) -> Self {
        self.heartbeat_every = every;
        self
    }

    /// Builder: total attempts for at-least-once control requests.
    pub fn with_control_retries(mut self, attempts: u32) -> Self {
        self.control_retries = attempts;
        self
    }

    /// Builder: spill-log compaction threshold (0 disables).
    pub fn with_spill_compact_after(mut self, records: usize) -> Self {
        self.spill_compact_after = records;
        self
    }

    /// Builder: install a seeded fault plan on the fabric (chaos).
    pub fn with_fault_plan(mut self, plan: madeleine::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder: pack-corruption fault hook (tests only).
    #[doc(hidden)]
    pub fn with_fault_corrupt_pack(mut self, tids: Vec<u64>) -> Self {
        self.fault_corrupt_pack = tids;
        self
    }
}

/// Fluent machine construction — the v1 facade's front door.
///
/// ```no_run
/// use pm2::{Machine, NetProfile};
///
/// let machine = Machine::builder(4)
///     .deterministic()
///     .net(NetProfile::instant())
///     .launch()
///     .unwrap();
/// ```
///
/// Every knob of [`Pm2Config`] is reachable; unset knobs keep the
/// paper-faithful defaults of [`Pm2Config::new`].  [`MachineBuilder::launch`]
/// consumes the builder and starts the node drivers.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    cfg: Pm2Config,
}

impl MachineBuilder {
    /// Start from the paper-faithful defaults for `nodes` nodes
    /// (equivalently: [`crate::Machine::builder`]).
    pub fn new(nodes: usize) -> Self {
        MachineBuilder {
            cfg: Pm2Config::new(nodes),
        }
    }

    /// Drive all nodes round-robin on one OS thread (fully deterministic
    /// interleaving; what tests want).
    pub fn deterministic(mut self) -> Self {
        self.cfg.mode = MachineMode::Deterministic;
        self
    }

    /// One OS thread per node (the default; nodes run in parallel like the
    /// paper's cluster).
    pub fn threaded(mut self) -> Self {
        self.cfg.mode = MachineMode::Threaded;
        self
    }

    /// Wire model for the Madeleine fabric.
    pub fn net(mut self, net: NetProfile) -> Self {
        self.cfg.net = net;
        self
    }

    /// Migration scheme (iso-address, or the registered-pointer ablation).
    pub fn scheme(mut self, scheme: MigrationScheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Geometry of the iso-address area.
    pub fn area(mut self, area: AreaConfig) -> Self {
        self.cfg.area = area;
        self
    }

    /// Initial slot distribution across nodes.
    pub fn distribution(mut self, d: Distribution) -> Self {
        self.cfg.distribution = d;
        self
    }

    /// How slot commit/decommit maps onto the host kernel.
    pub fn map_strategy(mut self, s: MapStrategy) -> Self {
        self.cfg.map_strategy = s;
        self
    }

    /// Block-placement policy for thread heaps.
    pub fn fit(mut self, fit: FitPolicy) -> Self {
        self.cfg.fit = fit;
        self
    }

    /// Capacity of each node's mmapped-slot cache (0 disables it).
    pub fn slot_cache(mut self, cap: usize) -> Self {
        self.cfg.slot_cache = cap;
        self
    }

    /// Ship whole slots instead of busy blocks only (ablation A6).
    pub fn pack_full_slots(mut self, full: bool) -> Self {
        self.cfg.pack_full_slots = full;
        self
    }

    /// Release fully-free heap slots to the hosting node eagerly.
    pub fn trim(mut self, trim: bool) -> Self {
        self.cfg.trim = trim;
        self
    }

    /// Echo `pm2_printf` lines to stdout as well as capturing them.
    pub fn echo(mut self, echo: bool) -> Self {
        self.cfg.echo_output = echo;
        self
    }

    /// Protocol reply deadline (negotiation, probes, typed LRPC).
    pub fn reply_deadline(mut self, deadline: Duration) -> Self {
        self.cfg.reply_deadline = deadline;
        self
    }

    /// Typed-LRPC payload ceiling in bytes.
    pub fn max_rpc_payload(mut self, bytes: usize) -> Self {
        self.cfg.max_rpc_payload = bytes;
        self
    }

    /// Most messages one driver pump handles before running a thread
    /// quantum (drained control > migration > data; see
    /// [`Pm2Config::pump_budget`]).
    pub fn pump_budget(mut self, budget: usize) -> Self {
        self.cfg.pump_budget = budget;
        self
    }

    /// Longest doorbell park of an idle driver — a liveness backstop, not
    /// a poll period (see [`Pm2Config::idle_park`]).
    pub fn idle_park(mut self, park: Duration) -> Self {
        self.cfg.idle_park = park;
        self
    }

    /// Executor worker-pool size for threaded mode; 0 auto-sizes to
    /// `min(cores, nodes)` (see [`Pm2Config::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Migration-train size cap — most threads coalesced into one
    /// `MIGRATION` message; 1 disables coalescing (see
    /// [`Pm2Config::max_train`]).
    pub fn max_train(mut self, max: usize) -> Self {
        self.cfg.max_train = max;
        self
    }

    /// Trade-first remote slot acquisition on/off (`false` forces the
    /// paper's §4.4 global negotiation on every shortfall; see
    /// [`Pm2Config::slot_trade`]).
    pub fn slot_trade(mut self, on: bool) -> Self {
        self.cfg.slot_trade = on;
        self
    }

    /// Free-slot reserve watermarks: prefetch trigger (`low`) and target
    /// (`high`); see [`Pm2Config::slot_low_watermark`].
    pub fn slot_watermarks(mut self, low: usize, high: usize) -> Self {
        self.cfg.slot_low_watermark = low;
        self.cfg.slot_high_watermark = high;
        self
    }

    /// Demand-trade batch size (see [`Pm2Config::trade_batch`]).
    pub fn trade_batch(mut self, batch: usize) -> Self {
        self.cfg.trade_batch = batch;
        self
    }

    /// Spill-log directory — enables checkpointing (see
    /// [`Pm2Config::spill_dir`]).
    pub fn spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.spill_dir = Some(dir.into());
        self
    }

    /// Periodic checkpoint interval (see [`Pm2Config::checkpoint_every`];
    /// requires a spill dir).
    pub fn checkpoint_every(mut self, every: Duration) -> Self {
        self.cfg.checkpoint_every = Some(every);
        self
    }

    /// Arm the failure detector: silence beyond `timeout` declares a peer
    /// dead (see [`Pm2Config::failure_timeout`]).
    pub fn failure_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.failure_timeout = Some(timeout);
        self
    }

    /// Heartbeat beacon period while the detector is armed (see
    /// [`Pm2Config::heartbeat_every`]).
    pub fn heartbeat_every(mut self, every: Duration) -> Self {
        self.cfg.heartbeat_every = every;
        self
    }

    /// Total attempts for at-least-once control requests (see
    /// [`Pm2Config::control_retries`]).
    pub fn control_retries(mut self, attempts: u32) -> Self {
        self.cfg.control_retries = attempts;
        self
    }

    /// Spill-log compaction threshold; 0 disables (see
    /// [`Pm2Config::spill_compact_after`]).
    pub fn spill_compact_after(mut self, records: usize) -> Self {
        self.cfg.spill_compact_after = records;
        self
    }

    /// Install a seeded message-level fault plan on the fabric (see
    /// [`Pm2Config::fault_plan`]).
    pub fn fault_plan(mut self, plan: madeleine::FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// The small deterministic instant-network profile tests use (the
    /// knobs of [`Pm2Config::test`]).  Overlays only the profile's own
    /// knobs (area, net, mode, slot cache, reply deadline); anything else
    /// set on the builder is kept, in either call order.
    pub fn test_profile(mut self) -> Self {
        let t = Pm2Config::test(self.cfg.nodes);
        self.cfg.area = t.area;
        self.cfg.net = t.net;
        self.cfg.mode = t.mode;
        self.cfg.slot_cache = t.slot_cache;
        self.cfg.reply_deadline = t.reply_deadline;
        self
    }

    /// The configuration this builder would launch, without launching it.
    pub fn into_config(self) -> Pm2Config {
        self.cfg
    }

    /// Launch the machine.
    pub fn launch(self) -> Result<Machine> {
        Machine::launch(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Pm2Config::new(4);
        assert_eq!(c.area.slot_size, 64 * 1024);
        assert_eq!(c.distribution, Distribution::RoundRobin);
        assert_eq!(c.fit, FitPolicy::FirstFit);
        assert_eq!(c.net.name, "myrinet-bip");
    }

    #[test]
    fn builders_compose() {
        let c = Pm2Config::test(2)
            .with_distribution(Distribution::BlockCyclic(8))
            .with_slot_cache(4)
            .with_fit(FitPolicy::BestFit);
        assert_eq!(c.distribution, Distribution::BlockCyclic(8));
        assert_eq!(c.slot_cache, 4);
        assert_eq!(c.fit, FitPolicy::BestFit);
        assert_eq!(c.mode, MachineMode::Deterministic);
    }

    #[test]
    fn machine_builder_roundtrips_to_config() {
        let c = MachineBuilder::new(3)
            .deterministic()
            .net(NetProfile::instant())
            .scheme(MigrationScheme::RegisteredPointers)
            .slot_cache(2)
            .reply_deadline(Duration::from_millis(1500))
            .max_rpc_payload(4096)
            .pump_budget(7)
            .idle_park(Duration::from_millis(40))
            .max_train(5)
            .echo(true)
            .into_config();
        assert_eq!(c.nodes, 3);
        assert_eq!(c.pump_budget, 7);
        assert_eq!(c.max_train, 5);
        assert_eq!(c.idle_park, Duration::from_millis(40));
        assert_eq!(c.mode, MachineMode::Deterministic);
        assert_eq!(c.net.name, "instant");
        assert_eq!(c.scheme, MigrationScheme::RegisteredPointers);
        assert_eq!(c.slot_cache, 2);
        assert_eq!(c.reply_deadline, Duration::from_millis(1500));
        assert_eq!(c.max_rpc_payload, 4096);
        assert!(c.echo_output);
    }

    #[test]
    fn workers_knob_roundtrips() {
        let c = MachineBuilder::new(8).workers(3).into_config();
        assert_eq!(c.workers, 3);
        let d = Pm2Config::new(8);
        assert_eq!(d.workers, 0, "auto-sized pool is the default");
        assert_eq!(Pm2Config::new(8).with_workers(2).workers, 2);
    }

    #[test]
    fn slot_economy_knobs_roundtrip() {
        let c = MachineBuilder::new(2)
            .slot_trade(false)
            .slot_watermarks(8, 64)
            .trade_batch(32)
            .into_config();
        assert!(!c.slot_trade);
        assert_eq!(c.slot_low_watermark, 8);
        assert_eq!(c.slot_high_watermark, 64);
        assert_eq!(c.trade_batch, 32);
        let d = Pm2Config::new(2);
        assert!(d.slot_trade, "trade-first is the default");
        assert!(d.slot_low_watermark <= d.slot_high_watermark);
        let e = Pm2Config::test(2)
            .with_slot_trade(false)
            .with_trade_batch(7);
        assert!(!e.slot_trade);
        assert_eq!(e.trade_batch, 7);
    }

    #[test]
    fn fault_tolerance_knobs_roundtrip() {
        let c = MachineBuilder::new(4)
            .spill_dir("/tmp/pm2-spill")
            .checkpoint_every(Duration::from_millis(10))
            .failure_timeout(Duration::from_millis(200))
            .heartbeat_every(Duration::from_millis(25))
            .into_config();
        assert_eq!(
            c.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/pm2-spill"))
        );
        assert_eq!(c.checkpoint_every, Some(Duration::from_millis(10)));
        assert_eq!(c.failure_timeout, Some(Duration::from_millis(200)));
        assert_eq!(c.heartbeat_every, Duration::from_millis(25));
        let d = Pm2Config::new(4);
        assert!(d.spill_dir.is_none(), "checkpointing is opt-in");
        assert!(d.checkpoint_every.is_none());
        assert!(d.failure_timeout.is_none(), "detection is opt-in");
    }

    #[test]
    fn chaos_knobs_roundtrip() {
        let plan = madeleine::FaultPlan::lossy(7, 0.01);
        let c = MachineBuilder::new(4)
            .control_retries(5)
            .spill_compact_after(128)
            .fault_plan(plan.clone())
            .into_config();
        assert_eq!(c.control_retries, 5);
        assert_eq!(c.spill_compact_after, 128);
        assert_eq!(c.fault_plan.as_ref().map(|p| p.seed()), Some(7));
        let d = Pm2Config::new(4);
        assert_eq!(d.control_retries, 3, "a few retries by default");
        assert_eq!(d.spill_compact_after, 0, "compaction is opt-in");
        assert!(d.fault_plan.is_none(), "perfect wire by default");
        let e = Pm2Config::test(2)
            .with_control_retries(1)
            .with_spill_compact_after(9)
            .with_fault_plan(plan);
        assert_eq!(e.control_retries, 1);
        assert_eq!(e.spill_compact_after, 9);
        assert!(e.fault_plan.is_some());
    }

    #[test]
    fn builder_defaults_match_paper_defaults() {
        let built = MachineBuilder::new(4).into_config();
        let base = Pm2Config::new(4);
        assert_eq!(built.area.slot_size, base.area.slot_size);
        assert_eq!(built.distribution, base.distribution);
        assert_eq!(built.fit, base.fit);
        assert_eq!(built.net.name, base.net.name);
        assert_eq!(built.reply_deadline, base.reply_deadline);
    }
}
