//! Control-plane handlers: shutdown, audit, load reporting, cross-node
//! completions, and the parking of protocol replies for green threads
//! blocked in a request/reply exchange.

use isoaddr::SlotProvider;
use madeleine::Message;
use marcel::ThreadState;

use crate::node::NodeCtx;
use crate::proto::{self, tag};

pub(crate) fn on_shutdown(ctx: &mut NodeCtx) {
    ctx.shutdown = true;
    ctx.maybe_ack_shutdown();
}

/// Liveness probe.  The arrival itself already refreshed the sender's
/// last-heard stamp in `ingest`; a payload byte of 1 is a suspicion ping
/// that asks for an answering pong (empty payload), so a suspected but
/// healthy node clears the suspicion with exactly one message.  Probes
/// are rate-limited per suspect by the sender, so pongs cannot flood.
pub(crate) fn on_heartbeat(ctx: &mut NodeCtx, m: &Message) {
    if m.payload.first() == Some(&1) && m.src != ctx.node && m.src < ctx.n_nodes {
        let _ = ctx.ep.send(m.src, tag::HEARTBEAT, Vec::new());
    }
}

/// Epidemic digest: merge every entry (strictly-newer sequence wins; see
/// `NodeCtx::absorb_gossip`).  A malformed digest is dropped whole — the
/// next round supersedes it anyway.
pub(crate) fn on_gossip(ctx: &mut NodeCtx, m: &Message) {
    if let Some(entries) = proto::decode_gossip(&m.payload) {
        for e in entries {
            ctx.absorb_gossip(e);
        }
    }
}

pub(crate) fn on_audit_req(ctx: &mut NodeCtx, from: usize) {
    let report = crate::audit::encode_node_report(ctx);
    let _ = ctx.ep.send(from, tag::AUDIT_RESP, report);
}

/// Most affinity records one `LOAD_RESP` carries.  The planner only ever
/// co-locates a handful of threads per round, so reporting the hottest
/// talkers is enough; the cap bounds the reply size on thread-dense nodes.
const MAX_AFF_REPORT: usize = 16;

pub(crate) fn on_load_req(ctx: &mut NodeCtx, m: &Message) {
    let from = m.src;
    // Migratable, currently-ready threads — with their descriptor pointers
    // so the affinity section below can read each one's top-k table.
    let migratable: Vec<(u64, marcel::DescPtr)> = ctx
        .threads
        .iter()
        .filter(|(_, &d)| unsafe {
            (*d).thread_state() == ThreadState::Ready
                && (*d).flags & marcel::thread::flags::MIGRATABLE != 0
        })
        .map(|(&tid, &d)| (tid, d))
        .collect();
    let tids: Vec<u64> = migratable.iter().map(|&(tid, _)| tid).collect();
    // Affinity section: each migratable thread's (peer → msgs) edges plus
    // what its train would cost to ship, hottest talkers first, capped.
    let slot_size = ctx.mgr.slot_size();
    let mut aff: Vec<proto::AffinityEdge> = migratable
        .iter()
        .filter_map(|&(tid, d)| unsafe {
            let peers: Vec<(u32, u32)> = (*d).affinity_edges().collect();
            if peers.is_empty() {
                return None;
            }
            let pack_cost = crate::migration::pack_cost_hint(d, slot_size, ctx.pack_full_slots)
                .unwrap_or(usize::MAX)
                .min(u32::MAX as usize) as u32;
            Some(proto::AffinityEdge {
                tid,
                pack_cost,
                epochs_since_move: (*d).aff_epoch,
                peers,
            })
        })
        .collect();
    aff.sort_by_key(|e| std::cmp::Reverse(e.peers.iter().map(|&(_, m)| m as u64).sum::<u64>()));
    aff.truncate(MAX_AFF_REPORT);
    // The reply piggybacks this node's free-slot wealth: every balancer
    // probe doubles as a freshness source for the slot trader.
    let wealth = ctx.mgr.free_slots() as u32;
    ctx.set_peer_wealth(ctx.node, wealth as u64);
    let resp = proto::encode_load_resp(&ctx.pool, ctx.sched.resident() as u32, wealth, &tids, &aff);
    let _ = ctx.ep.send(from, tag::LOAD_RESP, resp);
    // The probe marks a balancer epoch: decay every resident thread's
    // affinity table *after* reporting, so this epoch's traffic was
    // visible to the planner before it fades.
    ctx.decay_thread_affinity(proto::decode_load_req(&m.payload));
}

pub(crate) fn on_thread_exit(ctx: &mut NodeCtx, m: Message) {
    if let Some(exit) = proto::decode_thread_exit(&m.payload) {
        // First write wins: the dying node already completed
        // the shared registry directly, and a typed join may
        // have consumed the value since — overwriting would
        // resurrect it.
        ctx.registry.complete_if_absent(exit);
    }
}

/// Park a reply for a green thread blocked in a protocol exchange
/// (negotiation, load probe, migrate command).
pub(crate) fn park_reply(ctx: &mut NodeCtx, m: Message) {
    ctx.replies.push_back(m);
}

/// Park a typed-LRPC response only if its caller is still waiting; a
/// reply landing after its caller's deadline would otherwise sit in the
/// queue forever.
pub(crate) fn park_rpc_resp(ctx: &mut NodeCtx, m: Message) {
    let waiting =
        proto::peek_rpc_call_id(&m.payload).is_some_and(|id| ctx.pending_calls.contains_key(&id));
    if waiting {
        ctx.replies.push_back(m);
    }
}

// -- fault tolerance --------------------------------------------------------

/// `KILL`: power-cord semantics for chaos tests.  The node stops dead —
/// no cleanup, no goodbyes; everything it owned is recovered by the
/// survivors (or lost, which is the point of the exercise).
pub(crate) fn on_kill(ctx: &mut NodeCtx) {
    ctx.killed = true;
}

/// `NODE_DEAD`: a survivor (or the host) announces a death.  Purge the
/// corpse from every local routing structure and fail waits aimed at it.
pub(crate) fn on_node_dead(ctx: &mut NodeCtx, m: &Message) {
    if let Some(dead) = proto::decode_node_dead(&m.payload) {
        ctx.note_node_dead(dead);
    }
}

/// `CKPT_REQ`: checkpoint now and acknowledge with the image count.
pub(crate) fn on_ckpt_req(ctx: &mut NodeCtx, m: Message) {
    let Some(req_id) = proto::decode_ckpt_req(&m.payload) else {
        return;
    };
    let threads = match ctx.checkpoint_now() {
        Ok(n) => n,
        Err(e) => {
            ctx.out.printf(ctx.node, &format!("checkpoint failed: {e}"));
            0
        }
    };
    let ack = proto::encode_ckpt_ack(&ctx.pool, req_id, threads);
    let _ = ctx.ep.send(m.src, tag::CKPT_ACK, ack);
}

/// `NODE_RECLAIM`: adopt a dead node's orphaned slot ranges (the host
/// computed them from the audit).  Same framing and adoption path as a
/// trade grant; mid-freeze the adoption is deferred exactly like one.
/// The reclaim id makes the exchange idempotent: a retried request whose
/// first ack was lost gets the recorded count re-acked, never a second
/// adoption of ranges this node already owns.
pub(crate) fn on_node_reclaim(ctx: &mut NodeCtx, m: Message) {
    let Some((reclaim_id, ranges)) = proto::decode_node_reclaim(&m.payload) else {
        return;
    };
    if let Some(&slots) = ctx.done_reclaims.get(&reclaim_id) {
        let _ = ctx.ep.send(
            m.src,
            tag::RECLAIM_ACK,
            proto::encode_reclaim_ack(&ctx.pool, reclaim_id, slots),
        );
        return;
    }
    let total: u64 = ranges.iter().map(|r| r.count as u64).sum();
    let adopted = if ctx.frozen {
        ctx.pending_adopts.extend(ranges.iter().copied());
        total as u32
    } else if ctx.mgr.adopt_batch(&ranges) {
        total as u32
    } else {
        ctx.out
            .printf(ctx.node, "dropped invalid reclaim grant from the host");
        0
    };
    ctx.done_reclaims.insert(reclaim_id, adopted);
    let _ = ctx.ep.send(
        m.src,
        tag::RECLAIM_ACK,
        proto::encode_reclaim_ack(&ctx.pool, reclaim_id, adopted),
    );
}
