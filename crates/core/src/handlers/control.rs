//! Control-plane handlers: shutdown, audit, load reporting, cross-node
//! completions, and the parking of protocol replies for green threads
//! blocked in a request/reply exchange.

use madeleine::Message;
use marcel::ThreadState;

use crate::node::NodeCtx;
use crate::proto::{self, tag};

pub(crate) fn on_shutdown(ctx: &mut NodeCtx) {
    ctx.shutdown = true;
    ctx.maybe_ack_shutdown();
}

pub(crate) fn on_audit_req(ctx: &mut NodeCtx, from: usize) {
    let report = crate::audit::encode_node_report(ctx);
    let _ = ctx.ep.send(from, tag::AUDIT_RESP, report);
}

pub(crate) fn on_load_req(ctx: &mut NodeCtx, from: usize) {
    // Migratable, currently-ready threads.
    let migratable: Vec<u64> = ctx
        .threads
        .iter()
        .filter(|(_, &d)| unsafe {
            (*d).thread_state() == ThreadState::Ready
                && (*d).flags & marcel::thread::flags::MIGRATABLE != 0
        })
        .map(|(&tid, _)| tid)
        .collect();
    // The reply piggybacks this node's free-slot wealth: every balancer
    // probe doubles as a freshness source for the slot trader.
    let wealth = ctx.mgr.free_slots() as u32;
    ctx.set_peer_wealth(ctx.node, wealth as u64);
    let resp = proto::encode_load_resp(&ctx.pool, ctx.sched.resident() as u32, wealth, &migratable);
    let _ = ctx.ep.send(from, tag::LOAD_RESP, resp);
}

pub(crate) fn on_thread_exit(ctx: &mut NodeCtx, m: Message) {
    if let Some(exit) = proto::decode_thread_exit(&m.payload) {
        // First write wins: the dying node already completed
        // the shared registry directly, and a typed join may
        // have consumed the value since — overwriting would
        // resurrect it.
        ctx.registry.complete_if_absent(exit);
    }
}

/// Park a reply for a green thread blocked in a protocol exchange
/// (negotiation, load probe, migrate command).
pub(crate) fn park_reply(ctx: &mut NodeCtx, m: Message) {
    ctx.replies.push_back(m);
}

/// Park a typed-LRPC response only if its caller is still waiting; a
/// reply landing after its caller's deadline would otherwise sit in the
/// queue forever.
pub(crate) fn park_rpc_resp(ctx: &mut NodeCtx, m: Message) {
    let waiting =
        proto::peek_rpc_call_id(&m.payload).is_some_and(|id| ctx.pending_calls.contains(&id));
    if waiting {
        ctx.replies.push_back(m);
    }
}
