//! Protocol handlers behind the node's event dispatch table.
//!
//! `node.rs` is the dispatch *core* (scheduler interleaving, thread
//! lifecycle, priority lanes); the per-tag protocol logic lives here, one
//! module per protocol family:
//!
//! * [`spawn`] — thread creation and LRPC: `SPAWN_KEY`, `RPC_SPAWN`,
//!   `RPC_CALL`;
//! * [`migration`] — thread arrival/rejection and remote migration
//!   commands: `MIGRATION`, `MIGRATION_NAK`, `MIGRATE_CMD`;
//! * [`negotiation`] — the slot-economy server side: point-to-point slot
//!   trades (`SLOT_TRADE_REQ`/`SLOT_TRADE_RESP`) plus the §4.4
//!   critical-section fallback: `NEG_LOCK_*`, `NEG_BITMAP_REQ`,
//!   `NEG_BUY`, `NEG_DONE`;
//! * [`control`] — machine control and observability: `SHUTDOWN`,
//!   `AUDIT_REQ`, `LOAD_REQ`, `THREAD_EXIT`, and the parking of protocol
//!   replies for blocked green threads.
//!
//! New subsystems plug in by adding a module + tag arm here; the pump,
//! budget, and priority machinery in `node.rs` need no change.
//!
//! ## Priority classes
//!
//! Every tag maps to a [`Class`]; the pump drains **control before
//! migration before data**, so a flood of application traffic (spawns,
//! RPC) can never delay shutdown or negotiation progress, and migrations
//! overtake bulk data but never the control plane.  Within one class,
//! per-sender FIFO order is preserved — cross-class reordering is safe
//! because no PM2 exchange relies on ordering *across* families (e.g.
//! migrations are explicitly legal inside a frozen negotiation window,
//! §4.2).

pub(crate) mod control;
pub(crate) mod migration;
pub(crate) mod negotiation;
pub(crate) mod spawn;

use madeleine::Message;

use crate::node::NodeCtx;
use crate::proto::tag;

/// Message priority class — the pump's drain order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub(crate) enum Class {
    /// Machine control, negotiation, completions, protocol replies.
    Control = 0,
    /// Thread transfer traffic.
    Migration = 1,
    /// Application payload traffic (spawns, LRPC).
    Data = 2,
}

/// Number of priority lanes.
pub(crate) const N_CLASSES: usize = 3;

/// Map a tag to its priority class.  Unknown tags classify as data; the
/// dispatch table still panics on them, exactly like the old monolithic
/// `match`.
pub(crate) fn classify(t: u16) -> Class {
    match t {
        tag::SHUTDOWN
        | tag::SHUTDOWN_ACK
        | tag::AUDIT_REQ
        | tag::AUDIT_RESP
        | tag::LOAD_RESP
        | tag::THREAD_EXIT
        | tag::NEG_LOCK_REQ
        | tag::NEG_LOCK_GRANT
        | tag::NEG_LOCK_RELEASE
        | tag::NEG_BITMAP_REQ
        | tag::NEG_BITMAP_RESP
        | tag::NEG_BUY
        | tag::NEG_BUY_ACK
        | tag::NEG_DONE
        | tag::SLOT_TRADE_REQ
        | tag::SLOT_TRADE_RESP
        | tag::MIGRATE_CMD_ACK
        | tag::KILL
        | tag::NODE_DEAD
        | tag::CKPT_REQ
        | tag::CKPT_ACK
        | tag::NODE_RECLAIM
        | tag::RECLAIM_ACK
        | tag::HEARTBEAT
        | tag::GOSSIP => Class::Control,
        tag::MIGRATION | tag::MIGRATION_NAK | tag::MIGRATE_CMD => Class::Migration,
        // LOAD_REQ is deliberately *data*-class despite being served by the
        // control module: a load probe asks about the application plane, so
        // it must observe — i.e. queue behind — the spawns already in
        // flight to the probed node, and a balancer probing a flooded node
        // should see (and wait like) the flood.  Its LOAD_RESP reply is
        // control-class: it unblocks a waiting protocol thread.
        _ => Class::Data,
    }
}

/// Sliding 64-sequence receive dedup window for one (source, class)
/// stream.  `top` is the newest sequence number admitted; bit `d` of
/// `mask` says whether `top − d` was seen.  A chaos-duplicated message
/// reuses the original's fabric sequence number, so the replay lands on
/// an already-set bit.  Anything more than 64 behind `top` also reads as
/// a duplicate — per-link FIFO plus the fabric's one-slot holdback bound
/// genuine reordering to a distance of 1, so nothing real ever falls
/// that far behind.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DedupWindow {
    top: u64,
    mask: u64,
}

impl DedupWindow {
    /// Record `seq`; `false` means it was already seen.
    pub(crate) fn admit(&mut self, seq: u64) -> bool {
        if self.mask == 0 {
            self.top = seq;
            self.mask = 1;
            return true;
        }
        if seq > self.top {
            let d = seq - self.top;
            self.mask = if d >= 64 { 0 } else { self.mask << d };
            self.mask |= 1;
            self.top = seq;
            return true;
        }
        let d = self.top - seq;
        if d >= 64 {
            return false;
        }
        let bit = 1u64 << d;
        if self.mask & bit != 0 {
            return false;
        }
        self.mask |= bit;
        true
    }
}

/// The dispatch table: route one message to its handler.
pub(crate) fn dispatch(ctx: &mut NodeCtx, m: Message) {
    // Zombie guard: a message from a node known to be dead is late mail
    // from a corpse — epoch-style fencing.  Its slots may already be
    // reclaimed and its threads re-adopted, so acting on it could
    // double-grant a slot or resurrect completed state.  (NODE_DEAD
    // itself always passes: it is *about* a corpse, from a survivor.)
    if m.tag != tag::NODE_DEAD && m.src < ctx.n_nodes && ctx.dead_nodes.contains(&m.src) {
        return;
    }
    // (Chaos duplicates were already dropped at ingest — dedup must run
    // once per fabric *arrival*, not per dispatch, because messages
    // deferred during a freeze come back through here a second time.)
    match m.tag {
        tag::SPAWN_KEY => spawn::on_spawn_key(ctx, m),
        tag::RPC_SPAWN => spawn::on_rpc_spawn(ctx, m),
        tag::RPC_CALL => spawn::on_rpc_call(ctx, m),
        tag::MIGRATION => migration::on_migration(ctx, m),
        tag::MIGRATION_NAK => migration::on_migration_nak(ctx, m),
        tag::MIGRATE_CMD => migration::on_migrate_cmd(ctx, m),
        tag::NEG_LOCK_REQ => negotiation::on_lock_req(ctx, m.src),
        tag::NEG_LOCK_RELEASE => negotiation::on_lock_release(ctx, m.src),
        tag::NEG_BITMAP_REQ => negotiation::on_bitmap_req(ctx, m.src),
        tag::NEG_BUY => negotiation::on_buy(ctx, m),
        tag::NEG_DONE => negotiation::on_neg_done(ctx),
        tag::SLOT_TRADE_REQ => negotiation::on_slot_trade_req(ctx, m),
        tag::SLOT_TRADE_RESP => negotiation::on_slot_trade_resp(ctx, m),
        tag::SHUTDOWN => control::on_shutdown(ctx),
        tag::AUDIT_REQ => control::on_audit_req(ctx, m.src),
        tag::LOAD_REQ => control::on_load_req(ctx, &m),
        tag::THREAD_EXIT => control::on_thread_exit(ctx, m),
        // Replies that piggyback free-slot wealth refresh the trader's
        // hint table on the way to the reply queue — one freshness source
        // for the balancer and the trader.
        tag::LOAD_RESP => {
            negotiation::note_load_wealth(ctx, &m);
            control::park_reply(ctx, m)
        }
        tag::MIGRATE_CMD_ACK => {
            negotiation::note_ack_wealth(ctx, &m);
            control::park_reply(ctx, m)
        }
        tag::NEG_LOCK_GRANT | tag::NEG_BITMAP_RESP | tag::NEG_BUY_ACK => {
            control::park_reply(ctx, m)
        }
        tag::RPC_RESP => control::park_rpc_resp(ctx, m),
        tag::KILL => control::on_kill(ctx),
        tag::NODE_DEAD => control::on_node_dead(ctx, &m),
        tag::CKPT_REQ => control::on_ckpt_req(ctx, m),
        tag::NODE_RECLAIM => control::on_node_reclaim(ctx, m),
        // Arrival already refreshed the sender's last-heard stamp in
        // ingest; a ping byte additionally requests an answering pong.
        tag::HEARTBEAT => control::on_heartbeat(ctx, &m),
        tag::GOSSIP => control::on_gossip(ctx, &m),
        t => panic!("node {}: unknown message tag {t}", ctx.node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_the_tag_space() {
        assert_eq!(classify(tag::SHUTDOWN), Class::Control);
        assert_eq!(classify(tag::NEG_BITMAP_REQ), Class::Control);
        assert_eq!(classify(tag::THREAD_EXIT), Class::Control);
        assert_eq!(classify(tag::LOAD_RESP), Class::Control);
        assert_eq!(classify(tag::SLOT_TRADE_REQ), Class::Control);
        assert_eq!(classify(tag::SLOT_TRADE_RESP), Class::Control);
        assert_eq!(classify(tag::GOSSIP), Class::Control);
        assert_eq!(classify(tag::HEARTBEAT), Class::Control);
        assert_eq!(classify(tag::MIGRATION), Class::Migration);
        assert_eq!(classify(tag::MIGRATE_CMD), Class::Migration);
        assert_eq!(
            classify(tag::LOAD_REQ),
            Class::Data,
            "probes must observe in-flight spawns"
        );
        assert_eq!(classify(tag::SPAWN_KEY), Class::Data);
        assert_eq!(classify(tag::RPC_CALL), Class::Data);
        assert_eq!(classify(tag::RPC_RESP), Class::Data);
        assert!(Class::Control < Class::Migration);
        assert!(Class::Migration < Class::Data);
    }

    #[test]
    fn dedup_window_catches_duplicates_and_tolerates_gaps() {
        let mut w = DedupWindow::default();
        assert!(w.admit(0), "first ever sequence admits");
        assert!(w.admit(1));
        assert!(!w.admit(1), "immediate duplicate caught");
        assert!(w.admit(5), "drop-induced gap admits");
        assert!(w.admit(3), "late (reordered) sequence inside the gap");
        assert!(!w.admit(3), "its duplicate caught");
        assert!(!w.admit(0), "old sequence still remembered");
        assert!(w.admit(4), "unseen in-window sequence admits");
    }

    #[test]
    fn dedup_window_handles_reorder_then_duplicate() {
        // The fabric's holdback swaps adjacent sends: seq 1 arrives
        // before seq 0, then chaos duplicates both.
        let mut w = DedupWindow::default();
        assert!(w.admit(1));
        assert!(w.admit(0));
        assert!(!w.admit(1));
        assert!(!w.admit(0));
        assert!(w.admit(2));
    }

    #[test]
    fn dedup_window_far_jump_forgets_cleanly() {
        let mut w = DedupWindow::default();
        assert!(w.admit(10));
        assert!(w.admit(500), "jump ≥ 64 ahead clears the window");
        assert!(!w.admit(500));
        assert!(!w.admit(10), "far-behind reads as duplicate, not panic");
        assert!(w.admit(499), "in-window slot behind the new top admits");
    }
}
