//! Server-side negotiation handlers (paper §4.4): the FIFO lock service
//! on node 0, the bitmap gather, slot sales, and the critical-section
//! exit.  The *initiator* side runs on the requesting green thread in
//! [`crate::negotiation`].

use madeleine::Message;

use crate::node::NodeCtx;
use crate::proto::{self, tag};

pub(crate) fn on_lock_req(ctx: &mut NodeCtx, from: usize) {
    assert_eq!(ctx.node, 0, "lock service lives on node 0");
    if ctx.lock_holder.is_none() {
        ctx.lock_holder = Some(from);
        let _ = ctx.ep.send(from, tag::NEG_LOCK_GRANT, Vec::new());
    } else {
        ctx.lock_queue.push_back(from);
    }
}

pub(crate) fn on_lock_release(ctx: &mut NodeCtx) {
    assert_eq!(ctx.node, 0, "lock service lives on node 0");
    ctx.lock_holder = None;
    if let Some(next) = ctx.lock_queue.pop_front() {
        ctx.lock_holder = Some(next);
        let _ = ctx.ep.send(next, tag::NEG_LOCK_GRANT, Vec::new());
    }
}

pub(crate) fn on_bitmap_req(ctx: &mut NodeCtx, from: usize) {
    // Entering the system-wide critical section as a participant: the
    // bitmap freezes until NEG_DONE (step (a) of §4.4).
    ctx.frozen = true;
    // The gather reply rides a pooled buffer: the initiator collects
    // p − 1 of these per negotiation, so recycling matters.
    let mut buf = ctx.pool.checkout(ctx.mgr.bitmap_wire_len());
    ctx.mgr.bitmap_bytes_into(&mut buf);
    let _ = ctx.ep.send(from, tag::NEG_BITMAP_RESP, buf);
}

pub(crate) fn on_buy(ctx: &mut NodeCtx, m: Message) {
    let ranges = proto::decode_ranges(&m.payload).expect("buy payload");
    for r in ranges {
        ctx.mgr.sell(r).expect("selling slots");
    }
    let _ = ctx.ep.send(m.src, tag::NEG_BUY_ACK, Vec::new());
}

pub(crate) fn on_neg_done(ctx: &mut NodeCtx) {
    // Unfreeze; the dispatch core replays deferred spawn-class messages
    // and reaps frozen-era zombies on its next step.
    ctx.frozen = false;
}
