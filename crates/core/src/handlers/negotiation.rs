//! Server-side slot-economy handlers: the point-to-point slot trade
//! (`SLOT_TRADE_REQ`/`SLOT_TRADE_RESP`) plus the surviving §4.4 global
//! fallback — the FIFO lock service on the elected coordinator (the
//! lowest-id live node; see [`crate::node::NodeCtx::coordinator`]), the
//! bitmap gather, slot sales, and the critical-section exit.  The
//! *initiator* side of both paths runs on the requesting green thread in
//! [`crate::negotiation`].
//!
//! ## The trade grant (lender side)
//!
//! A trade request names how many slots the requester wants, the minimum
//! contiguous run that would satisfy it outright, and the requester's own
//! free-slot wealth (which refreshes our hint table for free).  The grant
//! decision is purely local:
//!
//! * **frozen** (we are inside somebody's §4.4 critical section) → refuse.
//!   Our gathered bitmap is being used for a global first-fit; clearing
//!   bits now could double-grant a slot the initiator is about to buy.
//! * otherwise lend `min(want, free − low_watermark)` slots — the lender
//!   never trades itself below its own low watermark, so trade storms
//!   cannot ping-pong the same slots around the cluster.  (The *global*
//!   protocol ignores watermarks: it is the authority of last resort, so a
//!   cluster of all-poor nodes still converges through it.)
//!
//! Bits are cleared by [`isoaddr::NodeSlotManager::lend_batch`] before the
//! reply is sent — sender-clears-before-receiver-sets — so at every
//! instant a slot is set in at most one bitmap; in-flight slots are owned
//! by the trade message itself, exactly like thread-owned slots in flight
//! during a migration.
//!
//! ## Wealth piggybacking
//!
//! Free-slot counts ride every `SLOT_TRADE_*`, `LOAD_RESP` and
//! `MIGRATE_CMD_ACK` message, so choosing the richest peer needs no extra
//! round trips: the balancer's probes and the trader share one freshness
//! source (see [`note_load_wealth`] / [`note_ack_wealth`], called from the
//! dispatch table before replies are parked).

use std::sync::atomic::Ordering;

use madeleine::Message;

use crate::node::NodeCtx;
use crate::proto::{self, tag};

pub(crate) fn on_lock_req(ctx: &mut NodeCtx, from: usize) {
    // The lock service is a *leased role*, not an address: it lives on
    // the lowest-id live node.  A request reaching a non-coordinator is
    // an election-window straggler (the requester resolved the role an
    // instant before or after we did); drop it — the requester's wait
    // fails typed when the old coordinator's death lands, and it
    // re-resolves and re-sends.
    if !ctx.is_coordinator() {
        return;
    }
    if ctx.lock_holder != Some(from) && !ctx.lock_queue.contains(&from) {
        ctx.lock_queue.push_back(from);
    }
    ctx.service_lock_queue();
}

pub(crate) fn on_lock_release(ctx: &mut NodeCtx, from: usize) {
    // Only the holder *we* granted can free the service.  A release from
    // anyone else is stale — typically a holder granted by a dead
    // predecessor coordinator, whose critical section we never recorded —
    // and must not unlock a section belonging to someone we did grant.
    if ctx.lock_holder == Some(from) {
        ctx.lock_holder = None;
    }
    ctx.service_lock_queue();
}

pub(crate) fn on_bitmap_req(ctx: &mut NodeCtx, from: usize) {
    // Entering the system-wide critical section as a participant: the
    // bitmap freezes until NEG_DONE (step (a) of §4.4).  Remember the
    // initiator — if it dies, its death unfreezes us (it can never send
    // NEG_DONE).
    ctx.frozen = true;
    ctx.frozen_by = Some(from);
    // The gather reply rides a pooled buffer: the initiator collects
    // p − 1 of these per negotiation, so recycling matters.
    let mut buf = ctx.pool.checkout(ctx.mgr.bitmap_wire_len());
    ctx.mgr.bitmap_bytes_into(&mut buf);
    let _ = ctx.ep.send(from, tag::NEG_BITMAP_RESP, buf);
}

pub(crate) fn on_buy(ctx: &mut NodeCtx, m: Message) {
    let ranges = proto::decode_ranges(&m.payload).expect("buy payload");
    for r in ranges {
        ctx.mgr.sell(r).expect("selling slots");
    }
    let _ = ctx.ep.send(m.src, tag::NEG_BUY_ACK, Vec::new());
}

pub(crate) fn on_neg_done(ctx: &mut NodeCtx) {
    // Unfreeze; the dispatch core replays deferred spawn-class messages,
    // applies deferred trade adoptions, and reaps frozen-era zombies on
    // its next step.
    ctx.frozen = false;
    ctx.frozen_by = None;
    // If we are the coordinator, the freeze may have been the one thing
    // deferring a grant (e.g. a holder inherited from a dead predecessor
    // just finished its critical section).
    ctx.service_lock_queue();
}

/// A peer below its low watermark asks this node for slots.  Decide and
/// answer immediately — the grant never blocks, never locks, never touches
/// any other node.
pub(crate) fn on_slot_trade_req(ctx: &mut NodeCtx, m: Message) {
    let Some((trade_id, want, min_contig, wealth)) = proto::decode_slot_trade_req(&m.payload)
    else {
        // A corrupt request costs the request; the requester's reply
        // deadline (or its global fallback) covers the missing answer.
        return;
    };
    ctx.set_peer_wealth(m.src, wealth as u64);
    let free = ctx.mgr.free_slots();
    let spare = if ctx.frozen {
        0 // mid-critical-section: our bitmap must not change (§4.4 (a))
    } else {
        free.saturating_sub(ctx.low_watermark)
    };
    let give = spare.min(want as usize);
    let ranges = if give == 0 {
        ctx.stats.trade_refusals.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    } else {
        ctx.stats.trade_grants.fetch_add(1, Ordering::Relaxed);
        ctx.mgr
            .lend_batch(give, min_contig as usize)
            .expect("lending slots")
    };
    let my_wealth = ctx.mgr.free_slots() as u32;
    ctx.set_peer_wealth(ctx.node, my_wealth as u64);
    let resp = proto::encode_slot_trade_resp(&ctx.pool, trade_id, my_wealth, &ranges);
    let _ = ctx.ep.send(m.src, tag::SLOT_TRADE_RESP, resp);
}

/// A trade reply arrives.  Replies whose id sits in `prefetch_pending`
/// (the in-flight watermark prefetch, or a timed-out demand trade whose
/// late grant must still land) are consumed here: adopt the granted
/// ranges — deferred if the bitmap is frozen.  Everything else is parked
/// for the green thread blocked in `negotiation::try_trade`.
pub(crate) fn on_slot_trade_resp(ctx: &mut NodeCtx, m: Message) {
    let Some(id) = proto::peek_trade_id(&m.payload) else {
        return;
    };
    if !ctx.prefetch_pending.remove(&id) {
        super::control::park_reply(ctx, m);
        return;
    }
    // Only the actual prefetch's own reply re-arms the prefetcher; a late
    // demand reply routed through this path must not.
    let was_prefetch = ctx.prefetch_inflight == Some(id);
    if was_prefetch {
        ctx.prefetch_inflight = None;
        ctx.prefetch_target = None;
    }
    let Some((_, wealth, ranges)) = proto::decode_slot_trade_resp(&m.payload) else {
        return;
    };
    ctx.set_peer_wealth(m.src, wealth as u64);
    if ranges.is_empty() {
        return; // refused; the wealth update steers the next attempt away
    }
    if ctx.frozen {
        // Adoption would mutate the bitmap inside a §4.4 critical
        // section; park the ranges until NEG_DONE (like zombie reaping).
        // They are re-validated at adoption time.
        ctx.pending_adopts.extend(ranges.iter().copied());
    } else if !ctx.mgr.adopt_batch(&ranges) {
        // A corrupt grant (out-of-area or overlapping ranges) costs the
        // grant, never the node — like a corrupt migration record.
        ctx.out.printf(
            ctx.node,
            &format!("dropped invalid slot grant from node {}", m.src),
        );
        return;
    }
    if was_prefetch {
        ctx.stats.prefetch_fills.fetch_add(1, Ordering::Relaxed);
    }
    let total: u64 = ranges.iter().map(|r| r.count as u64).sum();
    ctx.stats.trade_slots_in.fetch_add(total, Ordering::Relaxed);
}

/// Refresh the wealth and load hint tables from a `LOAD_RESP` on its way
/// to the reply queue — a direct probe answer is at least as fresh as any
/// gossiped entry about the same peer.
pub(crate) fn note_load_wealth(ctx: &mut NodeCtx, m: &Message) {
    if let Some((resident, w)) = proto::peek_load_hints(&m.payload) {
        ctx.set_peer_wealth(m.src, w as u64);
        if let Some(l) = ctx.peer_load.get_mut(m.src) {
            *l = resident;
        }
    }
}

/// Refresh the wealth hint table from a `MIGRATE_CMD_ACK` on its way to
/// the reply queue.
pub(crate) fn note_ack_wealth(ctx: &mut NodeCtx, m: &Message) {
    if let Some((_, _, _, w)) = proto::decode_migrate_ack(&m.payload) {
        ctx.set_peer_wealth(m.src, w as u64);
    }
}
