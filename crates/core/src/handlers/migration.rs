//! Migration-class handlers: train arrival (`MIGRATION`), rejection
//! (`MIGRATION_NAK`) and third-party migration commands (`MIGRATE_CMD`).
//!
//! The *departure* side (sweep & pack & ship) stays in the dispatch core
//! (`NodeCtx::depart`): it is a scheduler outcome, not a message.
//!
//! Every `MIGRATION` payload is a *train* of k ≥ 1 threads (see
//! `crate::migration` for the wire shape).  Arrival is all-the-healthy-
//! threads-land: each record group unpacks independently, the adopted
//! threads enter the scheduler in **one** batch (`adopt_arrivals`), and
//! only the corrupt groups are NAKed back — by tid, which the fixed-size
//! train table preserves even when the records behind it are garbage.

use std::sync::atomic::Ordering;
use std::time::Instant;

use madeleine::Message;

use crate::config::MigrationScheme;
use crate::node::NodeCtx;
use crate::proto::{self, tag};
use crate::registry::ThreadExit;

pub(crate) fn on_migration(ctx: &mut NodeCtx, m: Message) {
    // Adopting slots does not touch the bitmap, so arrivals are legal
    // even inside a negotiation ("the bitmaps do not undergo any change
    // on thread migration", §4.2).
    ctx.stats
        .migration_wire_ns
        .fetch_add(m.wire_ns, Ordering::Relaxed);
    let t0 = Instant::now();
    // SAFETY: buffer from a peer's pack_threads (or, under fault
    // injection, arbitrary bytes — unpack_threads validates and rolls
    // back per record group rather than trusting them).
    let unpacked = unsafe { crate::migration::unpack_threads(&m.payload, &mut ctx.mgr) };
    ctx.stats
        .migration_unpack_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let outcome = match unpacked {
        Ok(o) => o,
        Err(e) => {
            // The train table itself was unreadable: there are no tids to
            // name, so NAK the whole message anonymously.  Costs the
            // train, never the node.
            ctx.stats.migrations_failed.fetch_add(1, Ordering::Relaxed);
            let text = format!("rejected corrupt migration from node {}: {e}", m.src);
            ctx.out.printf(ctx.node, &text);
            let nak = proto::encode_migration_nak(&ctx.pool, &[], &text);
            let _ = ctx.ep.send(m.src, tag::MIGRATION_NAK, nak);
            return;
        }
    };
    if !outcome.adopted.is_empty() {
        // SAFETY: unpack succeeded for these; live resident descriptors.
        unsafe {
            if ctx.scheme == MigrationScheme::RegisteredPointers {
                // Ablation baseline: charge the early-PM2 post-migration
                // fix-up walk (registered pointers + frame chain).
                for &d in &outcome.adopted {
                    crate::legacy::charge_arrival_fixup(d);
                }
            }
            // The whole train enters the scheduler in one batch.
            ctx.sched.adopt_arrivals(&outcome.adopted);
            for &d in &outcome.adopted {
                ctx.threads.insert((*d).tid, d);
                // Adoption moves the thread's location — recovery and
                // dead-owner join checks depend on this being current.
                ctx.registry.set_location((*d).tid, ctx.node);
                // Arrival starts the hysteresis cooldown clock: the
                // balancer won't re-plan this thread until `aff_cooldown`
                // epochs elapse, so chatty-both-ways threads settle
                // instead of ping-ponging.
                (*d).aff_epoch = 0;
            }
        }
        ctx.stats
            .migrations_in
            .fetch_add(outcome.adopted.len() as u64, Ordering::Relaxed);
        ctx.stats.trains_in.fetch_add(1, Ordering::Relaxed);
    }
    if !outcome.rejected.is_empty() {
        // Corrupt groups cost their own threads, never the train: log,
        // count, and NAK the sender with the lost tids.
        ctx.stats
            .migrations_failed
            .fetch_add(outcome.rejected.len() as u64, Ordering::Relaxed);
        let tids: Vec<u64> = outcome.rejected.iter().map(|(t, _)| *t).collect();
        let reasons: Vec<String> = outcome
            .rejected
            .iter()
            .map(|(t, e)| format!("tid {t:#x}: {e}"))
            .collect();
        let text = format!(
            "rejected corrupt migration from node {}: {}",
            m.src,
            reasons.join("; ")
        );
        ctx.out.printf(ctx.node, &text);
        let nak = proto::encode_migration_nak(&ctx.pool, &tids, &text);
        let _ = ctx.ep.send(m.src, tag::MIGRATION_NAK, nak);
    }
}

/// The peer could not unpack one or more threads we shipped.  Their slots
/// were unmapped at pack time and the tids left our tables, so those
/// threads are unrecoverable — but joiners must not hang: complete each in
/// the registry as a panic carrying the rejection text.
pub(crate) fn on_migration_nak(ctx: &mut NodeCtx, m: Message) {
    let Some((tids, text)) = proto::decode_migration_nak(&m.payload) else {
        ctx.out.printf(
            ctx.node,
            &format!("peer node {} sent an unreadable migration NAK", m.src),
        );
        return;
    };
    ctx.out.printf(
        ctx.node,
        &format!("peer node {} NAKed a migration: {text}", m.src),
    );
    for tid in tids {
        if tid == 0 {
            continue;
        }
        // First-write-wins, like THREAD_EXIT: never resurrect a
        // completion a joiner already consumed.
        ctx.registry.complete_if_absent(ThreadExit {
            tid,
            panicked: true,
            died_on: ctx.node,
            panic_msg: Some(format!("thread lost in migration: {text}")),
            value: None,
            failed_node: None,
        });
    }
}

/// One command moves a whole tid list to one destination (the balancer's
/// per-(src, dest) plan entry).  Each resident, migratable, ready thread
/// is flagged; they all leave at the next scheduling point — and because
/// the departure side sweeps every flagged thread into one train, the k
/// accepted threads cost one wire message, not k.
pub(crate) fn on_migrate_cmd(ctx: &mut NodeCtx, m: Message) {
    let Some((cmd_id, dest, mut tids)) = proto::decode_migrate_cmd(&m.payload) else {
        // A corrupt command costs the command, never the node; the
        // sender's round deadline covers the missing ack.
        ctx.out.printf(
            ctx.node,
            &format!("dropped unreadable migrate command from node {}", m.src),
        );
        return;
    };
    let total = tids.len() as u32;
    // Dedup so a tid repeated in one command cannot be double-counted
    // (request_migration succeeds again on an already-flagged thread).
    tids.sort_unstable();
    tids.dedup();
    let mut accepted = 0u32;
    // A command naming a dead destination fails fast (accepted = 0): the
    // balancer's pair fails this round instead of threads dying en route.
    if dest < ctx.n_nodes && !ctx.dead_nodes.contains(&dest) {
        for tid in &tids {
            let ok = match ctx.threads.get(tid) {
                // SAFETY: resident descriptor.
                Some(&d) => unsafe { ctx.sched.request_migration(d, dest) },
                None => false,
            };
            accepted += ok as u32;
        }
    }
    // The ack piggybacks this node's free-slot wealth for the trader.
    let wealth = ctx.mgr.free_slots() as u32;
    ctx.set_peer_wealth(ctx.node, wealth as u64);
    let ack = proto::encode_migrate_ack(&ctx.pool, cmd_id, accepted, total, wealth);
    let _ = ctx.ep.send(m.src, tag::MIGRATE_CMD_ACK, ack);
}
