//! Migration-class handlers: thread arrival (`MIGRATION`), rejection
//! (`MIGRATION_NAK`) and third-party migration commands (`MIGRATE_CMD`).
//!
//! The *departure* side (pack & ship) stays in the dispatch core
//! (`NodeCtx::send_thread`): it is a scheduler outcome, not a message.

use std::sync::atomic::Ordering;
use std::time::Instant;

use madeleine::message::{PayloadReader, PayloadWriter};
use madeleine::Message;

use crate::config::MigrationScheme;
use crate::node::NodeCtx;
use crate::proto::{self, tag};
use crate::registry::ThreadExit;

pub(crate) fn on_migration(ctx: &mut NodeCtx, m: Message) {
    // Adopting slots does not touch the bitmap, so arrivals are legal
    // even inside a negotiation ("the bitmaps do not undergo any change
    // on thread migration", §4.2).
    ctx.stats
        .migration_wire_ns
        .fetch_add(m.wire_ns, Ordering::Relaxed);
    // The 8-byte tid prefix is readable even when the records behind
    // it are garbage — it is what lets the NAK name the lost thread.
    let tid = m
        .payload
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")));
    let t0 = Instant::now();
    // SAFETY: buffer from a peer's pack_thread (or, under fault
    // injection, arbitrary bytes — unpack_thread validates and rolls
    // back rather than trusting them).
    let unpacked = match tid {
        Some(_) => unsafe { crate::migration::unpack_thread(&m.payload[8..], &mut ctx.mgr) },
        None => Err(crate::error::Pm2Error::Net(
            "migration message shorter than its tid prefix".into(),
        )),
    };
    ctx.stats
        .migration_unpack_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    let d = match unpacked {
        Ok(d) => d,
        Err(e) => {
            // A corrupt buffer costs one thread, never the node: log,
            // count, and NAK the sender instead of crashing the driver.
            ctx.stats.migrations_failed.fetch_add(1, Ordering::Relaxed);
            let text = format!("rejected corrupt migration from node {}: {e}", m.src);
            ctx.out.printf(ctx.node, &text);
            let mut w = PayloadWriter::pooled(&ctx.pool, 16 + text.len());
            match tid {
                Some(t) => w.u8(1).u64(t),
                None => w.u8(0).u64(0),
            };
            w.bytes(text.as_bytes());
            let _ = ctx.ep.send(m.src, tag::MIGRATION_NAK, w.finish());
            return;
        }
    };
    // SAFETY: unpack succeeded; `d` is a live resident descriptor.
    unsafe {
        if ctx.scheme == MigrationScheme::RegisteredPointers {
            // Ablation baseline: charge the early-PM2 post-migration
            // fix-up walk (registered pointers + frame chain).
            crate::legacy::charge_arrival_fixup(d);
        }
        ctx.sched.adopt_arrival(d);
        ctx.threads.insert((*d).tid, d);
    }
    ctx.stats.migrations_in.fetch_add(1, Ordering::Relaxed);
}

/// The peer could not unpack a thread we shipped.  Its slots were
/// unmapped at pack time and the tid left our tables, so the thread is
/// unrecoverable — but joiners must not hang: complete it in the
/// registry as a panic carrying the rejection text.
pub(crate) fn on_migration_nak(ctx: &mut NodeCtx, m: Message) {
    let mut r = PayloadReader::new(&m.payload);
    let has_tid = r.u8().unwrap_or(0) == 1;
    let tid = r.u64().unwrap_or(0);
    let text = String::from_utf8_lossy(r.rest()).into_owned();
    ctx.out.printf(
        ctx.node,
        &format!("peer node {} NAKed a migration: {text}", m.src),
    );
    if has_tid && tid != 0 {
        // First-write-wins, like THREAD_EXIT: never resurrect a
        // completion a joiner already consumed.
        ctx.registry.complete_if_absent(ThreadExit {
            tid,
            panicked: true,
            died_on: ctx.node,
            panic_msg: Some(format!("thread lost in migration: {text}")),
            value: None,
        });
    }
}

pub(crate) fn on_migrate_cmd(ctx: &mut NodeCtx, m: Message) {
    let (tid, dest) = proto::decode_migrate_cmd(&m.payload).expect("migrate cmd");
    let ok = match ctx.threads.get(&tid) {
        // SAFETY: resident descriptor.
        Some(&d) => unsafe { ctx.sched.request_migration(d, dest) },
        None => false,
    };
    let mut w = PayloadWriter::pooled(&ctx.pool, 12);
    w.u64(tid).u32(ok as u32);
    let _ = ctx.ep.send(m.src, tag::MIGRATE_CMD_ACK, w.finish());
}
