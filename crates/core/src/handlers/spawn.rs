//! Thread-creation and LRPC handlers: `SPAWN_KEY`, `RPC_SPAWN`,
//! `RPC_CALL`.
//!
//! All three need a fresh stack slot (a bitmap mutation), so all three
//! defer while the bitmap is frozen by a negotiation and are replayed by
//! the dispatch core after `NEG_DONE`.  Typed-LRPC handlers spawn into the
//! scheduler's **control lane** ([`marcel::thread::flags::CONTROL`]): a
//! serving node crowded with compute threads still turns replies around
//! promptly.

use madeleine::message::PayloadReader;
use madeleine::Message;

use crate::node::NodeCtx;
use crate::proto::{self, rpc_status, tag};

pub(crate) fn on_spawn_key(ctx: &mut NodeCtx, m: Message) {
    if ctx.frozen {
        // Spawning needs a stack slot (bitmap mutation): park until
        // the negotiation ends.
        ctx.deferred.push_back(m);
        return;
    }
    let mut r = PayloadReader::new(&m.payload);
    let key = r.u64().expect("spawn payload");
    let tid = r.u64().expect("spawn payload tid");
    let f = ctx.spawn_table.take(key).expect("spawn key not found");
    // Out of stack slots must not kill the node driver: under open-loop
    // overload (the workload harness past saturation) spawn failures are
    // expected, and the host is blocked on this tid — complete it as a
    // failed exit so joiners observe a typed failure instead of a hang.
    if let Err(e) = ctx.try_spawn_boxed(tid, 0, f) {
        ctx.registry.complete(crate::registry::ThreadExit {
            tid,
            panicked: true,
            died_on: ctx.node,
            panic_msg: Some(format!("spawn failed: {e}")),
            value: None,
            failed_node: None,
        });
    }
}

pub(crate) fn on_rpc_spawn(ctx: &mut NodeCtx, m: Message) {
    if ctx.frozen {
        ctx.deferred.push_back(m);
        return;
    }
    let (service, args) = proto::decode_rpc_spawn(&m.payload).expect("rpc payload");
    let f = ctx
        .services
        .get(service)
        .unwrap_or_else(|| panic!("service {service} not registered"));
    let tid = ctx.sched.next_tid();
    ctx.spawn_boxed(tid, Box::new(move || f(args)));
}

pub(crate) fn on_rpc_call(ctx: &mut NodeCtx, m: Message) {
    if ctx.frozen {
        // The handler thread needs a stack slot (bitmap mutation):
        // park until the negotiation ends.
        ctx.deferred.push_back(m);
        return;
    }
    // The reply destination travels in the payload, NOT in `m.src`,
    // so it survives the deferred replay above and any handler
    // migration before the response is sent.
    let Some((call_id, reply_to, service, req)) = proto::decode_rpc_call(&m.payload) else {
        return; // Malformed request: nothing to reply to.
    };
    if req.len() > ctx.max_rpc_payload {
        let msg = format!("request of {} bytes exceeds ceiling", req.len());
        let _ = ctx.ep.send(
            reply_to,
            tag::RPC_RESP,
            proto::encode_rpc_resp(&ctx.pool, call_id, rpc_status::REMOTE_ERROR, msg.as_bytes()),
        );
        return;
    }
    let Some(handler) = ctx.typed_services.get(service) else {
        let _ = ctx.ep.send(
            reply_to,
            tag::RPC_RESP,
            proto::encode_rpc_resp(&ctx.pool, call_id, rpc_status::NO_SUCH_SERVICE, &[]),
        );
        return;
    };
    // LRPC semantics: the handler runs as a fresh Marcel thread, so it
    // may allocate, spawn, even migrate; the reply is sent from
    // whatever node it ends up on, matched by call id at the caller.
    // It spawns control-priority so a backlog of compute quanta cannot
    // sit between the request and its reply.
    let max = ctx.max_rpc_payload;
    let tid = ctx.sched.next_tid();
    let spawned = ctx.try_spawn_boxed(
        tid,
        marcel::thread::flags::CONTROL,
        Box::new(move || {
            let (status, bytes) = match handler(&req) {
                Ok(resp) if resp.len() <= max => (rpc_status::OK, resp),
                Ok(resp) => (
                    rpc_status::REMOTE_ERROR,
                    format!("response of {} bytes exceeds ceiling", resp.len()).into_bytes(),
                ),
                Err(e) => (rpc_status::REMOTE_ERROR, e.into_bytes()),
            };
            // The reply is RPC-shaped traffic too: account it on the
            // serving side (from wherever the handler ended up) so both
            // ends of a chatty pair accumulate affinity toward each other.
            crate::api::note_rpc_traffic(reply_to);
            let pool = crate::api::local_pool();
            let _ = crate::api::send_to(
                reply_to,
                tag::RPC_RESP,
                proto::encode_rpc_resp(&pool, call_id, status, &bytes),
            );
        }),
    );
    if let Err(e) = spawned {
        // Out of stack slots: the caller gets a typed remote error
        // instead of a wedged machine and an opaque timeout.
        let msg = format!("serving node could not spawn handler: {e}");
        let _ = ctx.ep.send(
            reply_to,
            tag::RPC_RESP,
            proto::encode_rpc_resp(&ctx.pool, call_id, rpc_status::REMOTE_ERROR, msg.as_bytes()),
        );
    }
}
